"""Replay the paper's proofs and counterexamples on live data.

Four acts:

1. Figure 3 — the eight-line algebraic proof of identity 12, each line
   evaluated on a randomized database (all equal under a strong
   predicate).
2. Example 2 — the same graph, two different answers: why join/outerjoin
   queries are not freely reorderable in general.
3. Example 3 — the non-strong predicate that breaks identity 12.
4. Section 6.2 — the generalized outerjoin rescuing Example 2's shape.

Run:  python examples/proof_replay.py
"""

from repro.algebra import (
    NULL,
    Database,
    IsNull,
    Or,
    Relation,
    bag_equal,
    eq,
)
from repro.core import (
    IDENTITIES,
    TriSetting,
    graph_of,
    identity12_proof_steps,
    jn,
    oj,
    reassociate_outerjoin_of_join,
    violations,
)
from repro.datagen import random_database


def act1_figure3() -> None:
    print("=" * 72)
    print("Act 1 — Figure 3: the algebraic proof of identity 12, line by line")
    schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
    db = random_database(schemas, seed=1990)
    setting = TriSetting(
        x=db["X"], y=db["Y"], z=db["Z"], pxy=eq("X.a", "Y.a"), pyz=eq("Y.b", "Z.b")
    )
    steps = identity12_proof_steps(setting)
    reference = steps[0][1]
    for label, relation in steps:
        status = "=" if bag_equal(reference, relation) else "≠"
        print(f"  [{status}] |result| = {len(relation):2}  {label}")
    print()


def act2_example2() -> None:
    print("=" * 72)
    print("Act 2 — Example 2: same graph, different answers")
    db = Database(
        {
            "R1": Relation.from_dicts(["R1.a"], [{"R1.a": 1}]),
            "R2": Relation.from_dicts(["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 5}]),
            "R3": Relation.from_dicts(["R3.b"], [{"R3.b": 6}]),
        }
    )
    p12, p23 = eq("R1.a", "R2.a"), eq("R2.b", "R3.b")
    q1 = oj("R1", jn("R2", "R3", p23), p12)
    q2 = jn(oj("R1", "R2", p12), "R3", p23)
    graph = graph_of(q1, db.registry)
    assert graph == graph_of(q2, db.registry)
    print("  shared graph: ", graph)
    print("  niceness violations:")
    for violation in violations(graph):
        print("    -", violation)
    print(f"  {q1.to_infix()}  evaluates to {sorted(map(dict, q1.eval(db)), key=str)}")
    print(f"  {q2.to_infix()}  evaluates to {sorted(map(dict, q2.eval(db)), key=str)}")
    print()


def act3_example3() -> None:
    print("=" * 72)
    print("Act 3 — Example 3: the non-strong predicate breaks identity 12")
    a = Relation.from_dicts(["A.attr1"], [{"A.attr1": "a"}])
    b = Relation.from_dicts(["B.attr1", "B.attr2"], [{"B.attr1": "b", "B.attr2": NULL}])
    c = Relation.from_dicts(["C.attr1"], [{"C.attr1": "c"}])
    pbc = Or((eq("B.attr2", "C.attr1"), IsNull("B.attr2")))
    print("  P_bc = (B.attr2 = C.attr1 OR B.attr2 IS NULL)")
    print("  strong w.r.t. B?", pbc.is_strong(["B.attr2"]))
    setting = TriSetting(x=a, y=b, z=c, pxy=eq("A.attr1", "B.attr1"), pyz=pbc)
    identity = IDENTITIES["12"]
    lhs, rhs = identity.lhs(setting), identity.rhs(setting)
    print("  (A→B)→C :", [dict(r) for r in lhs])
    print("  A→(B→C) :", [dict(r) for r in rhs])
    print("  equal?  ", bag_equal(lhs, rhs))
    print()


def act4_goj_rescue() -> None:
    print("=" * 72)
    print("Act 4 — Section 6.2: the generalized outerjoin rescues Example 2")
    schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
    original = oj("X", jn("Y", "Z", eq("Y.b", "Z.b")), eq("X.a", "Y.a"))
    rewritten = reassociate_outerjoin_of_join(original)
    print("  original (not reassociable by plain BTs):", original.to_infix())
    print("  identity 15, right to left:             ", rewritten.to_infix())
    agreements = 0
    for seed in range(20):
        from repro.datagen import duplicate_free_database

        db = duplicate_free_database(schemas, seed=seed)
        if bag_equal(original.eval(db), rewritten.eval(db)):
            agreements += 1
    print(f"  agreement on randomized duplicate-free databases: {agreements}/20")
    graph = graph_of(original, None) if False else None  # graph shown in act 2
    print("  (left-deep shape: ready for a pipelined executor)")
    print()


def main() -> None:
    act1_figure3()
    act2_example2()
    act3_example3()
    act4_goj_rescue()


if __name__ == "__main__":
    main()
