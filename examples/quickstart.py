"""Quickstart: Example 1 in eight steps.

Build the paper's Example-1 database, write the query the slow way, prove
with Theorem 1 that reordering is safe, let the optimizer find the fast
order, and watch the retrieval counter drop from 2N+1 to 3.

Run:  python examples/quickstart.py
"""

from repro.algebra import bag_equal, eq
from repro.core import graph_of, jn, oj, theorem1_applies
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer import CardinalityEstimator, DPOptimizer, RetrievalCostModel
from repro.util.pretty import render_tree


def main() -> None:
    # 1. Example 1's database: |R1| = 1, |R2| = |R3| = N, keys indexed.
    n = 100_000
    storage = example1_storage(n)

    # 2. The query as a user might write it: R1 - (R2 → R3).
    p12 = eq("R1.k", "R2.k")
    p23 = eq("R2.j", "R3.j")
    written = jn("R1", oj("R2", "R3", p23), p12)
    print("written query:", written.to_infix())
    print(render_tree(written))

    # 3. Abstract it to a query graph — execution order disappears.
    graph = graph_of(written, storage.registry)
    print("\nquery graph:")
    print(graph.describe())

    # 4. Theorem 1: the graph is nice and predicates are strong, so EVERY
    #    implementing tree of this graph computes the same result.
    verdict = theorem1_applies(graph, storage.registry)
    print("\nTheorem 1:", verdict)

    # 5. Optimize over the graph (Section 6.1: the DP just "fills in Join
    #    or else Outerjoin", no extra analysis).
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)
    best = DPOptimizer(graph, model).optimize()
    print("\noptimizer's choice:", best)

    # 6. Execute both and compare the paper's metric: tuples retrieved.
    slow = execute(written, storage)
    fast = execute(best.expr, storage)
    print(f"\nwritten order retrieves:   {slow.tuples_retrieved:>12,}  (paper: 2N+1)")
    print(f"reordered plan retrieves:  {fast.tuples_retrieved:>12,}  (paper: 3)")

    # 7. Same answer, guaranteed by the theorem, verified on the data.
    assert bag_equal(slow.relation, fast.relation)
    print("\nresults are bag-equal — free reorderability in action.")

    # 8. The physical plan the engine ran:
    print("\nfast plan:")
    print(fast.plan.describe())


if __name__ == "__main__":
    main()
