"""The motivating workload: list all departments, even empty ones.

The introduction's example: "when we want a listing of departments and
their employees, we often want to see all departments, even those without
employees" — a join silently drops them, an outerjoin keeps them.  The
example then walks through Section 4: a strong restriction turns the
outerjoin back into a join, while an IS NULL restriction (find the empty
departments!) must keep it.

Run:  python examples/departments_and_employees.py
"""

from repro.algebra import Comparison, Const, IsNull, eq
from repro.core import Restrict, graph_of, jn, oj, simplify_outerjoins, theorem1_applies
from repro.datagen import departments_database


def show(title: str, relation) -> None:
    print(f"\n{title}")
    for row in sorted(relation, key=lambda r: (str(r["DEPT.dno"]), str(r.get("EMP.eno")))):
        print("  ", dict(row))


def main() -> None:
    db = departments_database(n_departments=4, employees_per_department=2, empty_departments=1)
    link = eq("DEPT.dno", "EMP.dno")

    # A join loses the empty department...
    join_query = jn("DEPT", "EMP", link)
    show("JOIN — department 3 is silently missing:", join_query.eval(db))

    # ...the outerjoin keeps it, padded with nulls.
    oj_query = oj("DEPT", "EMP", link)
    show("OUTERJOIN — department 3 survives with null employee columns:", oj_query.eval(db))

    # The query block remains freely reorderable:
    verdict = theorem1_applies(graph_of(oj_query, db.registry), db.registry)
    print("\nTheorem 1 on the outerjoin query:", "OK" if verdict.freely_reorderable else verdict)

    # Section 4, case 1: a strong restriction on the employee side makes
    # the padding pointless — the simplifier converts OJ to JN.
    strong = Restrict(oj_query, Comparison("EMP.ename", "=", Const("emp-0")))
    report = simplify_outerjoins(strong, db.registry)
    print("\nRestriction EMP.ename = 'emp-0' (strong on EMP):")
    for conversion in report.conversions:
        print("  ", conversion)
    print("   simplified tree:", report.query.to_infix())

    # Section 4, case 2: "find departments with no employees" uses IS NULL,
    # which is satisfied by padded tuples — NOT strong, so the outerjoin
    # must stay.
    find_empty = Restrict(oj_query, IsNull("EMP.eno"))
    report2 = simplify_outerjoins(find_empty, db.registry)
    print("\nRestriction EMP.eno IS NULL (not strong):")
    print("   conversions:", report2.conversions or "none — outerjoin preserved, as it must be")
    show("   empty departments found:", report2.query.eval(db))


if __name__ == "__main__":
    main()
