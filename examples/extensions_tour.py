"""Beyond the core theorem: the paper's margins, implemented.

Five vignettes covering everything the paper mentions but does not
develop, each resolved by this reproduction:

1. Two-sided outerjoin and Section 4's conversion argument.
2. The Section-6.3 tree-level reorderability conditions (conjecture,
   confirmed: tree test == graph test).
3. Join/semijoin queries and the semijoin-in-series pattern (conjecture,
   confirmed: series semijoins leave exactly one valid order).
4. The generalized outerjoin as a *physical* operator ("a slightly
   modified join algorithm"), run by the engine.
5. The minimal strongness condition (strongness is only needed on
   chained outerjoin edges).

Run:  python examples/extensions_tour.py
"""

from repro.algebra import Comparison, Const, SchemaRegistry, bag_equal, eq
from repro.core import (
    Restrict,
    brute_force_check,
    graph_of,
    is_nice,
    jn,
    oj,
    simplify_outerjoins,
    theorem1_applies,
)
from repro.core.expressions import foj, goj
from repro.core.semijoin_theory import JoinSemijoinGraph, semijoin_implementing_trees
from repro.core.tree_conditions import satisfies_tree_conditions, tree_violations
from repro.datagen import chain, duplicate_free_database, random_databases, weaken_oj_edge
from repro.engine import Storage, execute


def vignette1_full_outerjoin() -> None:
    print("=" * 72)
    print("1. Two-sided outerjoin + Section 4's conversion")
    reg = SchemaRegistry({"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"]})
    q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), Comparison("R1.b", "=", Const(1)))
    report = simplify_outerjoins(q, reg)
    print("  before:", q.to_infix())
    print("  after: ", report.query.to_infix())
    for conversion in report.conversions:
        print("   -", conversion)
    print()


def vignette2_tree_conditions() -> None:
    print("=" * 72)
    print("2. Section 6.3's tree-level conditions (conjecture confirmed)")
    scenario = chain(3, ["out", "join"])
    reg = scenario.registry
    good = oj("R1", jn("R2", "R3", eq("R2.a", "R3.a")), eq("R1.a", "R2.a"))
    print("  tree:", good.to_infix())
    print("  graph nice?        ", is_nice(graph_of(good, reg)))
    print("  tree conditions ok?", satisfies_tree_conditions(good, reg))
    for violation in tree_violations(good, reg):
        print("   -", violation)
    print()


def vignette3_semijoins() -> None:
    print("=" * 72)
    print("3. Join/semijoin queries: series vs parallel")
    reg = SchemaRegistry({"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]})
    series = JoinSemijoinGraph.from_edges(
        sj=[("X", "Y", eq("X.a", "Y.a")), ("Y", "Z", eq("Y.b", "Z.b"))]
    )
    parallel = JoinSemijoinGraph.from_edges(
        sj=[("X", "Y", eq("X.a", "Y.a")), ("X", "Z", eq("X.b", "Z.a"))]
    )
    for name, graph in (("series", series), ("parallel", parallel)):
        trees = [t.to_infix() for t in semijoin_implementing_trees(graph, reg)]
        print(f"  {name}: {len(trees)} valid tree(s): {trees}")
    print("  -> 'semijoin edges in series' = zero reordering freedom.")
    print()


def vignette4_goj_engine() -> None:
    print("=" * 72)
    print("4. The generalized outerjoin on the physical engine")
    schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
    db = duplicate_free_database(schemas, seed=3)
    storage = Storage.from_database(db)
    pxy, pyz = eq("X.a", "Y.a"), eq("Y.b", "Z.b")
    original = oj("X", jn("Y", "Z", pyz), pxy)           # Example 2's shape
    rewritten = goj(oj("X", "Y", pxy), "Z", pyz, ["X.a", "X.b"])
    left = execute(original, storage)
    right = execute(rewritten, storage)
    print("  original: ", original.to_infix())
    print("  rewritten:", rewritten.to_infix())
    print("  engine results equal:", bag_equal(left.relation, right.relation))
    print("  rewritten plan:")
    print("   " + right.plan.describe().replace("\n", "\n   "))
    print()


def vignette5_minimal_strongness() -> None:
    print("=" * 72)
    print("5. Minimal strongness: only chained outerjoin edges need it")
    scenario = weaken_oj_edge(chain(3, ["join", "out"]), ("R2", "R3"))
    blanket = theorem1_applies(scenario.graph, scenario.registry, minimal=False)
    minimal = theorem1_applies(scenario.graph, scenario.registry, minimal=True)
    print("  graph: R1 - R2 → R3, with a NON-strong predicate on R2 → R3")
    print("  paper's blanket condition:", "passes" if blanket.freely_reorderable else "fails")
    print("  minimal condition:        ", "passes" if minimal.freely_reorderable else "fails")
    dbs = random_databases(scenario.schemas, 30, seed=23)
    verdict = brute_force_check(scenario.graph, dbs)
    print("  brute force over all ITs: ", "consistent" if verdict.consistent else "inconsistent")
    print("  -> R2 is never padded here, so its predicate needs no strongness.")
    print()


def main() -> None:
    vignette1_full_outerjoin()
    vignette2_tree_conditions()
    vignette3_semijoins()
    vignette4_goj_engine()
    vignette5_minimal_strongness()


if __name__ == "__main__":
    main()
