"""A tour of the optimizer: DP over the query graph vs the baselines.

Shows the Section-6.1 point quantitatively: an optimizer that treats
outerjoins as barriers (the pre-Theorem-1 world) pays a linearly growing
penalty on Example 1's workload, while the graph DP — with NO outerjoin-
specific machinery — finds the 3-retrieval plan at every scale.  Also
demonstrates Example 1b, where the optimal plan runs the OUTERJOIN first.

Run:  python examples/optimizer_tour.py
"""

from repro.algebra import eq, gt
from repro.core import graph_of, jn, oj
from repro.datagen import example1_storage, example1b_storage
from repro.engine import execute
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    GreedyOptimizer,
    OuterjoinBarrierOptimizer,
    RetrievalCostModel,
    fixed_order_plan,
)


def example1_sweep() -> None:
    print("=" * 72)
    print("Example 1 sweep — measured base-tuple retrievals per strategy")
    print(f"{'N':>8} | {'DP':>6} | {'greedy':>6} | {'barrier':>9} | {'fixed':>9}")
    print("-" * 50)
    for n in (100, 1_000, 10_000):
        storage = example1_storage(n)
        written = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
        graph = graph_of(written, storage.registry)
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)

        dp = DPOptimizer(graph, model).optimize()
        greedy = GreedyOptimizer(graph, model).optimize()
        barrier = OuterjoinBarrierOptimizer(storage.registry, model).optimize(written)
        fixed = fixed_order_plan(written, model)

        counts = [
            execute(plan.expr, storage).tuples_retrieved
            for plan in (dp, greedy, barrier, fixed)
        ]
        print(f"{n:>8} | {counts[0]:>6} | {counts[1]:>6} | {counts[2]:>9} | {counts[3]:>9}")
    print("\nDP plan:", dp.expr.to_infix(), "— reorders across the outerjoin,")
    print("which Theorem 1 licenses and the barrier baseline cannot do.")


def example1b_crossover() -> None:
    print("\n" + "=" * 72)
    print("Example 1b — sometimes the OUTERJOIN should run first")
    storage = example1b_storage(80, 80, 80, seed=7)
    join_pred = gt("R1.A", "R2.B")
    oj_pred = eq("R2.C", "R3.D")
    join_first = oj(jn("R1", "R2", join_pred), "R3", oj_pred)
    oj_first = jn("R1", oj("R2", "R3", oj_pred), join_pred)
    graph = graph_of(join_first, storage.registry)

    model = CoutCostModel(CardinalityEstimator(storage))
    best = DPOptimizer(graph, model).optimize()
    print("  join-first cost (C_out):     ", f"{model.plan_cost(join_first):,.0f}")
    print("  outerjoin-first cost (C_out):", f"{model.plan_cost(oj_first):,.0f}")
    print("  DP's pick:                   ", best.expr.to_infix())
    print("  -> 'joins before outerjoins' is NOT a universal rule;")
    print("     free reorderability lets the optimizer decide per query.")


def main() -> None:
    example1_sweep()
    example1b_crossover()


if __name__ == "__main__":
    main()
