"""Section 5 end to end: UnNest (*) and Link (->) over entity data.

Recreates the paper's three example queries — the Queretaro employees
with children, the Zurich department dossier, and the prosecutor's
combined query — showing for each: the compiled query graph, the
Theorem-1 certificate, the initial and optimized implementing trees, and
the results (with the padding the outerjoins provide).

Run:  python examples/unnest_link_language.py
"""

from repro.datagen import section5_catalog
from repro.language import ObjectStore, compile_query


def build_store() -> ObjectStore:
    store = ObjectStore(section5_catalog())
    ana = store.insert("EMPLOYEE", Name="Ana", Rank=12, ChildName=("Kim", "Lu"), **{"D#": 1})
    bob = store.insert("EMPLOYEE", Name="Bob", Rank=5, ChildName=(), **{"D#": 1})
    cyd = store.insert("EMPLOYEE", Name="Cyd", Rank=11, ChildName=("Max",), **{"D#": 2})
    audit = store.insert("REPORT", Title="Q1 audit", Findings="siphoning suspected")
    store.insert(
        "DEPARTMENT", Location="Queretaro", Manager=ana, Secretary=bob, **{"D#": 1}
    )
    store.insert(
        "DEPARTMENT", Location="Zurich", Manager=cyd, Audit=audit, **{"D#": 2}
    )
    return store


def run(store: ObjectStore, title: str, text: str) -> None:
    print("=" * 72)
    print(title)
    print(text.strip())
    cq = compile_query(text, store)
    print("\nquery graph:")
    print(cq.graph.describe())
    print("\nTheorem 1 certificate:", "freely reorderable" if cq.verdict.freely_reorderable else cq.verdict)
    print("initial tree:  ", cq.initial_tree.to_infix())
    optimized = cq.optimized_tree()
    print("optimized tree:", optimized.to_infix())
    rows = list(cq.run(optimized))
    print(f"\n{len(rows)} result rows:")
    for row in rows:
        interesting = {
            k: v for k, v in sorted(row.items()) if "@" not in k
        }
        print("  ", interesting)
    print()


def main() -> None:
    store = build_store()

    run(
        store,
        "Query 1 — employees (with children, padded if none) in Queretaro:",
        """
        Select All
        From EMPLOYEE*ChildName, DEPARTMENT
        Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'
        """,
    )
    run(
        store,
        "Query 2 — the Zurich department, its manager, and its audit:",
        """
        Select All
        From DEPARTMENT-->Manager-->Audit
        Where DEPARTMENT.Location = 'Zurich'
        """,
    )
    run(
        store,
        "Query 3 — the prosecutor's query (Flatten + Link combined):",
        """
        Select All
        From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit
        Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and
              EMPLOYEE.Rank > 10
        """,
    )


if __name__ == "__main__":
    main()
