"""Tests for EXPLAIN / EXPLAIN ANALYZE."""

import pytest

from repro.algebra import eq
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine import Planner
from repro.engine.explain import explain, explain_analyze


@pytest.fixture
def setup():
    storage = example1_storage(100)
    query = oj(jn("R1", "R2", eq("R1.k", "R2.k")), "R3", eq("R2.j", "R3.j"))
    plan = Planner(storage).plan(query)
    return storage, query, plan


class TestExplain:
    def test_leaf_estimates_from_statistics(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage)
        rendered = node.render()
        assert "SeqScan(R1)" in rendered
        assert "est=1.0" in rendered  # |R1| = 1

    def test_root_estimate_with_logical_expr(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage, expr=query)
        assert node.estimated_rows == pytest.approx(1.0)

    def test_no_execution_no_actuals(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage)
        assert node.actual_rows is None


class TestExplainAnalyze:
    def test_actual_rows_recorded(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage, expr=query)
        assert node.actual_rows == 1  # one R1 row drives everything
        rendered = node.render()
        assert "actual=1" in rendered

    def test_q_error_near_one_on_example1(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage, expr=query)
        assert node.worst_q_error() < 1.5

    def test_children_counted(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage)
        # The driving scan emits its single row.
        def find(n, text):
            if text in n.label:
                return n
            for c in n.children:
                hit = find(c, text)
                if hit is not None:
                    return hit
            return None

        scan = find(node, "SeqScan(R1)")
        assert scan is not None and scan.actual_rows == 1

    def test_render_tree_shape(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage)
        rendered = node.render()
        assert rendered.count("->") >= 2
        assert rendered.splitlines()[0].startswith("->")
