"""Tests for EXPLAIN / EXPLAIN ANALYZE."""

import json

import pytest

from repro.algebra import eq
from repro.conformance.serialize import value_to_json
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine import Planner
from repro.engine.executor import execute
from repro.engine.explain import explain, explain_analyze
from repro.engine.storage import Storage
from repro.observability import tracing


@pytest.fixture
def setup():
    storage = example1_storage(100)
    query = oj(jn("R1", "R2", eq("R1.k", "R2.k")), "R3", eq("R2.j", "R3.j"))
    plan = Planner(storage).plan(query)
    return storage, query, plan


class TestExplain:
    def test_leaf_estimates_from_statistics(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage)
        rendered = node.render()
        assert "SeqScan(R1)" in rendered
        assert "est=1.0" in rendered  # |R1| = 1

    def test_root_estimate_with_logical_expr(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage, expr=query)
        assert node.estimated_rows == pytest.approx(1.0)

    def test_no_execution_no_actuals(self, setup):
        storage, query, plan = setup
        node = explain(plan, storage)
        assert node.actual_rows is None


class TestExplainAnalyze:
    def test_actual_rows_recorded(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage, expr=query)
        assert node.actual_rows == 1  # one R1 row drives everything
        rendered = node.render()
        assert "actual=1" in rendered

    def test_q_error_near_one_on_example1(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage, expr=query)
        assert node.worst_q_error() < 1.5

    def test_children_counted(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage)
        # The driving scan emits its single row.
        def find(n, text):
            if text in n.label:
                return n
            for c in n.children:
                hit = find(c, text)
                if hit is not None:
                    return hit
            return None

        scan = find(node, "SeqScan(R1)")
        assert scan is not None and scan.actual_rows == 1

    def test_render_tree_shape(self, setup):
        storage, query, plan = setup
        node = explain_analyze(plan, storage)
        rendered = node.render()
        assert rendered.count("->") >= 2
        assert rendered.splitlines()[0].startswith("->")


class TestExplainAnalyzeKnownAnswers:
    """EXPLAIN ANALYZE reproduces the paper's worked examples."""

    def test_example1_per_operator_actuals(self, setup):
        # Example 1, good order: the single R1 tuple drives one index
        # probe into R2 and one into R3 — each probe hits exactly once.
        storage, query, plan = setup
        node = explain_analyze(plan, storage, expr=query)
        assert node.actual_rows == 1
        scan = node.find("SeqScan(R1)")
        assert scan is not None and scan.actual_rows == 1
        for fragment in ("R2(R2.k)", "R3(R3.j)"):
            join_node = node.find(fragment)
            assert join_node is not None, f"no operator matching {fragment}"
            assert join_node.actual_rows == 1
            assert join_node.details.get("index_probes") == 1
            assert join_node.details.get("index_hits") == 1
            assert join_node.details.get("dispatch") == "index-kernel"
        rendered = node.render()
        assert "time=" in rendered and "actual=1" in rendered
        assert node.details.get("kernels") in ("fast", "naive")
        assert "mem_high_water_rows" in node.details

    def test_example1_tuple_accounting(self, setup):
        # The paper's headline: 3 tuples retrieved in the good order
        # (versus 2N+1 for the bad order) — on the trace's root span.
        storage, query, _plan = setup
        with tracing(enabled=True):
            result = execute(query, storage)
        assert result.metrics.total_retrieved == 3
        assert result.trace.counters["tuples_retrieved"] == 3

    def test_example2_written_order(self):
        # Example 2's graph R1 → R2 − R3 is not nice; the engine runs the
        # written order R1 → (R2 ⋈ R3).  Known answer: R2 ⋈ R3 keeps the
        # single matching pair, the outerjoin preserves both R1 rows.
        storage = Storage()
        storage.create_table(
            "R1", ["R1.a", "R1.b"], [{"R1.a": 1, "R1.b": 10}, {"R1.a": 2, "R1.b": 20}]
        )
        storage.create_table("R2", ["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 1}])
        storage.create_table("R3", ["R3.a", "R3.b"], [{"R3.a": 1, "R3.b": 5}])
        query = oj("R1", jn("R2", "R3", eq("R2.a", "R3.a")), eq("R1.a", "R2.a"))
        plan = Planner(storage).plan(query)
        node = explain_analyze(plan, storage, expr=query)
        oracle = query.eval(storage.to_database())
        assert len(oracle) == 2
        assert node.actual_rows == 2
        inner = node.find("R2.a = R3.a")
        assert inner is not None and inner.actual_rows == 1
        assert node.worst_q_error() >= 1.0


class TestBatchCounters:
    """Batch-native operators surface per-operator batch counts."""

    def test_seqscan_batches_out_known_answer(self, setup):
        # Example 1: the single R1 tuple fits one column batch; the index
        # joins have no native batch path, so they carry no batch counter.
        storage, query, plan = setup
        from repro.util.fastpath import batch_mode

        with batch_mode(True):
            node = explain_analyze(plan, storage, expr=query)
        scan = node.find("SeqScan(R1)")
        assert scan is not None
        assert scan.details.get("batches_out") == 1
        for fragment in ("R2(R2.k)", "R3(R3.j)"):
            join_node = node.find(fragment)
            assert join_node is not None
            assert "batches_out" not in join_node.details
        assert "batches_out=1" in node.render()

    def test_hashjoin_batches_out_known_answer(self):
        # Example 2's written order on unindexed tables plans hash joins:
        # each operator's input fits one batch, so each emits exactly one.
        from repro.util.fastpath import batch_mode

        storage = Storage()
        storage.create_table(
            "R1", ["R1.a", "R1.b"], [{"R1.a": 1, "R1.b": 10}, {"R1.a": 2, "R1.b": 20}]
        )
        storage.create_table("R2", ["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 1}])
        storage.create_table("R3", ["R3.a", "R3.b"], [{"R3.a": 1, "R3.b": 5}])
        query = oj("R1", jn("R2", "R3", eq("R2.a", "R3.a")), eq("R1.a", "R2.a"))
        plan = Planner(storage).plan(query)
        with batch_mode(True):
            node = explain_analyze(plan, storage, expr=query)
        root = node
        assert root.actual_rows == 2
        assert root.details.get("batches_out") == 1
        inner = node.find("R2.a = R3.a")
        assert inner is not None
        assert inner.details.get("batches_out") == 1

    def test_row_mode_has_no_batch_counters(self, setup):
        storage, query, plan = setup
        from repro.util.fastpath import batch_mode

        with batch_mode(False):
            node = explain_analyze(plan, storage, expr=query)
        scan = node.find("SeqScan(R1)")
        assert scan is not None
        assert "batches_out" not in scan.details


def _canonical_bytes(relation) -> bytes:
    """A canonical byte encoding of a relation (order-independent)."""
    scheme = sorted(relation.scheme)
    rows = sorted(
        json.dumps({a: value_to_json(row[a]) for a in scheme}, sort_keys=True)
        for row in relation
    )
    return "\n".join([",".join(scheme)] + rows).encode()


class TestTracingTransparency:
    def test_repro_trace_0_is_byte_identical(self, setup, monkeypatch):
        """The tracer observes, never steers: results agree byte-for-byte
        across ambient tracing, forced full tracing, and REPRO_TRACE=0."""
        storage, query, _plan = setup
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        ambient = execute(query, storage)
        with tracing(enabled=True):
            full = execute(query, storage)
        monkeypatch.setenv("REPRO_TRACE", "0")
        off = execute(query, storage)
        assert ambient.trace is not None and full.trace is not None
        assert off.trace is None
        baseline = _canonical_bytes(off.relation)
        assert _canonical_bytes(ambient.relation) == baseline
        assert _canonical_bytes(full.relation) == baseline
        assert (
            ambient.metrics.total_retrieved
            == full.metrics.total_retrieved
            == off.metrics.total_retrieved
        )
