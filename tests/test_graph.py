"""Unit tests for query graphs and the graph(Q) construction (Section 1.2)."""

import pytest

from repro.algebra import And, SchemaRegistry, eq
from repro.core import QueryGraph, aj, graph_of, jn, oj, rel, roj
from repro.util.errors import GraphUndefinedError


@pytest.fixture
def reg():
    return SchemaRegistry(
        {
            "R1": ["R1.a", "R1.b"],
            "R2": ["R2.a", "R2.b"],
            "R3": ["R3.a", "R3.b"],
            "R4": ["R4.a"],
        }
    )


class TestGraphConstruction:
    def test_join_adds_undirected_edge(self, reg):
        g = graph_of(jn("R1", "R2", eq("R1.a", "R2.a")), reg)
        assert frozenset({"R1", "R2"}) in g.join_edges
        assert not g.oj_edges

    def test_outerjoin_adds_directed_edge(self, reg):
        g = graph_of(oj("R1", "R2", eq("R1.a", "R2.a")), reg)
        assert ("R1", "R2") in g.oj_edges

    def test_right_outerjoin_direction(self, reg):
        # R1 ← R2: R2 preserved, arrow points at R1.
        g = graph_of(roj("R1", "R2", eq("R1.a", "R2.a")), reg)
        assert ("R2", "R1") in g.oj_edges

    def test_conjuncts_become_separate_edges(self, reg):
        # The top join's predicate has two conjuncts, each crossing the cut
        # to a different relation: they become two distinct graph edges
        # (a "general cutset" in the paper's terms).
        p = And((eq("R1.b", "R3.b"), eq("R2.b", "R3.a")))
        g = graph_of(jn(jn("R1", "R2", eq("R1.a", "R2.a")), "R3", p), reg)
        assert frozenset({"R1", "R2"}) in g.join_edges
        assert frozenset({"R1", "R3"}) in g.join_edges
        assert frozenset({"R2", "R3"}) in g.join_edges
        assert g.edge_count() == 3

    def test_conjunct_not_crossing_the_cut_is_undefined(self, reg):
        # A conjunct whose two relations sit on the same side belongs to a
        # deeper operator; the paper's construction rejects it here.
        p = And((eq("R1.a", "R2.a"), eq("R2.b", "R3.b")))
        with pytest.raises(GraphUndefinedError):
            graph_of(jn(jn("R1", "R2", eq("R1.b", "R2.b")), "R3", p), reg)

    def test_parallel_edges_collapse(self, reg):
        p = And((eq("R1.a", "R2.a"), eq("R1.b", "R2.b")))
        g = graph_of(jn("R1", "R2", p), reg)
        assert g.edge_count() == 1
        merged = g.join_edges[frozenset({"R1", "R2"})]
        assert len(merged.conjuncts()) == 2

    def test_same_graph_for_different_associations(self, reg):
        """Example 2's premise: both associations have the same graph."""
        p12, p23 = eq("R1.a", "R2.a"), eq("R2.b", "R3.b")
        g1 = graph_of(oj("R1", jn("R2", "R3", p23), p12), reg)
        g2 = graph_of(jn(oj("R1", "R2", p12), "R3", p23), reg)
        assert g1 == g2

    def test_conjunct_spanning_three_relations_undefined(self, reg):
        from repro.algebra import Or

        bad = Or((eq("R1.a", "R2.a"), eq("R1.b", "R3.b")))  # references 3 relations
        with pytest.raises(GraphUndefinedError):
            graph_of(jn(jn("R1", "R2", eq("R1.a", "R2.a")), "R3", bad), reg)

    def test_single_relation_conjunct_undefined(self, reg):
        from repro.algebra import Comparison, Const

        with pytest.raises(GraphUndefinedError):
            graph_of(jn("R1", "R2", Comparison("R1.a", "=", Const(3))), reg)

    def test_outerjoin_predicate_must_span_exactly_two(self, reg):
        from repro.algebra import Or

        bad = Or((eq("R1.a", "R2.a"), eq("R1.b", "R3.b")))
        with pytest.raises(GraphUndefinedError):
            graph_of(oj("R1", jn("R2", "R3", eq("R2.a", "R3.a")), bad), reg)

    def test_antijoin_queries_have_no_graph(self, reg):
        with pytest.raises(GraphUndefinedError):
            graph_of(aj("R1", "R2", eq("R1.a", "R2.a")), reg)

    def test_unregistered_relation(self):
        with pytest.raises(GraphUndefinedError):
            graph_of(rel("Q"), SchemaRegistry())


class TestQueryGraphStructure:
    def test_from_edges_collapses_parallel_joins(self):
        g = QueryGraph.from_edges(
            join=[("A", "B", eq("A.x", "B.x")), ("A", "B", eq("A.y", "B.y"))],
        )
        assert g.edge_count() == 1

    def test_duplicate_oj_edge_rejected(self):
        with pytest.raises(GraphUndefinedError):
            QueryGraph.from_edges(
                oj=[("A", "B", eq("A.x", "B.x")), ("A", "B", eq("A.y", "B.y"))]
            )

    def test_parallel_join_and_oj_rejected(self):
        with pytest.raises(GraphUndefinedError):
            QueryGraph.from_edges(
                join=[("A", "B", eq("A.x", "B.x"))], oj=[("A", "B", eq("A.y", "B.y"))]
            )

    def test_neighbors(self):
        g = QueryGraph.from_edges(
            join=[("A", "B", eq("A.x", "B.x"))], oj=[("B", "C", eq("B.x", "C.x"))]
        )
        assert g.neighbors("B") == frozenset({"A", "C"})
        assert g.join_neighbors("B") == frozenset({"A"})
        assert g.oj_in_edges("C") == [("B", "C")]
        assert g.oj_out_edges("B") == [("B", "C")]

    def test_connectivity(self):
        g = QueryGraph.from_edges(
            join=[("A", "B", eq("A.x", "B.x"))], isolated=["A", "B", "C"]
        )
        assert not g.is_connected()
        assert g.is_connected(frozenset({"A", "B"}))
        assert len(g.connected_components()) == 2

    def test_induced_subgraph(self):
        g = QueryGraph.from_edges(
            join=[("A", "B", eq("A.x", "B.x"))], oj=[("B", "C", eq("B.x", "C.x"))]
        )
        sub = g.induced({"A", "B"})
        assert sub.edge_count() == 1 and not sub.oj_edges
        with pytest.raises(GraphUndefinedError):
            g.induced({"A", "Q"})

    def test_cut(self):
        g = QueryGraph.from_edges(
            join=[("A", "B", eq("A.x", "B.x"))], oj=[("B", "C", eq("B.x", "C.x"))]
        )
        joins, ojs = g.cut(frozenset({"A", "B"}), frozenset({"C"}))
        assert not joins and len(ojs) == 1
        joins, ojs = g.cut(frozenset({"A"}), frozenset({"B", "C"}))
        assert len(joins) == 1 and not ojs

    def test_equality_and_hash(self):
        p = eq("A.x", "B.x")
        g1 = QueryGraph.from_edges(join=[("A", "B", p)])
        g2 = QueryGraph.from_edges(join=[("B", "A", p)])
        assert g1 == g2
        assert len({g1, g2}) == 1

    def test_describe(self):
        g = QueryGraph.from_edges(oj=[("A", "B", eq("A.x", "B.x"))])
        text = g.describe()
        assert "A → B" in text
