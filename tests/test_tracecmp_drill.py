"""Injected-regression drill: tracecmp must localize a planted slowdown.

The drill monkeypatches a sleep into one kernel path (the hash join),
traces the same query before and after, and asserts the comparator flags
exactly that operator — not its scans, not the query as a whole.  This is
the end-to-end proof that per-operator *self* times localize regressions.
"""

from __future__ import annotations

import time

from repro.algebra import eq
from repro.core import jn
from repro.engine.executor import execute
from repro.engine.iterators import HashJoin
from repro.engine.storage import Storage
from repro.observability import tracing, write_trace
from repro.tools.tracecmp import aggregate_file, compare, main, regressions


def _storage() -> Storage:
    storage = Storage()
    n = 50
    storage.create_table("A", ["A.k"], [{"A.k": i} for i in range(n)])
    storage.create_table(
        "B", ["B.k", "B.j"], [{"B.k": i, "B.j": i % 7} for i in range(n)]
    )
    return storage


def _trace_to(path) -> None:
    storage = _storage()
    query = jn("A", "B", eq("A.k", "B.k"))
    with tracing(enabled=True):
        result = execute(query, storage)
    assert result.trace is not None
    write_trace(path, [result.trace])


def test_injected_regression_flagged_on_exactly_one_operator(tmp_path, monkeypatch):
    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    _trace_to(baseline)

    # No indexes on A/B, so the planner picks a HashJoin; plant ~40ms there.
    real_execute = HashJoin.execute

    def slow_execute(self, metrics):
        time.sleep(0.04)
        yield from real_execute(self, metrics)

    monkeypatch.setattr(HashJoin, "execute", slow_execute)
    _trace_to(candidate)

    # 5ms absolute floor: scan spans jitter by ~1ms under load, and the
    # planted sleep is 8x larger, so the floor filters noise only.
    findings = compare(
        aggregate_file(baseline), aggregate_file(candidate), min_delta_ms=5.0
    )
    assert len(findings) >= 2, "expected the join and at least one scan"
    flagged = regressions(findings)
    assert len(flagged) == 1, f"expected exactly one regression, got {flagged}"
    assert flagged[0].key.startswith("HashJoin"), flagged[0].key
    assert flagged[0].candidate_ms - flagged[0].baseline_ms >= 30.0


def test_cli_exit_codes(tmp_path, monkeypatch, capsys):
    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    _trace_to(baseline)

    real_execute = HashJoin.execute

    def slow_execute(self, metrics):
        time.sleep(0.04)
        yield from real_execute(self, metrics)

    monkeypatch.setattr(HashJoin, "execute", slow_execute)
    _trace_to(candidate)

    # Identical inputs: clean diff, exit 0.
    assert main([str(baseline), str(baseline)]) == 0
    # Planted regression: flagged, exit 1, named in the output.
    assert main([str(baseline), str(candidate)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "HashJoin" in out

    # An absurd threshold silences it again.
    assert main([str(baseline), str(candidate), "--threshold", "1e9"]) == 0


def test_self_time_shields_ancestors(tmp_path, monkeypatch):
    """A slowdown planted in a leaf-adjacent operator must not flag the
    operator above it (inclusive time would; self time does not)."""
    storage = _storage()
    storage.create_table("C", ["C.j"], [{"C.j": i % 7} for i in range(20)])
    query = jn(jn("A", "B", eq("A.k", "B.k")), "C", eq("B.j", "C.j"))

    def run(path):
        with tracing(enabled=True):
            result = execute(query, storage)
        write_trace(path, [result.trace])

    baseline = tmp_path / "baseline.json"
    candidate = tmp_path / "candidate.json"
    run(baseline)

    from repro.engine.iterators import SeqScan

    # Plant the slowdown on both execution paths: a batch-native parent
    # pulls `execute_batches` directly, never the row-dispatch `execute`.
    real_rows = SeqScan._execute_rows
    real_batches = SeqScan.execute_batches

    def slow_rows(self, metrics):
        if self.table.name == "C":
            time.sleep(0.03)
        yield from real_rows(self, metrics)

    def slow_batches(self, metrics):
        if self.table.name == "C":
            time.sleep(0.03)
        yield from real_batches(self, metrics)

    monkeypatch.setattr(SeqScan, "_execute_rows", slow_rows)
    monkeypatch.setattr(SeqScan, "execute_batches", slow_batches)
    run(candidate)

    flagged = regressions(
        compare(aggregate_file(baseline), aggregate_file(candidate), min_delta_ms=5.0)
    )
    assert [f.key for f in flagged] == ["SeqScan(C)"]
