"""Property-based invariants for the WCOJ sorted tries.

The leapfrog operator's correctness rests entirely on a handful of trie
invariants — keys sorted at every level, duplicates preserved at the
leaves, NULL-keyed rows excluded, seeks monotone and exact — so this
suite drives them across randomized relations rather than a few
hand-picked shapes.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.nulls import NULL, is_null
from repro.algebra.tuples import Row
from repro.datagen.random_db import random_relation
from repro.engine.storage import Storage, Table
from repro.engine.wcoj import TrieIndex, _sort_key, trie_for
from repro.util.errors import PlanningError

KEYS = (("x", ("R.a",)), ("y", ("R.b",)))


def build(rows, key_groups=KEYS):
    return TrieIndex.build(rows, key_groups)


def rows_of(n_rows, rng, domain=3, null_probability=0.2):
    relation = random_relation(
        ["R.a", "R.b", "R.c"],
        rng,
        max_rows=n_rows,
        domain=domain,
        null_probability=null_probability,
        allow_empty=True,
    )
    return list(relation)


def walk_keyvecs(trie):
    """All full key vectors (wrapped), depth-first via the cursor."""
    out = []

    def descend(cursor, prefix):
        if cursor.open():
            cursor.up()
            return
        while not cursor.at_end():
            vec = prefix + [cursor.wrapped_key()]
            if cursor.depth == trie.levels:
                out.append((tuple(vec), list(cursor.leaf_rows())))
            else:
                descend(cursor, vec)
            cursor.next()
        cursor.up()

    cursor = trie.cursor()
    descend(cursor, [])
    return out


class TestBuildInvariants:
    def test_levels_sorted_and_leaves_complete(self):
        rng = random.Random(11)
        for trial in range(50):
            rows = rows_of(10, rng)
            trie = build(rows)
            keyvecs = walk_keyvecs(trie)
            # Full key vectors come out in strictly increasing order.
            vecs = [vec for vec, _leaf in keyvecs]
            assert vecs == sorted(vecs)
            assert len(vecs) == len(set(vecs))
            # Every row is either excluded (a NULL key) or in exactly
            # one leaf, under its own key vector.
            indexed = sum(len(leaf) for _vec, leaf in keyvecs)
            assert indexed == trie.rows_indexed
            assert indexed + trie.rows_excluded == len(rows)
            for vec, leaf in keyvecs:
                for row in leaf:
                    assert vec == (_sort_key(row["R.a"]), _sort_key(row["R.b"]))

    def test_null_key_rows_are_excluded(self):
        rows = [
            Row({"R.a": 1, "R.b": 2, "R.c": 3}),
            Row({"R.a": NULL, "R.b": 2, "R.c": 3}),
            Row({"R.a": 1, "R.b": NULL, "R.c": NULL}),
            Row({"R.a": NULL, "R.b": NULL, "R.c": 0}),
        ]
        trie = build(rows)
        assert trie.rows_indexed == 1
        assert trie.rows_excluded == 3
        [(vec, leaf)] = walk_keyvecs(trie)
        assert leaf == [rows[0]]

    def test_all_null_key_column_yields_empty_trie(self):
        rows = [Row({"R.a": NULL, "R.b": i, "R.c": i}) for i in range(4)]
        trie = build(rows)
        assert trie.rows_indexed == 0
        assert trie.rows_excluded == 4
        cursor = trie.cursor()
        assert cursor.open()  # empty root: at end immediately

    def test_duplicate_rows_stay_in_the_leaf(self):
        row = Row({"R.a": 1, "R.b": 1, "R.c": 9})
        other = Row({"R.a": 1, "R.b": 1, "R.c": 7})
        trie = build([row, row, other, row])
        [(_vec, leaf)] = walk_keyvecs(trie)
        assert len(leaf) == 4  # bag semantics: all four survive

    def test_same_class_attribute_disagreement_excludes_the_row(self):
        # Both attributes of the only key level are in one class: rows
        # where they differ can never satisfy the equality and are
        # dropped at build time.
        groups = (("x", ("R.a", "R.b")),)
        rows = [
            Row({"R.a": 1, "R.b": 1, "R.c": 0}),
            Row({"R.a": 1, "R.b": 2, "R.c": 0}),
        ]
        trie = build(rows, groups)
        assert trie.rows_indexed == 1
        assert trie.rows_excluded == 1

    def test_empty_key_groups_rejected(self):
        with pytest.raises(PlanningError):
            build([], ())


class TestCursor:
    def test_seek_is_exact_and_monotone(self):
        rng = random.Random(23)
        for trial in range(50):
            rows = rows_of(12, rng, domain=6)
            trie = build(rows)
            cursor = trie.cursor()
            if cursor.open():
                cursor.up()
                continue
            level_keys = []
            while not cursor.at_end():
                level_keys.append(cursor.wrapped_key())
                cursor.next()
            cursor.up()
            # Seeking each present key from a fresh cursor lands on it.
            for target in level_keys:
                fresh = trie.cursor()
                fresh.open()
                assert not fresh.seek(target)
                assert fresh.wrapped_key() == target
            # Seeking past the maximum reports end-of-level ("\U0010ffff"
            # sorts after every type-name prefix).
            fresh = trie.cursor()
            fresh.open()
            assert fresh.seek(("\U0010ffff",))
            assert fresh.at_end()

    def test_open_seek_past_end(self):
        rows = [Row({"R.a": a, "R.b": 0, "R.c": 0}) for a in (1, 3, 5)]
        trie = build(rows)
        cursor = trie.cursor()
        assert not cursor.open()
        assert not cursor.seek(_sort_key(4))  # lands on 5
        assert cursor.key() == 5
        assert cursor.seek(_sort_key(6))  # past the last key: end
        assert cursor.at_end()

    def test_seek_never_moves_backwards(self):
        rows = [Row({"R.a": a, "R.b": 0, "R.c": 0}) for a in (1, 2, 3, 4)]
        trie = build(rows)
        cursor = trie.cursor()
        cursor.open()
        cursor.seek(_sort_key(3))
        assert cursor.key() == 3
        cursor.seek(_sort_key(1))  # smaller target: cursor stays put
        assert cursor.key() == 3

    def test_up_restores_parent_position(self):
        rows = [Row({"R.a": a, "R.b": b, "R.c": 0}) for a in (1, 2) for b in (1, 2)]
        trie = build(rows)
        cursor = trie.cursor()
        cursor.open()
        cursor.next()
        assert cursor.key() == 2
        cursor.open()
        assert cursor.key() == 1
        cursor.up()
        assert cursor.key() == 2  # parent frame untouched by the descent


class TestGenerationInvalidation:
    def test_insert_rebuilds_cached_trie(self):
        table = Table("R", ["R.a", "R.b", "R.c"])
        table.insert(Row({"R.a": 1, "R.b": 1, "R.c": 1}))
        first, built_first = trie_for(table, KEYS)
        assert built_first
        again, built_again = trie_for(table, KEYS)
        assert again is first and not built_again  # cache hit, same object
        table.insert(Row({"R.a": 2, "R.b": 2, "R.c": 2}))
        rebuilt, built_rebuilt = trie_for(table, KEYS)
        assert built_rebuilt and rebuilt is not first
        assert rebuilt.rows_indexed == 2

    def test_distinct_key_groups_cache_independently(self):
        table = Table("R", ["R.a", "R.b", "R.c"])
        table.insert(Row({"R.a": 1, "R.b": 2, "R.c": 3}))
        one, _ = trie_for(table, KEYS)
        other_keys = (("x", ("R.b",)), ("y", ("R.c",)))
        other, built = trie_for(table, other_keys)
        assert built and other is not one
        assert trie_for(table, KEYS)[0] is one  # first layout still cached


class TestRandomizedAgainstNaive:
    def test_trie_contents_match_hash_grouping(self):
        """The trie is just a sorted view of a hash group-by on key vectors."""
        rng = random.Random(37)
        for trial in range(80):
            rows = rows_of(14, rng, domain=4, null_probability=0.3)
            trie = build(rows)
            expected = {}
            for row in rows:
                if is_null(row["R.a"]) or is_null(row["R.b"]):
                    continue
                key = (_sort_key(row["R.a"]), _sort_key(row["R.b"]))
                expected.setdefault(key, []).append(row)
            got = {vec: leaf for vec, leaf in walk_keyvecs(trie)}
            assert got == expected
