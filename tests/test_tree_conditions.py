"""Tests for the Section-6.3 tree-level reorderability conditions.

The centerpiece is the machine check of the paper's conjecture: for
join/outerjoin implementing trees, the tree-level conditions (T1: padded
relations are never joined; T2: padded at most once) hold exactly when
graph(Q) is nice.
"""

import pytest

from repro.algebra import eq
from repro.core import (
    count_implementing_trees,
    implementing_trees,
    is_nice,
    jn,
    oj,
    roj,
    sample_implementing_tree,
)
from repro.core.tree_conditions import (
    padded_target,
    satisfies_tree_conditions,
    tree_violations,
)
from repro.datagen import chain, example2_graph, figure2_graph, random_graph, random_nice_graph
from repro.util.rng import make_rng

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")


@pytest.fixture
def reg():
    return chain(3).registry


class TestPaddedTarget:
    def test_left_outerjoin(self, reg):
        assert padded_target(oj("R1", "R2", P12), reg) == "R2"

    def test_right_outerjoin(self, reg):
        assert padded_target(roj("R1", "R2", P12), reg) == "R1"

    def test_nested(self, reg):
        node = oj(jn("R1", "R2", P12), "R3", P23)
        assert padded_target(node, reg) == "R3"


class TestIndividualConditions:
    def test_join_below_padding_detected(self, reg):
        # R1 → (R2 − R3): the padded relation R2 is "created by" a join.
        q = oj("R1", jn("R2", "R3", P23), P12)
        kinds = {v.kind for v in tree_violations(q, reg)}
        assert kinds == {"padded-relation-joined"}

    def test_join_above_padding_detected(self, reg):
        # (R1 → R2) − R3: R2 is "involved later as an operand of a join".
        q = jn(oj("R1", "R2", P12), "R3", P23)
        kinds = {v.kind for v in tree_violations(q, reg)}
        assert kinds == {"padded-relation-joined"}

    def test_double_padding_detected(self, reg):
        # ((R1 → R2) ← R3) with the outer predicate targeting R2 again.
        q = roj(oj("R1", "R2", P12), "R3", P23)
        violations_found = tree_violations(q, reg)
        assert any(v.kind == "double-padding" and v.relation == "R2" for v in violations_found)

    def test_nice_chain_clean(self, reg):
        assert satisfies_tree_conditions(oj(jn("R1", "R2", P12), "R3", P23), reg)

    def test_oj_chain_clean(self, reg):
        assert satisfies_tree_conditions(oj(oj("R1", "R2", P12), "R3", P23), reg)

    def test_pure_join_tree_clean(self, reg):
        assert satisfies_tree_conditions(jn(jn("R1", "R2", P12), "R3", P23), reg)

    def test_violation_str(self, reg):
        q = jn(oj("R1", "R2", P12), "R3", P23)
        text = str(tree_violations(q, reg)[0])
        assert "padded-relation-joined" in text and "R2" in text


class TestConjectureEquivalence:
    """Tree conditions <=> graph niceness, over the IT spaces of many graphs."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_graphs(self, seed):
        scenario = random_graph(5, seed=seed, oj_probability=0.5, extra_edges=1)
        graph = scenario.graph
        reg = scenario.registry
        nice = is_nice(graph)
        if count_implementing_trees(graph) == 0:
            # Outerjoin cycles (and other unreachable shapes) have no ITs;
            # such graphs are never nice, consistent with the vacuous case.
            assert not nice
            return
        rng = make_rng(seed + 1)
        for _ in range(6):
            tree = sample_implementing_tree(graph, rng)
            assert satisfies_tree_conditions(tree, reg) == nice, (
                f"nice={nice} but tree {tree.to_infix()} verdict differs: "
                f"{[str(v) for v in tree_violations(tree, reg)]}"
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_nice_graph_trees_always_clean(self, seed):
        scenario = random_nice_graph(2, 3, seed=seed)
        rng = make_rng(seed)
        for _ in range(5):
            tree = sample_implementing_tree(scenario.graph, rng)
            assert satisfies_tree_conditions(tree, scenario.registry)

    def test_every_tree_of_example2_graph_violates(self):
        scenario = example2_graph()
        for tree in implementing_trees(scenario.graph):
            assert not satisfies_tree_conditions(tree, scenario.registry), tree.to_infix()

    def test_every_tree_of_figure2_graph_clean(self):
        from itertools import islice

        scenario = figure2_graph()
        for tree in islice(implementing_trees(scenario.graph), 200):
            assert satisfies_tree_conditions(tree, scenario.registry), tree.to_infix()

    def test_verdict_is_tree_invariant(self):
        """All ITs of one graph get the same verdict (it is a graph
        property in disguise — the conjecture's content)."""
        for seed in range(8):
            scenario = random_graph(4, seed=seed + 100, oj_probability=0.6)
            if count_implementing_trees(scenario.graph) == 0:
                continue
            verdicts = {
                satisfies_tree_conditions(t, scenario.registry)
                for t in implementing_trees(scenario.graph)
            }
            assert len(verdicts) == 1, scenario.graph.describe()
