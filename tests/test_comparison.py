"""Unit tests for padded relation comparison."""

from repro.algebra import NULL, Relation, bag_equal, explain_difference, set_equal


def rel(attrs, *dicts):
    return Relation.from_dicts(attrs, dicts)


class TestBagEqual:
    def test_identical(self):
        assert bag_equal(rel(["a"], {"a": 1}), rel(["a"], {"a": 1}))

    def test_padding_convention(self):
        """A row (1) on scheme {a} equals (1, NULL) on scheme {a, b}."""
        narrow = rel(["a"], {"a": 1})
        wide = rel(["a", "b"], {"a": 1, "b": NULL})
        assert bag_equal(narrow, wide)

    def test_multiplicities_matter(self):
        assert not bag_equal(rel(["a"], {"a": 1}), rel(["a"], {"a": 1}, {"a": 1}))

    def test_set_equal_ignores_multiplicity(self):
        assert set_equal(rel(["a"], {"a": 1}), rel(["a"], {"a": 1}, {"a": 1}))
        assert not set_equal(rel(["a"], {"a": 1}), rel(["a"], {"a": 2}))


class TestExplainDifference:
    def test_equal_reports_equal(self):
        diff = explain_difference(rel(["a"], {"a": 1}), rel(["a"], {"a": 1}))
        assert diff.equal
        assert "bag-equal" in str(diff)

    def test_reports_both_directions(self):
        diff = explain_difference(
            rel(["a"], {"a": 1}, {"a": 2}), rel(["a"], {"a": 2}, {"a": 3})
        )
        assert not diff.equal
        assert len(diff.only_left) == 1
        assert len(diff.only_right) == 1
        assert "left has" in str(diff) and "right has" in str(diff)

    def test_reports_multiplicity_excess(self):
        diff = explain_difference(rel(["a"], {"a": 1}, {"a": 1}), rel(["a"], {"a": 1}))
        assert diff.only_left[0][1] == 1
