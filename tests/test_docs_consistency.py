"""Documentation honesty checks.

The README's code snippet must actually run and print what it claims; the
documented file layout must exist.  Docs that execute do not rot.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


class TestReadmeSnippet:
    def test_sixty_seconds_snippet_runs(self):
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its python snippet"
        snippet = blocks[0]
        # The snippet prints two numbers; capture and check them.
        printed: list[str] = []
        namespace = {"print": lambda *a: printed.append(" ".join(map(str, a)))}
        exec(snippet, namespace)  # noqa: S102 - executing our own docs
        assert printed == ["200001", "3"]

    def test_install_command_documented(self):
        readme = (ROOT / "README.md").read_text()
        assert "--no-build-isolation" in readme


class TestLayoutMatchesDocs:
    def test_documented_packages_exist(self):
        for pkg in (
            "algebra",
            "core",
            "engine",
            "optimizer",
            "backends",
            "language",
            "datagen",
            "util",
            "tools",
            "observability",
        ):
            assert (ROOT / "src" / "repro" / pkg / "__init__.py").exists(), pkg

    def test_documented_top_level_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml"):
            assert (ROOT / name).exists(), name
        assert (ROOT / "docs" / "THEORY.md").exists()

    def test_design_lists_every_bench_file(self):
        design = (ROOT / "DESIGN.md").read_text() + (ROOT / "EXPERIMENTS.md").read_text()
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in design or bench.stem in design, bench.name

    def test_every_public_module_has_a_docstring(self):
        import ast

        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"
