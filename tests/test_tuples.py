"""Unit tests for tuples: concatenation, padding, projection (Section 1.2)."""

import pytest

from repro.algebra import NULL, Row, Schema, concat_rows, null_row
from repro.util.errors import SchemaError


class TestRowBasics:
    def test_mapping_interface(self):
        r = Row({"a": 1, "b": 2})
        assert r["a"] == 1
        assert set(r) == {"a", "b"}
        assert len(r) == 2

    def test_scheme(self):
        assert Row({"a": 1}).scheme == frozenset({"a"})

    def test_equality_and_hash(self):
        assert Row({"a": 1, "b": 2}) == Row({"b": 2, "a": 1})
        assert hash(Row({"a": 1})) == hash(Row({"a": 1}))

    def test_rows_with_nulls_hash(self):
        assert Row({"a": NULL}) == Row({"a": NULL})
        assert Row({"a": NULL}) != Row({"a": 0})

    def test_rejects_bad_attribute_names(self):
        with pytest.raises(SchemaError):
            Row({"": 1})


class TestConcat:
    def test_concatenation(self):
        t = Row({"a": 1}).concat(Row({"b": 2}))
        assert t == Row({"a": 1, "b": 2})

    def test_function_form(self):
        assert concat_rows(Row({"a": 1}), Row({"b": 2})) == Row({"a": 1, "b": 2})

    def test_requires_disjoint_schemes(self):
        with pytest.raises(SchemaError):
            Row({"a": 1}).concat(Row({"a": 2}))


class TestPadding:
    def test_pad_adds_nulls(self):
        padded = Row({"a": 1}).pad_to(Schema(["a", "b", "c"]))
        assert padded["b"] is NULL and padded["c"] is NULL

    def test_pad_to_same_scheme_is_identity(self):
        r = Row({"a": 1})
        assert r.pad_to(["a"]) is r

    def test_pad_cannot_drop_attributes(self):
        with pytest.raises(SchemaError):
            Row({"a": 1, "b": 2}).pad_to(["a"])

    def test_null_row(self):
        nr = null_row(["a", "b"])
        assert nr.is_all_null()
        assert nr.scheme == frozenset({"a", "b"})


class TestProjectAndPredicates:
    def test_project(self):
        assert Row({"a": 1, "b": 2}).project(["a"]) == Row({"a": 1})

    def test_project_missing_attribute(self):
        with pytest.raises(SchemaError):
            Row({"a": 1}).project(["z"])

    def test_is_all_null_subset(self):
        r = Row({"a": NULL, "b": 2})
        assert r.is_all_null(["a"])
        assert not r.is_all_null(["b"])
        assert not r.is_all_null()

    def test_with_value(self):
        assert Row({"a": 1}).with_value("a", 9) == Row({"a": 9})
        with pytest.raises(SchemaError):
            Row({"a": 1}).with_value("b", 9)
