"""Tests for engine storage, statistics, and hash indexes."""

import pytest

from repro.algebra import NULL, Database, Relation, Row
from repro.engine import Storage, Table
from repro.engine.indexes import HashIndex
from repro.util.errors import PlanningError, SchemaError


class TestTable:
    def test_insert_and_len(self):
        t = Table("T", ["T.a"], [Row({"T.a": 1}), Row({"T.a": 2})])
        assert len(t) == 2

    def test_insert_wrong_scheme(self):
        t = Table("T", ["T.a"])
        with pytest.raises(SchemaError):
            t.insert(Row({"T.b": 1}))

    def test_stats(self):
        t = Table(
            "T",
            ["T.a"],
            [Row({"T.a": 1}), Row({"T.a": 1}), Row({"T.a": 3}), Row({"T.a": NULL})],
        )
        s = t.stats()["T.a"]
        assert s.distinct == 2
        assert s.nulls == 1
        assert s.minimum == 1 and s.maximum == 3

    def test_stats_cache_invalidated_on_insert(self):
        t = Table("T", ["T.a"], [Row({"T.a": 1})])
        assert t.stats()["T.a"].distinct == 1
        t.insert(Row({"T.a": 2}))
        assert t.stats()["T.a"].distinct == 2

    def test_to_relation(self):
        t = Table("T", ["T.a"], [Row({"T.a": 1}), Row({"T.a": 1})])
        rel = t.to_relation()
        assert len(rel) == 2


class TestHashIndex:
    def test_lookup(self):
        idx = HashIndex("T(a)", "a")
        idx.insert(Row({"a": 1, "b": "x"}))
        idx.insert(Row({"a": 1, "b": "y"}))
        idx.insert(Row({"a": 2, "b": "z"}))
        assert len(idx.lookup(1)) == 2
        assert idx.lookup(9) == []

    def test_null_keys_excluded(self):
        idx = HashIndex("T(a)", "a")
        idx.insert(Row({"a": NULL}))
        assert len(idx) == 0
        assert idx.lookup(NULL) == []

    def test_index_maintained_on_insert(self):
        t = Table("T", ["T.a"], [Row({"T.a": 1})])
        idx = t.create_index("T.a")
        t.insert(Row({"T.a": 1}))
        assert len(idx.lookup(1)) == 2

    def test_create_index_idempotent(self):
        t = Table("T", ["T.a"], [Row({"T.a": 1})])
        assert t.create_index("T.a") is t.create_index("T.a")
        assert t.indexed_attributes == frozenset({"T.a"})

    def test_create_index_unknown_attr(self):
        t = Table("T", ["T.a"])
        with pytest.raises(SchemaError):
            t.create_index("T.z")


class TestStorage:
    def test_round_trip_with_database(self):
        db = Database({"R": Relation.from_dicts(["R.a"], [{"R.a": 1}, {"R.a": 1}])})
        storage = Storage.from_database(db)
        back = storage.to_database()
        assert back["R"] == db["R"]

    def test_disjoint_schemes_enforced(self):
        storage = Storage()
        storage.create_table("R", ["k"], [])
        with pytest.raises(SchemaError):
            storage.create_table("S", ["k"], [])

    def test_unknown_table(self):
        with pytest.raises(PlanningError):
            Storage()["missing"]

    def test_registry(self):
        storage = Storage()
        storage.create_table("R", ["R.a"], [{"R.a": 1}])
        assert storage.registry.owner("R.a") == "R"
