"""Smoke tests for the servicebench artifact and the plancache CLI mode."""

from __future__ import annotations

import io
import json

import pytest

from repro.conformance import check_plan_cache
from repro.tools import servicebench
from repro.tools.conformance import main as conformance_main


@pytest.fixture(scope="module")
def smoke_report():
    # Tiny sizes: this is a wiring test, not a measurement.
    return servicebench.run(
        None, smoke=True, stress=True, seed=11, out=io.StringIO()
    )


def test_report_has_all_sections(smoke_report):
    assert smoke_report["meta"]["artifact"] == "BENCH_PR4"
    assert smoke_report["meta"]["smoke"] is True
    assert {"cold_ms_per_query", "warm_ms_per_query", "speedup"} <= set(
        smoke_report["plan_cache"]
    )
    rows = smoke_report["concurrency"]
    assert {(r["workers"], r["mode"]) for r in rows} == {
        (w, m) for w in servicebench.WORKER_COUNTS for m in ("cold", "cached")
    }
    assert smoke_report["conformance"]["ok"]
    assert smoke_report["stress"]["all_resolved"]


def test_report_is_json_serializable(smoke_report):
    parsed = json.loads(json.dumps(smoke_report))
    assert parsed["conformance"]["cases"] == smoke_report["conformance"]["cases"]


def test_verify_flags_gaps_and_passes_good_reports(smoke_report):
    # The structural checks must pass; the speedup gate is timing-dependent
    # so it is exercised with a threshold of 0 here (CI runs the real one).
    assert servicebench.verify(smoke_report, min_speedup=0.0) == []
    broken = {
        "plan_cache": {"speedup": 1.0},
        "concurrency": [],
        "conformance": {"ok": False, "mismatches": ["x"]},
    }
    problems = servicebench.verify(broken, min_speedup=3.0)
    assert any("speedup" in p for p in problems)
    assert any("missing concurrency" in p for p in problems)
    assert any("conformance" in p for p in problems)


def test_check_plan_cache_direct():
    report = check_plan_cache(cases=15, seed=21)
    assert report.ok and report.cases == 15
    assert report.hits == report.cases
    assert "15 cases" in report.summary()


def test_conformance_cli_plancache_subcommand():
    out = io.StringIO()
    status = conformance_main(["plancache", "--cases", "10", "--seed", "4"], out=out)
    assert status == 0
    assert "plan-cache conformance: 10 cases" in out.getvalue()
