"""Seed determinism: the same seed must yield byte-identical artifacts.

The conformance harness, the fuzz campaign, and the benchmark suite all
lean on one promise — a seed fully determines every generated database and
query.  Reproducer JSONs are only replayable, and CI fuzz smoke is only
meaningful, if that promise holds down to the serialized byte level, so
these tests compare canonical JSON encodings across two independent runs.
"""

import json

from repro.conformance import case_dumps, generate_case
from repro.conformance.serialize import database_to_json, expression_to_json
from repro.datagen import random_database, random_query, random_scenario
from repro.util.rng import make_rng

SCHEMAS = {"A": ["A.x", "A.y"], "B": ["B.x"], "C": ["C.x", "C.z"]}


def test_random_database_bytes_identical_across_runs():
    for seed in range(10):
        first = json.dumps(database_to_json(random_database(SCHEMAS, seed=seed)))
        second = json.dumps(database_to_json(random_database(SCHEMAS, seed=seed)))
        assert first == second, f"seed {seed} produced divergent databases"


def test_distinct_seeds_actually_vary():
    encodings = {
        json.dumps(database_to_json(random_database(SCHEMAS, seed=s))) for s in range(20)
    }
    # Not a strict requirement of determinism, but if every seed collapsed
    # to one database the determinism tests above would be vacuous.
    assert len(encodings) > 10


def test_query_sequence_identical_across_runs():
    def sequence(seed: int):
        rng = make_rng(seed)
        out = []
        for _ in range(12):
            scenario = random_scenario(rng)
            expr = random_query(scenario, rng)
            out.append(json.dumps(expression_to_json(expr)))
        return out

    # Seeds chosen to stay realizable: random_query samples implementing
    # trees directly (no resample guard), and some "random"-family draws
    # have none.
    assert sequence(5) == sequence(5)
    assert sequence(5) != sequence(4)


def test_generated_cases_byte_identical_across_runs():
    for seed in (0, 1, 17, 4096):
        first = case_dumps(generate_case(seed))
        second = case_dumps(generate_case(seed))
        assert first == second, f"case seed {seed} not byte-stable"


def test_coverage_feedback_is_part_of_the_seed_contract():
    """Coverage-guided generation is deterministic too: replaying the same
    sequence of seeds with a fresh coverage counter reproduces every case."""
    from collections import Counter

    def campaign_bytes():
        coverage: Counter = Counter()
        return [case_dumps(generate_case(seed, coverage=coverage)) for seed in range(15)]

    assert campaign_bytes() == campaign_bytes()
