"""Theorem 1, executably: every implementing tree computes one relation.

:func:`check_plan_space` enumerates the full plan space of a query graph,
runs each tree plus every optimizer's chosen tree, and demands pairwise
bag-equality with the first tree — which is itself cross-checked through
the executor tiers including the external SQLite oracle.  These tests
sweep the paper's own graphs (Examples 1-2, Figures 1-2) and random
nice/cyclic topologies, and also verify the checker *rejects* a
non-equivalent tree (so a future Theorem-1 regression cannot pass).
"""

import pytest

from repro.conformance import check_plan_space
from repro.datagen import (
    chain,
    example2_graph,
    figure1_graph,
    figure2_graph,
    join_cycle,
    random_nice_graph,
    star,
)

PAPER_SCENARIOS = [
    pytest.param(lambda: chain(3, ["join", "out"], name="example1"), id="example1"),
    pytest.param(figure1_graph, id="figure1"),
    pytest.param(figure2_graph, id="figure2"),
]

SYNTHETIC_SCENARIOS = [
    pytest.param(lambda: chain(4, ["out", "out", "out"], name="oj-chain"), id="oj-chain"),
    pytest.param(lambda: star(4, oj_leaves=2), id="star"),
    pytest.param(lambda: join_cycle(4), id="cycle"),
    pytest.param(lambda: random_nice_graph(3, 2, seed=1), id="random-nice"),
]


@pytest.mark.parametrize("factory", PAPER_SCENARIOS + SYNTHETIC_SCENARIOS)
def test_full_plan_space_is_equivalent(factory):
    scenario = factory()
    report = check_plan_space(scenario, seed=0)
    assert report.nice
    assert report.ok, report.summary()
    assert not report.truncated
    assert report.trees_checked == report.trees_total >= 1
    # Every optimizer entry point was exercised and agreed.
    assert set(report.optimizers_checked) == {
        "dp",
        "greedy",
        "barrier",
        "rewriter",
        "fixed-order",
    }
    # The reference tree really went through the external oracle.
    assert "sqlite" in report.cross_check_result.results


def test_example2_downgrades_to_per_tree_conformance():
    """Example 2's graph is not nice — its implementing trees genuinely
    disagree with each other (that is the paper's point).  The checker
    must recognize this and check each tree across the executor tiers
    instead of asserting cross-tree equality."""
    report = check_plan_space(example2_graph(), seed=0)
    assert not report.nice
    assert report.ok, report.summary()
    assert report.trees_checked == report.trees_total >= 2
    assert not report.mismatches  # no cross-tree claims were made
    assert "not nice" in report.summary()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_plan_space_stable_across_databases(seed):
    """Equivalence holds on databases with nulls and duplicates alike."""
    from repro.datagen import random_database

    scenario = figure2_graph()
    db = random_database(
        scenario.schemas,
        seed=seed,
        max_rows=6,
        null_probability=0.3,
        duplicate_probability=0.3,
    )
    report = check_plan_space(scenario, db=db)
    assert report.ok, report.summary()


def test_truncation_is_explicit():
    scenario = join_cycle(4)
    report = check_plan_space(scenario, seed=0, max_trees=2)
    assert report.trees_checked == 2
    assert report.truncated
    assert report.trees_total > 2


def test_optimizers_can_be_skipped():
    report = check_plan_space(figure1_graph(), seed=0, include_optimizers=False)
    assert report.ok, report.summary()
    assert report.optimizers_checked == []


def test_checker_rejects_inequivalent_tree():
    """A tree *outside* the implementing set must be flagged — the checker
    cannot be trusted if it never fails.  We compare an outerjoin chain's
    reference against a wrong association applied by hand."""
    from repro.algebra import IsNull, Or, bag_equal, eq
    from repro.conformance.check import run_executor
    from repro.core.expressions import Rel, oj
    from repro.datagen import random_database

    schemas = {"R1": ["R1.a"], "R2": ["R2.a"], "R3": ["R3.a"]}
    p12 = eq("R1.a", "R2.a")
    # A non-strong inner predicate: satisfiable on R2's null padding, which
    # is exactly what breaks the (R1 → R2) → R3 ↔ R1 → (R2 → R3) shuffle.
    p23 = Or((eq("R2.a", "R3.a"), IsNull("R2.a")))

    good = oj(oj(Rel("R1"), Rel("R2"), p12), Rel("R3"), p23)
    bad = oj(Rel("R1"), oj(Rel("R2"), Rel("R3"), p23), p12)
    # The shapes may coincide on lucky databases; sweep seeds for a witness.
    for seed in range(40):
        db = random_database(schemas, seed=seed, null_probability=0.4, allow_empty=False)
        reference = run_executor("naive", good, db)
        candidate = run_executor("naive", bad, db)
        if not bag_equal(reference, candidate):
            break
    else:
        pytest.fail("could not construct a witness database; widen the sweep")
