"""Integration: the parallel executor inside QueryService and conformance.

Covers the worker-budget invariant (service threads + intra-query
workers never exceed the ledger ceiling), graceful degradation when the
ledger is exhausted, bag-equality of parallel service results, and the
``parallel`` conformance tier.
"""

from __future__ import annotations

import pytest

from repro.algebra import Comparison, Const, bag_equal, eq
from repro.conformance.check import EXECUTOR_TIERS, run_executor
from repro.conformance.fuzz import run_campaign
from repro.core import Restrict, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.engine.parallel.pool import WorkerLedger
from repro.service import QueryService

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")


def query(constant: int = 5):
    return Restrict(
        jn("R1", oj("R2", "R3", P23), P12), Comparison("R3.j", "=", Const(constant))
    )


@pytest.fixture
def storage():
    return example1_storage(400)


# -- the worker-budget invariant ---------------------------------------------


def test_ledger_invariant_service_plus_intra_within_ceiling(storage):
    ledger = WorkerLedger(ceiling=6)
    with QueryService(
        storage, workers=2, parallel=True, intra_workers=3, ledger=ledger
    ) as service:
        snap = service.snapshot()["parallel"]
        assert snap["enabled"]
        assert snap["service_grant"] == 2
        assert snap["intra_pool"]["workers"] == 3
        assert ledger.granted == 5
        assert ledger.granted <= ledger.ceiling
    assert ledger.granted == 0  # close() released every grant


def test_intra_pool_clamped_by_ledger(storage):
    ledger = WorkerLedger(ceiling=3)
    with QueryService(
        storage, workers=2, parallel=True, intra_workers=8, ledger=ledger
    ) as service:
        snap = service.snapshot()["parallel"]
        assert snap["service_grant"] == 2
        # Only one worker left under the ceiling for intra-query work.
        assert snap["intra_pool"]["workers"] == 1
        assert ledger.granted == 3


def test_intra_pool_starved_to_zero_degrades_inline(storage):
    ledger = WorkerLedger(ceiling=2)
    with QueryService(
        storage, workers=2, parallel=True, intra_workers=4, ledger=ledger
    ) as service:
        assert service.snapshot()["parallel"]["intra_pool"]["workers"] == 0
        # Queries still run; the pool maps inline.
        outcome = service.execute(query(), timeout_s=60)
        assert outcome.ok


def test_exhausted_ledger_rejects_new_service(storage):
    ledger = WorkerLedger(ceiling=2)
    with QueryService(storage, workers=2, ledger=ledger):
        with pytest.raises(ValueError):
            QueryService(storage, workers=1, ledger=ledger)


def test_shared_ledger_across_services(storage):
    ledger = WorkerLedger(ceiling=10)
    a = QueryService(storage, workers=4, parallel=True, intra_workers=4, ledger=ledger)
    try:
        assert ledger.granted == 8
        b = QueryService(storage, workers=2, parallel=True, intra_workers=4, ledger=ledger)
        try:
            # b's service threads take the last 2; its intra pool clamps to 0.
            assert b.snapshot()["parallel"]["service_grant"] == 2
            assert b.snapshot()["parallel"]["intra_pool"]["workers"] == 0
            assert ledger.granted == 10
        finally:
            b.close()
        assert ledger.granted == 8
    finally:
        a.close()
    assert ledger.granted == 0


# -- results under parallel execution ----------------------------------------


def test_parallel_service_results_bag_equal_serial(storage):
    queries = [query(c) for c in range(5)]
    expected = [execute(q, storage).relation for q in queries]
    with QueryService(storage, workers=3, parallel=True, intra_workers=2) as service:
        outcomes = [t.result(timeout=60) for t in service.submit_batch(queries)]
    assert [o.status for o in outcomes] == ["ok"] * len(queries)
    for outcome, reference in zip(outcomes, expected):
        assert bag_equal(outcome.require(), reference)


def test_serial_service_reports_parallel_disabled(storage):
    with QueryService(storage, workers=2, parallel=False) as service:
        snap = service.snapshot()["parallel"]
        assert not snap["enabled"]
        assert snap["intra_pool"] is None


def test_parallel_service_summary_mentions_parallel(storage):
    with QueryService(storage, workers=2, parallel=True, intra_workers=2) as service:
        assert "parallel" in service.summary()


# -- the conformance tier ----------------------------------------------------


def test_parallel_is_a_conformance_tier():
    assert "parallel" in EXECUTOR_TIERS


def test_parallel_tier_matches_naive_tier():
    from repro.core.expressions import Rel, oj
    from repro.datagen import random_database

    schemas = {"R1": ["R1.a"], "R2": ["R2.a", "R2.b"], "R3": ["R3.b"]}
    expr = oj(
        oj(Rel("R1"), Rel("R2"), eq("R1.a", "R2.a")),
        Rel("R3"),
        eq("R2.b", "R3.b"),
    )
    for seed in range(5):
        db = random_database(schemas, seed=seed, null_probability=0.3)
        reference = run_executor("naive", expr, db)
        got = run_executor("parallel", expr, db)
        assert bag_equal(got, reference), f"parallel tier diverged at seed {seed}"


def test_small_fuzz_campaign_includes_parallel_tier():
    report = run_campaign(cases=12, seed=412)
    assert report.ok
    assert report.cases == 12
