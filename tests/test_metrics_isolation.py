"""Metric scoping: counters must not leak between queries or tests.

The regression this guards: per-query counters routed through a
process-global sink accumulate across queries, so the second query's
report includes the first query's work.  Counters now live on the
:class:`~repro.engine.metrics.Metrics` instance of one execution and are
flushed into that execution's own root span; the only process-global
counter (``repro.tools.instrumentation.STATS``) is zeroed between tests
by the autouse fixture in ``tests/conftest.py``.
"""

from __future__ import annotations

from repro.algebra import eq
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine.executor import execute
from repro.observability import tracing
from repro.tools import instrumentation


def _example1_query():
    return oj(jn("R1", "R2", eq("R1.k", "R2.k")), "R3", eq("R2.j", "R3.j"))


def test_back_to_back_queries_report_independent_counts():
    storage = example1_storage(50)
    query = _example1_query()
    with tracing(enabled=True):
        first = execute(query, storage)
    with tracing(enabled=True):
        second = execute(query, storage)
    # Example 1's good order retrieves exactly 3 tuples — both times.
    # A leak would make the second query report 6.
    assert first.metrics.total_retrieved == 3
    assert second.metrics.total_retrieved == 3
    assert first.trace.counters["tuples_retrieved"] == 3
    assert second.trace.counters["tuples_retrieved"] == 3


def test_one_tracer_two_queries_separate_roots():
    storage = example1_storage(50)
    query = _example1_query()
    with tracing(enabled=True) as tracer:
        execute(query, storage)
        execute(query, storage)
    roots = [r for r in tracer.roots if r.name == "query.execute"]
    assert len(roots) == 2
    assert [r.counters["tuples_retrieved"] for r in roots] == [3, 3]


def test_differently_sized_queries_do_not_cross_pollinate():
    small = example1_storage(10)
    large = example1_storage(200)
    query = _example1_query()
    with tracing(enabled=True):
        a = execute(query, large)
    with tracing(enabled=True):
        b = execute(query, small)
    # Same plan shape, same accounting: 3 tuples regardless of N — and
    # b's trace must not have inherited a's operator spans.
    assert a.metrics.total_retrieved == b.metrics.total_retrieved == 3
    assert a.trace is not b.trace
    a_ops = a.trace.find_all("engine.op")
    b_ops = b.trace.find_all("engine.op")
    assert len(a_ops) == len(b_ops)
    assert all(x is not y for x, y in zip(a_ops, b_ops))


def test_global_stats_bumped_here_part1():
    """Deliberately dirty the process-global counter..."""
    storage = example1_storage(20)
    execute(_example1_query(), storage)
    instrumentation.bump("tuples_retrieved", 1000)
    assert instrumentation.STATS["tuples_retrieved"] >= 1000


def test_global_stats_clean_again_part2():
    """...and the very next test must observe it zeroed (autouse fixture)."""
    assert instrumentation.STATS["tuples_retrieved"] == 0
    assert instrumentation.snapshot() == {}
