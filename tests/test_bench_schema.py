"""The benchmark report schema: valid reports pass, tampered ones fail."""

import copy
import json
from pathlib import Path

import pytest

from repro.tools.benchschema import (
    SchemaValidationError,
    is_servicebench_report,
    is_trafficgen_report,
    load_schema,
    validate,
    validate_report,
    validate_servicebench_report,
    validate_trafficgen_report,
)
from repro.util.errors import ReproError

ROOT = Path(__file__).resolve().parents[1]


def minimal_report():
    return {
        "meta": {
            "generated_by": "benchmarks/run_all.py",
            "seed": 0,
            "smoke": True,
            "mode": "fast",
            "python": "3.11.7",
        },
        "scenarios": [
            {
                "scenario": "bench_example1.py",
                "mode": "fast",
                "ok": True,
                "returncode": 0,
                "wall_clock_s": 1.25,
                "tuples_retrieved": 42,
                "timings": {"test_example1": 0.5},
            }
        ],
        "comparisons": {
            "bench_example1.py": {
                "tests": {"test_example1": {"fast_s": 0.5, "naive_s": 1.0, "speedup": 2.0}},
                "wall_clock": {"fast_s": 1.25, "naive_s": 2.5},
                "tuples_retrieved": {"fast": 42, "naive": 42},
            }
        },
    }


def test_schema_file_is_checked_in_and_loadable():
    schema = load_schema(ROOT)
    assert schema["type"] == "object"
    assert set(schema["required"]) == {"meta", "scenarios", "comparisons"}


def test_minimal_report_validates():
    validate_report(minimal_report(), root=ROOT)


def test_null_speedup_is_allowed():
    report = minimal_report()
    report["comparisons"]["bench_example1.py"]["tests"]["test_example1"]["speedup"] = None
    validate_report(report, root=ROOT)


def test_checked_in_bench_report_validates():
    """Every checked-in artifact validates against its own schema.

    ``meta.artifact == "BENCH_PR4"`` marks a service-benchmark artifact
    (``docs/servicebench.schema.json``), ``"BENCH_PR9"`` an open-loop
    traffic artifact (``docs/trafficgen.schema.json``); everything else
    is a benchrunner report (``docs/bench_report.schema.json``).
    """
    candidates = sorted(ROOT.glob("BENCH_*.json"))
    assert candidates, "expected a checked-in BENCH_*.json report"
    kinds = set()
    for path in candidates:
        document = json.loads(path.read_text())
        if is_servicebench_report(document):
            validate_servicebench_report(document, root=ROOT)
            kinds.add("service")
        elif is_trafficgen_report(document):
            validate_trafficgen_report(document, root=ROOT)
            kinds.add("traffic")
        else:
            validate_report(document, root=ROOT)
            kinds.add("benchrunner")
    assert kinds == {"service", "traffic", "benchrunner"}


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda r: r.pop("comparisons"), "missing required key 'comparisons'"),
        (lambda r: r["meta"].pop("seed"), "missing required key 'seed'"),
        (lambda r: r["meta"].__setitem__("seed", "zero"), "$.meta.seed"),
        (lambda r: r["meta"].__setitem__("mode", "turbo"), "not in"),
        (lambda r: r["meta"].__setitem__("extra", 1), "unexpected key 'extra'"),
        (lambda r: r["scenarios"][0].__setitem__("ok", "yes"), "$.scenarios[0].ok"),
        (lambda r: r["scenarios"][0].__setitem__("wall_clock_s", None), "wall_clock_s"),
        (
            lambda r: r["scenarios"][0]["timings"].__setitem__("test_x", "fast"),
            "$.scenarios[0].timings.test_x",
        ),
        (
            lambda r: r["comparisons"]["bench_example1.py"].pop("wall_clock"),
            "missing required key 'wall_clock'",
        ),
        (
            lambda r: r["comparisons"]["bench_example1.py"]["tuples_retrieved"].__setitem__(
                "fast", 1.5
            ),
            "tuples_retrieved.fast",
        ),
    ],
)
def test_tampered_reports_are_rejected(mutate, fragment):
    report = copy.deepcopy(minimal_report())
    mutate(report)
    with pytest.raises(SchemaValidationError) as excinfo:
        validate_report(report, root=ROOT)
    assert fragment in str(excinfo.value)


def test_bool_is_not_an_integer():
    # JSON Schema draft-07: booleans never satisfy "integer"/"number".
    assert validate(True, {"type": "integer"})
    assert validate(True, {"type": "number"})
    assert not validate(True, {"type": "boolean"})


def test_unknown_schema_keyword_is_loud():
    with pytest.raises(ReproError, match="unsupported keyword"):
        validate({}, {"type": "object", "minProperties": 1})


def test_benchrunner_output_shape_matches_schema():
    # The runner's report literal and the schema must not drift apart:
    # build the same top-level shape main() builds and validate it.
    report = {
        "meta": {
            "generated_by": "benchmarks/run_all.py",
            "seed": 7,
            "smoke": False,
            "mode": "naive",
            "python": "3.11.7",
        },
        "scenarios": [],
        "comparisons": {},
    }
    validate_report(report, root=ROOT)
