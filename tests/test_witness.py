"""Tests for counterexample search and shrinking."""

import pytest

from repro.core.witness import (
    disagreeing_tree_pairs,
    find_witness,
    minimal_witness,
    shrink_witness,
)
from repro.datagen import chain, example2_graph, random_nice_graph, weaken_oj_edge


class TestFindWitness:
    def test_example2_witness_found(self):
        scenario = example2_graph()
        witness = find_witness(scenario.graph, scenario.registry, seed=1)
        assert witness is not None
        assert witness.still_disagrees()

    def test_nice_graph_has_no_witness(self):
        scenario = chain(3, ["join", "out"])
        witness = find_witness(scenario.graph, scenario.registry, attempts=60, seed=2)
        assert witness is None

    @pytest.mark.parametrize("seed", range(3))
    def test_random_nice_graphs_clean(self, seed):
        scenario = random_nice_graph(2, 2, seed=seed)
        assert find_witness(scenario.graph, scenario.registry, attempts=30, seed=seed) is None

    def test_weak_predicate_witness_found(self):
        scenario = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))
        witness = find_witness(scenario.graph, scenario.registry, seed=3)
        assert witness is not None


class TestShrinking:
    def test_example2_shrinks_to_paper_size(self):
        """The minimal Example-2 witness has one tuple per relation, or
        fewer — exactly the size the paper hand-crafted."""
        scenario = example2_graph()
        witness = minimal_witness(scenario.graph, scenario.registry, seed=4)
        assert witness is not None
        assert witness.still_disagrees()
        assert witness.total_tuples() <= 3
        # 1-minimality: removing any remaining tuple kills the disagreement.
        from repro.algebra.relation import Relation

        for name in witness.database:
            relation = witness.database[name]
            rows = list(relation)
            for index in range(len(rows)):
                smaller = witness.database.with_relation(
                    name, Relation(relation.schema, rows[:index] + rows[index + 1 :])
                )
                from repro.core.witness import Witness

                candidate = Witness(witness.first, witness.second, smaller)
                assert not candidate.still_disagrees()

    def test_shrink_preserves_disagreement(self):
        scenario = example2_graph()
        witness = find_witness(scenario.graph, scenario.registry, seed=5)
        assert witness is not None
        shrunk = shrink_witness(witness)
        assert shrunk.still_disagrees()
        assert shrunk.total_tuples() <= witness.total_tuples()

    def test_describe(self):
        scenario = example2_graph()
        witness = minimal_witness(scenario.graph, scenario.registry, seed=6)
        text = witness.describe()
        assert "trees:" in text and "database" in text


class TestDisagreeingPairs:
    def test_pairs_on_minimal_database(self):
        scenario = example2_graph()
        witness = minimal_witness(scenario.graph, scenario.registry, seed=7)
        pairs = disagreeing_tree_pairs(scenario.graph, scenario.registry, witness.database)
        assert pairs
        # The pair the witness recorded must be among them (in some order).
        keys = {(p[0], p[1]) for p in pairs} | {(p[1], p[0]) for p in pairs}
        assert (witness.first, witness.second) in keys
