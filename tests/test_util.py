"""Tests for the utility modules (rng, pretty, errors) and planner options."""

import pytest

from repro.algebra import eq
from repro.core import jn, oj, rel
from repro.util.errors import ParseError, ReproError, SchemaError
from repro.util.pretty import render_side_by_side, render_tree
from repro.util.rng import DEFAULT_SEED, make_rng, spawn


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().random() == make_rng(DEFAULT_SEED).random()

    def test_explicit_seed(self):
        assert make_rng(5).random() == make_rng(5).random()
        assert make_rng(5).random() != make_rng(6).random()

    def test_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_independent(self):
        rng = make_rng(2)
        child = spawn(rng)
        # The child stream differs from the parent's continuation.
        assert child.random() != rng.random()


class TestPretty:
    def test_render_tree(self):
        q = jn(oj("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a"))
        art = render_tree(q)
        assert "R1" in art and "→" in art and "└─" in art

    def test_render_tree_with_predicates(self):
        q = oj("R1", "R2", eq("R1.a", "R2.a"))
        assert "R1.a" in render_tree(q, show_predicates=True)

    def test_render_leaf(self):
        assert render_tree(rel("R1")) == "R1"

    def test_side_by_side(self):
        merged = render_side_by_side("a\nbb", "XX\nY\nZ")
        lines = merged.splitlines()
        assert len(lines) == 3
        assert "XX" in lines[0] and lines[0].startswith("a")


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SchemaError, ReproError)
        assert issubclass(ParseError, ReproError)

    def test_parse_error_location(self):
        err = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(err)
        assert err.line == 3 and err.column == 7

    def test_parse_error_without_location(self):
        assert str(ParseError("oops")) == "oops"


class TestPlannerMergeOption:
    def test_merge_planner_matches_hash_planner(self):
        from repro.algebra import bag_equal
        from repro.datagen import random_databases
        from repro.engine import Planner, Storage

        schemas = {"X": ["X.k", "X.v"], "Y": ["Y.k", "Y.w"]}
        query = oj("X", "Y", eq("X.k", "Y.k"))
        for db in random_databases(schemas, 8, seed=31):
            storage = Storage.from_database(db)
            hash_result = Planner(storage, equi_join="hash").plan(query).run()
            merge_result = Planner(storage, equi_join="merge").plan(query).run()
            assert bag_equal(hash_result, merge_result)

    def test_merge_planner_emits_merge_join(self):
        from repro.engine import MergeJoin, Planner, Storage

        storage = Storage()
        storage.create_table("X", ["X.k"], [{"X.k": 1}])
        storage.create_table("Y", ["Y.k"], [{"Y.k": 1}])
        plan = Planner(storage, equi_join="merge").plan(jn("X", "Y", eq("X.k", "Y.k")))
        assert isinstance(plan, MergeJoin)

    def test_unknown_algorithm_rejected(self):
        from repro.engine import Planner, Storage
        from repro.util.errors import PlanningError

        with pytest.raises(PlanningError):
            Planner(Storage(), equi_join="quantum")
