"""Tests for the command-line analyzer."""

import io

import pytest

from repro.tools.analyze import SCENARIOS, analyze_scenario, analyze_sql, main


class TestAnalyzeScenario:
    def test_freely_reorderable_scenario_returns_zero(self):
        out = io.StringIO()
        rc = analyze_scenario("example1", out=out)
        assert rc == 0
        text = out.getvalue()
        assert "FREELY REORDERABLE" in text
        assert "implementing trees: 8" in text

    def test_example2_returns_nonzero_with_violation(self):
        out = io.StringIO()
        rc = analyze_scenario("example2", out=out)
        assert rc == 1
        assert "oj-into-join" in out.getvalue()

    def test_weak_chain_reports_strongness_violation(self):
        out = io.StringIO()
        rc = analyze_scenario("weak-chain", out=out)
        assert rc == 1
        assert "VIOLATED" in out.getvalue()

    def test_unknown_scenario(self):
        out = io.StringIO()
        assert analyze_scenario("nope", out=out) == 2

    def test_all_scenarios_run(self):
        for name in SCENARIOS:
            rc = analyze_scenario(name, out=io.StringIO())
            assert rc in (0, 1)


class TestAnalyzeSql:
    def test_section5_block(self):
        out = io.StringIO()
        rc = analyze_sql("Select All From DEPARTMENT-->Manager", out=out)
        assert rc == 0
        text = out.getvalue()
        assert "FREELY REORDERABLE" in text
        assert "optimized tree" in text

    def test_bad_sql_raises(self):
        from repro.util.errors import ParseError

        with pytest.raises(ParseError):
            analyze_sql("From nothing", out=io.StringIO())


class TestMain:
    def test_main_scenario(self, capsys):
        rc = main(["--scenario", "figure2"])
        assert rc == 0
        assert "FREELY REORDERABLE" in capsys.readouterr().out

    def test_main_requires_a_mode(self):
        with pytest.raises(SystemExit):
            main([])
