"""Semantic validation of the strongness analyzer.

``Predicate.is_strong`` is decided by abstract evaluation; these tests
compare it against the *definition* — brute-force enumeration of every
tuple over a small domain (nulls included): p is strong w.r.t. S iff no
tuple that is null on all of S evaluates to True.

Soundness (analysis says strong ⟹ semantically strong) must hold for
every predicate; completeness holds for the repetition-free predicates
the analyzer is documented to be exact on, and the one documented source
of conservatism (correlated repeated attributes) is pinned by a test.
"""

from itertools import product

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra import (
    NULL,
    And,
    Comparison,
    Const,
    IsNull,
    Not,
    Or,
    Row,
)

ATTRS = ("a", "b", "c")
# The domain must contain values strictly below and above every constant
# the generator emits (0 and 1), or the oracle under-approximates
# satisfiability (e.g. "NOT (a >= 0)" would look unsatisfiable).
DOMAIN = (NULL, -1, 0, 1, 2)


def semantically_strong(predicate, null_attrs, attrs=ATTRS, domain=DOMAIN) -> bool:
    """The Section-2.1 definition, by exhaustive enumeration."""
    free = [x for x in attrs if x not in null_attrs]
    for values in product(domain, repeat=len(free)):
        assignment = dict(zip(free, values))
        assignment.update({x: NULL for x in null_attrs})
        if predicate.evaluate(Row(assignment)) is True:
            return False
    return True


# -- a random predicate generator ---------------------------------------------

comparisons = st.builds(
    Comparison,
    st.sampled_from(ATTRS),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.one_of(st.sampled_from(ATTRS), st.builds(Const, st.integers(0, 1))),
)
atoms = st.one_of(comparisons, st.builds(IsNull, st.sampled_from(ATTRS)))


def predicates(depth=2):
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.builds(lambda a, b: And((a, b)), inner, inner),
            st.builds(lambda a, b: Or((a, b)), inner, inner),
            st.builds(Not, inner),
        ),
        max_leaves=4,
    )


class TestSoundness:
    @given(pred=predicates(), probe=st.sets(st.sampled_from(ATTRS), min_size=1))
    @settings(max_examples=200, deadline=None)
    def test_analysis_strong_implies_semantically_strong(self, pred, probe):
        if pred.is_strong(probe):
            assert semantically_strong(pred, frozenset(probe)), (
                f"{pred!r} claimed strong w.r.t. {sorted(probe)} but a witness exists"
            )

    @given(pred=predicates(), probe=st.sets(st.sampled_from(ATTRS), min_size=1))
    @settings(max_examples=200, deadline=None)
    def test_comparisons_without_repetition_are_exact(self, pred, probe):
        # For predicates where each attribute occurs at most once the
        # independence assumption is vacuous and the analysis is exact.
        seen: list[str] = []
        for attr in _attr_occurrences(pred):
            seen.append(attr)
        if len(seen) != len(set(seen)):
            return
        assert pred.is_strong(probe) == semantically_strong(pred, frozenset(probe))


def _attr_occurrences(pred):
    from repro.algebra.predicates import AttrRef, Comparison as Cmp, IsNull as IsN

    if isinstance(pred, Cmp):
        for term in (pred.left, pred.right):
            if isinstance(term, AttrRef):
                yield term.name
    elif isinstance(pred, IsN):
        if isinstance(pred.term, AttrRef):
            yield pred.term.name
    elif isinstance(pred, Not):
        yield from _attr_occurrences(pred.child)
    elif isinstance(pred, (And, Or)):
        for child in pred.children:
            yield from _attr_occurrences(child)


class TestDocumentedConservatism:
    def test_correlated_repetition_may_be_conservative(self):
        """(a = b OR a IS NULL) AND a = 1 — can this be true with b null?
        Semantically no comparison survives b=NULL... let's pin one known
        conservative case: (a < b OR a >= b) is a tautology on non-null
        pairs, so NOT strong w.r.t. the empty probe, and the analysis must
        also refuse to call it unsatisfiable."""
        taut = Or((Comparison("a", "<", "b"), Comparison("a", ">=", "b")))
        assert not taut.is_strong([])  # analysis: satisfiable (correct)

    def test_conservative_direction_only(self):
        """A contrived correlated predicate where the analysis is allowed
        to say 'not strong' even though no witness exists — but never the
        reverse.  (a = 1 AND a = 0) is unsatisfiable; the analysis treats
        the two occurrences of `a` independently so it reports 'could be
        true', i.e. not strong: the safe direction."""
        contradiction = And((Comparison("a", "=", Const(1)), Comparison("a", "=", Const(0))))
        assert semantically_strong(contradiction, frozenset({"b"}))
        # The analysis may (and does) decline to certify: that is sound.
        assert contradiction.is_strong(["a"])  # null 'a' kills both conjuncts
        assert not contradiction.is_strong(["b"])  # conservative, documented


class TestStrongnessEdgeCases:
    def test_null_constant_comparison(self):
        pred = Comparison("a", "=", Const(NULL))
        # = NULL is never true: strong w.r.t. anything.
        assert pred.is_strong(["a"])
        assert pred.is_strong(["b"])
        assert semantically_strong(pred, frozenset({"b"}))

    def test_nested_not_not(self):
        pred = Not(Not(Comparison("a", "=", "b")))
        assert pred.is_strong(["a"])
        assert semantically_strong(pred, frozenset({"a"}))

    def test_or_of_isnulls(self):
        pred = Or((IsNull("a"), IsNull("b")))
        assert not pred.is_strong(["a"])
        assert not semantically_strong(pred, frozenset({"a"}))
