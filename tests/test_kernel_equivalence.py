"""Property tests: every hash fast-path operator is bag-equal to its
naive counterpart.

The hash kernels (:mod:`repro.algebra.kernels`) are only an execution
strategy — the naive nested-loop operators define the semantics (3VL
predicate evaluation, bag multiplicities, null padding).  These tests
randomize relations (duplicates, nulls), key/residual predicate mixes,
and degenerate cases (all-null key columns, pure non-equi predicates that
must fall back to the nested loop) and require exact bag equality.
"""

from __future__ import annotations

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra import (
    NULL,
    Relation,
    Row,
    antijoin,
    bag_equal,
    conjunction,
    decompose_join_predicate,
    eq,
    full_outerjoin,
    gt,
    join,
    lt,
    naive_antijoin,
    naive_full_outerjoin,
    naive_join,
    naive_outerjoin,
    naive_semijoin,
    outerjoin,
    semijoin,
)
from repro.algebra import kernels
from repro.util.fastpath import kernel_mode


@pytest.fixture(scope="module", autouse=True)
def force_hash_path():
    """Drop the small-input gate so tiny randomized relations still
    exercise the hash kernels instead of falling back."""
    old = kernels._SMALL_INPUT_LIMIT
    kernels._SMALL_INPUT_LIMIT = 0
    yield
    kernels._SMALL_INPUT_LIMIT = old


L_ATTRS = ("L.a", "L.b")
R_ATTRS = ("R.a", "R.b")

values = st.one_of(st.integers(min_value=0, max_value=3), st.just(NULL))


def relation_strategy(attrs, max_rows=5):
    row = st.fixed_dictionaries({a: values for a in attrs})
    return st.lists(row, min_size=0, max_size=max_rows).map(
        lambda dicts: Relation(list(attrs), [Row(d) for d in dicts])
    )


lefts = relation_strategy(L_ATTRS)
rights = relation_strategy(R_ATTRS)

#: Conjunct pool mixing hashable equalities with non-equi residuals.
CONJUNCTS = [
    eq("L.a", "R.a"),
    eq("L.b", "R.b"),
    lt("L.a", "R.b"),
    gt("L.b", "R.a"),
    eq("L.a", 1),
]

predicates = st.lists(
    st.sampled_from(CONJUNCTS), min_size=1, max_size=3, unique_by=id
).map(conjunction)

PAIRS = [
    (join, naive_join),
    (outerjoin, naive_outerjoin),
    (full_outerjoin, naive_full_outerjoin),
    (semijoin, naive_semijoin),
    (antijoin, naive_antijoin),
]


@pytest.mark.parametrize("fast_op,naive_op", PAIRS, ids=lambda f: f.__name__)
class TestKernelEquivalence:
    @given(left=lefts, right=rights, predicate=predicates)
    @settings(max_examples=120, deadline=None)
    def test_random_mix(self, fast_op, naive_op, left, right, predicate):
        with kernel_mode(True):
            fast = fast_op(left, right, predicate)
        assert bag_equal(fast, naive_op(left, right, predicate))

    @given(left=lefts, right=rights)
    @settings(max_examples=60, deadline=None)
    def test_all_null_key_column(self, fast_op, naive_op, left, right):
        """Null keys never match: the hash table must not bucket NULLs."""
        from collections import Counter

        nulled_counts: Counter = Counter()
        for r, n in right.counts().items():
            nulled_counts[Row({"R.a": NULL, "R.b": r["R.b"]})] += n
        nulled = Relation.from_counts(list(R_ATTRS), nulled_counts)
        predicate = eq("L.a", "R.a")
        with kernel_mode(True):
            fast = fast_op(left, nulled, predicate)
        assert bag_equal(fast, naive_op(left, nulled, predicate))

    @given(left=lefts, right=rights)
    @settings(max_examples=60, deadline=None)
    def test_pure_non_equi_falls_back(self, fast_op, naive_op, left, right):
        """No equality conjunct -> kernels decline, nested loop decides."""
        predicate = conjunction([lt("L.a", "R.b"), gt("L.b", "R.a")])
        keys_l, keys_r, _residual = decompose_join_predicate(
            predicate, frozenset(L_ATTRS), frozenset(R_ATTRS)
        )
        assert not keys_l and not keys_r
        with kernel_mode(True):
            fast = fast_op(left, right, predicate)
        assert bag_equal(fast, naive_op(left, right, predicate))


class TestDecomposition:
    def test_splits_equalities_from_residual(self):
        predicate = conjunction([eq("L.a", "R.a"), lt("L.b", "R.b")])
        keys_l, keys_r, residual = decompose_join_predicate(
            predicate, frozenset(L_ATTRS), frozenset(R_ATTRS)
        )
        assert keys_l == ("L.a",) and keys_r == ("R.a",)
        assert [type(c).__name__ for c in residual] == ["Comparison"]

    def test_orientation_is_normalized(self):
        """R.a = L.a decomposes the same way as L.a = R.a."""
        for predicate in (eq("R.a", "L.a"), eq("L.a", "R.a")):
            keys_l, keys_r, residual = decompose_join_predicate(
                predicate, frozenset(L_ATTRS), frozenset(R_ATTRS)
            )
            assert keys_l == ("L.a",) and keys_r == ("R.a",) and not residual

    def test_constant_comparison_is_residual(self):
        keys_l, keys_r, residual = decompose_join_predicate(
            eq("L.a", 1), frozenset(L_ATTRS), frozenset(R_ATTRS)
        )
        assert not keys_l and not keys_r and len(residual) == 1
