"""Engine-vs-algebra differential tests and the Example-1 accounting.

The algebra layer transcribes the paper's operator definitions; the engine
must agree with it on every plan shape it produces, over randomized
databases.  Example 1's retrieval counts are asserted exactly.
"""

import pytest

from repro.algebra import bag_equal, eq, gt
from repro.core import aj, jn, oj, roj, sj
from repro.datagen import example1_storage, random_databases
from repro.engine import Storage, execute, verify_against_algebra


class TestDifferentialAgainstAlgebra:
    QUERIES = [
        lambda: jn("X", "Y", eq("X.a", "Y.a")),
        lambda: oj("X", "Y", eq("X.a", "Y.a")),
        lambda: roj("X", "Y", eq("X.a", "Y.a")),
        lambda: aj("X", "Y", eq("X.a", "Y.a")),
        lambda: sj("X", "Y", eq("X.a", "Y.a")),
        lambda: jn("X", "Y", gt("X.a", "Y.a")),
        lambda: oj("X", "Y", gt("X.a", "Y.a")),
        lambda: jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.b", "Z.b")),
        lambda: oj(jn("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.b", "Z.b")),
        lambda: oj(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.b", "Z.b")),
        lambda: roj("X", oj("Y", "Z", eq("Y.b", "Z.b")), eq("X.a", "Y.a")),
    ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_engine_matches_algebra(self, query_index):
        schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
        query = self.QUERIES[query_index]()
        for db in random_databases(schemas, 8, seed=query_index * 7 + 1):
            storage = Storage.from_database(db)
            assert verify_against_algebra(query, storage), query.to_infix()

    def test_with_indexes_same_results(self):
        schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"]}
        query = oj("X", "Y", eq("X.a", "Y.a"))
        for db in random_databases(schemas, 6, seed=99):
            plain = Storage.from_database(db)
            indexed = Storage.from_database(db)
            indexed["Y"].create_index("Y.a")
            r1 = execute(query, plain).relation
            r2 = execute(query, indexed).relation
            assert bag_equal(r1, r2)


class TestExample1Accounting:
    """The paper's exact numbers, scaled: 2N+1 versus 3."""

    @pytest.mark.parametrize("n", [10, 100, 1000])
    def test_retrieval_counts(self, n):
        storage = example1_storage(n)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        slow = jn("R1", oj("R2", "R3", p23), p12)
        fast = oj(jn("R1", "R2", p12), "R3", p23)
        slow_result = execute(slow, storage)
        fast_result = execute(fast, storage)
        assert slow_result.tuples_retrieved == 2 * n + 1
        assert fast_result.tuples_retrieved == 3
        assert bag_equal(slow_result.relation, fast_result.relation)

    def test_equivalence_is_theorem1(self):
        storage = example1_storage(50)
        from repro.core import graph_of, theorem1_applies

        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        slow = jn("R1", oj("R2", "R3", p23), p12)
        graph = graph_of(slow, storage.registry)
        assert theorem1_applies(graph, storage.registry).freely_reorderable

    def test_without_indexes_both_plans_scan(self):
        storage = example1_storage(100, with_indexes=False)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        fast = oj(jn("R1", "R2", p12), "R3", p23)
        result = execute(fast, storage)
        # Hash joins scan all inputs: 1 + 100 + 100.
        assert result.tuples_retrieved == 201

    def test_metrics_summary_readable(self):
        storage = example1_storage(10)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        result = execute(oj(jn("R1", "R2", p12), "R3", p23), storage)
        text = result.metrics.summary()
        assert "tuples retrieved: 3" in text
        assert str(result)  # ExecutionResult renders
