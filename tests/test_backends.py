"""Pluggable execution backends: registry, hints, SQLite, conformance tier.

The backend layer's contract, bottom up: the registry knows its builtin
names and declines unknown/unavailable ones loudly; the hint grammar
round-trips — parsing the emitted SQL's paren nesting recovers exactly
the physical tree's join shape (the property that certifies the hint
really pins the order); hinted and native SQLite execution are bag-equal
to the algebra engine; data sync is generation-keyed and statements are
reused across repeats; join-key indexes appear in ``sqlite_master``; the
``backend:sqlite`` conformance tier cross-checks clean and declines
leaf-only cases; the oracle recycles pooled connections; and with
``REPRO_BACKEND=local`` (the default route, set explicitly) the service
is byte-identical to a run that never heard of backends.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.algebra import bag_equal, eq
from repro.algebra.predicates import TruePredicate
from repro.algebra.schema import SchemaRegistry
from repro.backends import (
    BackendUnavailableError,
    HintError,
    available_backends,
    create_backend,
    default_backend_name,
    hinted_sql,
    join_shape,
    parse_join_shape,
    registered_backends,
)
from repro.backends.duckdb_backend import duckdb_available
from repro.backends.sqlite_backend import acquire_pooled, release_pooled
from repro.conformance.check import cross_check
from repro.conformance.sqlite_oracle import SQLiteOracle
from repro.core import Rel, Restrict, jn, oj, roj
from repro.datagen import example1_storage, random_database
from repro.engine.storage import Storage
from repro.util.errors import PlanningError

ROOT = Path(__file__).resolve().parents[1]


# -- registry ----------------------------------------------------------------


def test_builtin_backends_are_registered():
    names = registered_backends()
    assert "local" in names and "sqlite" in names and "duckdb" in names


def test_available_excludes_absent_duckdb():
    names = available_backends()
    assert "local" in names and "sqlite" in names
    assert ("duckdb" in names) == duckdb_available()


def test_create_unknown_backend_raises():
    with pytest.raises(PlanningError):
        create_backend("no-such-engine")


@pytest.mark.skipif(duckdb_available(), reason="duckdb wheel is installed")
def test_absent_duckdb_is_unavailable_not_broken():
    with pytest.raises(BackendUnavailableError):
        create_backend("duckdb")


def test_default_backend_name_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert default_backend_name() == "local"
    monkeypatch.setenv("REPRO_BACKEND", "sqlite")
    assert default_backend_name() == "sqlite"


# -- hint grammar round trip -------------------------------------------------


def _registry(names):
    registry = SchemaRegistry()
    for name in names:
        registry.register(name, [f"{name}.x", f"{name}.y"])
    return registry


def _random_tree(rng, names):
    """A random physical tree: Join/LOJ/ROJ internals, Restrict sprinkles."""
    if len(names) == 1:
        leaf = Rel(names[0])
        return Restrict(leaf, TruePredicate()) if rng.random() < 0.3 else leaf
    cut = rng.randint(1, len(names) - 1)
    left = _random_tree(rng, names[:cut])
    right = _random_tree(rng, names[cut:])
    tree = rng.choice([jn, oj, roj])(left, right, TruePredicate())
    return Restrict(tree, TruePredicate()) if rng.random() < 0.2 else tree


@pytest.mark.parametrize("dialect", ["sqlite", "duckdb"])
def test_hint_round_trip_property(dialect):
    """parse(emit(tree)) == shape(tree) over random trees, both dialects.

    This is the certificate that the emitted SQL pins the join order:
    the paren nesting (and barrier subqueries) alone reconstruct the
    physical tree's shape, with ``RightOuterJoin`` showing up swapped
    because ``X <- Y`` executes as ``Y LEFT JOIN X``.
    """
    rng = random.Random(20260808)
    for _ in range(150):
        names = [f"T{i}" for i in range(rng.randint(2, 7))]
        tree = _random_tree(rng, names)
        sql, _cols = hinted_sql(tree, _registry(names), dialect=dialect)
        assert parse_join_shape(sql) == join_shape(tree), sql


def test_join_shape_swaps_right_outer_join():
    tree = roj("A", "B", TruePredicate())
    assert join_shape(tree) == ("B", "A")


def test_hinted_sql_rejects_unhintable_operators():
    from repro.core import foj

    tree = foj("A", "B", TruePredicate())
    with pytest.raises(HintError):
        hinted_sql(tree, _registry(["A", "B"]))


def test_parse_rejects_dangling_join():
    with pytest.raises(HintError):
        parse_join_shape('SELECT "x" FROM "A" CROSS JOIN')


# -- SQLite execution --------------------------------------------------------


@pytest.fixture
def query():
    return jn(oj("A", "B", eq("A.a", "B.a")), "C", eq("B.b", "C.b"))


def _chain_db(seed=11):
    schemas = {name: [f"{name}.a", f"{name}.b"] for name in ("A", "B", "C")}
    return random_database(schemas, seed=seed, max_rows=6)


def test_hinted_and_native_sqlite_match_the_algebra(query):
    db = _chain_db()
    expected = query.eval(db)
    backend = create_backend("sqlite")
    try:
        backend.load_database(db)
        native = backend.execute(query)
        hinted = backend.execute(query, hint=query)
        assert bag_equal(native, expected)
        assert bag_equal(hinted, expected)
        assert backend.counters["hinted_queries"] == 1
    finally:
        backend.close()


def test_sync_is_generation_keyed(query):
    db = _chain_db()
    storage = Storage.from_database(db)
    backend = create_backend("sqlite")
    try:
        assert backend.sync(storage) is True
        assert backend.sync(storage) is False  # same generation: no reload
        assert backend.counters["sync_hits"] == 1
        table = storage[next(iter(storage))]
        row = next(table.scan(), None)
        if row is not None:
            table.insert(row)
            assert backend.sync(storage) is True  # mutation bumps generation
    finally:
        backend.close()


def test_statement_cache_is_fingerprint_keyed(query):
    db = _chain_db()
    backend = create_backend("sqlite")
    try:
        backend.load_database(db)
        backend.execute(query, fingerprint="fp-1")
        backend.execute(query, fingerprint="fp-1")
        assert backend.counters["statement_misses"] == 1
        assert backend.counters["statement_hits"] == 1
    finally:
        backend.close()


def test_join_key_indexes_are_created(query):
    db = _chain_db()
    backend = create_backend("sqlite")
    try:
        backend.load_database(db)
        backend.execute(query, hint=query)
        cur = backend._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='index'"
        )
        names = {row[0] for row in cur.fetchall()}
        assert names, "hinted execution should create join-key indexes"
        assert backend.counters["indexes_built"] == len(names)
    finally:
        backend.close()


def test_oracle_recycles_pooled_backends():
    db = example1_storage(40).to_database()
    first = SQLiteOracle(db)
    backend = first._backend
    first.close()
    second = SQLiteOracle(db)
    try:
        assert second._backend is backend  # same warm connection came back
    finally:
        second.close()


def test_pooled_backend_survives_reuse_with_different_schemas():
    db1 = example1_storage(30).to_database()
    db2 = _chain_db(seed=5)
    backend = acquire_pooled()
    try:
        before = backend.counters["loads"]  # pooled: may arrive warm
        backend.load_database(db1)
        backend.load_database(db2)
        assert backend.counters["loads"] == before + 2
    finally:
        release_pooled(backend)


# -- conformance tier --------------------------------------------------------


def test_backend_sqlite_tier_cross_checks_clean(query):
    db = _chain_db()
    report = cross_check(
        query, db, executors=("naive", "algebra", "backend:sqlite")
    )
    assert report.ok, report.summary()
    assert "backend:sqlite" not in report.skipped


def test_backend_sqlite_tier_declines_leaf_only_cases():
    db = _chain_db()
    report = cross_check(
        Rel("A"), db, executors=("naive", "algebra", "backend:sqlite")
    )
    assert report.ok, report.summary()
    assert "backend:sqlite" in report.skipped


def test_backend_duckdb_tier_skips_when_wheel_absent():
    if duckdb_available():
        pytest.skip("duckdb wheel is installed")
    db = _chain_db()
    query = jn("A", "B", eq("A.a", "B.a"))
    report = cross_check(
        query, db, executors=("naive", "algebra", "backend:duckdb")
    )
    assert report.ok, report.summary()
    assert "backend:duckdb" in report.skipped


# -- the REPRO_BACKEND=local byte-identity proof -----------------------------

_IDENTITY_SCRIPT = textwrap.dedent(
    """
    import pickle, sys
    from repro.datagen import example1_storage
    from repro.algebra import Comparison, Const, eq
    from repro.core import Restrict, jn, oj
    from repro.service import QueryService

    storage = example1_storage(200)
    query = Restrict(
        jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k")),
        Comparison("R3.j", "=", Const(3)),
    )
    with QueryService(storage) as service:
        outcome = service.execute(query)
    rows = sorted(
        (tuple(sorted(row._values.items(), key=str)), n)
        for row, n in outcome.require().counts().items()
    )
    plan = str(outcome.pipeline.chosen.to_infix())
    sys.stdout.buffer.write(pickle.dumps((plan, rows)))
    """
)


def test_backend_local_default_is_byte_identical(tmp_path):
    """``REPRO_BACKEND=local`` must not perturb plans or results at all.

    Two fresh interpreters run the same service query: one with the
    variable unset (a world that never heard of backends), one with it
    explicitly set to the default route.  Their canonical (plan, rows)
    serializations must agree to the byte — the local route bypasses the
    backend layer entirely, so naming it cannot leave a fingerprint.
    """
    script = tmp_path / "identity.py"
    script.write_text(_IDENTITY_SCRIPT)
    outputs = []
    for env_value in (None, "local"):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_BACKEND"}
        env["PYTHONPATH"] = str(ROOT / "src")
        env["PYTHONHASHSEED"] = "0"
        if env_value is not None:
            env["REPRO_BACKEND"] = env_value
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            timeout=300,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
