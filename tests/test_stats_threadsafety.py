"""The instrumentation sink under contention: no increment may be lost.

``Counter.__iadd__`` is a read-modify-write the GIL does not make atomic,
so the sink serializes all mutation behind a lock (see
``repro.tools.instrumentation``).  The first test hammers ``bump`` from
many threads and demands an exact total; the second races two real
engine queries and reconciles the global counter against the per-query
``Metrics`` totals — the regression that motivated the lock.
"""

from __future__ import annotations

import threading

import pytest

from repro.algebra import eq
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.tools import instrumentation


def test_concurrent_bumps_are_exact():
    threads_n, bumps_n = 16, 2_000
    barrier = threading.Barrier(threads_n)

    def hammer():
        barrier.wait()
        for _ in range(bumps_n):
            instrumentation.bump("race_key")
            instrumentation.bump("race_key_wide", 3)

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = instrumentation.snapshot()
    assert snap["race_key"] == threads_n * bumps_n
    assert snap["race_key_wide"] == threads_n * bumps_n * 3


def test_snapshot_never_tears_against_racing_bumps():
    """Each snapshot sees both keys of a paired update equal (one lock)."""
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            instrumentation.bump("pair_a")
            instrumentation.bump("pair_b")

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        for _ in range(500):
            snap = instrumentation.snapshot()
            # b is always bumped after a, within separate lock regions:
            # a may lead b by at most the one in-flight pair.
            assert 0 <= snap.get("pair_a", 0) - snap.get("pair_b", 0) <= 1
    finally:
        stop.set()
        thread.join()


def test_two_racing_queries_reconcile_with_global_counter():
    """The sum of per-query Metrics equals the shared STATS delta, exactly."""
    storage = example1_storage(600)
    q1 = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    q2 = oj("R2", "R3", eq("R2.j", "R3.j"))
    before = instrumentation.snapshot()

    results = {}
    barrier = threading.Barrier(2)

    def run(name, query):
        barrier.wait()
        results[name] = execute(query, storage)

    t1 = threading.Thread(target=run, args=("a", q1))
    t2 = threading.Thread(target=run, args=("b", q2))
    t1.start(), t2.start()
    t1.join(), t2.join()

    per_query = sum(r.metrics.total_retrieved for r in results.values())
    delta = instrumentation.delta(before)
    assert per_query > 0
    assert delta["tuples_retrieved"] == per_query


def test_reset_under_concurrent_bumps_does_not_crash():
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            instrumentation.bump("churn")

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    try:
        for _ in range(200):
            instrumentation.reset()
            instrumentation.snapshot()
    finally:
        stop.set()
        for t in threads:
            t.join()
    # Post-reset bumping still works.
    instrumentation.reset()
    instrumentation.bump("churn")
    assert instrumentation.snapshot()["churn"] == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
