"""Tests for restriction pushdown and the end-to-end optimization pipeline."""

import pytest

from repro.algebra import Comparison, Const, IsNull, bag_equal, eq
from repro.core import Restrict, jn, oj, roj
from repro.core.pushdown import collect_restrictions, push_restrictions
from repro.datagen import example1_storage, random_databases
from repro.engine import Storage, execute
from repro.optimizer.pipeline import optimize_and_run, optimize_query

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")


@pytest.fixture
def reg():
    from repro.datagen import chain

    return chain(3).registry


SCHEMAS = {"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"], "R3": ["R3.a", "R3.b"]}


class TestCollectRestrictions:
    def test_strips_stacked_restricts(self, reg):
        q = Restrict(
            Restrict(jn("R1", "R2", P12), Comparison("R1.b", "=", Const(1))),
            Comparison("R2.b", "=", Const(2)),
        )
        core, conjuncts = collect_restrictions(q)
        assert not isinstance(core, Restrict)
        assert len(conjuncts) == 2

    def test_no_restricts(self, reg):
        q = jn("R1", "R2", P12)
        core, conjuncts = collect_restrictions(q)
        assert core is q and conjuncts == []


class TestPushdown:
    def test_pushes_through_join_to_leaf(self, reg):
        q = Restrict(jn("R1", "R2", P12), Comparison("R1.b", "=", Const(1)))
        report = push_restrictions(q, reg)
        assert report.fully_pushed
        assert report.query.to_infix() == "(σ(R1) - R2)"

    def test_pushes_through_preserved_side(self, reg):
        q = Restrict(oj(jn("R1", "R2", P12), "R3", P23), Comparison("R1.b", "=", Const(1)))
        report = push_restrictions(q, reg)
        assert report.fully_pushed
        assert report.query.to_infix() == "((σ(R1) - R2) → R3)"

    def test_blocked_by_null_supplied_operand(self, reg):
        q = Restrict(oj("R1", "R2", P12), IsNull("R2.b"))
        report = push_restrictions(q, reg)
        assert not report.fully_pushed
        assert isinstance(report.query, Restrict)
        assert "null-supplied" in report.blocked[0]

    def test_right_outerjoin_preserved_side(self, reg):
        # R1 ← R2 preserves R2.
        q = Restrict(roj("R1", "R2", P12), Comparison("R2.b", "=", Const(1)))
        report = push_restrictions(q, reg)
        assert report.fully_pushed
        assert report.query.to_infix() == "(R1 ← σ(R2))"

    def test_multi_relation_conjunct_stays_at_join(self, reg):
        from repro.algebra import gt

        q = Restrict(jn(jn("R1", "R2", P12), "R3", P23), gt("R1.b", "R3.b"))
        report = push_restrictions(q, reg)
        # It references R1 and R3 and parks above the lowest node covering both.
        assert isinstance(report.query, Restrict)
        assert report.fully_pushed  # parked, but not OJ-blocked

    def test_pushdown_preserves_semantics(self, reg):
        queries = [
            Restrict(oj(jn("R1", "R2", P12), "R3", P23), Comparison("R1.b", "=", Const(1))),
            Restrict(oj("R1", "R2", P12), IsNull("R2.b")),
            Restrict(
                Restrict(jn("R1", "R2", P12), Comparison("R1.b", "=", Const(1))),
                Comparison("R2.b", "=", Const(2)),
            ),
        ]
        for q in queries:
            report = push_restrictions(q, reg)
            for db in random_databases(SCHEMAS, 20, seed=55, domain=3):
                assert bag_equal(q.eval(db), report.query.eval(db)), q.to_infix()


class TestPipeline:
    def _example1_query(self):
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        return Restrict(
            jn("R1", oj("R2", "R3", p23), p12), Comparison("R3.j", "=", Const(5))
        )

    def test_full_pipeline_simplifies_pushes_reorders(self):
        storage = example1_storage(500)
        result = optimize_query(self._example1_query(), storage)
        assert result.conversions  # OJ ⇒ JN fired
        assert result.reordered
        assert result.verdict is not None and result.verdict.freely_reorderable
        assert "σ(R3)" in result.chosen.to_infix()

    def test_pipeline_output_correct_and_cheaper(self):
        storage = example1_storage(500)
        q = self._example1_query()
        result, run = optimize_and_run(q, storage)
        baseline = execute(q, storage)
        assert bag_equal(run.relation, baseline.relation)
        assert run.tuples_retrieved < baseline.tuples_retrieved

    def test_blocked_pipeline_falls_back(self):
        storage = example1_storage(100)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        q = Restrict(jn("R1", oj("R2", "R3", p23), p12), IsNull("R3.j"))
        result, run = optimize_and_run(q, storage)
        assert not result.reordered
        assert result.blocked
        assert bag_equal(run.relation, execute(q, storage).relation)

    def test_pipeline_without_restrictions(self):
        storage = example1_storage(200)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        q = jn("R1", oj("R2", "R3", p23), p12)
        result, run = optimize_and_run(q, storage)
        assert result.reordered
        assert run.tuples_retrieved == 3

    def test_pipeline_cout_model(self):
        storage = example1_storage(200)
        result = optimize_query(self._example1_query(), storage, cost_model="cout")
        assert result.reordered

    def test_unknown_cost_model(self):
        storage = example1_storage(10)
        with pytest.raises(ValueError):
            optimize_query(self._example1_query(), storage, cost_model="magic")

    def test_explain_is_readable(self):
        storage = example1_storage(50)
        result = optimize_query(self._example1_query(), storage)
        text = result.explain()
        assert "simplify:" in text and "push:" in text and "chosen:" in text

    def test_randomized_pipeline_correctness(self):
        """Pipeline output equals naive evaluation over random databases."""
        for seed, db in enumerate(random_databases(SCHEMAS, 10, seed=77, domain=3)):
            storage = Storage.from_database(db)
            q = Restrict(
                oj(jn("R1", "R2", P12), "R3", P23), Comparison("R3.b", "=", Const(1))
            )
            result, run = optimize_and_run(q, storage)
            assert bag_equal(run.relation, q.eval(db)), seed
