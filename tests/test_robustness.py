"""Robustness and stress tests: deep trees, wide graphs, big closures.

Nothing here changes behaviour; these tests pin the library's operational
envelope so regressions (quadratic blowups, recursion-limit crashes,
memory explosions in closures) surface as failures rather than as user
pain.
"""


from repro.algebra import bag_equal, eq
from repro.core import (
    bt_closure,
    canonicalize,
    count_implementing_trees,
    graph_of,
    implementing_trees,
    sample_implementing_tree,
    theorem1_applies,
)
from repro.datagen import chain, random_databases, star
from repro.engine import Storage, execute
from repro.util.rng import make_rng


class TestDeepTrees:
    def test_long_chain_evaluates(self):
        """A 10-relation chain: deep recursion through eval and graph_of."""
        scenario = chain(10, ["join", "out"] * 4 + ["join"])
        db = random_databases(scenario.schemas, 1, seed=1, max_rows=3,
                              allow_empty=False)[0]
        tree = sample_implementing_tree(scenario.graph, make_rng(2))
        result = tree.eval(db)
        assert result.scheme  # evaluated without recursion errors
        assert graph_of(tree, scenario.registry) == scenario.graph

    def test_long_chain_certification(self):
        scenario = chain(12, ["join"] * 5 + ["out"] * 6)
        verdict = theorem1_applies(scenario.graph, scenario.registry)
        assert verdict.freely_reorderable

    def test_left_deep_vs_right_deep_same_result(self):
        scenario = chain(8)
        reg = scenario.registry
        db = random_databases(scenario.schemas, 1, seed=3, max_rows=3,
                              allow_empty=False)[0]
        rng = make_rng(4)
        trees = [sample_implementing_tree(scenario.graph, rng) for _ in range(4)]
        reference = trees[0].eval(db)
        for tree in trees[1:]:
            assert bag_equal(tree.eval(db), reference)


class TestEnumerationBounds:
    def test_chain7_count_fast(self):
        assert count_implementing_trees(chain(7).graph) == 8448

    def test_star6_count(self):
        count = count_implementing_trees(star(6, oj_leaves=3).graph)
        assert count > 0

    def test_closure_max_size_respected_on_big_space(self):
        scenario = chain(6)
        tree = canonicalize(next(implementing_trees(scenario.graph)))
        closure = bt_closure(tree, scenario.registry, max_size=100)
        assert closure.truncated and len(closure) <= 100

    def test_generator_is_lazy(self):
        """Taking a few trees from a large space must not enumerate it."""
        from itertools import islice

        scenario = chain(8)
        first_five = list(islice(implementing_trees(scenario.graph), 5))
        assert len(first_five) == 5


class TestEngineStress:
    def test_wide_fanout_join(self):
        """One build key matching many probe rows (quadratic danger zone)."""
        storage = Storage()
        storage.create_table("A", ["A.k"], [{"A.k": 1}] * 200)
        storage.create_table("B", ["B.k"], [{"B.k": 1}] * 200)
        from repro.core import jn

        result = execute(jn("A", "B", eq("A.k", "B.k")), storage)
        assert len(result.relation) == 40_000

    def test_many_distinct_groups(self):
        storage = Storage()
        storage.create_table("A", ["A.k"], [{"A.k": i} for i in range(5_000)])
        storage.create_table("B", ["B.k"], [{"B.k": i} for i in range(0, 5_000, 2)])
        from repro.core import oj

        result = execute(oj("A", "B", eq("A.k", "B.k")), storage)
        assert len(result.relation) == 5_000

    def test_empty_everything(self):
        storage = Storage()
        storage.create_table("A", ["A.k"], [])
        storage.create_table("B", ["B.k"], [])
        from repro.core import jn, oj

        assert len(execute(jn("A", "B", eq("A.k", "B.k")), storage).relation) == 0
        assert len(execute(oj("A", "B", eq("A.k", "B.k")), storage).relation) == 0


class TestDeterminism:
    """Everything seeded must be bit-for-bit repeatable."""

    def test_sampling_deterministic(self):
        scenario = chain(5, ["join", "out", "join", "out"])
        a = [sample_implementing_tree(scenario.graph, make_rng(9)) for _ in range(5)]
        b = [sample_implementing_tree(scenario.graph, make_rng(9)) for _ in range(5)]
        assert a == b

    def test_random_database_deterministic(self):
        scenario = chain(3)
        one = random_databases(scenario.schemas, 3, seed=11)
        two = random_databases(scenario.schemas, 3, seed=11)
        for db1, db2 in zip(one, two):
            for name in db1:
                assert db1[name] == db2[name]

    def test_enumeration_order_stable(self):
        scenario = chain(4, ["out", "join", "out"])
        first = [t.to_infix() for t in implementing_trees(scenario.graph)]
        second = [t.to_infix() for t in implementing_trees(scenario.graph)]
        assert first == second
