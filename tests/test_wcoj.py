"""The cyclic fast path end to end: operator, dispatch, tier, toggle.

Four layers of assurance, mirroring test_yannakakis.py for the acyclic
path:

* known-answer pattern counts (triangle, 4-clique) against an
  independent brute-force recomputation, the SQLite oracle, and the
  kernels tier;
* bag-equality of Leapfrog Triejoin vs. the DP binary plans on every
  cyclic fuzz topology under nulls, duplicates, and skew;
* the optimizer's AGM cost gate (dispatches on cyclic cores with real
  data, declines acyclic graphs, outerjoins, and the collapsed-class
  ``cycle`` family);
* a ``REPRO_WCOJ=0`` subprocess proving the DP fallback is
  byte-identical when the path is off.
"""

from __future__ import annotations

import itertools
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algebra.comparison import bag_equal
from repro.algebra.nulls import NULL, is_null
from repro.algebra.predicates import eq
from repro.algebra.relation import Database, Relation
from repro.conformance.check import EXECUTOR_TIERS, cross_check, run_executor
from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import jn, oj, rel
from repro.core.graph import graph_of
from repro.core.wcoj_order import wcoj_spec_of
from repro.datagen.random_db import random_database
from repro.datagen.topologies import (
    chain,
    clique4,
    cyclic_chord,
    join_cycle,
    square,
    triangle,
)
from repro.engine.explain import explain_analyze
from repro.engine.storage import Storage
from repro.engine.wcoj import LeapfrogTriejoinOp, build_wcoj_plan
from repro.optimizer.pipeline import optimize_and_run, optimize_query
from repro.optimizer.plancache import PlanCache
from repro.util.errors import PlanningError
from repro.util.fastpath import wcoj_mode

REPO_ROOT = Path(__file__).resolve().parent.parent

CYCLIC_SCENARIOS = [triangle(), square(), clique4(), cyclic_chord(4), cyclic_chord(5)]


def scenario_case(scenario, seed, **db_kwargs):
    """(expr, db, storage, spec) for one cyclic topology scenario."""
    rng = random.Random(seed)
    expr = sample_implementing_tree(scenario.graph, rng)
    db = random_database(scenario.schemas, seed=seed, **db_kwargs)
    storage = Storage.from_database(db)
    spec = wcoj_spec_of(scenario.graph, scenario.registry)
    return expr, db, storage, spec


def triangle_db(edges):
    """Encode an undirected edge list as the triangle scenario's relations.

    ``R1(x,z) ⋈ R2(x,y) ⋈ R3(y,z)`` over one shared edge set counts the
    (ordered) triangles of the graph, which the tests recount naively.
    """
    rows = [(u, v) for u, v in edges] + [(v, u) for u, v in edges]
    return Database(
        {
            "R1": Relation.from_dicts(
                ["R1.a", "R1.b"], [{"R1.a": x, "R1.b": z} for x, z in rows]
            ),
            "R2": Relation.from_dicts(
                ["R2.a", "R2.b"], [{"R2.a": x, "R2.b": y} for x, y in rows]
            ),
            "R3": Relation.from_dicts(
                ["R3.a", "R3.b"], [{"R3.a": y, "R3.b": z} for y, z in rows]
            ),
        }
    )


def triangle_query():
    scenario = triangle()
    return jn(
        jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")),
        rel("R3"),
        eq("R2.b", "R3.a") & eq("R3.b", "R1.b"),
    ), scenario


class TestKnownAnswers:
    def test_triangle_count_matches_brute_force_and_oracles(self):
        rng = random.Random(5)
        nodes = list(range(8))
        edges = sorted(
            {tuple(sorted(rng.sample(nodes, 2))) for _ in range(14)}
        )
        db = triangle_db(edges)
        expr, _scenario = triangle_query()

        # Independent recount: ordered vertex triples over the directed
        # edge set (each undirected triangle appears 6 times).
        directed = {(u, v) for u, v in edges} | {(v, u) for u, v in edges}
        expected = sum(
            1
            for x, y, z in itertools.permutations(nodes, 3)
            if (x, y) in directed and (y, z) in directed and (x, z) in directed
        )

        wcoj_rows = run_executor("wcoj", expr, db)
        assert len(wcoj_rows) == expected
        for tier in ("sqlite", "kernels"):
            assert bag_equal(wcoj_rows, run_executor(tier, expr, db)), tier

    def test_clique4_count_matches_brute_force_and_oracles(self):
        rng = random.Random(9)
        nodes = list(range(6))
        edges = sorted({tuple(sorted(rng.sample(nodes, 2))) for _ in range(12)})
        directed = sorted({(u, v) for u, v in edges} | {(v, u) for u, v in edges})
        scenario = clique4()
        # Ri's attributes are its three incident pattern edges; the shared
        # classes give R1(x,y,z,w)-style bindings: R1=(x,*), R2=(x,*),
        # R3=(y,*), R4=(z,*) per the clique4 builder's edge layout.
        db = Database(
            {
                "R1": Relation.from_dicts(
                    ["R1.a", "R1.b", "R1.c"],
                    [{"R1.a": a, "R1.b": a, "R1.c": a} for a, _b in directed],
                ),
                "R2": Relation.from_dicts(
                    ["R2.a", "R2.b", "R2.c"],
                    [{"R2.a": a, "R2.b": b, "R2.c": b} for a, b in directed],
                ),
                "R3": Relation.from_dicts(
                    ["R3.a", "R3.b", "R3.c"],
                    [{"R3.a": a, "R3.b": b, "R3.c": b} for a, b in directed],
                ),
                "R4": Relation.from_dicts(
                    ["R4.a", "R4.b", "R4.c"],
                    [{"R4.a": a, "R4.b": b, "R4.c": b} for a, b in directed],
                ),
            }
        )
        expr = jn(
            jn(
                jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")),
                rel("R3"),
                eq("R1.b", "R3.a") & eq("R2.b", "R3.b"),
            ),
            rel("R4"),
            eq("R1.c", "R4.a") & eq("R2.c", "R4.b") & eq("R3.c", "R4.c"),
        )
        wcoj_rows = run_executor("wcoj", expr, db)
        for tier in ("sqlite", "kernels", "naive"):
            assert bag_equal(wcoj_rows, run_executor(tier, expr, db)), tier


class TestOperator:
    @pytest.mark.parametrize("scenario", CYCLIC_SCENARIOS, ids=lambda s: s.name)
    def test_matches_naive_eval(self, scenario):
        for seed in (1, 2, 3):
            expr, db, storage, spec = scenario_case(
                scenario,
                seed,
                max_rows=8,
                null_probability=0.3,
                duplicate_probability=0.3,
            )
            assert spec is not None, scenario.name
            plan = build_wcoj_plan(spec, storage, {})
            assert bag_equal(plan.run(), expr.eval(db)), scenario.name

    @pytest.mark.parametrize("scenario", CYCLIC_SCENARIOS, ids=lambda s: s.name)
    def test_matches_naive_eval_under_zipf_skew(self, scenario):
        for seed in (4, 5):
            rng = random.Random(seed)
            expr = sample_implementing_tree(scenario.graph, rng)
            db = random_database(
                scenario.schemas,
                seed=seed,
                max_rows=12,
                domain=3,
                null_probability=0.1,
                zipf_skew=1.5,
            )
            storage = Storage.from_database(db)
            spec = wcoj_spec_of(scenario.graph, scenario.registry)
            plan = build_wcoj_plan(spec, storage, {})
            assert bag_equal(plan.run(), expr.eval(db)), scenario.name

    def test_null_keys_never_join(self):
        expr, _scenario = triangle_query()
        db = Database(
            {
                "R1": Relation.from_dicts(
                    ["R1.a", "R1.b"],
                    [{"R1.a": NULL, "R1.b": 1}, {"R1.a": 1, "R1.b": 1}],
                ),
                "R2": Relation.from_dicts(
                    ["R2.a", "R2.b"],
                    [{"R2.a": 1, "R2.b": 2}, {"R2.a": NULL, "R2.b": NULL}],
                ),
                "R3": Relation.from_dicts(
                    ["R3.a", "R3.b"], [{"R3.a": 2, "R3.b": 1}]
                ),
            }
        )
        rows = list(run_executor("wcoj", expr, db))
        assert len(rows) == 1
        assert all(not is_null(v) for v in rows[0].values())

    def test_arity_mismatch_rejected(self):
        _expr, scenario = triangle_query()
        spec = wcoj_spec_of(scenario.graph, scenario.registry)
        db = random_database(scenario.schemas, seed=1)
        storage = Storage.from_database(db)
        plan = build_wcoj_plan(spec, storage, {})
        with pytest.raises(PlanningError):
            LeapfrogTriejoinOp(spec, plan.inputs[:2])


class TestOptimizerDispatch:
    # Seed 0 draws three comparably-sized relations (~30-50 rows each),
    # where the AGM bound beats every binary plan; some seeds draw a
    # near-empty relation and DP legitimately wins (see
    # test_small_data_keeps_the_dp_plan).
    def _triangle_storage(self, seed=0, rows=40, domain=4):
        expr, scenario = triangle_query()
        db = random_database(
            scenario.schemas,
            seed=seed,
            max_rows=rows,
            domain=domain,
            null_probability=0.0,
            allow_empty=False,
        )
        return expr, db, Storage.from_database(db)

    def test_cyclic_core_with_real_data_dispatches_to_wcoj(self):
        expr, db, storage = self._triangle_storage()
        result, execution = optimize_and_run(expr, storage, use_cache=False)
        assert result.strategy == "wcoj"
        assert result.wcoj_spec is not None
        assert bag_equal(execution.relation, expr.eval(db))

    def test_toggle_off_is_bag_equal_dp(self):
        expr, db, storage = self._triangle_storage()
        with wcoj_mode(True):
            _r1, on = optimize_and_run(expr, storage, use_cache=False)
        with wcoj_mode(False):
            r2, off = optimize_and_run(expr, storage, use_cache=False)
        assert r2.strategy == "dp"
        assert bag_equal(on.relation, off.relation)

    def test_acyclic_graph_never_takes_wcoj(self):
        scenario = chain(4)
        rng = random.Random(3)
        expr = sample_implementing_tree(scenario.graph, rng)
        db = random_database(scenario.schemas, seed=3, max_rows=20)
        result = optimize_query(expr, Storage.from_database(db), use_cache=False)
        assert result.strategy in ("dp", "yannakakis")
        assert result.wcoj_spec is None

    def test_collapsed_class_cycle_stays_off_wcoj(self):
        # join_cycle's .a=.a edges collapse every attribute into one
        # class; its class hypergraph is acyclic, so WCOJ must decline
        # even though the relation-level graph has a cycle.
        scenario = join_cycle(4)
        spec = wcoj_spec_of(scenario.graph, scenario.registry)
        assert spec is None

    def test_outerjoin_reaching_the_core_declines(self):
        graph = graph_of(
            oj(
                jn(
                    jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")),
                    rel("R3"),
                    eq("R2.b", "R3.a") & eq("R3.b", "R1.b"),
                ),
                rel("R4"),
                eq("R1.a", "R4.a"),
            ),
            Storage.from_database(
                random_database(
                    {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3", "R4")},
                    seed=1,
                )
            ).registry,
        )
        registry = Storage.from_database(
            random_database(
                {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3", "R4")}, seed=1
            )
        ).registry
        assert graph.oj_edges
        assert wcoj_spec_of(graph, registry) is None

    def test_cached_plan_replays_the_wcoj_spec(self):
        expr, db, storage = self._triangle_storage()
        cache = PlanCache()
        first, run1 = optimize_and_run(expr, storage, cache=cache)
        second, run2 = optimize_and_run(expr, storage, cache=cache)
        assert first.strategy == second.strategy == "wcoj"
        assert not first.cache_hit and second.cache_hit
        assert second.wcoj_spec == first.wcoj_spec
        assert bag_equal(run1.relation, run2.relation)

    def test_small_data_keeps_the_dp_plan(self):
        # One row per relation: the AGM bound cannot beat C_out's tiny
        # intermediate estimates, so the gate keeps the binary plan.
        expr, scenario = triangle_query()
        db = random_database(
            scenario.schemas, seed=2, max_rows=1, null_probability=0.0, allow_empty=False
        )
        result = optimize_query(expr, Storage.from_database(db), use_cache=False)
        assert result.strategy == "dp"


class TestExplain:
    def test_explain_analyze_shows_leapfrog_metering(self):
        expr, scenario = triangle_query()
        db = random_database(
            scenario.schemas, seed=11, max_rows=20, null_probability=0.0, allow_empty=False
        )
        storage = Storage.from_database(db)
        spec = wcoj_spec_of(scenario.graph, scenario.registry)
        plan = build_wcoj_plan(spec, storage, {})
        node = explain_analyze(plan, storage)
        text = node.render()
        assert "LeapfrogTriejoin" in text
        assert "dispatch=leapfrog-triejoin" in text
        assert "wcoj_seeks=" in text and "wcoj_ties=" in text
        assert node.details["wcoj_seeks"] > 0
        assert node.actual_rows == len(list(plan.run()))


class TestConformanceTier:
    def test_wcoj_is_a_registered_tier(self):
        assert "wcoj" in EXECUTOR_TIERS

    @pytest.mark.parametrize("scenario", CYCLIC_SCENARIOS, ids=lambda s: s.name)
    def test_cross_check_all_tiers_on_cyclic_topologies(self, scenario):
        expr, db, _storage, _spec = scenario_case(
            scenario, 6, max_rows=6, null_probability=0.2, duplicate_probability=0.3
        )
        result = cross_check(expr, db, executors=EXECUTOR_TIERS)
        assert result.ok, result.summary()
        assert "wcoj" in result.results

    def test_tier_declines_acyclic_queries(self):
        scenario = chain(3)
        expr = sample_implementing_tree(scenario.graph, random.Random(1))
        db = random_database(scenario.schemas, seed=1)
        with pytest.raises(PlanningError):
            run_executor("wcoj", expr, db)


_TOGGLE_SCRIPT = """
import json
import random
from repro.conformance.serialize import value_to_json
from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import jn, rel
from repro.algebra.predicates import eq, conjunction
from repro.datagen.random_db import random_database
from repro.datagen.topologies import chain, clique4, cyclic_chord, square, triangle
from repro.engine.storage import Storage
from repro.optimizer.pipeline import optimize_and_run

def dump(tag, relation, ordered):
    lines = [
        json.dumps({a: value_to_json(row[a]) for a in sorted(row)}, sort_keys=True)
        for row in relation
    ]
    print(tag)
    for line in lines if ordered else sorted(lines):
        print(line)

# cyclic workloads: rows must agree as bags under both toggle settings
for scenario, seed in ((triangle(), 3), (square(), 4), (clique4(), 5), (cyclic_chord(4), 6)):
    expr = sample_implementing_tree(scenario.graph, random.Random(seed))
    db = random_database(
        scenario.schemas, seed=seed, max_rows=10, domain=3, null_probability=0.1
    )
    result, execution = optimize_and_run(expr, Storage.from_database(db), use_cache=False)
    dump(scenario.name, execution.relation, ordered=False)

# an acyclic chain never touches the WCOJ path: both toggle settings run
# the *same* plan, so rows, order, and metrics are byte-identical
scenario = chain(3)
expr = sample_implementing_tree(scenario.graph, random.Random(8))
db = random_database(scenario.schemas, seed=8, max_rows=8, domain=2, null_probability=0.0)
result, execution = optimize_and_run(expr, Storage.from_database(db), use_cache=False)
assert result.strategy != "wcoj", result.strategy
dump("acyclic", execution.relation, ordered=True)
print("retrieved", sorted(execution.metrics.tuples_retrieved.items()))
print("evaluated", execution.metrics.predicate_evaluations)
"""


class TestFastPathToggle:
    def test_repro_wcoj_0_matches_1(self):
        """REPRO_WCOJ=0 and =1 agree on every cyclic workload as bags,
        and are byte-identical (rows, order, metrics) off the path."""
        outputs = {}
        for flag in ("0", "1"):
            env = dict(os.environ, REPRO_WCOJ=flag)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", _TOGGLE_SCRIPT],
                capture_output=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs[flag] = proc.stdout
        assert outputs["0"] == outputs["1"]
        assert outputs["0"].count(b"\n") > 5  # the workloads produced rows
