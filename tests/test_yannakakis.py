"""End-to-end tests for the Yannakakis acyclic fast path.

Covers the physical operator (full reducer + output-linear join against
the naive oracle, outerjoin padding, null keys, chords, batch parity),
the optimizer's strategy choice and plan-cache interplay, EXPLAIN
ANALYZE surfacing of the reducer, the ``yannakakis`` conformance tier,
and — mirroring the ``REPRO_BATCH`` pattern — a subprocess proof that
``REPRO_YANNAKAKIS=0`` and ``=1`` agree, with cyclic graphs falling back
to the DP plan byte-identically.
"""

import os
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algebra.comparison import bag_equal
from repro.algebra.nulls import NULL, is_null
from repro.algebra.predicates import eq
from repro.conformance.check import EXECUTOR_TIERS, cross_check, run_executor
from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import Project, Restrict, jn, rel
from repro.core.graph import QueryGraph, graph_of
from repro.core.gyo import join_tree_of
from repro.datagen.random_db import random_database
from repro.datagen.topologies import (
    chain,
    figure2_graph,
    join_cycle,
    snowflake,
    star,
)
from repro.engine.explain import explain_analyze
from repro.engine.storage import Storage
from repro.engine.yannakakis import YannakakisOp, build_yannakakis_plan
from repro.optimizer.pipeline import optimize_and_run, optimize_query
from repro.optimizer.plancache import PlanCache
from repro.util.errors import PlanningError
from repro.util.fastpath import batch_mode, batch_sized, yannakakis_mode

REPO_ROOT = Path(__file__).resolve().parent.parent


def scenario_case(scenario, seed, **db_kwargs):
    """(expr, db, storage, tree) for one topology scenario."""
    rng = random.Random(seed)
    expr = sample_implementing_tree(scenario.graph, rng)
    db = random_database(scenario.schemas, seed=seed, **db_kwargs)
    storage = Storage.from_database(db)
    tree = join_tree_of(scenario.graph, scenario.registry)
    return expr, db, storage, tree


class TestOperator:
    @pytest.mark.parametrize(
        "scenario",
        [
            chain(4),
            chain(4, ["join", "out", "out"]),
            star(4, oj_leaves=2),
            snowflake(3, arm_length=2, oj_arms=1),
            figure2_graph(),
            join_cycle(4),  # chord goes through the join-phase filter
        ],
        ids=lambda s: s.name,
    )
    def test_matches_naive_eval(self, scenario):
        for seed in (1, 2, 3):
            expr, db, storage, tree = scenario_case(
                scenario, seed, null_probability=0.3, duplicate_probability=0.3
            )
            assert tree is not None
            plan = build_yannakakis_plan(tree, storage, {})
            got = plan.run()
            assert bag_equal(got, expr.eval(db)), scenario.name

    def test_outerjoin_pads_dangling_preserved_rows(self):
        scenario = star(2, oj_leaves=2)
        db = {
            "R0": [{"R0.a": 1, "R0.b": 0}, {"R0.a": 9, "R0.b": 0}],
            "R1": [{"R1.a": 1, "R1.b": 10}],
            "R2": [{"R2.a": 1, "R2.b": 20}],
        }
        from repro.algebra.relation import Database, Relation

        database = Database(
            {name: Relation.from_dicts(scenario.schemas[name], rows) for name, rows in db.items()}
        )
        storage = Storage.from_database(database)
        tree = join_tree_of(scenario.graph, scenario.registry)
        got = build_yannakakis_plan(tree, storage, {}).run()
        padded = [row for row in got if row["R0.a"] == 9]
        assert len(padded) == 1
        assert is_null(padded[0]["R1.a"]) and is_null(padded[0]["R2.b"])

    def test_null_join_keys_never_match(self):
        scenario = chain(2)
        from repro.algebra.relation import Database, Relation

        database = Database(
            {
                "R1": Relation.from_dicts(
                    scenario.schemas["R1"],
                    [{"R1.a": NULL, "R1.b": 1}, {"R1.a": 3, "R1.b": 2}],
                ),
                "R2": Relation.from_dicts(
                    scenario.schemas["R2"],
                    [{"R2.a": NULL, "R2.b": 1}, {"R2.a": 3, "R2.b": 2}],
                ),
            }
        )
        storage = Storage.from_database(database)
        tree = join_tree_of(scenario.graph, scenario.registry)
        got = build_yannakakis_plan(tree, storage, {}).run()
        assert len(got) == 1  # only the 3 = 3 pair; NULL = NULL is unknown

    def test_batch_and_row_modes_agree(self):
        scenario = star(4, oj_leaves=1)
        expr, db, storage, tree = scenario_case(scenario, 11, null_probability=0.2)
        plan = build_yannakakis_plan(tree, storage, {})
        with batch_mode(False):
            row_result = build_yannakakis_plan(tree, storage, {}).run()
        with batch_mode(True), batch_sized(2):
            batch_result = plan.run()
        assert bag_equal(row_result, batch_result)
        assert bag_equal(row_result, expr.eval(db))

    def test_input_arity_is_validated(self):
        scenario = chain(3)
        _expr, _db, storage, tree = scenario_case(scenario, 1)
        good = build_yannakakis_plan(tree, storage, {})
        with pytest.raises(PlanningError):
            YannakakisOp(tree, good.inputs[:1])


class TestExplain:
    def test_explain_analyze_surfaces_the_reducer(self):
        scenario = chain(3)
        expr, _db, storage, tree = scenario_case(scenario, 4)
        plan = build_yannakakis_plan(tree, storage, {})
        node = explain_analyze(plan, storage, expr=expr)
        assert "Yannakakis" in node.label
        assert node.details.get("dispatch") == "semijoin-reducer"
        assert node.details.get("reducer_passes", 0) >= 2  # down + up passes
        assert "reducer_dropped" in node.details
        assert len(node.children) == len(tree.order)  # trace wraps the inputs
        assert node.actual_rows == len(expr.eval(_db))

    def test_describe_names_root_and_chords(self):
        scenario = join_cycle(4)
        _expr, _db, storage, tree = scenario_case(scenario, 4)
        text = build_yannakakis_plan(tree, storage, {}).describe()
        assert "Yannakakis[root=" in text
        assert "chords=1" in text


class TestOptimizerStrategy:
    def test_chain_chooses_yannakakis_and_matches_dp(self):
        scenario = chain(4)
        expr, db, storage, _tree = scenario_case(scenario, 21, max_rows=6)
        with yannakakis_mode(True):
            result, execution = optimize_and_run(expr, storage, use_cache=False)
        assert result.strategy == "yannakakis"
        assert result.join_tree is not None
        with yannakakis_mode(False):
            dp_result, dp_execution = optimize_and_run(expr, storage, use_cache=False)
        assert dp_result.strategy == "dp"
        assert bag_equal(execution.relation, dp_execution.relation)
        assert bag_equal(execution.relation, expr.eval(db))

    def test_cyclic_class_hypergraph_stays_on_dp(self):
        graph = QueryGraph.from_edges(
            join=[
                ("R1", "R2", eq("R1.a", "R2.a")),
                ("R2", "R3", eq("R2.b", "R3.b")),
                ("R3", "R1", eq("R3.a", "R1.b")),
            ]
        )
        schemas = {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3")}
        expr = jn(jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")), rel("R3"),
                  eq("R2.b", "R3.b"))
        db = random_database(schemas, seed=31)
        storage = Storage.from_database(db)
        assert join_tree_of(graph, db.registry) is None
        with yannakakis_mode(True):
            result, execution = optimize_and_run(expr, storage, use_cache=False)
        assert result.strategy == "dp"
        assert bag_equal(execution.relation, expr.eval(db))

    def test_cached_plan_replays_the_join_tree(self):
        scenario = chain(4)
        expr, db, storage, _tree = scenario_case(scenario, 21, max_rows=6)
        cache = PlanCache()
        with yannakakis_mode(True):
            first = optimize_query(expr, storage, cache=cache)
            assert first.strategy == "yannakakis" and not first.cache_hit
            second = optimize_query(expr, storage, cache=cache)
            assert second.cache_hit
            assert second.strategy == "yannakakis"
            assert second.join_tree == first.join_tree
        # the live switch wins over the cached payload
        with yannakakis_mode(False):
            third = optimize_query(expr, storage, cache=cache)
            assert third.cache_hit
            assert third.strategy == "dp"


class TestConformanceTier:
    def test_tier_is_registered(self):
        assert "yannakakis" in EXECUTOR_TIERS

    def test_agrees_with_naive_on_acyclic_topologies(self):
        for scenario in (chain(4, ["join", "out", "out"]), star(4, oj_leaves=1),
                         snowflake(2, arm_length=2)):
            expr, db, _storage, _tree = scenario_case(scenario, 8, null_probability=0.25)
            got = run_executor("yannakakis", expr, db)
            assert bag_equal(got, run_executor("naive", expr, db)), scenario.name

    def test_wrapped_core_still_takes_the_fast_path(self):
        scenario = chain(3)
        expr, db, _storage, _tree = scenario_case(scenario, 9)
        wrapped = Project(
            Restrict(expr, eq("R1.a", "R2.a")), frozenset(["R1.a", "R3.a"]), dedup=False
        )
        got = run_executor("yannakakis", wrapped, db)
        assert bag_equal(got, wrapped.eval(db))

    def test_declines_on_cyclic_core(self):
        schemas = {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3")}
        from repro.algebra.predicates import conjunction

        # the R3.a=R1.b conjunct makes the *class* hypergraph a triangle
        expr = jn(
            jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")),
            rel("R3"),
            conjunction([eq("R2.b", "R3.b"), eq("R3.a", "R1.b")]),
        )
        db = random_database(schemas, seed=12)
        with pytest.raises(PlanningError):
            run_executor("yannakakis", expr, db)

    def test_declines_without_a_join_core(self):
        db = random_database({"R1": ["R1.a", "R1.b"]}, seed=13)
        with pytest.raises(PlanningError):
            run_executor("yannakakis", Restrict(rel("R1"), eq("R1.a", "R1.b")), db)

    def test_cross_check_runs_the_tier(self):
        scenario = snowflake(3, arm_length=1, oj_arms=1)
        expr, db, _storage, _tree = scenario_case(scenario, 14)
        result = cross_check(expr, db)
        assert result.ok, result.summary()
        assert "yannakakis" in result.results


_TOGGLE_SCRIPT = """
import json
import random
from repro.conformance.serialize import value_to_json
from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import jn, rel
from repro.algebra.predicates import eq, conjunction
from repro.datagen.random_db import random_database
from repro.datagen.topologies import chain, star
from repro.engine.storage import Storage
from repro.optimizer.pipeline import optimize_and_run
from repro.util.fastpath import wcoj_mode

def dump(tag, relation, ordered):
    lines = [
        json.dumps({a: value_to_json(row[a]) for a in sorted(row)}, sort_keys=True)
        for row in relation
    ]
    print(tag)
    for line in lines if ordered else sorted(lines):
        print(line)

# two acyclic workloads: rows must agree as bags (sorted lines)
for scenario, seed in ((chain(4), 5), (star(4, oj_leaves=1), 6)):
    expr = sample_implementing_tree(scenario.graph, random.Random(seed))
    db = random_database(
        scenario.schemas, seed=seed, max_rows=8, domain=2, null_probability=0.0
    )
    result, execution = optimize_and_run(expr, Storage.from_database(db), use_cache=False)
    dump(scenario.name, execution.relation, ordered=False)

# a cyclic class hypergraph: both toggle settings must run the *same* DP
# plan, so rows, iteration order, and metrics are byte-identical.  The
# WCOJ fast path (which owns cyclic cores since PR 8, and has its own
# toggle test in test_wcoj.py) is pinned off so the yannakakis toggle is
# the only variable.
schemas = {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3")}
expr = jn(
    jn(rel("R1"), rel("R2"), eq("R1.a", "R2.a")),
    rel("R3"),
    conjunction([eq("R2.b", "R3.b"), eq("R3.a", "R1.b")]),
)
db = random_database(schemas, seed=7, max_rows=8, domain=2, null_probability=0.0)
with wcoj_mode(False):
    result, execution = optimize_and_run(expr, Storage.from_database(db), use_cache=False)
assert result.strategy == "dp", result.strategy
dump("cyclic", execution.relation, ordered=True)
print("retrieved", sorted(execution.metrics.tuples_retrieved.items()))
print("evaluated", execution.metrics.predicate_evaluations)
"""


class TestFastPathToggle:
    def test_repro_yannakakis_0_matches_1(self):
        """REPRO_YANNAKAKIS=0 and =1 agree on every workload; the cyclic
        fallback is byte-identical down to the DP plan's metrics."""
        outputs = {}
        for flag in ("0", "1"):
            env = dict(os.environ, REPRO_YANNAKAKIS=flag)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", _TOGGLE_SCRIPT],
                capture_output=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs[flag] = proc.stdout
        assert outputs["0"] == outputs["1"]
        assert outputs["0"].count(b"\n") > 5  # the workloads produced rows
