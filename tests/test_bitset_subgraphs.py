"""The bitset fast paths reproduce the naive enumeration *exactly*.

Stronger than set equality: the fast connected-subset, ordered-partition,
and combinable-pair enumerators must yield the same sequences in the same
order as the frozenset code (bit order equals sorted node order, so
ascending submasks match the naive bitmask loop).  That ordering identity
is what keeps DP tie-breaking, IT enumeration order, and uniform IT
sampling byte-identical across both paths.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    canonicalize,
    count_implementing_trees,
    implementing_trees,
    sample_implementing_tree,
)
from repro.core.enumeration import _ordered_partitions, root_operator
from repro.datagen import chain, random_databases, random_nice_graph, star
from repro.engine import Storage
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    combinable_pairs,
    connected_subsets,
)
from repro.util.fastpath import kernel_mode

SCENARIOS = [
    chain(4, ["join", "out", "out"]),
    chain(5, ["out", "join", "out", "join"]),
    star(5, oj_leaves=2),
    random_nice_graph(2, 2, seed=7),
    random_nice_graph(3, 1, seed=8),
]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: ",".join(sorted(s.graph.nodes)))
class TestEnumerationIdentical:
    def test_connected_subsets_identical(self, scenario):
        with kernel_mode(True):
            fast = connected_subsets(scenario.graph)
        with kernel_mode(False):
            naive = connected_subsets(scenario.graph)
        assert fast == naive

    def test_ordered_partitions_identical(self, scenario):
        graph = scenario.graph
        for subset in connected_subsets(graph):
            if len(subset) < 2:
                continue
            with kernel_mode(True):
                fast = list(_ordered_partitions(graph, subset))
            with kernel_mode(False):
                naive = list(_ordered_partitions(graph, subset))
            assert fast == naive

    def test_combinable_pairs_identical(self, scenario):
        graph = scenario.graph
        with kernel_mode(True):
            fast = list(combinable_pairs(graph, graph.nodes))
        with kernel_mode(False):
            naive = list(combinable_pairs(graph, graph.nodes))
        assert fast == naive

    def test_cut_operator_identical(self, scenario):
        graph = scenario.graph
        for subset in connected_subsets(graph):
            if len(subset) < 2:
                continue
            for side_a, side_b in _ordered_partitions(graph, subset):
                with kernel_mode(True):
                    fast = root_operator(graph, side_a, side_b)
                with kernel_mode(False):
                    naive = root_operator(graph, side_a, side_b)
                assert fast == naive

    def test_implementing_trees_identical(self, scenario):
        with kernel_mode(True):
            fast = [canonicalize(t) for t in implementing_trees(scenario.graph)]
        with kernel_mode(False):
            naive = [canonicalize(t) for t in implementing_trees(scenario.graph)]
        assert fast == naive
        assert len(fast) == count_implementing_trees(scenario.graph)

    def test_it_sampling_identical(self, scenario):
        """Same RNG stream -> same sampled tree on both paths."""
        with kernel_mode(True):
            fast = [
                canonicalize(sample_implementing_tree(scenario.graph, random.Random(s)))
                for s in range(5)
            ]
        with kernel_mode(False):
            naive = [
                canonicalize(sample_implementing_tree(scenario.graph, random.Random(s)))
                for s in range(5)
            ]
        assert fast == naive

    def test_dp_plan_identical(self, scenario):
        dbs = random_databases(scenario.schemas, 1, seed=3, max_rows=7, allow_empty=False)
        storage = Storage.from_database(dbs[0])
        model = CoutCostModel(CardinalityEstimator(storage))
        with kernel_mode(True):
            fast = DPOptimizer(scenario.graph, model).optimize()
        with kernel_mode(False):
            naive = DPOptimizer(scenario.graph, model).optimize()
        assert repr(fast.expr) == repr(naive.expr)
        assert fast.cost == pytest.approx(naive.cost)
