"""Tests for Theorem 1 and the brute-force reorderability checker.

Includes the reproduction's most interesting finding: the paper states the
strongness condition two ways ("preserved" in Section 1.3, "null-supplied"
in Section 3.2), and only the preserved-side reading is correct — a
concrete nice graph whose predicates are strong w.r.t. every null-supplied
relation, but not w.r.t. a preserved one, is NOT freely reorderable.
"""

import pytest

from repro.algebra import And, Comparison, Const, IsNull, Or, eq
from repro.core import (
    QueryGraph,
    brute_force_check,
    is_freely_reorderable,
    jn,
    oj,
    strongness_requirements,
    theorem1_applies,
)
from repro.datagen import (
    chain,
    example2_graph,
    figure2_graph,
    random_databases,
    random_nice_graph,
    weaken_oj_edge,
)


class TestTheorem1Checker:
    def test_nice_strong_graph_passes(self):
        scenario = chain(3, ["join", "out"])
        verdict = theorem1_applies(scenario.graph, scenario.registry)
        assert verdict.freely_reorderable and verdict.nice

    def test_non_nice_graph_fails(self):
        scenario = example2_graph()
        verdict = theorem1_applies(scenario.graph, scenario.registry)
        assert not verdict.freely_reorderable
        assert not verdict.nice
        assert verdict.niceness_violations

    def test_weak_predicate_fails_blanket_check(self):
        scenario = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))
        verdict = theorem1_applies(scenario.graph, scenario.registry)
        assert verdict.nice
        assert not verdict.freely_reorderable

    def test_minimal_mode_only_requires_chained_edges(self):
        """A weak predicate on a root-attached OJ edge is harmless: its
        preserved endpoint can never be null-padded."""
        scenario = weaken_oj_edge(chain(3, ["join", "out"]), ("R2", "R3"))
        blanket = theorem1_applies(scenario.graph, scenario.registry, minimal=False)
        minimal = theorem1_applies(scenario.graph, scenario.registry, minimal=True)
        assert not blanket.freely_reorderable
        assert minimal.freely_reorderable
        # And brute force agrees with the minimal verdict:
        dbs = random_databases(scenario.schemas, 30, seed=23)
        assert brute_force_check(scenario.graph, dbs).consistent

    def test_expression_level_helper(self):
        scenario = chain(3, ["join", "out"])
        q = oj(jn("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a"))
        assert is_freely_reorderable(q, scenario.registry)

    def test_figure2_certified(self):
        scenario = figure2_graph()
        assert theorem1_applies(scenario.graph, scenario.registry).freely_reorderable

    def test_strongness_requirements_report(self):
        scenario = chain(3, ["out", "out"])
        reqs = strongness_requirements(scenario.graph, scenario.registry)
        by_edge = {r.edge: r for r in reqs}
        assert by_edge[("R1", "R2")].needed_minimally is False  # R1 never padded
        assert by_edge[("R2", "R3")].needed_minimally is True  # R2 can be padded
        assert all(r.satisfied for r in reqs)


class TestBruteForce:
    def test_nice_graph_consistent(self):
        scenario = chain(3, ["join", "out"])
        dbs = random_databases(scenario.schemas, 15, seed=3)
        report = brute_force_check(scenario.graph, dbs)
        assert report.consistent
        assert report.trees_checked == 8

    def test_example2_witness_found(self):
        scenario = example2_graph()
        dbs = random_databases(scenario.schemas, 40, seed=5)
        report = brute_force_check(scenario.graph, dbs)
        assert not report.consistent
        assert report.witness is not None
        q1, q2, diff = report.witness
        assert "differ" in diff

    def test_example3_weak_predicate_witness(self):
        """Non-strong predicate on a chained OJ edge breaks reorderability."""
        scenario = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))
        dbs = random_databases(scenario.schemas, 60, seed=6)
        report = brute_force_check(scenario.graph, dbs)
        assert not report.consistent

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem_matches_brute_force_on_random_nice(self, seed):
        scenario = random_nice_graph(2, 2, seed=seed)
        assert theorem1_applies(scenario.graph, scenario.registry).freely_reorderable
        dbs = random_databases(scenario.schemas, 10, seed=seed + 50)
        assert brute_force_check(scenario.graph, dbs).consistent

    def test_max_trees_bound(self):
        scenario = chain(4)
        dbs = random_databases(scenario.schemas, 2, seed=8)
        report = brute_force_check(scenario.graph, dbs, max_trees=5)
        assert report.trees_checked == 5


class TestStrongnessErratum:
    """Lemma 2's 'null-supplied' phrasing is an erratum; Section 1.3's
    'preserved' phrasing is the operative condition."""

    def _erratum_scenario(self):
        # Chain R1 → R2 → R3.  P_23 is strong w.r.t. R3 (the null-supplied
        # side) but NOT w.r.t. R2 (the preserved side):
        #   (R2.a = R3.a) OR (R3.a = 5 AND R2.a IS NULL)
        scenario = chain(3, ["out", "out"])
        weak = Or(
            (
                eq("R2.a", "R3.a"),
                And((Comparison("R3.a", "=", Const(5)), IsNull("R2.a"))),
            )
        )
        oj_edges = dict(scenario.graph.oj_edges)
        oj_edges[("R2", "R3")] = weak
        graph = QueryGraph(scenario.graph.nodes, dict(scenario.graph.join_edges), oj_edges)
        return scenario, graph, weak

    def test_predicate_strong_wrt_null_supplied_only(self):
        _scenario, _graph, weak = self._erratum_scenario()
        assert weak.is_strong(["R3.a"])  # null-supplied side: strong
        assert not weak.is_strong(["R2.a"])  # preserved side: NOT strong

    def test_not_freely_reorderable_despite_null_supplied_strongness(self):
        scenario, graph, _weak = self._erratum_scenario()
        # The preserved-side checker correctly refuses to certify:
        assert not theorem1_applies(graph, scenario.registry).freely_reorderable
        # ... and brute force confirms the graph is genuinely not freely
        # reorderable, so the 'null-supplied' reading would be unsound.
        dbs = random_databases(scenario.schemas, 80, seed=17, domain=6)
        report = brute_force_check(graph, dbs)
        assert not report.consistent
