"""Tests for generalized-outerjoin identities 15 and 16 (Section 6.2)."""

import pytest

from repro.algebra import Database, NULL, Relation, bag_equal, eq
from repro.core import (
    GojSetting,
    check_identity15,
    check_identity16,
    jn,
    oj,
    reassociate_outerjoin_of_join,
)
from repro.datagen import duplicate_free_database
from repro.util.errors import NotApplicableError, PredicateError

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")


def goj_settings(count=25, seed=900):
    from repro.util.rng import make_rng

    rng = make_rng(seed)
    for _ in range(count):
        db = duplicate_free_database(SCHEMAS, seed=rng)
        yield GojSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=PYZ)


class TestIdentity15:
    def test_holds_on_duplicate_free_data(self):
        for setting in goj_settings():
            ok, diff = check_identity15(setting)
            assert ok, f"identity 15 failed:\n{diff}"

    def test_rejects_duplicates(self):
        x = Relation.from_dicts(["X.a", "X.b"], [{"X.a": 1, "X.b": 1}] * 2)
        y = Relation.from_dicts(["Y.a", "Y.b"], [{"Y.a": 1, "Y.b": 1}])
        z = Relation.from_dicts(["Z.a", "Z.b"], [{"Z.a": 1, "Z.b": 1}])
        setting = GojSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        with pytest.raises(PredicateError):
            check_identity15(setting)

    def test_rejects_nonstrong_predicate(self):
        from repro.algebra import IsNull, Or

        weak = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))
        db = duplicate_free_database(SCHEMAS, seed=1)
        setting = GojSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=weak)
        with pytest.raises(PredicateError):
            check_identity15(setting)

    def test_manual_example2_rescue(self):
        """Identity 15 right-to-left reassociates Example 2's query."""
        x = Relation.from_dicts(["X.a", "X.b"], [{"X.a": 1, "X.b": 9}])
        y = Relation.from_dicts(["Y.a", "Y.b"], [{"Y.a": 1, "Y.b": 5}])
        z = Relation.from_dicts(["Z.a", "Z.b"], [{"Z.a": 0, "Z.b": 7}])  # no match
        setting = GojSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        ok, diff = check_identity15(setting)
        assert ok, str(diff)
        # Both sides pad X entirely (the join Y-Z is empty).
        lhs, _ = (setting.x, None)


class TestIdentity16:
    def test_holds_with_valid_projection(self):
        for setting in goj_settings(seed=901):
            # S must contain the X-Y join attribute from Y: Y.a.
            ok, diff = check_identity16(setting, ["Y.a"])
            assert ok, f"identity 16 failed:\n{diff}"

    def test_holds_with_full_y_scheme(self):
        for setting in goj_settings(count=10, seed=902):
            ok, diff = check_identity16(setting, ["Y.a", "Y.b"])
            assert ok, f"identity 16 failed:\n{diff}"

    def test_projection_must_cover_join_attrs(self):
        setting = next(iter(goj_settings(count=1)))
        with pytest.raises(PredicateError):
            check_identity16(setting, ["Y.b"])  # misses Y.a

    def test_projection_must_be_within_y(self):
        setting = next(iter(goj_settings(count=1)))
        with pytest.raises(PredicateError):
            check_identity16(setting, ["X.a"])


class TestExample2Rescue:
    def test_rewrite_matches_original_semantics(self):
        """X → (Y − Z) = (X → Y) GOJ[sch(X)] Z on duplicate-free data."""
        for seed in range(15):
            db = duplicate_free_database(SCHEMAS, seed=seed)
            original = oj("X", jn("Y", "Z", PYZ), PXY)
            rewritten = reassociate_outerjoin_of_join(original)
            assert bag_equal(original.eval(db), rewritten.eval(db)), f"seed {seed}"

    def test_rewrite_shape(self):
        original = oj("X", jn("Y", "Z", PYZ), PXY)
        rewritten = reassociate_outerjoin_of_join(original)
        assert "GOJ" in rewritten.to_infix()
        # Left-deep: the outerjoin is now the left child.
        assert rewritten.left.to_infix() == "(X → Y)"

    def test_rewrite_requires_oj_over_join(self):
        with pytest.raises(NotApplicableError):
            reassociate_outerjoin_of_join(jn("X", "Y", PXY))
        with pytest.raises(NotApplicableError):
            reassociate_outerjoin_of_join(oj("X", "Y", PXY))

    def test_rescued_query_on_example2_data(self):
        """Example 2's literal database, with the GOJ evaluation."""
        db = Database(
            {
                "X": Relation.from_dicts(["X.a", "X.b"], [{"X.a": 1, "X.b": 0}]),
                "Y": Relation.from_dicts(["Y.a", "Y.b"], [{"Y.a": 1, "Y.b": 1}]),
                "Z": Relation.from_dicts(["Z.a", "Z.b"], [{"Z.a": 0, "Z.b": 2}]),
            }
        )
        original = oj("X", jn("Y", "Z", PYZ), PXY)
        rewritten = reassociate_outerjoin_of_join(original)
        out = original.eval(db)
        assert len(out) == 1  # X padded
        row = next(iter(out))
        assert row["Y.a"] is NULL and row["Z.a"] is NULL
        assert bag_equal(out, rewritten.eval(db))
