"""Property-based tests (hypothesis) for the core invariants.

Strategies build small random relations with nulls and duplicates, random
predicates, and random graph scenarios; the properties are the paper's
claims themselves:

* equation 10 decomposition, semijoin/antijoin partition;
* identities 2, 11, 13 unconditionally; identity 12 under strongness;
* graph preservation of every basic transform;
* Theorem 1 (nice + strong  ⇒  all ITs evaluate equal) end to end;
* padding-comparison laws used throughout the proofs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra import (
    NULL,
    Relation,
    Row,
    antijoin,
    bag_equal,
    eq,
    join,
    outerjoin,
    semijoin,
    union_padded,
)
from repro.core import (
    IDENTITIES,
    TriSetting,
    applicable_transforms,
    apply_transform,
    canonicalize,
    graph_of,
    implementing_trees,
    sample_implementing_tree,
    theorem1_applies,
)
from repro.datagen import GraphScenario, chain, random_nice_graph
from repro.util.rng import make_rng

# -- strategies ---------------------------------------------------------------

values = st.one_of(st.integers(min_value=0, max_value=3), st.just(NULL))


def relation_strategy(attrs: tuple[str, ...], max_rows: int = 4):
    row = st.fixed_dictionaries({a: values for a in attrs})
    return st.lists(row, min_size=0, max_size=max_rows).map(
        lambda dicts: Relation(list(attrs), [Row(d) for d in dicts])
    )


xs = relation_strategy(("X.a", "X.b"))
ys = relation_strategy(("Y.a", "Y.b"))
zs = relation_strategy(("Z.a", "Z.b"))

PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")


class TestAlgebraProperties:
    @given(x=xs, y=ys)
    @settings(max_examples=60, deadline=None)
    def test_equation10_decomposition(self, x, y):
        lhs = outerjoin(x, y, PXY)
        rhs = union_padded(join(x, y, PXY), antijoin(x, y, PXY))
        assert bag_equal(lhs, rhs)

    @given(x=xs, y=ys)
    @settings(max_examples=60, deadline=None)
    def test_semijoin_antijoin_partition(self, x, y):
        assert len(semijoin(x, y, PXY)) + len(antijoin(x, y, PXY)) == len(x)

    @given(x=xs, y=ys)
    @settings(max_examples=60, deadline=None)
    def test_outerjoin_cardinality_at_least_preserved(self, x, y):
        assert len(outerjoin(x, y, PXY)) >= len(x)

    @given(x=xs, y=ys)
    @settings(max_examples=60, deadline=None)
    def test_join_commutes(self, x, y):
        assert bag_equal(join(x, y, PXY), join(y, x, PXY))

    @given(x=xs)
    @settings(max_examples=30, deadline=None)
    def test_padding_is_idempotent_for_comparison(self, x):
        wider = x.pad_to(x.schema.union(["W.q"]))
        assert bag_equal(x, wider)


class TestIdentityProperties:
    @given(x=xs, y=ys, z=zs)
    @settings(max_examples=40, deadline=None)
    def test_identity2(self, x, y, z):
        setting = TriSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        ok, diff = IDENTITIES["2"].check(setting)
        assert ok, str(diff)

    @given(x=xs, y=ys, z=zs)
    @settings(max_examples=40, deadline=None)
    def test_identity11(self, x, y, z):
        setting = TriSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        ok, diff = IDENTITIES["11"].check(setting)
        assert ok, str(diff)

    @given(x=xs, y=ys, z=zs)
    @settings(max_examples=40, deadline=None)
    def test_identity12_under_strongness(self, x, y, z):
        setting = TriSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        ok, diff = IDENTITIES["12"].check(setting)
        assert ok, str(diff)

    @given(x=xs, y=ys, z=zs)
    @settings(max_examples=40, deadline=None)
    def test_identity13(self, x, y, z):
        setting = TriSetting(x=x, y=y, z=z, pxy=PXY, pyz=PYZ)
        ok, diff = IDENTITIES["13"].check(setting)
        assert ok, str(diff)


def _db_for(scenario: GraphScenario, draw_rows) -> "Database":
    from repro.algebra import Database

    relations = {}
    for name, attrs in sorted(scenario.schemas.items()):
        relations[name] = draw_rows(tuple(sorted(attrs)))
    return Database(relations)


scenario_seeds = st.integers(min_value=0, max_value=10_000)


class TestTransformProperties:
    @given(seed=scenario_seeds, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bts_preserve_graph(self, seed, data):
        rng = make_rng(seed)
        scenario = random_nice_graph(2, 2, seed=rng)
        reg = scenario.registry
        tree = sample_implementing_tree(scenario.graph, rng)
        transforms = list(applicable_transforms(tree, reg))
        if not transforms:
            return
        t = transforms[rng.randrange(len(transforms))]
        out = apply_transform(tree, t, reg)
        assert graph_of(out, reg) == scenario.graph

    @given(seed=scenario_seeds, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_theorem1_on_random_nice_graphs(self, seed, data):
        """nice + strong  ⇒  two random ITs evaluate identically."""
        rng = make_rng(seed)
        scenario = random_nice_graph(2, 2, seed=rng)
        reg = scenario.registry
        assert theorem1_applies(scenario.graph, reg).freely_reorderable
        t1 = sample_implementing_tree(scenario.graph, rng)
        t2 = sample_implementing_tree(scenario.graph, rng)
        db = _db_for(
            scenario,
            lambda attrs: data.draw(relation_strategy(attrs, max_rows=3)),
        )
        assert bag_equal(t1.eval(db), t2.eval(db)), f"{t1!r} vs {t2!r}"

    @given(seed=scenario_seeds)
    @settings(max_examples=20, deadline=None)
    def test_canonicalize_idempotent(self, seed):
        rng = make_rng(seed)
        scenario = chain(4, ["join", "out", "join"])
        tree = sample_implementing_tree(scenario.graph, rng)
        once = canonicalize(tree)
        assert canonicalize(once) == once

    @given(seed=scenario_seeds)
    @settings(max_examples=10, deadline=None)
    def test_enumeration_has_no_duplicates(self, seed):
        rng = make_rng(seed)
        scenario = random_nice_graph(2, 2, seed=rng)
        trees = list(implementing_trees(scenario.graph))
        assert len(trees) == len(set(trees))
