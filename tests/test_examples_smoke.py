"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; these tests keep them honest as
the library evolves.  Each example's ``main()`` is imported and run with
stdout captured, and a few landmark strings are asserted.
"""

import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    buffer = io.StringIO()
    # Examples with heavy defaults stay runnable here because they are
    # parameterized by module-level constants only through main().
    with redirect_stdout(buffer):
        spec.loader.exec_module(module)
        module.main()
    return buffer.getvalue()


@pytest.mark.parametrize(
    "name,landmarks",
    [
        ("quickstart", ["Theorem 1", "reordered plan retrieves", "bag-equal"]),
        (
            "departments_and_employees",
            ["OUTERJOIN", "outerjoin ⇒ join", "empty departments found"],
        ),
        ("optimizer_tour", ["barrier", "OUTERJOIN should run first"]),
        (
            "unnest_link_language",
            ["Queretaro", "freely reorderable", "optimized tree"],
        ),
        ("proof_replay", ["Figure 3", "Example 2", "generalized outerjoin"]),
        (
            "extensions_tour",
            ["full outerjoin ⇒ left outerjoin", "zero reordering freedom", "minimal condition"],
        ),
    ],
)
def test_example_runs(name, landmarks):
    output = run_example(name)
    for landmark in landmarks:
        assert landmark in output, f"{name}: missing {landmark!r}"


def test_examples_directory_is_covered():
    """Every example file has a smoke test (no silent rot)."""
    tested = {
        "quickstart",
        "departments_and_employees",
        "optimizer_tour",
        "unnest_link_language",
        "proof_replay",
        "extensions_tour",
    }
    on_disk = {p.stem for p in EXAMPLES.glob("*.py")}
    assert on_disk == tested
