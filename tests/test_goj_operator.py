"""Unit tests for the generalized outerjoin (equation 14)."""

import pytest

from repro.algebra import (
    NULL,
    Relation,
    bag_equal,
    eq,
    generalized_outerjoin,
    join,
    outerjoin,
)
from repro.util.errors import SchemaError


@pytest.fixture
def r1():
    return Relation.from_dicts(
        ["R1.k", "R1.v"],
        [{"R1.k": 1, "R1.v": "a"}, {"R1.k": 1, "R1.v": "b"}, {"R1.k": 2, "R1.v": "c"}],
    )


@pytest.fixture
def r2():
    return Relation.from_dicts(["R2.k"], [{"R2.k": 1}])


class TestGeneralizedOuterjoin:
    def test_contains_the_join(self, r1, r2):
        p = eq("R1.k", "R2.k")
        out = generalized_outerjoin(r1, r2, p, ["R1.k"])
        j = join(r1, r2, p)
        for row in j.distinct_rows():
            assert row in out

    def test_unmatched_projections_padded_once(self, r1, r2):
        p = eq("R1.k", "R2.k")
        out = generalized_outerjoin(r1, r2, p, ["R1.k"])
        padded = [row for row in out if row["R2.k"] is NULL]
        # Only the S-projection {R1.k: 2} is unmatched; it appears once,
        # padded with nulls outside S (including R1.v!).
        assert len(padded) == 1
        assert padded[0]["R1.k"] == 2
        assert padded[0]["R1.v"] is NULL

    def test_matched_projection_suppresses_padding(self):
        """The refinement over Dayal's Generalized-Join: an unmatched tuple
        whose S-projection appeared in the join adds no padded row."""
        r1 = Relation.from_dicts(
            ["R1.k", "R1.v"], [{"R1.k": 1, "R1.v": "hit"}, {"R1.k": 1, "R1.v": "miss"}]
        )
        r2 = Relation.from_dicts(["R2.k", "R2.v"], [{"R2.k": 1, "R2.v": "hit"}])
        from repro.algebra import And, Comparison

        p = And((eq("R1.k", "R2.k"), Comparison("R1.v", "=", "R2.v")))
        out = generalized_outerjoin(r1, r2, p, ["R1.k"])
        # "miss" fails the join but its projection {k:1} matched via "hit".
        assert len(out) == 1

    def test_full_scheme_projection_equals_outerjoin_on_duplicate_free(self, r2):
        r1 = Relation.from_dicts(["R1.k", "R1.v"], [{"R1.k": 1, "R1.v": "a"},
                                                     {"R1.k": 2, "R1.v": "c"}])
        p = eq("R1.k", "R2.k")
        goj = generalized_outerjoin(r1, r2, p, ["R1.k", "R1.v"])
        oj = outerjoin(r1, r2, p)
        assert bag_equal(goj, oj)

    def test_projection_must_be_subset_of_left(self, r1, r2):
        with pytest.raises(SchemaError):
            generalized_outerjoin(r1, r2, eq("R1.k", "R2.k"), ["R2.k"])

    def test_empty_right(self, r1):
        out = generalized_outerjoin(
            r1, Relation(["R2.k"]), eq("R1.k", "R2.k"), ["R1.k"]
        )
        # Two distinct projections, each padded once.
        assert len(out) == 2
        assert all(row["R2.k"] is NULL for row in out)

    def test_empty_left(self, r2):
        out = generalized_outerjoin(
            Relation(["R1.k", "R1.v"]), r2, eq("R1.k", "R2.k"), ["R1.k"]
        )
        assert out.is_empty()
