"""Tests for the merge join and the physical generalized outerjoin."""

import pytest

from repro.algebra import NULL, bag_equal, eq, generalized_outerjoin
from repro.core import goj, jn, oj
from repro.datagen import random_databases
from repro.engine import (
    GeneralizedOuterJoinOp,
    HashJoin,
    MergeJoin,
    SeqScan,
    Storage,
    execute,
)
from repro.util.errors import PlanningError


@pytest.fixture
def storage():
    st = Storage()
    st.create_table(
        "X", ["X.k", "X.v"], [{"X.k": i % 3, "X.v": i} for i in range(6)]
    )
    st.create_table("Y", ["Y.k"], [{"Y.k": 0}, {"Y.k": 1}, {"Y.k": 1}, {"Y.k": NULL}])
    return st


class TestMergeJoin:
    @pytest.mark.parametrize("join_type", ["inner", "left_outer", "semi", "anti"])
    def test_matches_hash_join(self, storage, join_type):
        mj = MergeJoin(
            SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k", join_type=join_type
        ).run()
        hj = HashJoin(
            SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k", join_type=join_type
        ).run()
        assert bag_equal(mj, hj), join_type

    def test_matches_algebra_oracle(self, storage):
        oracle = oj("X", "Y", eq("X.k", "Y.k")).eval(storage.to_database())
        mj = MergeJoin(
            SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k",
            join_type="left_outer",
        ).run()
        assert bag_equal(mj, oracle)

    def test_null_keyed_left_rows(self):
        st = Storage()
        st.create_table("X", ["X.k"], [{"X.k": NULL}, {"X.k": 1}])
        st.create_table("Y", ["Y.k"], [{"Y.k": 1}])
        loj = MergeJoin(SeqScan(st["X"]), SeqScan(st["Y"]), "X.k", "Y.k",
                        join_type="left_outer").run()
        assert len(loj) == 2  # null row preserved, padded
        anti = MergeJoin(SeqScan(st["X"]), SeqScan(st["Y"]), "X.k", "Y.k",
                         join_type="anti").run()
        assert len(anti) == 1  # only the null-keyed row

    def test_randomized_differential(self):
        schemas = {"X": ["X.k", "X.v"], "Y": ["Y.k", "Y.w"]}
        for seed, db in enumerate(random_databases(schemas, 10, seed=66)):
            st = Storage.from_database(db)
            for join_type in ("inner", "left_outer"):
                mj = MergeJoin(SeqScan(st["X"]), SeqScan(st["Y"]), "X.k", "Y.k",
                               join_type=join_type).run()
                hj = HashJoin(SeqScan(st["X"]), SeqScan(st["Y"]), "X.k", "Y.k",
                              join_type=join_type).run()
                assert bag_equal(mj, hj), (seed, join_type)

    def test_describe(self, storage):
        plan = MergeJoin(SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k")
        assert "MergeJoin" in plan.describe()

    def test_bad_join_type(self, storage):
        with pytest.raises(PlanningError):
            MergeJoin(SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k",
                      join_type="full")


class TestGeneralizedOuterJoinOp:
    def test_matches_algebra(self, storage):
        op = GeneralizedOuterJoinOp(
            SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k", ["X.k"]
        )
        oracle = generalized_outerjoin(
            storage["X"].to_relation(), storage["Y"].to_relation(),
            eq("X.k", "Y.k"), ["X.k"],
        )
        assert bag_equal(op.run(), oracle)

    def test_through_planner(self, storage):
        q = goj("X", "Y", eq("X.k", "Y.k"), ["X.k"])
        result = execute(q, storage)
        assert bag_equal(result.relation, q.eval(storage.to_database()))
        assert "GeneralizedOuterJoin" in result.plan.describe()

    def test_projection_must_be_left_side(self, storage):
        with pytest.raises(PlanningError):
            GeneralizedOuterJoinOp(
                SeqScan(storage["X"]), SeqScan(storage["Y"]), "X.k", "Y.k", ["Y.k"]
            )

    def test_non_equi_goj_rejected_by_planner(self, storage):
        from repro.algebra import gt

        q = goj("X", "Y", gt("X.k", "Y.k"), ["X.k"])
        with pytest.raises(PlanningError):
            execute(q, storage)

    def test_randomized_differential(self):
        schemas = {"X": ["X.k", "X.v"], "Y": ["Y.k", "Y.w"]}
        for db in random_databases(schemas, 12, seed=67):
            st = Storage.from_database(db)
            q = goj("X", "Y", eq("X.k", "Y.k"), ["X.k"])
            assert bag_equal(execute(q, st).relation, q.eval(db))

    def test_identity15_on_the_engine(self):
        """Identity 15's two sides, both executed physically."""
        from repro.datagen import duplicate_free_database

        schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
        pxy, pyz = eq("X.a", "Y.a"), eq("Y.b", "Z.b")
        for seed in range(8):
            db = duplicate_free_database(schemas, seed=seed)
            st = Storage.from_database(db)
            lhs = oj("X", jn("Y", "Z", pyz), pxy)
            rhs = goj(oj("X", "Y", pxy), "Z", pyz, ["X.a", "X.b"])
            assert bag_equal(execute(lhs, st).relation, execute(rhs, st).relation), seed
