"""Property tests for GYO reduction against a brute-force acyclicity oracle.

The oracle is the textbook characterization (Beeri–Fagin–Maier–Yannakakis):
a hypergraph is α-acyclic iff it is *conformal* (every maximal clique of
the primal graph fits in a hyperedge) and its primal graph is *chordal*
(checked by simplicial elimination).  That computation shares no code
with :func:`repro.core.gyo.gyo_reduce`, so agreement on hundreds of
random hypergraphs — accept and reject paths both — is real evidence.

The accept path additionally replays every certificate
(:meth:`GYOCertificate.validates`) and checks the induced ear forest is
well-formed; the bridge tests pin :func:`join_tree_of` behaviour on the
repo's named topologies, including the cyclic and unsafe-outerjoin
rejections the optimizer's DP fallback relies on.
"""

import random

import pytest

from repro.algebra.predicates import eq
from repro.core.graph import QueryGraph
from repro.core.gyo import (
    EarStep,
    GYOCertificate,
    class_hypergraph,
    gyo_reduce,
    join_tree_of,
)
from repro.datagen.topologies import (
    chain,
    example2_graph,
    figure1_graph,
    figure2_graph,
    join_cycle,
    random_nice_graph,
    snowflake,
    star,
)

# ---------------------------------------------------------------------------
# Brute-force oracle: acyclic iff conformal + chordal primal graph
# ---------------------------------------------------------------------------


def primal_graph(hyper):
    vertices = sorted(set().union(*hyper.values())) if hyper else []
    adj = {v: set() for v in vertices}
    for verts in hyper.values():
        for a in verts:
            for b in verts:
                if a != b:
                    adj[a].add(b)
    return vertices, adj


def is_chordal(vertices, adj):
    """Simplicial elimination: chordal iff it empties the graph."""
    remaining = set(vertices)
    while remaining:
        for v in sorted(remaining):
            nbrs = adj[v] & remaining
            if all(b in adj[a] for a in nbrs for b in nbrs if a != b):
                remaining.discard(v)
                break
        else:
            return False
    return True


def is_conformal(hyper, vertices, adj):
    """Every maximal clique of the primal graph lies inside a hyperedge."""
    n = len(vertices)
    cliques = []
    for mask in range(1, 1 << n):
        subset = [vertices[i] for i in range(n) if mask >> i & 1]
        if all(b in adj[a] for a in subset for b in subset if a != b):
            cliques.append(frozenset(subset))
    maximal = [c for c in cliques if not any(c < d for d in cliques)]
    return all(any(c <= e for e in hyper.values()) for c in maximal)


def oracle_acyclic(hyper):
    vertices, adj = primal_graph(hyper)
    return is_chordal(vertices, adj) and is_conformal(hyper, vertices, adj)


def random_hypergraph(rng):
    n_verts = rng.randint(1, 7)
    universe = [chr(ord("a") + i) for i in range(n_verts)]
    n_edges = rng.randint(1, 6)
    hyper = {}
    for i in range(n_edges):
        k = rng.randint(1, min(4, n_verts))
        hyper[f"e{i}"] = frozenset(rng.sample(universe, k))
    return hyper


class TestOracleAgreement:
    def test_500_random_hypergraphs_never_misclassified(self):
        """Acceptance gate: GYO agrees with the oracle on ≥ 500 graphs,
        with healthy counts on both the accept and the reject path."""
        rng = random.Random(20260808)
        accepted = rejected = 0
        for _ in range(600):
            hyper = random_hypergraph(rng)
            cert = gyo_reduce(hyper)
            expected = oracle_acyclic(hyper)
            assert (cert is not None) == expected, hyper
            if cert is None:
                rejected += 1
            else:
                accepted += 1
                assert cert.validates(hyper), hyper
        assert accepted >= 50
        assert rejected >= 50

    def test_certificate_forest_is_well_formed(self):
        """Each edge is removed exactly once, and every witness is still
        un-removed (appears later in the ear ordering) at its step."""
        rng = random.Random(99)
        checked = 0
        while checked < 60:
            hyper = random_hypergraph(rng)
            cert = gyo_reduce(hyper)
            if cert is None:
                continue
            checked += 1
            removed = [s.edge for s in cert.steps]
            assert sorted(removed) == sorted(hyper)
            position = {name: i for i, name in enumerate(removed)}
            for child, parent in cert.tree_edges():
                assert child != parent
                assert position[parent] > position[child]


class TestKnownHypergraphs:
    def test_triangle_is_cyclic(self):
        hyper = {
            "e1": frozenset("ab"),
            "e2": frozenset("bc"),
            "e3": frozenset("ac"),
        }
        assert gyo_reduce(hyper) is None
        assert not oracle_acyclic(hyper)

    def test_covered_triangle_is_acyclic(self):
        """Adding the covering edge {a,b,c} makes the triangle α-acyclic."""
        hyper = {
            "e1": frozenset("ab"),
            "e2": frozenset("bc"),
            "e3": frozenset("ac"),
            "e4": frozenset("abc"),
        }
        cert = gyo_reduce(hyper)
        assert cert is not None and cert.validates(hyper)
        assert oracle_acyclic(hyper)

    def test_disconnected_components_yield_a_forest(self):
        hyper = {"e1": frozenset("ab"), "e2": frozenset("cd")}
        cert = gyo_reduce(hyper)
        assert cert is not None
        assert cert.tree_edges() == ()
        assert sum(1 for s in cert.steps if s.witness is None) == 2

    def test_single_edge(self):
        cert = gyo_reduce({"only": frozenset("xyz")})
        assert cert is not None
        assert cert.steps == (EarStep("only", None),)


class TestCertificateReplay:
    HYPER = {
        "r": frozenset("ab"),
        "s": frozenset("bc"),
        "t": frozenset("cd"),
    }

    def test_replay_accepts_genuine_certificate(self):
        cert = gyo_reduce(self.HYPER)
        assert cert.validates(self.HYPER)

    def test_replay_rejects_wrong_witness(self):
        bad = GYOCertificate(
            (EarStep("r", "t"), EarStep("s", "t"), EarStep("t", None))
        )
        assert not bad.validates(self.HYPER)

    def test_replay_rejects_incomplete_ordering(self):
        partial = GYOCertificate((EarStep("r", "s"),))
        assert not partial.validates(self.HYPER)

    def test_replay_rejects_foreign_hypergraph(self):
        cert = gyo_reduce(self.HYPER)
        triangle = {
            "r": frozenset("ab"),
            "s": frozenset("bc"),
            "t": frozenset("ac"),
        }
        # 'r' shares {a, b} with the rest but its witness covers ≤ one.
        assert not cert.validates(triangle)


# ---------------------------------------------------------------------------
# QueryGraph bridge
# ---------------------------------------------------------------------------


def cyclic_triangle_graph():
    """A genuinely cyclic *class* hypergraph (three distinct key classes)."""
    return QueryGraph.from_edges(
        join=[
            ("R1", "R2", eq("R1.a", "R2.a")),
            ("R2", "R3", eq("R2.b", "R3.b")),
            ("R3", "R1", eq("R3.a", "R1.b")),
        ]
    )


TRIANGLE_SCHEMAS = {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3")}


class TestJoinTreeOf:
    @pytest.mark.parametrize(
        "scenario",
        [
            chain(4),
            chain(3, ["join", "out"]),
            star(4),
            star(5, oj_leaves=2),
            snowflake(3, arm_length=2, oj_arms=1),
            figure1_graph(),
            figure2_graph(),
            random_nice_graph(3, 2, seed=5),
        ],
        ids=lambda s: s.name,
    )
    def test_acyclic_scenarios_get_trees(self, scenario):
        tree = join_tree_of(scenario.graph, scenario.registry)
        assert tree is not None
        assert set(tree.order) == set(scenario.graph.nodes)
        assert len(tree.edges) == len(tree.order) - 1
        # preorder invariant: each edge's parent precedes its child
        pos = {n: i for i, n in enumerate(tree.order)}
        for edge in tree.edges:
            assert pos[edge.parent] < pos[edge.child]
        # outerjoin edges always hang null-supplied below preserved
        for edge in tree.edges:
            if edge.kind == "oj":
                assert (edge.parent, edge.child) in scenario.graph.oj_edges

    def test_join_cycle_collapses_to_chorded_tree(self):
        """All-``.a`` equijoins merge into one class: acyclic, one chord."""
        scenario = join_cycle(4)
        tree = join_tree_of(scenario.graph, scenario.registry)
        assert tree is not None
        assert len(tree.chords) == 1

    def test_cyclic_class_hypergraph_declines(self):
        from repro.algebra.schema import SchemaRegistry

        graph = cyclic_triangle_graph()
        registry = SchemaRegistry(TRIANGLE_SCHEMAS)
        hyper = class_hypergraph(graph, registry)
        assert hyper is not None
        assert gyo_reduce(hyper) is None
        assert join_tree_of(graph, registry) is None

    def test_non_nice_outerjoin_graph_declines(self):
        """Example 2 (R1 → R2 − R3) fails Theorem 1: no fast path."""
        scenario = example2_graph()
        assert join_tree_of(scenario.graph, scenario.registry) is None

    def test_outerjoin_with_chord_declines(self):
        """A chord in an outerjoin graph forfeits the fast path."""
        graph = QueryGraph.from_edges(
            join=[
                ("A", "B", eq("A.a", "B.a")),
                ("A", "C", eq("A.a", "C.a")),
                ("B", "C", eq("B.a", "C.a")),
            ],
            oj=[("A", "D", eq("A.b", "D.a"))],
        )
        from repro.algebra.schema import SchemaRegistry

        registry = SchemaRegistry({n: [f"{n}.a", f"{n}.b"] for n in "ABCD"})
        assert join_tree_of(graph, registry) is None

    def test_disconnected_graph_declines(self):
        from repro.algebra.schema import SchemaRegistry

        graph = QueryGraph.from_edges(
            join=[("A", "B", eq("A.a", "B.a"))], isolated=["A", "B", "C"]
        )
        registry = SchemaRegistry({n: [f"{n}.a"] for n in "ABC"})
        assert join_tree_of(graph, registry) is None
