"""Canonical fingerprints: order-insensitive, structure-sensitive.

The cache key must collapse every accident of how a query was *written*
(operand order, conjunct order, edge listing order) while separating
every difference that *matters* (edge kind, direction, predicate
structure, node set, pushed filters, cost model).  These tests pin both
directions, with a hypothesis sweep over random graph scenarios for the
invariance half.
"""

from __future__ import annotations

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.algebra import eq
from repro.algebra.predicates import Comparison
from repro.core import graph_of, sample_implementing_tree
from repro.core.graph import QueryGraph
from repro.datagen import chain, figure2_graph, random_nice_graph, random_scenario
from repro.optimizer import graph_fingerprint, plan_cache_key, predicate_signature
from repro.optimizer.fingerprint import canonical_lines
from repro.util.rng import make_rng

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")
P13 = eq("R1.b", "R3.b")


def shuffled_copy(graph: QueryGraph, rng: random.Random) -> QueryGraph:
    """The same graph rebuilt with every edge list order permuted."""
    joins = [(*sorted(pair), p) for pair, p in graph.join_edges.items()]
    ojs = [(u, v, p) for (u, v), p in graph.oj_edges.items()]
    rng.shuffle(joins)
    rng.shuffle(ojs)
    isolated = list(graph.nodes)
    rng.shuffle(isolated)
    return QueryGraph.from_edges(join=joins, oj=ojs, isolated=isolated)


# -- invariance ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_fingerprint_invariant_under_edge_and_node_reordering(seed):
    rng = make_rng(seed)
    scenario = random_scenario(rng)
    baseline = graph_fingerprint(scenario.graph)
    for _ in range(3):
        assert graph_fingerprint(shuffled_copy(scenario.graph, rng)) == baseline


def test_fingerprint_invariant_under_conjunct_reordering():
    forward = QueryGraph.from_edges(join=[("R1", "R2", P12), ("R1", "R2", P13)])
    backward = QueryGraph.from_edges(join=[("R1", "R2", P13), ("R1", "R2", P12)])
    assert graph_fingerprint(forward) == graph_fingerprint(backward)
    # The collapsed-edge signature itself sorts its conjuncts.
    (pred,) = forward.join_edges.values()
    (pred_rev,) = backward.join_edges.values()
    assert predicate_signature(pred) == predicate_signature(pred_rev)


def test_fingerprint_invariant_under_filter_dict_order():
    graph = chain(3, ["join", "out"]).graph
    f1 = Comparison("R1.a", "<=", 1)
    f2 = Comparison("R2.b", "=", 0)
    a = graph_fingerprint(graph, {"R1": [f1], "R2": [f2]})
    b = graph_fingerprint(graph, {"R2": [f2], "R1": [f1]})
    assert a == b


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_implementing_trees_of_one_nice_graph_share_a_fingerprint(seed):
    """Written operator order leaves no trace: graph(T) fingerprints equal."""
    rng = make_rng(seed)
    scenario = random_nice_graph(rng.randint(1, 3), rng.randint(1, 2), seed=rng)
    registry = scenario.registry
    prints = set()
    for _ in range(4):
        tree = sample_implementing_tree(scenario.graph, rng)
        prints.add(graph_fingerprint(graph_of(tree, registry)))
    assert len(prints) == 1


# -- distinctness -------------------------------------------------------------


def test_edge_kind_and_direction_distinguish():
    join_g = QueryGraph.from_edges(join=[("R1", "R2", P12)])
    oj_g = QueryGraph.from_edges(oj=[("R1", "R2", P12)])
    oj_flipped = QueryGraph.from_edges(oj=[("R2", "R1", P12)])
    prints = {
        graph_fingerprint(join_g),
        graph_fingerprint(oj_g),
        graph_fingerprint(oj_flipped),
    }
    assert len(prints) == 3


def test_node_names_and_extra_nodes_distinguish():
    base = QueryGraph.from_edges(join=[("R1", "R2", P12)])
    renamed = QueryGraph.from_edges(join=[("R1", "R9", eq("R1.a", "R9.a"))])
    widened = QueryGraph.from_edges(join=[("R1", "R2", P12)], isolated=["R3"])
    prints = {graph_fingerprint(g) for g in (base, renamed, widened)}
    assert len(prints) == 3


def test_predicate_structure_distinguishes():
    lt = QueryGraph.from_edges(join=[("R1", "R2", Comparison("R1.a", "<", "R2.a"))])
    le = QueryGraph.from_edges(join=[("R1", "R2", Comparison("R1.a", "<=", "R2.a"))])
    assert graph_fingerprint(lt) != graph_fingerprint(le)


def test_filters_and_cost_model_distinguish_cache_keys():
    graph = figure2_graph().graph
    f = Comparison("A.a", "=", 1)
    assert graph_fingerprint(graph) != graph_fingerprint(graph, {"A": [f]})
    assert plan_cache_key(graph, None, "retrieval") != plan_cache_key(graph, None, "cout")


def test_nonisomorphic_random_graphs_rarely_collide():
    """A pool of distinct random scenarios yields pairwise-distinct digests."""
    rng = make_rng(99)
    prints = {}
    for _ in range(120):
        scenario = random_scenario(rng)
        fp = graph_fingerprint(scenario.graph)
        lines = tuple(canonical_lines(scenario.graph))
        if fp in prints:
            # Same digest must mean same canonical description.
            assert prints[fp] == lines
        prints[fp] = lines


# -- stability ----------------------------------------------------------------


def test_fingerprint_is_not_python_hash_dependent():
    """Digests come from structural reprs, so they repeat within a run and
    have the documented length; ``PYTHONHASHSEED`` cannot perturb them."""
    graph = figure2_graph().graph
    first = graph_fingerprint(graph)
    assert first == graph_fingerprint(graph)
    assert len(first) == 32 and all(c in "0123456789abcdef" for c in first)


def test_canonical_lines_are_sorted_and_complete():
    scenario = chain(3, ["join", "out"], name="c")
    lines = canonical_lines(scenario.graph)
    assert lines == sorted(lines)
    kinds = {line.split(":", 1)[0] for line in lines}
    assert kinds == {"node", "join", "oj"}
    assert sum(1 for line in lines if line.startswith("node:")) == 3


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
