"""Shared fixtures: the paper's running three-relation setup and helpers."""

from __future__ import annotations

import pytest

from repro.algebra import Database, Relation, SchemaRegistry, eq
from repro.datagen import random_databases
from repro.observability.spans import default_tracer
from repro.optimizer.plancache import reset_default_plan_cache
from repro.tools import instrumentation


@pytest.fixture(autouse=True)
def _reset_process_counters():
    """Isolate every test from process-global observability state.

    The advisory :data:`repro.tools.instrumentation.STATS` counter, the
    default tracer's retained roots, and the process-wide plan cache are
    the only process-global sinks; a test must never see counts (or
    cached plans) left behind by an earlier test (see
    ``tests/test_metrics_isolation.py``, which asserts this contract).
    """
    instrumentation.reset()
    default_tracer().clear()
    reset_default_plan_cache()
    yield
    instrumentation.reset()
    default_tracer().clear()
    reset_default_plan_cache()


@pytest.fixture
def xyz_registry() -> SchemaRegistry:
    """Registry for the X, Y, Z relations used throughout Section 2."""
    return SchemaRegistry(
        {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
    )


@pytest.fixture
def pxy():
    return eq("X.a", "Y.a")


@pytest.fixture
def pyz():
    return eq("Y.b", "Z.b")


@pytest.fixture
def xyz_db() -> Database:
    """A small hand-built database exercising matches, misses, and nulls."""
    from repro.algebra import NULL

    return Database(
        {
            "X": Relation.from_dicts(
                ["X.a", "X.b"],
                [{"X.a": 1, "X.b": 10}, {"X.a": 2, "X.b": 20}, {"X.a": NULL, "X.b": 30}],
            ),
            "Y": Relation.from_dicts(
                ["Y.a", "Y.b"],
                [{"Y.a": 1, "Y.b": 100}, {"Y.a": 1, "Y.b": 200}, {"Y.a": 9, "Y.b": NULL}],
            ),
            "Z": Relation.from_dicts(
                ["Z.a", "Z.b"], [{"Z.a": 7, "Z.b": 100}, {"Z.a": 8, "Z.b": 999}]
            ),
        }
    )


@pytest.fixture
def xyz_random_dbs():
    """A reproducible batch of randomized X/Y/Z databases."""
    schemas = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
    return random_databases(schemas, count=25, seed=7)
