"""A cross-cutting randomized campaign tying every subsystem together.

Each iteration draws a random graph scenario and database, then runs the
whole gauntlet: graph analysis, tree sampling, transform application,
engine execution, optimizer planning — asserting the global invariants
that must hold regardless of the draw:

* engine == algebra on every sampled implementing tree;
* Theorem-1 verdicts match brute-force evaluation;
* optimizer plans are implementing trees and evaluate to the reference;
* classified-preserving transforms preserve on the drawn database.

Kept at a modest iteration count for CI speed; crank ``CAMPAIGN`` up for
a soak run.
"""

import pytest

from repro.algebra import bag_equal
from repro.core import (
    applicable_transforms,
    apply_transform,
    brute_force_check,
    classify_transform,
    graph_of,
    sample_implementing_tree,
    theorem1_applies,
)
from repro.datagen import random_databases, random_graph, random_nice_graph
from repro.engine import Storage, execute
from repro.optimizer import CardinalityEstimator, CoutCostModel, DPOptimizer
from repro.util.rng import make_rng

CAMPAIGN = 12


@pytest.mark.parametrize("iteration", range(CAMPAIGN))
def test_nice_graph_gauntlet(iteration):
    rng = make_rng(iteration * 31 + 5)
    scenario = random_nice_graph(
        rng.randint(1, 3), rng.randint(1, 3), seed=rng, extra_join_edges=rng.randint(0, 1)
    )
    graph, registry = scenario.graph, scenario.registry
    db = random_databases(scenario.schemas, 1, seed=rng, max_rows=4)[0]
    storage = Storage.from_database(db)

    # 1. Certification must hold by construction.
    assert theorem1_applies(graph, registry).freely_reorderable

    # 2. Sampled trees: engine == algebra == each other.
    reference = None
    for _ in range(3):
        tree = sample_implementing_tree(graph, rng)
        oracle = tree.eval(db)
        assert bag_equal(execute(tree, storage).relation, oracle), tree.to_infix()
        if reference is None:
            reference = oracle
        else:
            assert bag_equal(reference, oracle), tree.to_infix()

    # 3. The optimizer's plan is one more implementing tree of the graph.
    plan = DPOptimizer(graph, CoutCostModel(CardinalityEstimator(storage))).optimize()
    assert graph_of(plan.expr, registry) == graph
    assert bag_equal(plan.expr.eval(db), reference)

    # 4. Every preserving transform preserves on this database.
    tree = sample_implementing_tree(graph, rng)
    for transform in applicable_transforms(tree, registry):
        verdict = classify_transform(tree, transform, registry)
        if verdict.preserving:
            out = apply_transform(tree, transform, registry)
            assert bag_equal(tree.eval(db), out.eval(db)), f"{tree!r} {transform}"


@pytest.mark.parametrize("iteration", range(CAMPAIGN))
def test_arbitrary_graph_gauntlet(iteration):
    """Random (possibly non-nice) graphs: the theorem and brute force must
    never contradict each other in the dangerous direction."""
    rng = make_rng(iteration * 77 + 3)
    scenario = random_graph(4, seed=rng, oj_probability=0.5, extra_edges=1)
    graph, registry = scenario.graph, scenario.registry
    from repro.core import count_implementing_trees

    if count_implementing_trees(graph) == 0:
        return
    dbs = random_databases(scenario.schemas, 6, seed=rng)
    verdict = theorem1_applies(graph, registry)
    result = brute_force_check(graph, dbs)
    if verdict.freely_reorderable:
        # Theorem says safe => no database may expose a disagreement.
        assert result.consistent, graph.describe()
    # (not freely_reorderable ∧ consistent) is fine: the theorem is
    # sufficient, not necessary, and 6 random databases may miss a witness.
