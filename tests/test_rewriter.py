"""Tests for the transformation-based (rewrite) optimizer."""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import graph_of, jn, oj
from repro.datagen import example1_storage, example2_graph, random_databases
from repro.engine import Storage, execute
from repro.optimizer import CardinalityEstimator, CoutCostModel, DPOptimizer, RetrievalCostModel
from repro.optimizer.rewriter import RewriteOptimizer


@pytest.fixture
def ex1():
    storage = example1_storage(300)
    written = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)
    return storage, written, model


class TestExhaustive:
    def test_matches_dp_optimum_on_nice_graph(self, ex1):
        """Theorem 1 makes the rewriter complete: its exhaustive search
        over preserving BTs reaches the DP's optimum."""
        storage, written, model = ex1
        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_exhaustive(written)
        graph = graph_of(written, storage.registry)
        dp = DPOptimizer(graph, model).optimize()
        assert result.best.cost == pytest.approx(dp.cost)
        assert result.improved

    def test_explores_the_full_it_space(self, ex1):
        storage, written, model = ex1
        from repro.core import count_implementing_trees

        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_exhaustive(written)
        graph = graph_of(written, storage.registry)
        assert result.trees_explored == count_implementing_trees(graph)

    def test_result_is_semantically_equal(self, ex1):
        storage, written, model = ex1
        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_exhaustive(written)
        assert bag_equal(
            execute(result.best.expr, storage).relation,
            execute(written, storage).relation,
        )

    def test_safe_on_non_reorderable_queries(self):
        """On Example 2's graph the rewriter only reaches the preserving
        equivalence class — every tree it costs is a correct plan."""
        scenario = example2_graph()
        dbs = random_databases(scenario.schemas, 10, seed=3, allow_empty=False)
        storage = Storage.from_database(dbs[0])
        model = CoutCostModel(CardinalityEstimator(storage))
        written = oj("R1", jn("R2", "R3", eq("R2.a", "R3.a")), eq("R1.a", "R2.a"))
        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_exhaustive(written)
        for db in dbs:
            assert bag_equal(written.eval(db), result.best.expr.eval(db))


class TestHillClimb:
    def test_improves_example1(self, ex1):
        storage, written, model = ex1
        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_hill_climb(written)
        assert result.improved
        measured = execute(result.best.expr, storage)
        assert measured.tuples_retrieved == 3

    def test_never_worse_than_start(self, ex1):
        storage, written, model = ex1
        rewriter = RewriteOptimizer(storage.registry, model)
        result = rewriter.optimize_hill_climb(written)
        assert result.best.cost <= result.start_cost + 1e-9

    def test_explores_fewer_trees_than_exhaustive(self, ex1):
        storage, written, model = ex1
        rewriter = RewriteOptimizer(storage.registry, model)
        climb = rewriter.optimize_hill_climb(written)
        full = rewriter.optimize_exhaustive(written)
        assert climb.trees_explored <= full.trees_explored * 3  # neighbor recounts
        assert climb.best.cost >= full.best.cost - 1e-9
