"""Tests for physical operators: semantics and retrieval accounting."""

import pytest

from repro.algebra import NULL, Comparison, eq, gt
from repro.engine import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    Materialize,
    Metrics,
    NestedLoopJoin,
    ProjectOp,
    SeqScan,
    Storage,
)
from repro.util.errors import PlanningError


@pytest.fixture
def storage():
    st = Storage()
    st.create_table(
        "R", ["R.a", "R.b"], [{"R.a": i, "R.b": i % 2} for i in range(4)]
    )
    st.create_table("S", ["S.a"], [{"S.a": 0}, {"S.a": 1}, {"S.a": 1}])
    st["S"].create_index("S.a")
    return st


class TestScanFilterProject:
    def test_seqscan_counts_retrievals(self, storage):
        m = Metrics()
        rows = list(SeqScan(storage["R"]).execute(m))
        assert len(rows) == 4
        assert m.tuples_retrieved["R"] == 4

    def test_filter(self, storage):
        plan = Filter(SeqScan(storage["R"]), Comparison("R.b", "=", 0))
        # Comparison against a constant: 0 is coerced to Const.
        out = plan.run()
        assert len(out) == 2

    def test_filter_drops_unknown(self):
        st = Storage()
        st.create_table("T", ["T.a"], [{"T.a": NULL}, {"T.a": 1}])
        plan = Filter(SeqScan(st["T"]), Comparison("T.a", "=", 1))
        assert len(plan.run()) == 1

    def test_project_dedup(self, storage):
        plan = ProjectOp(SeqScan(storage["R"]), ["R.b"], dedup=True)
        assert len(plan.run()) == 2

    def test_materialize_pays_once(self, storage):
        m = Metrics()
        mat = Materialize(SeqScan(storage["R"]))
        list(mat.execute(m))
        list(mat.execute(m))
        assert m.tuples_retrieved["R"] == 4


class TestNestedLoopJoin:
    def test_inner(self, storage):
        plan = NestedLoopJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), eq("R.a", "S.a"), "inner"
        )
        out = plan.run()
        assert len(out) == 3  # R.a=0 matches S.a=0; R.a=1 matches two S rows

    def test_left_outer_pads(self, storage):
        plan = NestedLoopJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), eq("R.a", "S.a"), "left_outer"
        )
        out = plan.run()
        padded = [r for r in out if r["S.a"] is NULL]
        assert {r["R.a"] for r in padded} == {2, 3}

    def test_semi_and_anti(self, storage):
        p = eq("R.a", "S.a")
        semi = NestedLoopJoin(SeqScan(storage["R"]), SeqScan(storage["S"]), p, "semi").run()
        anti = NestedLoopJoin(SeqScan(storage["R"]), SeqScan(storage["S"]), p, "anti").run()
        assert {r["R.a"] for r in semi} == {0, 1}
        assert {r["R.a"] for r in anti} == {2, 3}
        assert semi.scheme == frozenset({"R.a", "R.b"})

    def test_inner_input_scanned_once(self, storage):
        m = Metrics()
        plan = NestedLoopJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), eq("R.a", "S.a"), "inner"
        )
        list(plan.execute(m))
        assert m.tuples_retrieved["S"] == 3  # materialized once, not per outer row

    def test_inequality_predicate(self, storage):
        plan = NestedLoopJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), gt("R.a", "S.a"), "inner"
        )
        out = plan.run()
        # pairs with R.a > S.a: R1>S0, R2>S0, R2>S1(x2), R3>S0, R3>S1(x2) = 7
        assert len(out) == 7

    def test_bad_join_type(self, storage):
        with pytest.raises(PlanningError):
            NestedLoopJoin(SeqScan(storage["R"]), SeqScan(storage["S"]), eq("R.a", "S.a"), "full")


class TestIndexNestedLoopJoin:
    def test_counts_only_fetched_tuples(self, storage):
        m = Metrics()
        plan = IndexNestedLoopJoin(
            SeqScan(storage["R"]),
            storage["S"],
            storage["S"].index_on("S.a"),
            "R.a",
            join_type="inner",
        )
        out = list(plan.execute(m))
        assert len(out) == 3
        assert m.tuples_retrieved["S"] == 3  # only matching entries fetched
        assert m.tuples_retrieved["R"] == 4
        assert m.index_probes["S(S.a)"] == 4

    def test_left_outer(self, storage):
        plan = IndexNestedLoopJoin(
            SeqScan(storage["R"]),
            storage["S"],
            storage["S"].index_on("S.a"),
            "R.a",
            join_type="left_outer",
        )
        out = plan.run()
        assert len(out) == 5  # 3 matches + 2 padded

    def test_anti(self, storage):
        plan = IndexNestedLoopJoin(
            SeqScan(storage["R"]),
            storage["S"],
            storage["S"].index_on("S.a"),
            "R.a",
            join_type="anti",
        )
        assert {r["R.a"] for r in plan.run()} == {2, 3}

    def test_residual_predicate(self, storage):
        plan = IndexNestedLoopJoin(
            SeqScan(storage["R"]),
            storage["S"],
            storage["S"].index_on("S.a"),
            "R.a",
            residual=Comparison("R.b", "=", 1),
            join_type="inner",
        )
        out = plan.run()
        assert all(r["R.b"] == 1 for r in out)


class TestHashJoin:
    def test_inner_matches_nlj(self, storage):
        p = eq("R.a", "S.a")
        nlj = NestedLoopJoin(SeqScan(storage["R"]), SeqScan(storage["S"]), p, "inner").run()
        hj = HashJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), "R.a", "S.a", join_type="inner"
        ).run()
        assert nlj == hj

    def test_left_outer_matches_nlj(self, storage):
        p = eq("R.a", "S.a")
        nlj = NestedLoopJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), p, "left_outer"
        ).run()
        hj = HashJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), "R.a", "S.a",
            join_type="left_outer",
        ).run()
        assert nlj == hj

    def test_null_keys_never_match(self):
        st = Storage()
        st.create_table("A", ["A.k"], [{"A.k": NULL}])
        st.create_table("B", ["B.k"], [{"B.k": NULL}])
        hj = HashJoin(SeqScan(st["A"]), SeqScan(st["B"]), "A.k", "B.k", join_type="inner")
        assert len(hj.run()) == 0
        loj = HashJoin(
            SeqScan(st["A"]), SeqScan(st["B"]), "A.k", "B.k", join_type="left_outer"
        )
        assert len(loj.run()) == 1  # padded

    def test_semi_anti(self, storage):
        semi = HashJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), "R.a", "S.a", join_type="semi"
        ).run()
        anti = HashJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), "R.a", "S.a", join_type="anti"
        ).run()
        assert len(semi) + len(anti) == 4

    def test_describe_renders_plan_tree(self, storage):
        plan = HashJoin(
            SeqScan(storage["R"]), SeqScan(storage["S"]), "R.a", "S.a", join_type="inner"
        )
        text = plan.describe()
        assert "HashJoin" in text and "SeqScan(R)" in text
