"""Property tests for the metrics contract over randomized traced queries.

Every traced execution must satisfy the invariants pinned down in
:mod:`repro.observability.contract`: the plan root's ``rows_out`` equals
the query's result cardinality, every operator's ``rows_in`` equals the
sum of its children's ``rows_out``, child spans nest inside their
parents, and no timing or counter goes negative.  The property tests
drive ≥ 200 randomized (scenario, database, query) cases through the
engine *per kernel mode* and demand a clean contract report on each.
"""

from __future__ import annotations

import pytest

from repro.datagen.queries import random_query, random_scenario
from repro.datagen.random_db import random_database
from repro.engine.executor import execute
from repro.engine.storage import Storage
from repro.observability import (
    ENGINE_OP_CATEGORY,
    Span,
    operator_spans,
    tracing,
    validate_span_tree,
)
from repro.util.errors import ReproError
from repro.util.fastpath import kernel_mode
from repro.util.rng import make_rng

#: How many successfully traced queries each kernel mode must check.
TARGET_CASES = 200


def _traced_cases(seed: int, fast: bool, target: int = TARGET_CASES):
    """Yield ``(query, result)`` for ``target`` traced executions.

    Queries the planner cannot lower (exotic decorations) are skipped and
    regenerated; a hard attempt bound keeps a planner regression from
    turning into an infinite loop.
    """
    rng = make_rng(seed)
    produced = 0
    attempts = 0
    while produced < target:
        attempts += 1
        assert attempts <= target * 5, (
            f"only {produced}/{target} cases plannable after {attempts} attempts"
        )
        scenario = random_scenario(rng, min_relations=2, max_relations=4)
        db = random_database(scenario.schemas, seed=rng)
        try:
            # Outerjoin cycles and other IT-free graphs cannot produce a
            # query; queries the planner cannot lower are skipped the same
            # way.  The rng stream stays shared so cases remain reproducible.
            query = random_query(scenario, rng, extended="none")
            storage = Storage.from_database(db)
            with kernel_mode(fast), tracing(enabled=True):
                result = execute(query, storage)
        except ReproError:
            continue
        produced += 1
        yield query, result


@pytest.mark.parametrize("fast", [True, False], ids=["kernels", "naive"])
def test_contract_over_randomized_queries(fast):
    checked = 0
    for query, result in _traced_cases(seed=1990 + fast, fast=fast):
        root = result.trace
        assert root is not None, "forced tracing must produce a trace"
        errors = validate_span_tree(root, result_rows=len(result.relation))
        assert not errors, f"contract violated on {query!r}: {errors}"
        checked += 1
    assert checked >= TARGET_CASES


@pytest.mark.parametrize("fast", [True, False], ids=["kernels", "naive"])
def test_row_conservation_spot_check(fast):
    """Beyond 'no violations': the invariant quantities really are wired.

    Every traced run must carry at least one operator span, and the root
    operator's ``rows_out`` must equal the result cardinality directly
    (not merely via the validator's internal bookkeeping).
    """
    for _query, result in _traced_cases(seed=424242, fast=fast, target=25):
        ops = operator_spans([result.trace])
        assert ops, "traced execution recorded no operator spans"
        assert ops[0].counters.get("rows_out", 0) == len(result.relation)
        for span in ops:
            assert span.finished and span.duration_ns >= 0


class TestContractDetectsViolations:
    """The validator must reject each class of broken tree it exists for."""

    def _finished(self, name, category, start, end, **counters) -> Span:
        span = Span(name, category)
        span.begin(start)
        span.finish(end)
        span.counters.update(counters)
        return span

    def test_negative_duration_flagged(self):
        bad = self._finished("op", ENGINE_OP_CATEGORY, 100, 50)
        assert any("negative duration" in e for e in validate_span_tree(bad))

    def test_finish_without_start_flagged(self):
        span = Span("op", ENGINE_OP_CATEGORY)
        span.finish(10)
        assert any("never started" in e for e in validate_span_tree(span))

    def test_child_escaping_parent_interval_flagged(self):
        parent = self._finished("parent", ENGINE_OP_CATEGORY, 100, 200)
        child = self._finished("child", ENGINE_OP_CATEGORY, 50, 150)
        parent.children.append(child)
        errors = validate_span_tree(parent)
        assert any("starts before parent" in e for e in errors)

    def test_row_conservation_violation_flagged(self):
        parent = self._finished("join", ENGINE_OP_CATEGORY, 0, 100, rows_in=3)
        parent.children.append(
            self._finished("scan", ENGINE_OP_CATEGORY, 0, 50, rows_out=5)
        )
        errors = validate_span_tree(parent)
        assert any("rows_in=3" in e and "emitted 5" in e for e in errors)

    def test_root_row_count_mismatch_flagged(self):
        root = self._finished("scan", ENGINE_OP_CATEGORY, 0, 10, rows_out=4)
        assert any("returned 7" in e for e in validate_span_tree(root, result_rows=7))
        assert validate_span_tree(root, result_rows=4) == []

    def test_negative_counter_flagged(self):
        span = self._finished("scan", ENGINE_OP_CATEGORY, 0, 10)
        span.counters["rows_out"] = -1
        assert any("negative" in e for e in validate_span_tree(span))


def test_conformance_tiers_traced(xyz_db, pxy):
    """Cross-checking under the tracer records per-tier spans + outcomes."""
    from repro.conformance.check import cross_check
    from repro.core import jn

    expr = jn("X", "Y", pxy)
    with tracing(enabled=True) as tracer:
        result = cross_check(expr, xyz_db)
    assert result.ok
    root = tracer.roots[-1]
    assert root.name == "conformance.cross_check"
    tiers = root.find_all("conformance.tier")
    assert len(tiers) >= 3
    outcomes = {t.attrs["tier"]: t.attrs.get("outcome") for t in tiers}
    assert all(v in ("ok", "skipped") for v in outcomes.values())
    ran = [t for t in tiers if t.attrs.get("outcome") == "ok"]
    assert all(t.finished and t.duration_ns >= 0 for t in ran)
    assert root.counters["tiers_ran"] == len(ran)
    assert root.counters["mismatches"] == 0
