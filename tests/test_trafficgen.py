"""The open-loop traffic harness: determinism, accounting, schema.

These tests exercise the harness's *logic* on tiny workloads — the
committed ``BENCH_PR9.json`` artifact is produced by the full run (and
re-validated here against ``docs/trafficgen.schema.json``); CI's
shard-stress job runs the ``--smoke`` sweep for real.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.engine.storage import Storage
from repro.service import QueryService
from repro.tools.benchschema import (
    is_trafficgen_report,
    validate_trafficgen_report,
)
from repro.tools.trafficgen import (
    build_scenario,
    build_storage,
    build_workload,
    open_loop_run,
    percentile,
    speedup_drill,
    verify,
    zipf_weights,
)

ROOT = Path(__file__).resolve().parents[1]


def test_workload_is_seed_deterministic():
    scenario = build_scenario(3)
    a = build_workload(scenario, shapes=3, seed=5)
    b = build_workload(scenario, shapes=3, seed=5)
    c = build_workload(scenario, shapes=3, seed=6)
    assert [q.to_infix() for q in a] == [q.to_infix() for q in b]
    assert [q.to_infix() for q in a] != [q.to_infix() for q in c]
    # Distinct shapes: every query has its own plan-cache fingerprint.
    assert len({q.to_infix() for q in a}) == len(a)


def test_storage_is_seed_deterministic():
    scenario = build_scenario(3)
    a = build_storage(scenario, rows=30, seed=1)
    b = build_storage(scenario, rows=30, seed=1)
    assert isinstance(a, Storage)
    for name in a:
        assert a[name].to_relation().counts() == b[name].to_relation().counts()


def test_zipf_weights_and_percentile():
    weights = zipf_weights(4)
    assert weights[0] > weights[1] > weights[3] > 0
    assert percentile([], 0.5) is None
    assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0
    assert percentile([3.0, 1.0, 2.0], 0.99) == 3.0


def test_open_loop_accounts_for_every_arrival():
    scenario = build_scenario(3)
    storage = build_storage(scenario, rows=24, seed=1)
    workload = build_workload(scenario, shapes=2, seed=2)
    with QueryService(storage, workers=2, queue_size=16) as service:
        row = open_loop_run(
            service,
            workload,
            zipf_weights(len(workload)),
            rate_qps=50.0,
            queries=12,
            deadline_s=10.0,
            seed=3,
        )
    assert row["queries"] == 12
    assert row["ok"] + row["shed"] + row["timeout"] + row["error"] == 12
    assert row["p50_ms"] is not None and row["p99_ms"] is not None
    assert row["achieved_qps"] > 0


def test_speedup_drill_reports_paired_rounds(monkeypatch):
    import repro.tools.trafficgen as tg

    # Tiny tables: the ratio is meaningless at this size (that is the
    # full run's business); the *accounting* is what's under test.
    monkeypatch.setattr(tg, "DRILL_BATCH", 2)
    scenario = build_scenario(3)
    storage = build_storage(scenario, rows=24, seed=1)
    workload = build_workload(scenario, shapes=2, seed=2)
    drill = speedup_drill(storage, workload, rounds=2, out=io.StringIO())
    assert len(drill["rounds"]) == 2
    assert drill["queries"] == 4 and drill["batch_size"] == 2
    for mode in ("threaded", "sharded"):
        assert drill[mode]["ok"] == drill[mode]["queries"] == 4
    assert drill["speedup"] is not None
    assert drill["speedup_min"] <= drill["speedup"] <= drill["speedup_max"]


def test_verify_flags_missing_rounds_and_low_speedup():
    report = {
        "open_loop": {
            "rates": [
                {
                    "mode": "threaded",
                    "offered_qps": 4.0,
                    "queries": 2,
                    "ok": 2,
                    "shed": 0,
                    "timeout": 0,
                    "error": 0,
                    "p50_ms": 1.0,
                    "p99_ms": 2.0,
                }
            ],
            "saturation_qps": {"threaded": 2.0, "sharded": None},
        },
        "speedup": {
            "rounds": [],
            "shard_workers": 1,
            "threaded": {"ok": 2, "queries": 2},
            "sharded": {"ok": 1, "queries": 2},
            "speedup": 0.8,
        },
    }
    problems = verify(report, min_speedup=1.0)
    assert any("no saturation" in p for p in problems)
    assert any("no rounds" in p for p in problems)
    assert any(">= 2 worker processes" in p for p in problems)
    assert any("non-ok outcomes" in p for p in problems)
    assert any("speedup 0.8" in p for p in problems)


def test_committed_artifact_validates_and_meets_the_bar():
    path = ROOT / "BENCH_PR9.json"
    assert path.exists(), "BENCH_PR9.json must be committed"
    report = json.loads(path.read_text())
    assert is_trafficgen_report(report)
    validate_trafficgen_report(report, root=ROOT)
    assert verify(report, min_speedup=1.0) == []
    assert report["meta"]["shard_workers"] >= 2
    assert report["speedup"]["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
