"""Unit tests for schemes and the schema registry."""

import pytest

from repro.algebra import Schema, SchemaRegistry, qualify
from repro.util.errors import SchemaError


class TestSchema:
    def test_basic_membership(self):
        s = Schema(["R.a", "R.b"])
        assert "R.a" in s and "R.c" not in s
        assert len(s) == 2

    def test_iteration_is_sorted(self):
        assert list(Schema(["R.b", "R.a"])) == ["R.a", "R.b"]

    def test_rejects_bad_attribute_names(self):
        with pytest.raises(SchemaError):
            Schema([""])
        with pytest.raises(SchemaError):
            Schema([42])  # type: ignore[list-item]

    def test_union_difference_intersection(self):
        a = Schema(["x", "y"])
        b = Schema(["y", "z"])
        assert a.union(b) == Schema(["x", "y", "z"])
        assert a.difference(b) == Schema(["x"])
        assert a.intersection(b) == Schema(["y"])

    def test_disjointness(self):
        a = Schema(["x"])
        assert a.is_disjoint(Schema(["y"]))
        assert not a.is_disjoint(["x", "q"])
        with pytest.raises(SchemaError):
            a.require_disjoint(["x"])

    def test_subset(self):
        assert Schema(["x"]).is_subset(Schema(["x", "y"]))
        assert not Schema(["x", "q"]).is_subset(Schema(["x"]))

    def test_equality_with_frozenset(self):
        assert Schema(["x", "y"]) == frozenset({"x", "y"})

    def test_hashable(self):
        assert len({Schema(["a"]), Schema(["a"]), Schema(["b"])}) == 2

    def test_qualify(self):
        assert qualify("EMP", "dno") == "EMP.dno"


class TestSchemaRegistry:
    def test_register_and_lookup(self):
        reg = SchemaRegistry({"R": ["R.a"], "S": ["S.a"]})
        assert reg["R"] == Schema(["R.a"])
        assert set(reg) == {"R", "S"}

    def test_owner(self):
        reg = SchemaRegistry({"R": ["R.a", "R.b"], "S": ["S.a"]})
        assert reg.owner("R.b") == "R"
        assert reg.owners(["R.a", "S.a"]) == frozenset({"R", "S"})

    def test_owner_unknown_attribute(self):
        reg = SchemaRegistry({"R": ["R.a"]})
        with pytest.raises(SchemaError):
            reg.owner("Q.a")

    def test_duplicate_relation_rejected(self):
        reg = SchemaRegistry({"R": ["R.a"]})
        with pytest.raises(SchemaError):
            reg.register("R", ["R.z"])

    def test_overlapping_schemes_rejected(self):
        """Ground relations must have mutually disjoint schemes (Section 1.2)."""
        reg = SchemaRegistry({"R": ["k"]})
        with pytest.raises(SchemaError):
            reg.register("S", ["k"])

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            SchemaRegistry()["nope"]

    def test_scheme_of_union(self):
        reg = SchemaRegistry({"R": ["R.a"], "S": ["S.a", "S.b"]})
        assert reg.scheme_of(["R", "S"]) == Schema(["R.a", "S.a", "S.b"])

    def test_restricted_to(self):
        reg = SchemaRegistry({"R": ["R.a"], "S": ["S.a"]})
        sub = reg.restricted_to(["R"])
        assert set(sub) == {"R"}
        with pytest.raises(SchemaError):
            sub["S"]
