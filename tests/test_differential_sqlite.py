"""The differential conformance harness, end to end.

Four layers of tests:

1. transpiler known-answer checks — every operator the fuzzer can emit
   is lowered to SQLite and must agree with the algebra evaluator on
   hand-built databases (nulls, duplicates, 3VL predicates included);
2. a fixed-seed fuzz smoke campaign across all six executor tiers that
   must find zero disagreements;
3. a *sabotage* test: an intentionally wrong kernel is injected and the
   campaign must catch it AND shrink the counterexample to at most three
   relations with a replayable artifact — this is the proof that the
   harness has teeth;
4. artifact round-trips: serialize → parse → byte-identical re-dump.
"""

import json
from unittest import mock

import pytest

from repro.algebra import (
    NULL,
    And,
    Comparison,
    IsNull,
    Not,
    Or,
    Relation,
    bag_equal,
    eq,
    explain_difference,
)
import repro.algebra.kernels as K
from repro.conformance import (
    EXECUTOR_TIERS,
    case_dumps,
    case_from_json,
    case_to_json,
    cross_check,
    generate_case,
    run_campaign,
    run_case,
    to_sqlite_sql,
)
from repro.conformance.fuzz import replay_artifact, save_artifact
from repro.conformance.sqlite_oracle import SQLiteOracle, sqlite_evaluate
from repro.core.expressions import (
    Project,
    Rel,
    Restrict,
    Union,
    aj,
    foj,
    goj,
    jn,
    oj,
    roj,
    sj,
)
from repro.algebra.relation import Database


@pytest.fixture
def db():
    x = Relation.from_dicts(
        ["X.k", "X.a"],
        [
            {"X.k": 1, "X.a": 10},
            {"X.k": 1, "X.a": 10},  # duplicate row
            {"X.k": 2, "X.a": 20},
            {"X.k": NULL, "X.a": 30},
        ],
    )
    y = Relation.from_dicts(
        ["Y.k", "Y.b"],
        [
            {"Y.k": 1, "Y.b": 100},
            {"Y.k": 3, "Y.b": 300},
            {"Y.k": NULL, "Y.b": 400},
        ],
    )
    z = Relation.from_dicts(["Z.k"], [{"Z.k": 1}, {"Z.k": 2}, {"Z.k": 2}])
    return Database({"X": x, "Y": y, "Z": z})


def assert_sqlite_agrees(expr, db):
    expected = expr.eval(db)
    actual = sqlite_evaluate(expr, db)
    assert bag_equal(expected, actual), explain_difference(expected, actual)


P = lambda: eq("X.k", "Y.k")


class TestTranspilerKnownAnswers:
    def test_base_relation(self, db):
        assert_sqlite_agrees(Rel("X"), db)

    def test_join_with_duplicates_and_nulls(self, db):
        assert_sqlite_agrees(jn(Rel("X"), Rel("Y"), P()), db)

    def test_left_outerjoin(self, db):
        assert_sqlite_agrees(oj(Rel("X"), Rel("Y"), P()), db)

    def test_right_outerjoin(self, db):
        assert_sqlite_agrees(roj(Rel("X"), Rel("Y"), P()), db)

    def test_full_outerjoin(self, db):
        assert_sqlite_agrees(foj(Rel("X"), Rel("Y"), P()), db)

    def test_semijoin(self, db):
        assert_sqlite_agrees(sj(Rel("X"), Rel("Y"), P()), db)

    def test_antijoin(self, db):
        assert_sqlite_agrees(aj(Rel("X"), Rel("Y"), P()), db)

    def test_generalized_outerjoin(self, db):
        assert_sqlite_agrees(goj(Rel("X"), Rel("Y"), P(), ["X.k"]), db)

    def test_goj_proper_projection_subset(self, db):
        assert_sqlite_agrees(goj(Rel("X"), Rel("Y"), P(), ["X.a"]), db)

    def test_restrict_three_valued_logic(self, db):
        # NULL < 25 is unknown → dropped by σ; SQLite agrees.
        assert_sqlite_agrees(Restrict(Rel("X"), Comparison("X.a", "<", 25)), db)

    def test_restrict_is_null_and_negation(self, db):
        assert_sqlite_agrees(Restrict(Rel("X"), IsNull("X.k")), db)
        assert_sqlite_agrees(Restrict(Rel("X"), Not(IsNull("X.k"))), db)

    def test_restrict_and_or(self, db):
        p = Or((Comparison("X.a", ">", 15), And((IsNull("X.k"), eq("X.a", 30)))))
        assert_sqlite_agrees(Restrict(Rel("X"), p), db)

    def test_project_bag_and_dedup(self, db):
        assert_sqlite_agrees(Project(Rel("X"), ["X.k"], dedup=False), db)
        assert_sqlite_agrees(Project(Rel("X"), ["X.k"], dedup=True), db)

    def test_padded_union(self, db):
        assert_sqlite_agrees(Union(Rel("X"), Rel("Y")), db)

    def test_nested_tree(self, db):
        expr = oj(
            jn(Rel("X"), Rel("Z"), eq("X.k", "Z.k")),
            Restrict(Rel("Y"), Not(IsNull("Y.k"))),
            P(),
        )
        assert_sqlite_agrees(expr, db)

    def test_oracle_reuse_and_sql_text(self, db):
        expr = jn(Rel("X"), Rel("Y"), P())
        sql = to_sqlite_sql(expr, db.registry)
        assert "JOIN" in sql and '"X.k"' in sql
        with SQLiteOracle(db) as oracle:
            first = oracle.evaluate(expr)
            second = oracle.evaluate(oj(Rel("X"), Rel("Y"), P()))
        assert bag_equal(first, expr.eval(db))
        assert bag_equal(second, oj(Rel("X"), Rel("Y"), P()).eval(db))


class TestCrossCheck:
    def test_all_tiers_agree_on_example(self, db):
        from repro.engine import Storage

        expr = oj(jn(Rel("X"), Rel("Z"), eq("X.k", "Z.k")), Rel("Y"), P())
        result = cross_check(
            expr, db, executors=EXECUTOR_TIERS, storage=Storage.from_database(db)
        )
        assert result.ok, result.summary()
        # The wcoj tier owns cyclic join cores only; it declines this
        # acyclic example by design.  backend:duckdb skips wherever the
        # optional wheel is absent (it runs on the CI leg that installs
        # it).  Every other tier must run — backend:sqlite included.
        assert set(result.skipped) <= {"wcoj", "backend:duckdb"}
        assert "backend:sqlite" not in result.skipped

    def test_engine_tiers_statically_skipped_for_foj(self, db):
        expr = foj(Rel("X"), Rel("Y"), P())
        result = cross_check(expr, db, executors=EXECUTOR_TIERS)
        assert result.ok, result.summary()
        assert "engine" not in result.results
        assert "engine-merge" not in result.results
        assert "sqlite" in result.results


class TestFuzzSmoke:
    def test_fixed_seed_campaign_is_clean(self):
        report = run_campaign(cases=60, seed=0)
        assert report.cases == 60
        assert report.ok, report.summary()
        # Coverage steering rotates through every feature.
        for op in ("none", "foj", "sj", "aj", "raj", "goj", "union"):
            assert report.coverage.get(f"op:{op}", 0) > 0, report.summary()
        for topo in ("chain", "star", "cycle", "nice", "random"):
            assert report.coverage.get(f"topology:{topo}", 0) > 0

    def test_single_generated_case_runs(self):
        case = generate_case(42)
        result = run_case(case)
        assert result.ok, result.summary()


def _broken_outerjoin_counts(left, right, predicate):
    """A deliberately wrong kernel: drops the null-padded preserved rows,
    silently turning every outerjoin into a plain join."""
    return K.join_counts(left, right, predicate)


class TestInjectedBugIsCaught:
    def test_campaign_catches_and_shrinks(self, tmp_path):
        with mock.patch.object(K, "outerjoin_counts", _broken_outerjoin_counts):
            report = run_campaign(
                cases=40,
                seed=0,
                executors=("naive", "kernels"),
                artifacts_dir=str(tmp_path),
            )
        assert not report.ok, "sabotaged kernel went undetected"
        for failure in report.failures:
            # Shrinking must reach a tiny counterexample: ≤3 base relations.
            assert len(failure.shrunk.expression.relations()) <= 3, failure.summary()
            assert failure.result.mismatches
            assert failure.artifact is not None
            # The artifact replays to a *pass* once the bug is removed...
            case, clean = replay_artifact(failure.artifact)
            assert clean.ok
            # ...and still reproduces the disagreement while the bug is in.
            with mock.patch.object(K, "outerjoin_counts", _broken_outerjoin_counts):
                _, dirty = replay_artifact(failure.artifact)
            assert not dirty.ok

    def test_sqlite_tier_also_catches_it(self, db):
        """The external oracle flags the same sabotage — no shared code."""
        expr = oj(Rel("X"), Rel("Y"), P())
        with mock.patch.object(K, "outerjoin_counts", _broken_outerjoin_counts):
            result = cross_check(expr, db, executors=("kernels", "sqlite"))
        assert not result.ok


class TestArtifacts:
    def test_round_trip_is_byte_identical(self, tmp_path):
        case = generate_case(7)
        encoded = case_dumps(case)
        decoded = case_from_json(json.loads(encoded))
        assert case_dumps(decoded) == encoded
        assert decoded.expression == case.expression
        assert decoded.executors == case.executors

    def test_save_and_replay(self, tmp_path):
        case = generate_case(11)
        path = save_artifact(case, str(tmp_path))
        loaded, result = replay_artifact(path)
        assert loaded.seed == case.seed
        assert result.ok, result.summary()

    def test_case_to_json_has_version(self):
        doc = case_to_json(generate_case(3))
        assert doc["version"] == 1
