"""Boundary and parity tests for the vectorized columnar batch layer.

Covers the edges the fuzzer is unlikely to pin down deterministically:
empty batches, ``batch_size=1`` chunking, all-null key columns, zero-row
selections, the full-outer batch joiner against the algebra kernel, and
a subprocess proof that ``REPRO_BATCH=0`` is byte-identical to ``=1``.
"""

import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.algebra.kernels import full_outerjoin_counts, small_input_limit
from repro.algebra.nulls import NULL
from repro.algebra.predicates import Comparison, Const, eq, gt
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.engine.batch import (
    BatchHashJoiner,
    BuildSide,
    ColumnBatch,
    batches_from_rows,
    compile_filter,
    rows_from_batches,
)
from repro.engine.iterators import Filter, HashJoin, ProjectOp, SeqScan
from repro.engine.metrics import Metrics
from repro.engine.storage import Storage
from repro.util.errors import PredicateError, SchemaError
from repro.util.fastpath import batch_mode, batch_sized

REPO_ROOT = Path(__file__).resolve().parent.parent


def _storage():
    """Two small joinable tables with null keys sprinkled on both sides."""
    storage = Storage()
    storage.create_table(
        "L",
        ["L.k", "L.a"],
        [
            {"L.k": 1, "L.a": 10},
            {"L.k": 2, "L.a": 20},
            {"L.k": NULL, "L.a": 30},
            {"L.k": 2, "L.a": 40},
            {"L.k": 5, "L.a": 50},
        ],
    )
    storage.create_table(
        "R",
        ["R.k", "R.b"],
        [
            {"R.k": 2, "R.b": 200},
            {"R.k": 1, "R.b": 100},
            {"R.k": NULL, "R.b": 300},
            {"R.k": 2, "R.b": 400},
            {"R.k": 9, "R.b": 900},
        ],
    )
    return storage


def _join_plan(storage, join_type, residual=None):
    return HashJoin(
        SeqScan(storage["L"]),
        SeqScan(storage["R"]),
        "L.k",
        "R.k",
        residual=residual,
        join_type=join_type,
    )


class TestColumnBatchBoundaries:
    def test_empty_batch_roundtrip(self):
        batch = ColumnBatch.empty(["x", "y"])
        assert batch.num_rows == 0
        assert batch.is_empty()
        assert batch.to_rows() == []
        assert list(batch.indices()) == []

    def test_batches_from_rows_empty_stream(self):
        assert list(batches_from_rows([], ["x"], 4)) == []

    def test_zero_row_selection_is_empty_but_physical(self):
        batch = ColumnBatch.from_rows(["x"], [Row({"x": 1}), Row({"x": 2})])
        narrowed = batch.with_selection([])
        assert narrowed.num_rows == 0
        assert narrowed.length == 2  # zero copy: physical rows untouched
        assert narrowed.to_rows() == []
        assert narrowed.compact().num_rows == 0

    def test_null_mask_matches_values_and_caches(self):
        batch = ColumnBatch.from_rows(
            ["x"], [Row({"x": 1}), Row({"x": NULL}), Row({"x": 3})]
        )
        mask = batch.null_mask("x")
        assert mask == [False, True, False]
        assert batch.null_mask("x") is mask  # cached

    def test_project_missing_attribute_raises(self):
        batch = ColumnBatch.from_rows(["x"], [Row({"x": 1})])
        with pytest.raises(SchemaError):
            batch.project(["x", "y"])

    def test_column_length_mismatch_raises(self):
        with pytest.raises(SchemaError):
            ColumnBatch(("x", "y"), {"x": [1, 2], "y": [1]}, 2)

    def test_rows_from_batches_respects_selection_order(self):
        batch = ColumnBatch.from_rows(
            ["x"], [Row({"x": i}) for i in range(5)]
        ).with_selection([1, 3, 4])
        assert [r["x"] for r in rows_from_batches([batch])] == [1, 3, 4]


class TestBatchSizeBoundaries:
    @pytest.mark.parametrize("size", [1, 2, 3, 1024])
    @pytest.mark.parametrize("join_type", ["inner", "left_outer", "semi", "anti"])
    def test_every_chunking_matches_row_path_exactly(self, size, join_type):
        storage = _storage()
        plan = ProjectOp(
            Filter(_join_plan(storage, join_type), gt("L.a", Const(5))),
            ["L.a", "L.k"],
            dedup=True,
        )
        with batch_mode(False):
            row_metrics = Metrics()
            expected = list(plan.execute(row_metrics))
        with batch_mode(True), batch_sized(size):
            batch_metrics = Metrics()
            got = list(plan.execute(batch_metrics))
        assert got == expected  # same rows, same order
        assert batch_metrics.tuples_retrieved == row_metrics.tuples_retrieved
        assert batch_metrics.predicate_evaluations == row_metrics.predicate_evaluations
        assert batch_metrics.rows_emitted == row_metrics.rows_emitted

    def test_residual_join_matches_row_path_at_size_one(self):
        storage = _storage()
        plan = _join_plan(storage, "inner", residual=gt("R.b", "L.a"))
        with batch_mode(False):
            expected = list(plan.execute(Metrics()))
        with batch_mode(True), batch_sized(1):
            got = list(plan.execute(Metrics()))
        assert got == expected


class TestAllNullKeys:
    def _null_key_rows(self, n=3):
        return [Row({"R.k": NULL, "R.b": i}) for i in range(n)]

    def test_build_side_never_buckets_null_keys(self):
        build = BuildSide("R.k", ("R.b", "R.k"))
        build.add_batch(ColumnBatch.from_rows(("R.b", "R.k"), self._null_key_rows()))
        assert build.rows == 3
        assert build.buckets == {}
        assert build.bucketed_rows == 0
        assert build.null_indices == [0, 1, 2]

    def test_inner_probe_with_all_null_keys_emits_nothing(self):
        build = BuildSide("R.k", ("R.b", "R.k"))
        build.add_batch(ColumnBatch.from_rows(("R.b", "R.k"), self._null_key_rows()))
        joiner = BatchHashJoiner(build, "L.k", "inner", None, Metrics(), "HashJoin[inner]")
        probe = ColumnBatch.from_rows(
            ("L.a", "L.k"), [Row({"L.k": NULL, "L.a": 1}), Row({"L.k": 7, "L.a": 2})]
        )
        assert joiner.probe(probe) is None

    def test_left_outer_all_null_keys_pads_every_probe_row(self):
        build = BuildSide("R.k", ("R.b", "R.k"))
        build.add_batch(ColumnBatch.from_rows(("R.b", "R.k"), self._null_key_rows()))
        joiner = BatchHashJoiner(
            build, "L.k", "left_outer", None, Metrics(), "HashJoin[left_outer]"
        )
        probe = ColumnBatch.from_rows(
            ("L.a", "L.k"), [Row({"L.k": 1, "L.a": 1}), Row({"L.k": NULL, "L.a": 2})]
        )
        out = joiner.probe(probe)
        rows = out.to_rows()
        assert [r["L.a"] for r in rows] == [1, 2]
        assert all(r["R.b"] is NULL and r["R.k"] is NULL for r in rows)

    def test_full_outer_all_null_keys_pads_both_sides(self):
        build = BuildSide("R.k", ("R.b", "R.k"))
        build.add_batch(ColumnBatch.from_rows(("R.b", "R.k"), self._null_key_rows(2)))
        joiner = BatchHashJoiner(
            build, "L.k", "full_outer", None, Metrics(), "HashJoin[full_outer]"
        )
        probe = ColumnBatch.from_rows(("L.a", "L.k"), [Row({"L.k": NULL, "L.a": 1})])
        out = joiner.probe(probe)
        assert out.num_rows == 1  # the probe row, right-padded
        tail = joiner.finish(("L.a", "L.k"))
        rows = tail.to_rows()
        assert len(rows) == 2  # every null-keyed build row, left-padded
        assert all(r["L.a"] is NULL and r["L.k"] is NULL for r in rows)
        assert sorted(r["R.b"] for r in rows) == [0, 1]


class TestFullOuterJoinerParity:
    @pytest.mark.parametrize("size", [1, 2, 1024])
    def test_bag_matches_algebra_kernel(self, size):
        storage = _storage()
        left_rows = storage["L"].rows
        right_rows = storage["R"].rows
        with small_input_limit(0):
            expected = full_outerjoin_counts(
                Relation(["L.k", "L.a"], left_rows),
                Relation(["R.k", "R.b"], right_rows),
                eq("L.k", "R.k"),
            )
        assert expected is not None
        build = BuildSide("R.k", ("R.b", "R.k"))
        for batch in batches_from_rows(right_rows, ("R.b", "R.k"), size):
            build.add_batch(batch)
        joiner = BatchHashJoiner(
            build, "L.k", "full_outer", None, Metrics(), "HashJoin[full_outer]"
        )
        got = []
        for batch in batches_from_rows(left_rows, ("L.a", "L.k"), size):
            out = joiner.probe(batch)
            if out is not None:
                got.extend(out.to_rows())
        tail = joiner.finish(("L.a", "L.k"))
        if tail is not None:
            got.extend(tail.to_rows())
        assert Counter(got) == expected


class TestFilterKernel:
    def test_simple_conjuncts_vectorize(self):
        kernel = compile_filter(gt("L.a", Const(5)))
        assert kernel.vectorized
        assert kernel.vectorized_passes == 1

    def test_zero_row_result_drops_batches_downstream(self):
        storage = _storage()
        plan = Filter(SeqScan(storage["L"]), gt("L.a", Const(10**9)))
        with batch_mode(True), batch_sized(2):
            assert list(plan.open_batches()) == []

    def test_type_error_matches_row_path_error(self):
        storage = _storage()
        predicate = Comparison("L.a", "<", Const("not-a-number"))
        plan = Filter(SeqScan(storage["L"]), predicate)
        with batch_mode(False), pytest.raises(PredicateError) as row_err:
            list(plan.execute(Metrics()))
        with batch_mode(True), batch_sized(2), pytest.raises(PredicateError) as batch_err:
            list(plan.execute(Metrics()))
        assert str(batch_err.value) == str(row_err.value)


class TestBatchPull:
    def test_next_batch_drains_then_none(self):
        storage = _storage()
        with batch_mode(True), batch_sized(2):
            cursor = SeqScan(storage["L"]).open_batches()
            sizes = []
            while (batch := cursor.next_batch()) is not None:
                sizes.append(batch.num_rows)
        assert sizes == [2, 2, 1]  # 5 rows at batch_size=2
        assert cursor.next_batch() is None  # stays exhausted
        cursor.close()


_TOGGLE_SCRIPT = """
import json
from repro.algebra.nulls import NULL
from repro.algebra.predicates import Const, gt
from repro.conformance.serialize import value_to_json
from repro.engine.iterators import Filter, HashJoin, ProjectOp, SeqScan
from repro.engine.metrics import Metrics
from repro.engine.storage import Storage

storage = Storage()
storage.create_table(
    "L", ["L.k", "L.a"],
    [{"L.k": k if k % 7 else NULL, "L.a": k * 3 % 11} for k in range(60)],
)
storage.create_table(
    "R", ["R.k", "R.b"],
    [{"R.k": k % 20 if k % 5 else NULL, "R.b": k} for k in range(40)],
)
plan = ProjectOp(
    Filter(
        HashJoin(SeqScan(storage["L"]), SeqScan(storage["R"]), "L.k", "R.k",
                 join_type="left_outer"),
        gt("L.a", Const(2)),
    ),
    ["L.a", "L.k", "R.b"],
)
metrics = Metrics()
for row in plan.execute(metrics):
    print(json.dumps({a: value_to_json(row[a]) for a in sorted(row)}, sort_keys=True))
print("retrieved", sorted(metrics.tuples_retrieved.items()))
print("evaluated", metrics.predicate_evaluations)
print("emitted", sorted(metrics.rows_emitted.items()))
"""


class TestRowModeToggle:
    def test_repro_batch_0_is_byte_identical(self):
        """REPRO_BATCH=0 and =1 agree byte-for-byte on rows, order, metrics."""
        outputs = {}
        for flag in ("0", "1"):
            env = dict(os.environ, REPRO_BATCH=flag)
            env["PYTHONPATH"] = str(REPO_ROOT / "src")
            proc = subprocess.run(
                [sys.executable, "-c", _TOGGLE_SCRIPT],
                capture_output=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs[flag] = proc.stdout
        assert outputs["0"] == outputs["1"]
        assert outputs["0"].count(b"\n") > 3  # the workload produced rows
