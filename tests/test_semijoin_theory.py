"""Tests for the Section-6.3 join/semijoin study."""

import pytest

from repro.algebra import SchemaRegistry, bag_equal, eq
from repro.core import jn, sj
from repro.core.semijoin_theory import (
    JoinSemijoinGraph,
    check_semijoin_graph,
    semijoin_graph_of,
    semijoin_implementing_trees,
)
from repro.datagen import random_databases
from repro.util.errors import GraphUndefinedError

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
PXZ = eq("X.b", "Z.a")


@pytest.fixture
def reg():
    return SchemaRegistry(SCHEMAS)


def series_graph():
    """Semijoin edges in series: X ⋉ Y, Y ⋉ Z."""
    return JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("Y", "Z", PYZ)])


def parallel_graph():
    """Two semijoins filtering X."""
    return JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("X", "Z", PXZ)])


def mixed_graph():
    """Join X−Y with a semijoin filter Y ⋉ Z."""
    return JoinSemijoinGraph.from_edges(join=[("X", "Y", PXY)], sj=[("Y", "Z", PYZ)])


class TestGraphConstruction:
    def test_round_trip(self, reg):
        q = sj("X", sj("Y", "Z", PYZ), PXY)
        assert semijoin_graph_of(q, reg) == series_graph()

    def test_mixed_round_trip(self, reg):
        q = jn("X", sj("Y", "Z", PYZ), PXY)
        assert semijoin_graph_of(q, reg) == mixed_graph()

    def test_rejects_outerjoins(self, reg):
        from repro.core import oj

        with pytest.raises(GraphUndefinedError):
            semijoin_graph_of(oj("X", "Y", PXY), reg)

    def test_describe(self):
        assert "⋉" in series_graph().describe()


class TestTreeEnumeration:
    def test_series_has_exactly_one_tree(self, reg):
        """The paper's 'forbidden subgraph': series semijoins leave zero
        reordering freedom — only the right-deep order is well formed."""
        trees = list(semijoin_implementing_trees(series_graph(), reg))
        assert [t.to_infix() for t in trees] == ["(X ⋉ (Y ⋉ Z))"]

    def test_parallel_semijoins_commute(self, reg):
        trees = list(semijoin_implementing_trees(parallel_graph(), reg))
        assert {t.to_infix() for t in trees} == {"((X ⋉ Y) ⋉ Z)", "((X ⋉ Z) ⋉ Y)"}

    def test_mixed_graph_trees(self, reg):
        trees = {t.to_infix() for t in semijoin_implementing_trees(mixed_graph(), reg)}
        # The semijoin may run before or after the join; the invalid
        # shape (X − Y) ⋉ Z is excluded (Y's attributes... survive a join,
        # so it IS valid here) — but ((X ⋉ ...) variants that discard Y
        # before the join predicate needs it are excluded.
        assert "(X - (Y ⋉ Z))" in trees
        assert "((X - Y) ⋉ Z)" in trees

    def test_availability_rule_excludes_early_discard(self, reg):
        """In the series graph, (X ⋉ Y) ⋉ Z would evaluate P_yz after Y's
        attributes were discarded — the enumerator must not emit it."""
        trees = {t.to_infix() for t in semijoin_implementing_trees(series_graph(), reg)}
        assert "((X ⋉ Y) ⋉ Z)" not in trees

    def test_disconnected_rejected(self, reg):
        g = JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY)], isolated=["Z"])
        with pytest.raises(GraphUndefinedError):
            list(semijoin_implementing_trees(g, reg))


class TestAgreement:
    @pytest.mark.parametrize("factory", [parallel_graph, mixed_graph])
    def test_valid_trees_agree(self, reg, factory):
        dbs = random_databases(SCHEMAS, 15, seed=7)
        report = check_semijoin_graph(factory(), reg, dbs)
        assert report.tree_count >= 2
        assert report.consistent, report.witness

    def test_series_is_vacuously_consistent(self, reg):
        dbs = random_databases(SCHEMAS, 5, seed=8)
        report = check_semijoin_graph(series_graph(), reg, dbs)
        assert report.tree_count == 1
        assert report.consistent

    def test_semijoin_filter_commutes_with_join_semantically(self, reg):
        """The semantics behind the mixed graph's agreement: a semijoin is
        a filter on its preserved operand."""
        dbs = random_databases(SCHEMAS, 15, seed=9)
        early = jn("X", sj("Y", "Z", PYZ), PXY)
        late = sj(jn("X", "Y", PXY), "Z", PYZ)
        for db in dbs:
            assert bag_equal(early.eval(db), late.eval(db))
