"""Tests for the Section-6.3 join/semijoin study."""

import pytest

from repro.algebra import SchemaRegistry, bag_equal, eq
from repro.core import jn, sj
from repro.core.semijoin_theory import (
    JoinSemijoinGraph,
    check_semijoin_graph,
    semijoin_graph_of,
    semijoin_implementing_trees,
)
from repro.datagen import random_databases
from repro.util.errors import GraphUndefinedError

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
PXZ = eq("X.b", "Z.a")


@pytest.fixture
def reg():
    return SchemaRegistry(SCHEMAS)


def series_graph():
    """Semijoin edges in series: X ⋉ Y, Y ⋉ Z."""
    return JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("Y", "Z", PYZ)])


def parallel_graph():
    """Two semijoins filtering X."""
    return JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("X", "Z", PXZ)])


def mixed_graph():
    """Join X−Y with a semijoin filter Y ⋉ Z."""
    return JoinSemijoinGraph.from_edges(join=[("X", "Y", PXY)], sj=[("Y", "Z", PYZ)])


class TestGraphConstruction:
    def test_round_trip(self, reg):
        q = sj("X", sj("Y", "Z", PYZ), PXY)
        assert semijoin_graph_of(q, reg) == series_graph()

    def test_mixed_round_trip(self, reg):
        q = jn("X", sj("Y", "Z", PYZ), PXY)
        assert semijoin_graph_of(q, reg) == mixed_graph()

    def test_rejects_outerjoins(self, reg):
        from repro.core import oj

        with pytest.raises(GraphUndefinedError):
            semijoin_graph_of(oj("X", "Y", PXY), reg)

    def test_describe(self):
        assert "⋉" in series_graph().describe()


class TestTreeEnumeration:
    def test_series_has_exactly_one_tree(self, reg):
        """The paper's 'forbidden subgraph': series semijoins leave zero
        reordering freedom — only the right-deep order is well formed."""
        trees = list(semijoin_implementing_trees(series_graph(), reg))
        assert [t.to_infix() for t in trees] == ["(X ⋉ (Y ⋉ Z))"]

    def test_parallel_semijoins_commute(self, reg):
        trees = list(semijoin_implementing_trees(parallel_graph(), reg))
        assert {t.to_infix() for t in trees} == {"((X ⋉ Y) ⋉ Z)", "((X ⋉ Z) ⋉ Y)"}

    def test_mixed_graph_trees(self, reg):
        trees = {t.to_infix() for t in semijoin_implementing_trees(mixed_graph(), reg)}
        # The semijoin may run before or after the join; the invalid
        # shape (X − Y) ⋉ Z is excluded (Y's attributes... survive a join,
        # so it IS valid here) — but ((X ⋉ ...) variants that discard Y
        # before the join predicate needs it are excluded.
        assert "(X - (Y ⋉ Z))" in trees
        assert "((X - Y) ⋉ Z)" in trees

    def test_availability_rule_excludes_early_discard(self, reg):
        """In the series graph, (X ⋉ Y) ⋉ Z would evaluate P_yz after Y's
        attributes were discarded — the enumerator must not emit it."""
        trees = {t.to_infix() for t in semijoin_implementing_trees(series_graph(), reg)}
        assert "((X ⋉ Y) ⋉ Z)" not in trees

    def test_disconnected_rejected(self, reg):
        g = JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY)], isolated=["Z"])
        with pytest.raises(GraphUndefinedError):
            list(semijoin_implementing_trees(g, reg))


class TestAgreement:
    @pytest.mark.parametrize("factory", [parallel_graph, mixed_graph])
    def test_valid_trees_agree(self, reg, factory):
        dbs = random_databases(SCHEMAS, 15, seed=7)
        report = check_semijoin_graph(factory(), reg, dbs)
        assert report.tree_count >= 2
        assert report.consistent, report.witness

    def test_series_is_vacuously_consistent(self, reg):
        dbs = random_databases(SCHEMAS, 5, seed=8)
        report = check_semijoin_graph(series_graph(), reg, dbs)
        assert report.tree_count == 1
        assert report.consistent

    def test_semijoin_filter_commutes_with_join_semantically(self, reg):
        """The semantics behind the mixed graph's agreement: a semijoin is
        a filter on its preserved operand."""
        dbs = random_databases(SCHEMAS, 15, seed=9)
        early = jn("X", sj("Y", "Z", PYZ), PXY)
        late = sj(jn("X", "Y", PXY), "Z", PYZ)
        for db in dbs:
            assert bag_equal(early.eval(db), late.eval(db))


# ---------------------------------------------------------------------------
# Semijoin-pushdown legality on the paper's named graphs (the identity
# layer the Yannakakis full reducer stands on).  Expressions may not
# repeat a relation variable, so the reduced forms are evaluated with the
# algebra operators directly.
# ---------------------------------------------------------------------------

from repro.algebra import join, outerjoin, semijoin  # noqa: E402
from repro.algebra.nulls import NULL  # noqa: E402
from repro.algebra.relation import Database, Relation  # noqa: E402
from repro.core import oj  # noqa: E402
from repro.datagen import random_databases as _random_databases  # noqa: E402

CHAIN_SCHEMAS = {n: [f"{n}.a", f"{n}.b"] for n in ("R1", "R2", "R3")}
P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")


def chain_databases(count, seed):
    return _random_databases(CHAIN_SCHEMAS, count, seed=seed)


def db_of(rows_by_rel):
    return Database(
        {
            name: Relation.from_dicts(CHAIN_SCHEMAS[name], rows)
            for name, rows in rows_by_rel.items()
        }
    )


class TestPushdownLegalityExample1:
    """Example 1's graph R1 − R2 → R3: which semijoin reductions are legal.

    These are exactly the reducer passes :mod:`repro.engine.yannakakis`
    runs (and refuses to run) on this shape: both directions of a join
    edge, the top-down pass over an outerjoin edge, but never the
    bottom-up reduction of a preserved side by its null-supplied child.
    """

    QUERY = oj(jn("R1", "R2", P12), "R3", P23)

    def test_reducing_either_join_side_is_legal(self):
        for db in chain_databases(20, seed=41):
            r1, r2, r3 = db["R1"], db["R2"], db["R3"]
            expected = self.QUERY.eval(db)
            reduced_left = outerjoin(join(semijoin(r1, r2, P12), r2, P12), r3, P23)
            reduced_right = outerjoin(join(r1, semijoin(r2, r1, P12), P12), r3, P23)
            assert bag_equal(reduced_left, expected)
            assert bag_equal(reduced_right, expected)

    def test_reducing_null_supplied_side_is_legal(self):
        """Top-down over the outerjoin arrow: R3 rows the preserved side
        cannot reach never appear (matched or padded) in the output."""
        for db in chain_databases(20, seed=42):
            r1, r2, r3 = db["R1"], db["R2"], db["R3"]
            reduced = outerjoin(join(r1, r2, P12), semijoin(r3, r2, P23), P23)
            assert bag_equal(reduced, self.QUERY.eval(db))

    def test_reducing_preserved_side_by_null_supplied_is_illegal(self):
        """Known answer: semijoining R2 by R3 across the outerjoin edge
        drops the row the outerjoin was required to null-pad."""
        db = db_of(
            {
                "R1": [{"R1.a": 1, "R1.b": 0}],
                "R2": [{"R2.a": 1, "R2.b": 0}],
                "R3": [{"R3.a": 7, "R3.b": 0}],  # matches nothing
            }
        )
        expected = self.QUERY.eval(db)
        assert len(expected) == 1  # (1, 1, NULL-padded R3)
        assert all(row["R3.a"] is NULL for row in expected)
        r1, r2, r3 = db["R1"], db["R2"], db["R3"]
        reduced = outerjoin(join(r1, semijoin(r2, r3, P23), P12), r3, P23)
        assert len(reduced) == 0
        assert not bag_equal(reduced, expected)


class TestPushdownLegalityExample2:
    """Example 2's non-nice graph R1 → R2 − R3 (the forbidden X→Y−Z).

    The join under the arrow may still be semijoin-reduced internally —
    the illegality sits at the preserved relation, which explains why
    :func:`repro.core.gyo.join_tree_of` refuses this graph outright
    (Theorem 1 fails) instead of picking a root.
    """

    QUERY = oj("R1", jn("R2", "R3", P23), P12)

    def test_reducing_inside_null_supplied_subtree_is_legal(self):
        for db in chain_databases(20, seed=43):
            r1, r2, r3 = db["R1"], db["R2"], db["R3"]
            reduced = outerjoin(r1, join(semijoin(r2, r3, P23), r3, P23), P12)
            assert bag_equal(reduced, self.QUERY.eval(db))

    def test_reducing_the_preserved_relation_is_illegal(self):
        """Known answer: semijoining R1 by R2 erases the dangling
        preserved row instead of null-padding it."""
        db = db_of(
            {
                "R1": [{"R1.a": 1, "R1.b": 0}, {"R1.a": 5, "R1.b": 0}],
                "R2": [{"R2.a": 1, "R2.b": 0}],
                "R3": [{"R3.a": 1, "R3.b": 0}],
            }
        )
        expected = self.QUERY.eval(db)
        assert len(expected) == 2  # the a=5 row survives, null-padded
        r1, r2, r3 = db["R1"], db["R2"], db["R3"]
        reduced = outerjoin(semijoin(r1, r2, P12), join(r2, r3, P23), P12)
        assert len(reduced) == 1
        assert not bag_equal(reduced, expected)

    def test_fast_path_refuses_example2(self):
        from repro.core.gyo import join_tree_of
        from repro.datagen import example2_graph

        scenario = example2_graph()
        assert join_tree_of(scenario.graph, scenario.registry) is None
