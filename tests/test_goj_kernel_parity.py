"""GOJ parity across kernel modes (the gap PR 1 left open).

The hash kernels accelerate join/outerjoin, and the GOJ of equation 14 is
built *on top of* join — so flipping ``REPRO_NAIVE_KERNELS`` (or its
in-process equivalent :func:`kernel_mode`) changes the code path under
every generalized outerjoin.  These tests pin the invariant that the
result is bag-identical either way, for the algebra operator, for
expression trees, and for the engine's :class:`GeneralizedOuterJoinOp`.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.algebra import (
    Relation,
    bag_equal,
    eq,
    explain_difference,
    generalized_outerjoin,
)
from repro.algebra.kernels import small_input_limit
from repro.conformance import cross_check
from repro.core.expressions import Rel, goj, jn
from repro.datagen import random_database
from repro.engine import Storage
from repro.util.fastpath import kernel_mode

SCHEMAS = {
    "X": ["X.k", "X.a"],
    "Y": ["Y.k", "Y.b"],
    "Z": ["Z.k", "Z.c"],
}


def _db(seed: int):
    return random_database(
        SCHEMAS,
        seed=seed,
        max_rows=6,
        domain=3,
        null_probability=0.25,
        duplicate_probability=0.3,
    )


def _eval_in_mode(fn, enabled: bool) -> Relation:
    """Run ``fn`` with kernels forced on (no small-input fallback) or off."""
    with kernel_mode(enabled), small_input_limit(0):
        return fn()


@pytest.mark.parametrize("seed", range(8))
def test_operator_parity_on_random_inputs(seed):
    db = _db(seed)
    p = eq("X.k", "Y.k")
    run = lambda: generalized_outerjoin(db["X"], db["Y"], p, ["X.k"])
    naive = _eval_in_mode(run, False)
    fast = _eval_in_mode(run, True)
    assert bag_equal(naive, fast), explain_difference(naive, fast)


@pytest.mark.parametrize("seed", range(8))
def test_expression_parity_goj_over_join(seed):
    """GOJ above a kernel-eligible join: X GOJ[S] (Y ⋈ Z)."""
    db = _db(seed)
    expr = goj(
        Rel("X"),
        jn(Rel("Y"), Rel("Z"), eq("Y.k", "Z.k")),
        eq("X.k", "Y.k"),
        ["X.k", "X.a"],
    )
    naive = _eval_in_mode(lambda: expr.eval(db), False)
    fast = _eval_in_mode(lambda: expr.eval(db), True)
    assert bag_equal(naive, fast), explain_difference(naive, fast)


@pytest.mark.parametrize("seed", range(6))
def test_engine_goj_op_matches_both_kernel_modes(seed):
    """The hash-based GeneralizedOuterJoinOp agrees with the algebra
    evaluator whichever way the algebra's kernels are toggled."""
    db = _db(seed)
    storage = Storage.from_database(db)
    expr = goj(Rel("X"), Rel("Y"), eq("X.k", "Y.k"), ["X.k"])
    result = cross_check(
        expr,
        db,
        executors=("naive", "kernels", "engine", "engine-merge"),
        storage=storage,
        strict=True,
    )
    assert result.ok, result.summary()


def test_projection_subset_parity():
    """A strict subset S (padding also nulls left attributes) must agree."""
    db = _db(99)
    p = eq("X.k", "Y.k")
    run = lambda: generalized_outerjoin(db["X"], db["Y"], p, ["X.a"])
    naive = _eval_in_mode(run, False)
    fast = _eval_in_mode(run, True)
    assert bag_equal(naive, fast), explain_difference(naive, fast)


def test_env_toggle_parity_subprocess():
    """``REPRO_NAIVE_KERNELS=1`` (the import-time toggle) yields the same
    GOJ bags as the fast default, compared across two interpreters."""
    root = Path(__file__).resolve().parents[1]
    program = (
        "from repro.algebra import generalized_outerjoin, eq\n"
        "from repro.datagen import random_database\n"
        "db = random_database({'X': ['X.k', 'X.a'], 'Y': ['Y.k', 'Y.b']},"
        " seed=7, max_rows=6, domain=3, null_probability=0.25,"
        " duplicate_probability=0.3)\n"
        "out = generalized_outerjoin(db['X'], db['Y'], eq('X.k', 'Y.k'), ['X.k'])\n"
        "rows = sorted(repr(sorted(r.items())) for r in out)\n"
        "print('\\n'.join(rows))\n"
    )
    outputs = []
    for naive in ("", "1"):
        env = dict(os.environ, PYTHONPATH=str(root / "src"))
        if naive:
            env["REPRO_NAIVE_KERNELS"] = naive
        else:
            env.pop("REPRO_NAIVE_KERNELS", None)
        proc = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            cwd=root,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
