"""The sharded QueryService: parity, worker death, budget, snapshot.

The service-level contract of ``shard=True``: answers are bag-equal to
the threaded path; a worker process dying mid-query fails exactly that
query (status ``error``), returns its lease to the shared ledger, and
leaves the service serving; the pool respawns the worker on the next
sharded query; and ``close()`` returns every thread *and* process lease.
"""

from __future__ import annotations

import pytest

from repro.algebra import bag_equal
from repro.algebra.predicates import conjunction, eq, lt
from repro.algebra.relation import Database, Relation
from repro.algebra.tuples import Row
from repro.core import Restrict, jn
from repro.engine import execute
from repro.engine.parallel.pool import WorkerLedger
from repro.engine.storage import Storage
from repro.service import QueryService


def chain_storage() -> Storage:
    """Three tables joinable on one attribute class (co-partitionable)."""

    def table(name: str, rows: int, stride: int) -> Relation:
        counts = {}
        for i in range(rows):
            row = Row({f"{name}.a": i % 7, f"{name}.b": (i * stride) % 11})
            counts[row] = counts.get(row, 0) + 1
        return Relation.from_counts((f"{name}.a", f"{name}.b"), counts)

    return Storage.from_database(
        Database({"T1": table("T1", 42, 3), "T2": table("T2", 35, 5), "T3": table("T3", 28, 2)})
    )


def query():
    return Restrict(
        jn(jn("T1", "T2", eq("T1.a", "T2.a")), "T3", eq("T2.a", "T3.a")),
        conjunction([lt("T1.b", "T2.b"), lt("T3.b", "T1.b")]),
    )


@pytest.fixture
def storage():
    return chain_storage()


def test_sharded_service_matches_single_threaded_execution(storage):
    reference = execute(query(), storage).relation
    with QueryService(storage, workers=2, shard=True, shard_workers=2) as service:
        outcomes = [t.result(timeout=120) for t in service.submit_batch([query()] * 6)]
    assert all(o.ok for o in outcomes)
    for outcome in outcomes:
        assert bag_equal(outcome.require(), reference)


def test_worker_death_fails_one_query_reclaims_budget_and_respawns(storage):
    ledger = WorkerLedger(ceiling=8)
    service = QueryService(
        storage, workers=2, shard=True, shard_workers=2, ledger=ledger
    )
    try:
        # 2 service threads + 2 shard processes on one budget.
        books = ledger.snapshot()
        assert books["by_kind"] == {"thread": 2, "process": 2}

        assert service.execute(query()).ok  # warm: shards installed
        service._shard_pool.terminate_worker(0)

        victim = service.execute(query())
        assert victim.status == "error"
        assert ledger.snapshot()["by_kind"]["process"] == 1  # lease reclaimed

        # The service is still up: the next query respawns the worker
        # (re-leasing it) and answers correctly.
        survivor = service.execute(query())
        assert survivor.ok
        assert bag_equal(survivor.require(), execute(query(), storage).relation)
        assert ledger.snapshot()["by_kind"]["process"] == 2

        snap = service.snapshot()
        assert snap["shard"]["enabled"] is True
        assert snap["shard"]["pool"]["deaths"] == 1
        assert snap["shard"]["pool"]["respawns"] >= 1
        assert snap["outcomes"]["error"] == 1 and snap["outcomes"]["ok"] == 2
    finally:
        service.close()
    # close() returns every thread and process lease.
    assert ledger.snapshot()["granted"] == 0


def test_snapshot_reports_shard_pool_books(storage):
    with QueryService(storage, workers=2, shard=True, shard_workers=2) as service:
        service.execute(query())
        snap = service.snapshot()
    assert snap["shard"]["enabled"] is True
    pool = snap["shard"]["pool"]
    assert pool["workers"] == 2 and pool["alive"] == 2 and pool["start"] == "spawn"


def test_unsharded_service_reports_no_pool(storage):
    with QueryService(storage, workers=2, shard=False) as service:
        service.execute(query())
        snap = service.snapshot()
    assert snap["shard"] == {"enabled": False, "pool": None}


def test_clamped_pool_falls_back_to_threaded_path(storage):
    # Ceiling 3 leaves one process lease after two service threads: the
    # pool comes up below two workers, so the dispatch declines and the
    # threaded path answers — correctly, not loudly.
    ledger = WorkerLedger(ceiling=3)
    reference = execute(query(), storage).relation
    with QueryService(
        storage, workers=2, shard=True, shard_workers=2, ledger=ledger
    ) as service:
        assert service._shard_pool.workers == 1
        outcome = service.execute(query())
        assert outcome.ok and bag_equal(outcome.require(), reference)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
