"""Unit tests for predicates: 3VL evaluation, conjuncts, and strongness.

Strongness (Section 2.1) is the paper's load-bearing definition; the tests
include Example 3's predicate verbatim.
"""

import pytest

from repro.algebra import (
    NULL,
    And,
    Comparison,
    Const,
    CustomPredicate,
    IsNull,
    Not,
    Or,
    PairView,
    Row,
    TruePredicate,
    conjunction,
    eq,
    gt,
    lt,
    references,
)
from repro.util.errors import PredicateError


class TestComparisonEvaluation:
    def test_equality(self):
        p = eq("a", "b")
        assert p.evaluate(Row({"a": 1, "b": 1})) is True
        assert p.evaluate(Row({"a": 1, "b": 2})) is False

    def test_null_operand_is_unknown(self):
        p = eq("a", "b")
        assert p.evaluate(Row({"a": NULL, "b": 1})) is None
        assert p.evaluate(Row({"a": 1, "b": NULL})) is None
        assert p.evaluate(Row({"a": NULL, "b": NULL})) is None

    def test_constants(self):
        p = Comparison("a", ">", Const(5))
        assert p.evaluate(Row({"a": 10})) is True
        assert p.evaluate(Row({"a": 3})) is False

    def test_all_operators(self):
        row = Row({"a": 2, "b": 3})
        assert Comparison("a", "<", "b").evaluate(row) is True
        assert Comparison("a", "<=", "b").evaluate(row) is True
        assert Comparison("a", ">", "b").evaluate(row) is False
        assert Comparison("a", ">=", "b").evaluate(row) is False
        assert Comparison("a", "<>", "b").evaluate(row) is True

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("a", "~", "b")

    def test_missing_attribute(self):
        with pytest.raises(PredicateError):
            eq("a", "b").evaluate(Row({"a": 1}))

    def test_incomparable_types(self):
        with pytest.raises(PredicateError):
            lt("a", "b").evaluate(Row({"a": 1, "b": "text"}))

    def test_attributes(self):
        assert eq("R.a", "S.b").attributes() == frozenset({"R.a", "S.b"})
        assert Comparison("R.a", "=", Const(3)).attributes() == frozenset({"R.a"})


class TestBooleanStructure:
    def test_and_or_not(self):
        p = And((eq("a", "b"), gt("c", "d")))
        assert p.evaluate(Row({"a": 1, "b": 1, "c": 5, "d": 2})) is True
        assert p.evaluate(Row({"a": 1, "b": 2, "c": 5, "d": 2})) is False
        q = Or((eq("a", "b"), gt("c", "d")))
        assert q.evaluate(Row({"a": 0, "b": 1, "c": 5, "d": 2})) is True
        assert Not(eq("a", "b")).evaluate(Row({"a": 1, "b": 1})) is False

    def test_kleene_unknown_propagation(self):
        p = And((eq("a", "b"), gt("c", "d")))
        # unknown AND true -> unknown
        assert p.evaluate(Row({"a": NULL, "b": 1, "c": 5, "d": 2})) is None
        # unknown AND false -> false
        assert p.evaluate(Row({"a": NULL, "b": 1, "c": 1, "d": 2})) is False
        q = Or((eq("a", "b"), gt("c", "d")))
        # unknown OR true -> true
        assert q.evaluate(Row({"a": NULL, "b": 1, "c": 5, "d": 2})) is True

    def test_is_null(self):
        assert IsNull("a").evaluate(Row({"a": NULL})) is True
        assert IsNull("a").evaluate(Row({"a": 0})) is False

    def test_conjuncts_flatten(self):
        p = And((eq("a", "b"), And((eq("c", "d"), eq("e", "f")))))
        assert len(p.conjuncts()) == 3

    def test_single_predicate_is_its_own_conjunct(self):
        p = eq("a", "b")
        assert p.conjuncts() == (p,)

    def test_true_predicate(self):
        t = TruePredicate()
        assert t.evaluate(Row({})) is True
        assert t.conjuncts() == ()

    def test_degenerate_and_or_rejected(self):
        with pytest.raises(PredicateError):
            And((eq("a", "b"),))
        with pytest.raises(PredicateError):
            Or(())


class TestConjunction:
    def test_empty_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_singleton_unchanged(self):
        p = eq("a", "b")
        assert conjunction([p]) is p

    def test_flattens_and_sorts_canonically(self):
        a, b = eq("a", "x"), eq("b", "y")
        assert conjunction([a, b]) == conjunction([b, a])

    def test_drops_true(self):
        p = eq("a", "b")
        assert conjunction([TruePredicate(), p]) is p

    def test_operator_sugar(self):
        p = eq("a", "b") & eq("c", "d")
        assert isinstance(p, And)
        q = eq("a", "b") | eq("c", "d")
        assert isinstance(q, Or)
        assert isinstance(~eq("a", "b"), Not)


class TestStrongness:
    """Section 2.1: p is strong wrt S iff null-on-S forces p(t) = False."""

    def test_comparison_strong_on_either_side(self):
        p = eq("Y.b", "Z.b")
        assert p.is_strong(["Y.b"])
        assert p.is_strong(["Z.b"])
        assert p.is_strong(["Y.b", "Z.b"])

    def test_comparison_not_strong_on_unrelated_attrs(self):
        assert not eq("Y.b", "Z.b").is_strong(["Q.q"])

    def test_example3_predicate_not_strong(self):
        """The paper's Example 3: (B.attr2 = C.attr1 OR B.attr2 IS NULL)."""
        p = Or((eq("B.attr2", "C.attr1"), IsNull("B.attr2")))
        assert not p.is_strong(["B.attr2"])
        # It is also not strong w.r.t. C: the IS NULL disjunct can fire.
        assert not p.is_strong(["C.attr1"])

    def test_conjunction_with_one_strong_conjunct_is_strong(self):
        p = And((eq("Y.b", "Z.b"), IsNull("Y.a")))
        assert p.is_strong(["Y.b"])

    def test_disjunction_needs_all_disjuncts_strong(self):
        strong_both = Or((eq("Y.a", "Z.a"), eq("Y.a", "Z.b")))
        assert strong_both.is_strong(["Y.a"])
        weak = Or((eq("Y.a", "Z.a"), eq("Y.b", "Z.a")))
        assert weak.is_strong(["Y.a", "Y.b"])
        assert not weak.is_strong(["Y.a"])

    def test_not_of_isnull(self):
        # NOT (a IS NULL) is false when a is null -> strong wrt a.
        assert Not(IsNull("a")).is_strong(["a"])
        # NOT (a = b) is unknown (not true) when a null -> strong.
        assert Not(eq("a", "b")).is_strong(["a"])

    def test_isnull_is_antistrong(self):
        assert not IsNull("a").is_strong(["a"])

    def test_strong_wrt_empty_set_means_unsatisfiable(self):
        assert not eq("a", "b").is_strong([])
        # A constant-false comparison is strong w.r.t. everything.
        p = Comparison(Const(1), "=", Const(2))
        assert p.is_strong([])
        assert p.is_strong(["a"])

    def test_asymmetric_strongness_example(self):
        """Strong wrt Z but not wrt Y — the erratum-witness shape."""
        p = Or((eq("Y.a", "Z.b"), And((Comparison("Z.b", "=", Const(5)), IsNull("Y.a")))))
        assert p.is_strong(["Z.b"])
        assert not p.is_strong(["Y.a"])


class TestCustomPredicate:
    def test_null_rejecting_declaration(self):
        p = CustomPredicate(
            "NestedIn", lambda row: row["@r"] == row["@v"], ["@r", "@v"], ["@r", "@v"]
        )
        assert p.is_strong(["@r"])
        assert p.is_strong(["@v"])
        assert p.evaluate(Row({"@r": NULL, "@v": 1})) is False
        assert p.evaluate(Row({"@r": 1, "@v": 1})) is True

    def test_opaque_without_declaration(self):
        p = CustomPredicate("Opaque", lambda row: True, ["@r"])
        assert not p.is_strong(["@r"])

    def test_null_rejecting_must_be_subset(self):
        with pytest.raises(PredicateError):
            CustomPredicate("Bad", lambda row: True, ["@r"], ["@other"])


class TestHelpers:
    def test_references(self):
        assert references(eq("R.a", "S.a"), ["R.a"])
        assert not references(eq("R.a", "S.a"), ["T.a"])

    def test_pair_view(self):
        view = PairView(Row({"a": 1}), Row({"b": 2}))
        assert view["a"] == 1 and view["b"] == 2
        assert len(view) == 2
        assert set(view) == {"a", "b"}
        assert eq("a", "b").evaluate(view) is False

    def test_predicate_structural_equality(self):
        assert eq("a", "b") == eq("a", "b")
        assert eq("a", "b") != eq("a", "c")
        assert len({eq("a", "b"), eq("a", "b")}) == 1
