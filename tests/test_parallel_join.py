"""Property tests: the parallel executor is bag-identical to the serial kernels.

The morsel-driven partitioned path (:mod:`repro.engine.parallel`) must be
an invisible substitution for the serial algebra kernels on every join
variant, for any worker count, partition count, and key distribution —
including the degenerate ones (all-null keys, heavy Zipf skew, empty
sides) that stress the dedicated null partition and the skewed-bucket
merge.
"""

from __future__ import annotations

import pytest

from repro.algebra.nulls import NULL
from repro.algebra.operators import (
    antijoin,
    full_outerjoin,
    join,
    outerjoin,
    semijoin,
)
from repro.algebra.predicates import AttrRef, Comparison, conjunction
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.engine.parallel import parallel_counts
from repro.engine.parallel.config import ParallelConfig, using_config
from repro.util.fastpath import parallel_mode
from repro.util.rng import make_rng

OPS = {
    "inner": join,
    "left_outer": outerjoin,
    "full_outer": full_outerjoin,
    "semi": semijoin,
    "anti": antijoin,
}

EQ = Comparison(AttrRef("L.k"), "=", AttrRef("R.k"))
RESIDUAL = conjunction([EQ, Comparison(AttrRef("L.a"), "<", AttrRef("R.b"))])


def _table(prefix: str, payload: str, keys, rng) -> Relation:
    rows = [
        Row({f"{prefix}.k": k, f"{prefix}.{payload}": rng.randrange(6)}) for k in keys
    ]
    return Relation((f"{prefix}.k", f"{prefix}.{payload}"), rows)


def _random_keys(rng, n, domain, null_p):
    return [NULL if rng.random() < null_p else rng.randrange(domain) for _ in range(n)]


def _zipf_keys(rng, n, domain):
    """Heavily skewed keys: a few values soak up most rows."""
    return [min(int(rng.paretovariate(1.1)), domain - 1) for _ in range(n)]


def _serial(op, left, right, predicate):
    with parallel_mode(False):
        return op(left, right, predicate)


def _parallel(op, left, right, predicate, workers, partitions):
    with parallel_mode(True), using_config(
        workers=workers, partitions=partitions, min_rows=0
    ):
        return op(left, right, predicate)


@pytest.mark.parametrize("workers", [1, 2, 7])
@pytest.mark.parametrize("variant", sorted(OPS))
def test_randomized_dbs_bag_identical(variant, workers):
    op = OPS[variant]
    rng = make_rng(100 + workers)
    for case in range(8):
        domain = rng.choice((2, 5, 12))
        null_p = rng.choice((0.0, 0.2, 0.5))
        left = _table("L", "a", _random_keys(rng, rng.randrange(0, 40), domain, null_p), rng)
        right = _table("R", "b", _random_keys(rng, rng.randrange(0, 40), domain, null_p), rng)
        predicate = RESIDUAL if case % 3 == 0 else EQ
        expected = _serial(op, left, right, predicate)
        got = _parallel(op, left, right, predicate, workers, partitions=3)
        assert got == expected, (
            f"{variant} diverged (workers={workers}, case={case}, "
            f"domain={domain}, null_p={null_p})"
        )


@pytest.mark.parametrize("variant", sorted(OPS))
def test_all_null_keys(variant):
    op = OPS[variant]
    rng = make_rng(7)
    left = _table("L", "a", [NULL] * 9, rng)
    right = _table("R", "b", [NULL] * 7, rng)
    expected = _serial(op, left, right, EQ)
    got = _parallel(op, left, right, EQ, workers=2, partitions=3)
    assert got == expected


@pytest.mark.parametrize("workers", [1, 2, 7])
@pytest.mark.parametrize("variant", sorted(OPS))
def test_zipf_skewed_keys(variant, workers):
    op = OPS[variant]
    rng = make_rng(55)
    left = _table("L", "a", _zipf_keys(rng, 120, 40), rng)
    right = _table("R", "b", _zipf_keys(rng, 120, 40), rng)
    expected = _serial(op, left, right, EQ)
    got = _parallel(op, left, right, EQ, workers, partitions=4)
    assert got == expected


@pytest.mark.parametrize("variant", sorted(OPS))
def test_empty_sides(variant):
    op = OPS[variant]
    rng = make_rng(3)
    empty_l = Relation(("L.k", "L.a"))
    empty_r = Relation(("R.k", "R.b"))
    full_l = _table("L", "a", [1, 2, 2, NULL], rng)
    full_r = _table("R", "b", [2, 3, NULL], rng)
    for left, right in ((empty_l, full_r), (full_l, empty_r), (empty_l, empty_r)):
        expected = _serial(op, left, right, EQ)
        got = _parallel(op, left, right, EQ, workers=2, partitions=3)
        assert got == expected


def test_multi_key_predicate():
    left = Relation(
        ("L.k", "L.j"), [Row({"L.k": i % 3, "L.j": i % 2}) for i in range(12)]
    )
    right = Relation(
        ("R.k", "R.j"), [Row({"R.k": i % 3, "R.j": i % 2}) for i in range(10)]
    )
    predicate = conjunction(
        [
            Comparison(AttrRef("L.k"), "=", AttrRef("R.k")),
            Comparison(AttrRef("L.j"), "=", AttrRef("R.j")),
        ]
    )
    expected = _serial(join, left, right, predicate)
    got = _parallel(join, left, right, predicate, workers=2, partitions=3)
    assert got == expected


def test_duplicate_multiplicities_cross_the_weighted_path():
    """Duplicated rows on both sides multiply multiplicities correctly."""
    left = Relation(("L.k", "L.a"), [Row({"L.k": 1, "L.a": 0})] * 3)
    right = Relation(("R.k", "R.b"), [Row({"R.k": 1, "R.b": 9})] * 4)
    expected = _serial(join, left, right, EQ)
    got = _parallel(join, left, right, EQ, workers=2, partitions=3)
    assert got == expected
    assert sum(got.counts().values()) == 12


def test_min_rows_gate_declines_small_inputs():
    rng = make_rng(1)
    left = _table("L", "a", [1, 2], rng)
    right = _table("R", "b", [2, 3], rng)
    counts = parallel_counts(
        left, right, EQ, "inner", config=ParallelConfig(min_rows=1000)
    )
    assert counts is None


def test_no_equality_key_declines():
    rng = make_rng(2)
    left = _table("L", "a", [1, 2], rng)
    right = _table("R", "b", [2, 3], rng)
    lt_only = Comparison(AttrRef("L.k"), "<", AttrRef("R.k"))
    counts = parallel_counts(
        left, right, lt_only, "inner", config=ParallelConfig(min_rows=0)
    )
    assert counts is None


def test_process_pool_mode_bag_identical():
    rng = make_rng(9)
    left = _table("L", "a", _random_keys(rng, 30, 5, 0.1), rng)
    right = _table("R", "b", _random_keys(rng, 30, 5, 0.1), rng)
    expected = _serial(join, left, right, EQ)
    with parallel_mode(True), using_config(
        workers=2, partitions=3, min_rows=0, mode="process"
    ):
        got = join(left, right, EQ)
    assert got == expected


def test_goj_rides_the_parallel_join():
    """GOJ = parallel inner join + serial projection-difference."""
    from repro.algebra.goj import generalized_outerjoin

    rng = make_rng(21)
    left = _table("L", "a", _random_keys(rng, 25, 4, 0.1), rng)
    right = _table("R", "b", _random_keys(rng, 25, 4, 0.1), rng)
    with parallel_mode(False):
        expected = generalized_outerjoin(left, right, EQ, ["L.k", "L.a"])
    with parallel_mode(True), using_config(workers=2, partitions=3, min_rows=0):
        got = generalized_outerjoin(left, right, EQ, ["L.k", "L.a"])
    assert got == expected
