"""Tests for grouped counting and its outerjoin dependence ([MURA89])."""

import pytest

from repro.algebra import NULL, Relation, eq
from repro.algebra.aggregation import group_count
from repro.core import jn, oj
from repro.datagen import departments_database
from repro.util.errors import SchemaError


class TestGroupCount:
    def test_counts_non_null_only(self):
        rel = Relation.from_dicts(
            ["g", "v"],
            [{"g": 1, "v": "a"}, {"g": 1, "v": NULL}, {"g": 2, "v": "b"}],
        )
        out = group_count(rel, ["g"], "v")
        counts = {r["g"]: r["count"] for r in out}
        assert counts == {1: 1, 2: 1}

    def test_all_null_group_reports_zero(self):
        rel = Relation.from_dicts(["g", "v"], [{"g": 7, "v": NULL}])
        out = group_count(rel, ["g"], "v")
        assert [dict(r) for r in out] == [{"g": 7, "count": 0}]

    def test_multiplicities_counted(self):
        rel = Relation.from_dicts(
            ["g", "v"], [{"g": 1, "v": "x"}, {"g": 1, "v": "x"}]
        )
        out = group_count(rel, ["g"], "v")
        assert next(iter(out))["count"] == 2

    def test_missing_attribute(self):
        rel = Relation.from_dicts(["g"], [{"g": 1}])
        with pytest.raises(SchemaError):
            group_count(rel, ["g"], "nope")

    def test_output_name_collision(self):
        rel = Relation.from_dicts(["g", "v"], [{"g": 1, "v": 2}])
        with pytest.raises(SchemaError):
            group_count(rel, ["g"], "v", output_attribute="g")

    def test_custom_output_name(self):
        rel = Relation.from_dicts(["g", "v"], [{"g": 1, "v": 2}])
        out = group_count(rel, ["g"], "v", output_attribute="n")
        assert "n" in out.scheme


class TestCountNeedsOuterjoin:
    """The introduction's [MURA89] point, on the dept/emp workload."""

    def test_outerjoin_reports_zero_counts(self):
        db = departments_database(n_departments=4, empty_departments=1)
        q = oj("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
        out = group_count(q.eval(db), ["DEPT.dno"], "EMP.eno")
        counts = {r["DEPT.dno"]: r["count"] for r in out}
        assert counts[3] == 0  # the empty department is present, at zero
        assert len(counts) == 4

    def test_plain_join_loses_the_zero_group(self):
        db = departments_database(n_departments=4, empty_departments=1)
        q = jn("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
        out = group_count(q.eval(db), ["DEPT.dno"], "EMP.eno")
        counts = {r["DEPT.dno"]: r["count"] for r in out}
        assert 3 not in counts  # silently missing
        assert len(counts) == 3

    def test_counts_identical_on_nonempty_groups(self):
        db = departments_database(n_departments=4, empty_departments=1)
        p = eq("DEPT.dno", "EMP.dno")
        oj_counts = {
            r["DEPT.dno"]: r["count"]
            for r in group_count(oj("DEPT", "EMP", p).eval(db), ["DEPT.dno"], "EMP.eno")
        }
        jn_counts = {
            r["DEPT.dno"]: r["count"]
            for r in group_count(jn("DEPT", "EMP", p).eval(db), ["DEPT.dno"], "EMP.eno")
        }
        for dno, count in jn_counts.items():
            assert oj_counts[dno] == count

    def test_count_over_any_implementing_tree_is_stable(self):
        """Free reorderability carries through the aggregation: every IT
        of a nice count query yields the same counts."""
        from repro.core import graph_of, implementing_trees

        db = departments_database(n_departments=3, empty_departments=1)
        q = oj("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
        graph = graph_of(q, db.registry)
        reference = None
        for tree in implementing_trees(graph):
            counts = group_count(tree.eval(db), ["DEPT.dno"], "EMP.eno")
            if reference is None:
                reference = counts
            else:
                assert counts == reference
