"""Unit tests for the algebra operators (join, outerjoin, antijoin, ...).

These transcribe the paper's Section 1.2/2.1 definitions into executable
assertions, including the bag-semantics corner cases the proofs rely on.
"""

import pytest

from repro.algebra import (
    NULL,
    Relation,
    antijoin,
    bag_equal,
    cross,
    difference,
    eq,
    gt,
    join,
    outerjoin,
    project,
    restrict,
    semijoin,
    union_padded,
)
from repro.util.errors import SchemaError


@pytest.fixture
def r():
    return Relation.from_dicts(
        ["R.a", "R.b"],
        [{"R.a": 1, "R.b": 10}, {"R.a": 2, "R.b": 20}, {"R.a": NULL, "R.b": 30}],
    )


@pytest.fixture
def s():
    return Relation.from_dicts(["S.a"], [{"S.a": 1}, {"S.a": 1}, {"S.a": 3}])


class TestRestrictProject:
    def test_restrict_keeps_only_true(self, r):
        out = restrict(r, gt("R.b", "R.a"))
        # the NULL row evaluates unknown -> dropped
        assert len(out) == 2

    def test_restrict_preserves_multiplicity(self):
        rel = Relation.from_dicts(["a"], [{"a": 1}, {"a": 1}])
        assert len(restrict(rel, eq("a", "a"))) == 2

    def test_project_dedup(self, s):
        assert len(project(s, ["S.a"], dedup=True)) == 2

    def test_project_bag(self, s):
        assert len(project(s, ["S.a"], dedup=False)) == 3

    def test_project_missing_attr(self, r):
        with pytest.raises(SchemaError):
            project(r, ["nope"])


class TestJoin:
    def test_join_matches(self, r, s):
        out = join(r, s, eq("R.a", "S.a"))
        # R.a=1 matches the two S.a=1 rows.
        assert len(out) == 2
        assert out.scheme == frozenset({"R.a", "R.b", "S.a"})

    def test_join_discards_nonmatching(self, r, s):
        out = join(r, s, eq("R.a", "S.a"))
        assert all(row["R.a"] == 1 for row in out)

    def test_null_never_joins(self, r, s):
        # The row with R.a = NULL matches nothing, even S.a = NULL rows.
        s_with_null = Relation.from_dicts(["S.a"], [{"S.a": NULL}])
        assert join(r, s_with_null, eq("R.a", "S.a")).is_empty()

    def test_multiplicities_multiply(self):
        a = Relation.from_dicts(["a"], [{"a": 1}, {"a": 1}])
        b = Relation.from_dicts(["b"], [{"b": 1}, {"b": 1}, {"b": 1}])
        assert len(join(a, b, eq("a", "b"))) == 6

    def test_disjoint_schemes_required(self, r):
        with pytest.raises(SchemaError):
            join(r, r, eq("R.a", "R.b"))


class TestOuterjoin:
    def test_preserves_left(self, r, s):
        out = outerjoin(r, s, eq("R.a", "S.a"))
        # 2 matches (R.a=1 twice) + 2 padded (R.a=2, R.a=NULL).
        assert len(out) == 4

    def test_padding_uses_nulls(self, r, s):
        out = outerjoin(r, s, eq("R.a", "S.a"))
        padded = [row for row in out if row["S.a"] is NULL]
        assert {row["R.a"] for row in padded} == {2, NULL}

    def test_empty_right_pads_everything(self, r):
        empty = Relation(["S.a"])
        out = outerjoin(r, empty, eq("R.a", "S.a"))
        assert len(out) == len(r)
        assert all(row["S.a"] is NULL for row in out)

    def test_empty_left_is_empty(self, s):
        out = outerjoin(Relation(["R.a", "R.b"]), s, eq("R.a", "S.a"))
        assert out.is_empty()

    def test_unmatched_multiplicity_preserved(self):
        a = Relation.from_dicts(["a"], [{"a": 9}, {"a": 9}])
        b = Relation.from_dicts(["b"], [{"b": 1}])
        out = outerjoin(a, b, eq("a", "b"))
        assert len(out) == 2


class TestAntijoinSemijoin:
    def test_antijoin(self, r, s):
        out = antijoin(r, s, eq("R.a", "S.a"))
        assert {row["R.a"] for row in out} == {2, NULL}
        assert out.scheme == frozenset({"R.a", "R.b"})

    def test_semijoin(self, r, s):
        out = semijoin(r, s, eq("R.a", "S.a"))
        assert {row["R.a"] for row in out} == {1}

    def test_semijoin_does_not_multiply(self, s):
        a = Relation.from_dicts(["a"], [{"a": 1}])
        assert len(semijoin(a, s, eq("a", "S.a"))) == 1

    def test_partition_property(self, r, s):
        """Semijoin and antijoin partition the left input."""
        p = eq("R.a", "S.a")
        assert len(semijoin(r, s, p)) + len(antijoin(r, s, p)) == len(r)


class TestUnionDifferenceCross:
    def test_union_pads(self):
        a = Relation.from_dicts(["a"], [{"a": 1}])
        b = Relation.from_dicts(["b"], [{"b": 2}])
        out = union_padded(a, b)
        assert out.scheme == frozenset({"a", "b"})
        assert len(out) == 2

    def test_union_adds_multiplicities(self):
        a = Relation.from_dicts(["a"], [{"a": 1}])
        assert len(union_padded(a, a)) == 2

    def test_difference_set(self):
        a = Relation.from_dicts(["a"], [{"a": 1}, {"a": 1}, {"a": 2}])
        b = Relation.from_dicts(["a"], [{"a": 1}])
        out = difference(a, b)
        assert sorted(row["a"] for row in out) == [2]

    def test_difference_bag(self):
        a = Relation.from_dicts(["a"], [{"a": 1}, {"a": 1}, {"a": 2}])
        b = Relation.from_dicts(["a"], [{"a": 1}])
        out = difference(a, b, bag=True)
        assert sorted(row["a"] for row in out) == [1, 2]

    def test_difference_requires_same_scheme(self):
        a = Relation.from_dicts(["a"], [{"a": 1}])
        b = Relation.from_dicts(["b"], [{"b": 1}])
        with pytest.raises(SchemaError):
            difference(a, b)

    def test_cross(self):
        a = Relation.from_dicts(["a"], [{"a": 1}, {"a": 2}])
        b = Relation.from_dicts(["b"], [{"b": 3}])
        assert len(cross(a, b)) == 2


class TestEquation10:
    """X → Y = X − Y ∪ X ▷ Y, on hand data (randomized version elsewhere)."""

    def test_outerjoin_decomposition(self, r, s):
        p = eq("R.a", "S.a")
        lhs = outerjoin(r, s, p)
        rhs = union_padded(join(r, s, p), antijoin(r, s, p))
        assert bag_equal(lhs, rhs)
