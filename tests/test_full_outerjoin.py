"""Tests for the two-sided outerjoin and Section 4's conversion argument."""

import pytest

from repro.algebra import (
    NULL,
    Comparison,
    Const,
    Relation,
    bag_equal,
    eq,
    full_outerjoin,
    outerjoin,
    union_padded,
)
from repro.core import Restrict, simplify_outerjoins
from repro.core.expressions import FullOuterJoin, Join, LeftOuterJoin, RightOuterJoin, foj
from repro.datagen import random_databases


@pytest.fixture
def r1():
    return Relation.from_dicts(
        ["R1.a", "R1.b"], [{"R1.a": 1, "R1.b": 10}, {"R1.a": 2, "R1.b": 20}]
    )


@pytest.fixture
def r2():
    return Relation.from_dicts(
        ["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 99}, {"R2.a": 5, "R2.b": 88}]
    )


class TestOperator:
    def test_preserves_both_sides(self, r1, r2):
        out = full_outerjoin(r1, r2, eq("R1.a", "R2.a"))
        # 1 match + 1 unmatched left + 1 unmatched right.
        assert len(out) == 3

    def test_decomposes_into_one_sided_pieces(self, r1, r2):
        """FOJ = LOJ ∪ (right antijoin part), checked via padded union."""
        from repro.algebra import antijoin

        p = eq("R1.a", "R2.a")
        lhs = full_outerjoin(r1, r2, p)
        rhs = union_padded(outerjoin(r1, r2, p), antijoin(r2, r1, p))
        assert bag_equal(lhs, rhs)

    def test_symmetric(self, r1, r2):
        p = eq("R1.a", "R2.a")
        assert bag_equal(full_outerjoin(r1, r2, p), full_outerjoin(r2, r1, p))

    def test_empty_sides(self, r1):
        empty = Relation(["R2.a", "R2.b"])
        out = full_outerjoin(r1, empty, eq("R1.a", "R2.a"))
        assert len(out) == len(r1)
        assert all(row["R2.a"] is NULL for row in out)
        mirrored = full_outerjoin(empty, r1, eq("R1.a", "R2.a"))
        assert len(mirrored) == len(r1)
        assert all(row["R2.a"] is NULL for row in mirrored)

    def test_multiplicities(self):
        a = Relation.from_dicts(["a"], [{"a": 9}, {"a": 9}])
        b = Relation.from_dicts(["b"], [{"b": 1}])
        out = full_outerjoin(a, b, eq("a", "b"))
        # 2 padded copies of a's row + 1 padded b row.
        assert len(out) == 3


class TestExpressionNode:
    def test_eval(self, r1, r2):
        from repro.algebra import Database

        db = Database({"R1": r1, "R2": r2})
        q = foj("R1", "R2", eq("R1.a", "R2.a"))
        assert len(q.eval(db)) == 3
        assert q.symbol == "⟷"

    def test_structural_equality(self):
        p = eq("R1.a", "R2.a")
        assert foj("R1", "R2", p) == foj("R1", "R2", p)
        assert foj("R1", "R2", p) != foj("R2", "R1", p)


class TestSection4Conversion:
    """Section 4: "A similar argument can be used to convert 2-sided
    outerjoin to one-sided outerjoin"."""

    REG_SCHEMAS = {"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"]}

    @pytest.fixture
    def reg(self):
        from repro.algebra import SchemaRegistry

        return SchemaRegistry(self.REG_SCHEMAS)

    def test_strong_on_left_gives_left_outerjoin(self, reg):
        q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), Comparison("R1.b", "=", Const(10)))
        report = simplify_outerjoins(q, reg)
        assert isinstance(report.query.child, LeftOuterJoin)
        assert any("full outerjoin ⇒ left outerjoin" in c for c in report.conversions)

    def test_strong_on_right_gives_right_outerjoin(self, reg):
        q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), Comparison("R2.b", "=", Const(99)))
        report = simplify_outerjoins(q, reg)
        assert isinstance(report.query.child, RightOuterJoin)

    def test_strong_on_both_gives_join(self, reg):
        from repro.algebra import And

        predicate = And(
            (Comparison("R1.b", "=", Const(10)), Comparison("R2.b", "=", Const(99)))
        )
        q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), predicate)
        report = simplify_outerjoins(q, reg)
        assert isinstance(report.query.child, Join)

    def test_nonstrong_keeps_full_outerjoin(self, reg):
        from repro.algebra import IsNull

        q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), IsNull("R2.b"))
        report = simplify_outerjoins(q, reg)
        assert isinstance(report.query.child, FullOuterJoin)
        assert not report.changed

    @pytest.mark.parametrize("attr,expected_rows", [("R1.b", "left"), ("R2.b", "right")])
    def test_conversion_preserves_semantics(self, reg, attr, expected_rows):
        q = Restrict(foj("R1", "R2", eq("R1.a", "R2.a")), Comparison(attr, "=", Const(1)))
        report = simplify_outerjoins(q, reg)
        for db in random_databases(self.REG_SCHEMAS, 25, seed=hash(attr) % 1000, domain=3):
            assert bag_equal(q.eval(db), report.query.eval(db))
