"""Unit tests for the parallel runtime: pools, the ledger, budgets, spill.

These are the pieces under the join kernels: deterministic worker
sizing (:func:`resolve_workers` never consults the CPU count), the
max-total-workers invariant (:class:`WorkerLedger`), the memory-budget
hierarchy with its refuse-don't-raise contract, and the partition
buffer's one-way memory → spilled → closed state machine.
"""

from __future__ import annotations

import pytest

from repro.algebra.tuples import Row
from repro.engine.parallel.budget import (
    BUDGET_ENV,
    MemoryBudget,
    env_budget_bytes,
    parse_budget,
    reset_process_budget,
    row_bytes,
)
from repro.engine.parallel.pool import (
    DEFAULT_MAX_TOTAL,
    DEFAULT_WORKERS,
    MAX_TOTAL_ENV,
    WORKERS_ENV,
    WorkerLedger,
    WorkerPool,
    max_total_workers,
    resolve_workers,
)
from repro.engine.parallel.spill import (
    STATE_CLOSED,
    STATE_MEMORY,
    STATE_SPILLED,
    PartitionBuffer,
)
from repro.util.errors import ReproError


# -- deterministic sizing ----------------------------------------------------


def test_resolve_workers_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "7")
    assert resolve_workers(3) == 3
    assert resolve_workers() == 7


def test_resolve_workers_default_is_constant(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers() == DEFAULT_WORKERS


def test_resolve_workers_rejects_garbage(monkeypatch):
    with pytest.raises(ReproError):
        resolve_workers(-1)
    monkeypatch.setenv(WORKERS_ENV, "lots")
    with pytest.raises(ReproError):
        resolve_workers()


def test_max_total_workers_env(monkeypatch):
    monkeypatch.delenv(MAX_TOTAL_ENV, raising=False)
    assert max_total_workers() == DEFAULT_MAX_TOTAL
    monkeypatch.setenv(MAX_TOTAL_ENV, "5")
    assert max_total_workers() == 5
    monkeypatch.setenv(MAX_TOTAL_ENV, "0")
    with pytest.raises(ReproError):
        max_total_workers()


# -- the worker ledger -------------------------------------------------------


def test_ledger_clamps_and_restores():
    ledger = WorkerLedger(ceiling=5)
    assert ledger.acquire(3, "a") == 3
    assert ledger.acquire(4, "b") == 2  # clamped to the remainder
    assert ledger.acquire(1, "c") == 0  # exhausted: zero grant, not an error
    assert ledger.granted == 5
    ledger.release(2, "b")
    assert ledger.acquire(9, "d") == 2
    ledger.release(3, "a")
    ledger.release(2, "d")
    assert ledger.granted == 0
    assert ledger.snapshot()["grants"] == {}


def test_ledger_invariant_holds_at_every_instant():
    ledger = WorkerLedger(ceiling=4)
    for request in (1, 2, 3, 4, 5):
        ledger.acquire(request, f"g{request}")
        assert ledger.granted <= ledger.ceiling


def test_ledger_rejects_bad_amounts():
    ledger = WorkerLedger(ceiling=4)
    with pytest.raises(ReproError):
        ledger.acquire(-1)
    with pytest.raises(ReproError):
        ledger.release(1, "ghost")


# -- worker pools ------------------------------------------------------------


def test_pool_serial_inline_and_order():
    with WorkerPool(workers=0) as pool:
        assert pool.mode == "serial"
        assert pool.map(lambda x: x * x, range(5)) == [0, 1, 4, 9, 16]


def test_pool_thread_map_preserves_order():
    with WorkerPool(workers=3, mode="thread") as pool:
        assert pool.map(lambda x: -x, range(20)) == [-x for x in range(20)]


def test_pool_with_ledger_releases_on_close():
    ledger = WorkerLedger(ceiling=4)
    pool = WorkerPool(workers=3, ledger=ledger, name="p")
    assert ledger.granted == 3
    pool.close()
    assert ledger.granted == 0
    pool.close()  # idempotent
    assert ledger.granted == 0


def test_pool_clamped_to_zero_still_works():
    ledger = WorkerLedger(ceiling=2)
    ledger.acquire(2, "hog")
    with WorkerPool(workers=4, ledger=ledger, name="starved") as pool:
        assert pool.workers == 0
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]


def test_pool_refuses_use_after_close():
    pool = WorkerPool(workers=2, mode="thread")
    pool.close()
    with pytest.raises(ReproError):
        pool.map(lambda x: x, [1, 2, 3])


# -- memory budgets ----------------------------------------------------------


def test_parse_budget_units():
    assert parse_budget("1048576") == 1048576
    assert parse_budget("8MB") == 8 * 1024 * 1024
    assert parse_budget("512kb") == 512 * 1024
    assert parse_budget("1GB") == 1024**3
    assert parse_budget("unlimited") is None
    assert parse_budget("") is None
    with pytest.raises(ReproError):
        parse_budget("eight megabytes")


def test_env_budget_bytes(monkeypatch):
    monkeypatch.delenv(BUDGET_ENV, raising=False)
    assert env_budget_bytes() is None
    monkeypatch.setenv(BUDGET_ENV, "4KB")
    assert env_budget_bytes() == 4096


def test_budget_reserve_release_high_water():
    budget = MemoryBudget(limit=100, name="op")
    assert budget.try_reserve(60)
    assert budget.try_reserve(40)
    assert not budget.try_reserve(1)  # refusal, not an exception
    assert budget.spill_signals == 1
    budget.release(50)
    assert budget.try_reserve(10)
    assert budget.used == 60
    assert budget.high_water == 100


def test_budget_child_forwards_to_parent():
    parent = MemoryBudget(limit=100, name="process")
    child = parent.child("op")
    assert child.try_reserve(80)
    assert parent.used == 80
    # Child has no limit of its own, but the parent refuses; nothing is
    # left half-reserved anywhere.
    assert not child.try_reserve(30)
    assert parent.used == 80
    assert child.used == 80
    child.release(80)
    assert parent.used == 0


def test_row_bytes_positive_and_monotonic():
    small = row_bytes({"a": 1})
    large = row_bytes({"a": 1, "b": "x" * 100, "c": 3})
    assert 0 < small < large


# -- the partition buffer state machine --------------------------------------


def _rows(n, start=0):
    return [(Row({"T.k": i, "T.v": i * 2}), 1) for i in range(start, start + n)]


def test_buffer_stays_in_memory_without_budget():
    buf = PartitionBuffer("p0")
    for row, n in _rows(10):
        buf.append(row, n)
    assert buf.state == STATE_MEMORY
    assert not buf.spilled
    assert list(buf.drain()) == _rows(10)
    assert buf.state == STATE_CLOSED


def test_buffer_spills_on_budget_refusal_and_preserves_order():
    budget = MemoryBudget(limit=1, name="tiny")  # refuses everything
    buf = PartitionBuffer("p1", budget=budget, batch_rows=4)
    rows = _rows(13)
    for row, n in rows:
        buf.append(row, n)
    assert buf.state == STATE_SPILLED
    assert buf.spilled
    assert budget.used == 0  # spilling released the reservation
    assert list(buf.drain()) == rows
    assert buf.state == STATE_CLOSED


def test_buffer_force_spill_then_append():
    buf = PartitionBuffer("p2", batch_rows=3)
    rows = _rows(5)
    for row, n in rows[:2]:
        buf.append(row, n)
    buf.force_spill()
    assert buf.state == STATE_SPILLED
    for row, n in rows[2:]:
        buf.append(row, n)
    assert buf.rows == 5
    assert list(buf.drain()) == rows


def test_buffer_multiplicities_counted_in_rows():
    buf = PartitionBuffer("p3")
    row = Row({"T.k": 1, "T.v": 2})
    buf.append(row, 3)
    buf.append(row, 4)
    assert buf.rows == 7
    assert list(buf.drain()) == [(row, 3), (row, 4)]


def test_buffer_close_discards_and_is_terminal():
    budget = MemoryBudget(limit=10_000, name="b")
    buf = PartitionBuffer("p4", budget=budget)
    for row, n in _rows(4):
        buf.append(row, n)
    assert budget.used > 0
    buf.close()
    assert buf.state == STATE_CLOSED
    assert budget.used == 0
    with pytest.raises(ReproError):
        buf.append(Row({"T.k": 0, "T.v": 0}), 1)


def test_reset_process_budget_rereads_env(monkeypatch):
    from repro.engine.parallel.budget import process_budget

    monkeypatch.setenv(BUDGET_ENV, "2KB")
    reset_process_budget()
    try:
        assert process_budget().limit == 2048
        monkeypatch.setenv(BUDGET_ENV, "4KB")
        assert process_budget().limit == 2048  # cached until reset
        reset_process_budget()
        assert process_budget().limit == 4096
    finally:
        monkeypatch.delenv(BUDGET_ENV, raising=False)
        reset_process_budget()
