"""QueryService: concurrency, deadlines, cancellation, shedding, lifecycle.

The service's contract is small but strict: every submitted ticket
resolves exactly once with one of the five statuses; results are
bag-equal to single-threaded execution; deadlines start at submission;
a full queue sheds instead of blocking; close() drains gracefully.
"""

from __future__ import annotations

import threading

import pytest

from repro.algebra import Comparison, Const, bag_equal, eq
from repro.core import Restrict, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer import PlanCache
from repro.service import STATUSES, QueryService
from repro.tools import instrumentation
from repro.util.errors import (
    QueryTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")


def query(constant: int = 5):
    return Restrict(
        jn("R1", oj("R2", "R3", P23), P12), Comparison("R3.j", "=", Const(constant))
    )


@pytest.fixture
def storage():
    return example1_storage(400)


def test_results_match_single_threaded_execution(storage):
    queries = [query(c) for c in range(6)]
    expected = [execute(q, storage).relation for q in queries]
    with QueryService(storage, workers=4, plan_cache=PlanCache(16)) as service:
        tickets = service.submit_batch(queries)
        outcomes = [t.result(timeout=60) for t in tickets]
    assert [o.status for o in outcomes] == ["ok"] * len(queries)
    for outcome, reference in zip(outcomes, expected):
        assert bag_equal(outcome.require(), reference)


def test_repeated_shapes_hit_the_shared_cache(storage):
    with QueryService(storage, workers=4, plan_cache=PlanCache(16)) as service:
        outcomes = [t.result(timeout=60) for t in service.submit_batch([query()] * 12)]
    assert all(o.ok for o in outcomes)
    hits = sum(o.cache_hit for o in outcomes)
    # At least the strictly-sequential tail must hit; racing first-comers
    # may each miss, but never more of them than there are workers.
    assert hits >= 12 - 4
    assert instrumentation.snapshot()["service_queries"] == 12


def test_zero_deadline_times_out_and_require_raises(storage):
    with QueryService(storage, workers=2) as service:
        outcome = service.execute(query(), timeout_s=0.0)
    assert outcome.status == "timeout"
    assert not outcome.ok and outcome.relation is None
    with pytest.raises(QueryTimeoutError):
        outcome.require()
    assert instrumentation.snapshot()["service_timeouts"] == 1


def test_default_timeout_applies_to_every_query(storage):
    with QueryService(storage, workers=1, default_timeout_s=0.0) as service:
        statuses = {t.result(timeout=60).status for t in service.submit_batch([query()] * 3)}
    assert statuses == {"timeout"}


def test_cancel_before_run_resolves_cancelled(storage):
    with QueryService(storage, workers=1) as service:
        # The single worker is pinned behind several queued queries, so
        # the victim cannot have started when its cancel lands.
        blockers = service.submit_batch([query()] * 3)
        victim = service.submit(query(1))
        victim.cancel()
        assert all(b.result(timeout=60).ok for b in blockers)
        outcome = victim.result(timeout=60)
    assert outcome.status == "cancelled"
    assert instrumentation.snapshot()["service_cancelled"] == 1


def test_full_queue_sheds_immediately(storage):
    service = QueryService(storage, workers=1, queue_size=1)
    try:
        tickets = service.submit_batch([query(c) for c in range(25)])
        outcomes = [t.result(timeout=120) for t in tickets]
    finally:
        service.close()
    statuses = [o.status for o in outcomes]
    assert statuses.count("rejected") >= 1
    assert statuses.count("ok") >= 1
    assert set(statuses) <= set(STATUSES)
    rejected = next(o for o in outcomes if o.status == "rejected")
    with pytest.raises(ServiceOverloadedError):
        rejected.require()
    assert instrumentation.snapshot()["service_rejected"] == statuses.count("rejected")


def test_close_drains_queued_queries_then_rejects_new_ones(storage):
    service = QueryService(storage, workers=2, queue_size=32)
    tickets = service.submit_batch([query(c) for c in range(8)])
    service.close()
    assert all(t.result(timeout=60).ok for t in tickets)
    assert service.closed
    with pytest.raises(ServiceClosedError):
        service.submit(query())
    service.close()  # idempotent


def test_result_wait_timeout_is_independent_of_query_deadline(storage):
    with QueryService(storage, workers=1) as service:
        ticket = service.submit(query())
        with pytest.raises(TimeoutError):
            # 0-second *wait* can fire before the (deadline-less) query ends.
            ticket.result(timeout=0)
        outcome = ticket.result(timeout=60)
    assert outcome.ok


def test_snapshot_and_summary_report_outcomes_and_cache(storage):
    cache = PlanCache(8)
    with QueryService(storage, workers=2, plan_cache=cache) as service:
        [t.result(timeout=60) for t in service.submit_batch([query()] * 4)]
        service.execute(query(), timeout_s=0.0)
        snap = service.snapshot()
        text = service.summary()
    assert snap["submitted"] == 5
    assert snap["outcomes"]["ok"] == 4 and snap["outcomes"]["timeout"] == 1
    assert snap["plan_cache"]["hits"] >= 1
    assert "plan cache:" in text and "5 submitted" in text


def test_many_threads_submitting_concurrently(storage):
    """Reentrancy drill: submitters race workers; every ticket resolves ok."""
    with QueryService(storage, workers=4, queue_size=256, plan_cache=PlanCache(16)) as service:
        results = []
        lock = threading.Lock()

        def client(constant):
            outcome = service.submit(query(constant % 3)).result(timeout=120)
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert len(results) == 32
    assert all(o.ok for o in results)
    reference = {c: execute(query(c), storage).relation for c in range(3)}
    for outcome in results:
        assert any(bag_equal(outcome.relation, rel) for rel in reference.values())


def test_constructor_validation(storage):
    with pytest.raises(ValueError):
        QueryService(storage, workers=0)
    with pytest.raises(ValueError):
        QueryService(storage, queue_size=0)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
