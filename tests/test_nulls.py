"""Unit tests for the null marker and Kleene three-valued logic."""

import pickle

from repro.algebra.nulls import NULL, is_null, satisfied, tv_and, tv_not, tv_or


class TestNullMarker:
    def test_singleton(self):
        from repro.algebra.nulls import _Null

        assert _Null() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_equality_only_with_itself(self):
        assert NULL == NULL
        assert not (NULL == 0)
        assert not (NULL == None)  # noqa: E711 - deliberate comparison

    def test_hashable_and_stable(self):
        assert hash(NULL) == hash(NULL)
        assert {NULL: 1}[NULL] == 1

    def test_repr(self):
        assert repr(NULL) == "NULL"

    def test_pickle_round_trip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL


class TestKleeneLogic:
    def test_and_truth_table(self):
        assert tv_and(True, True) is True
        assert tv_and(True, False) is False
        assert tv_and(False, None) is False
        assert tv_and(True, None) is None
        assert tv_and(None, None) is None

    def test_and_empty_is_true(self):
        assert tv_and() is True

    def test_or_truth_table(self):
        assert tv_or(False, False) is False
        assert tv_or(False, True) is True
        assert tv_or(None, True) is True
        assert tv_or(False, None) is None
        assert tv_or(None, None) is None

    def test_or_empty_is_false(self):
        assert tv_or() is False

    def test_not(self):
        assert tv_not(True) is False
        assert tv_not(False) is True
        assert tv_not(None) is None

    def test_and_short_circuits_unknown_to_false(self):
        # False dominates unknown in conjunction.
        assert tv_and(None, False, None) is False

    def test_satisfied_collapses_unknown(self):
        assert satisfied(True)
        assert not satisfied(False)
        assert not satisfied(None)

    def test_many_operands(self):
        assert tv_and(*[True] * 50) is True
        assert tv_or(*[False] * 49, True) is True
