"""Tests for the Section-4 simplification rule and the RI cautionary tale."""

import pytest

from repro.algebra import (
    Comparison,
    Const,
    Database,
    IsNull,
    Relation,
    SchemaRegistry,
    bag_equal,
    eq,
)
from repro.core import (
    Join,
    LeftOuterJoin,
    Restrict,
    apply_referential_integrity,
    is_nice,
    jn,
    oj,
    roj,
    simplify_outerjoins,
)
from repro.datagen import chain, random_databases
from repro.util.errors import NotApplicableError


@pytest.fixture
def reg():
    return SchemaRegistry(
        {"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"], "R3": ["R3.a", "R3.b"]}
    )


P12 = eq("R1.a", "R2.a")
P23 = eq("R2.b", "R3.b")


class TestStrongRestrictionSimplification:
    def test_restriction_on_null_supplied_side_converts_oj(self, reg):
        # σ[R2.b = 5](R1 → R2): the restriction is strong on R2.
        q = Restrict(oj("R1", "R2", P12), Comparison("R2.b", "=", Const(5)))
        report = simplify_outerjoins(q, reg)
        assert report.changed
        inner = report.query.child
        assert isinstance(inner, Join)

    def test_restriction_on_preserved_side_keeps_oj(self, reg):
        q = Restrict(oj("R1", "R2", P12), Comparison("R1.b", "=", Const(5)))
        report = simplify_outerjoins(q, reg)
        assert not report.changed
        assert isinstance(report.query.child, LeftOuterJoin)

    def test_nonstrong_restriction_keeps_oj(self, reg):
        # R2.b IS NULL is satisfied by padded tuples: must NOT convert.
        q = Restrict(oj("R1", "R2", P12), IsNull("R2.b"))
        report = simplify_outerjoins(q, reg)
        assert not report.changed

    def test_join_predicate_counts_as_strong_context(self, reg):
        # (R1 → R2) joined with R3 on P23 (strong on R2.b): per the paper,
        # a *regular join* predicate also triggers the simplification.
        q = jn(oj("R1", "R2", P12), "R3", P23)
        report = simplify_outerjoins(q, reg)
        assert report.changed
        assert isinstance(report.query, Join)
        assert isinstance(report.query.left, Join)

    def test_right_outerjoin_handled(self, reg):
        # R2 ← R1: R2 is null-supplied; a strong restriction on R2 converts.
        q = Restrict(roj("R2", "R1", P12), Comparison("R2.b", "=", Const(5)))
        report = simplify_outerjoins(q, reg)
        assert report.changed
        assert isinstance(report.query.child, Join)

    def test_deep_chain_conversion_cascades(self, reg):
        # σ[R3.b = 5]((R1 → R2) → R3) with P23 between R2 and R3: the
        # restriction protects R3, converting the outer OJ to a join — and
        # the converted join's P23 is itself strong on R2.b, so the inner
        # outerjoin converts too (the rule re-applies to new join
        # predicates, exactly as Section 4 describes).
        q = Restrict(
            oj(oj("R1", "R2", P12), "R3", P23), Comparison("R3.b", "=", Const(5))
        )
        report = simplify_outerjoins(q, reg)
        outer = report.query.child
        assert isinstance(outer, Join)
        assert isinstance(outer.left, Join)
        assert len(report.conversions) == 2

    def test_inner_oj_kept_when_outer_predicate_spares_it(self, reg):
        # σ[R3.b = 5]((R1 → R2) → R3) where the outer OJ predicate links
        # R1-R3 instead of R2-R3: the outer OJ converts, but the new join
        # predicate is strong only on R1/R3, so R1 → R2 survives.
        p13 = eq("R1.b", "R3.b")
        q = Restrict(
            oj(oj("R1", "R2", P12), "R3", p13), Comparison("R3.b", "=", Const(5))
        )
        report = simplify_outerjoins(q, reg)
        outer = report.query.child
        assert isinstance(outer, Join)
        assert isinstance(outer.left, LeftOuterJoin)
        assert len(report.conversions) == 1

    def test_simplification_preserves_semantics(self, reg):
        """The rewrite never changes results (randomized)."""
        schemas = {"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"], "R3": ["R3.a", "R3.b"]}
        q = Restrict(
            oj(oj("R1", "R2", P12), "R3", P23), Comparison("R3.b", "=", Const(1))
        )
        report = simplify_outerjoins(q, reg)
        assert report.changed
        for db in random_databases(schemas, 25, seed=77, domain=3):
            assert bag_equal(q.eval(db), report.query.eval(db))

    def test_join_context_simplification_preserves_semantics(self, reg):
        schemas = {"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"], "R3": ["R3.a", "R3.b"]}
        q = jn(oj("R1", "R2", P12), "R3", P23)
        report = simplify_outerjoins(q, reg)
        for db in random_databases(schemas, 25, seed=78, domain=3):
            assert bag_equal(q.eval(db), report.query.eval(db))

    def test_conversion_report_text(self, reg):
        q = Restrict(oj("R1", "R2", P12), Comparison("R2.b", "=", Const(5)))
        report = simplify_outerjoins(q, reg)
        assert any("outerjoin ⇒ join" in c for c in report.conversions)


class TestReferentialIntegrityCaution:
    def test_replacing_oj_edge_can_break_niceness(self):
        """R1 → R2 → R3 is nice; converting R2→R3 to a join gives Example 2."""
        scenario = chain(3, ["out", "out"])
        assert is_nice(scenario.graph)
        revised = apply_referential_integrity(scenario.graph, ("R2", "R3"))
        assert not is_nice(revised)

    def test_replacing_root_edge_stays_nice(self):
        scenario = chain(3, ["out", "out"])
        revised = apply_referential_integrity(scenario.graph, ("R1", "R2"))
        # R1 - R2 → R3 is still nice.
        assert is_nice(revised)

    def test_unknown_edge_rejected(self):
        scenario = chain(3, ["out", "out"])
        with pytest.raises(NotApplicableError):
            apply_referential_integrity(scenario.graph, ("R3", "R1"))

    def test_rewrite_is_semantically_valid_under_ri(self, reg):
        """When the constraint truly holds (every R2 matches some R3), the
        conversion is an equivalence on that database."""
        db = Database(
            {
                "R1": Relation.from_dicts(["R1.a", "R1.b"], [{"R1.a": 1, "R1.b": 0}]),
                "R2": Relation.from_dicts(
                    ["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 7}, {"R2.a": 9, "R2.b": 8}]
                ),
                "R3": Relation.from_dicts(
                    ["R3.a", "R3.b"], [{"R3.a": 0, "R3.b": 7}, {"R3.a": 0, "R3.b": 8}]
                ),
            }
        )
        with_oj = oj("R1", oj("R2", "R3", P23), P12)
        with_join = oj("R1", jn("R2", "R3", P23), P12)
        assert bag_equal(with_oj.eval(db), with_join.eval(db))
