"""Plan cache: LRU mechanics, generation invalidation, pipeline wiring.

The cache's correctness story is layered: the fingerprint pins the query
shape (tested in ``test_fingerprint.py``), Theorem 1 makes replay safe
(tested end to end by the plancache conformance mode), and *this* file
pins the machinery — eviction order, generation stamps, the environment
switch, and exactly what the pipeline stores for reorderable versus
order-sensitive queries.
"""

from __future__ import annotations

import pytest

from repro.algebra import Comparison, Const, IsNull, bag_equal, eq
from repro.core import Restrict, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer import PlanCache, optimize_query
from repro.optimizer.plancache import (
    PLAN_CACHE_ENV,
    active_plan_cache,
    default_plan_cache,
    reset_default_plan_cache,
)
from repro.tools import instrumentation

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")

GEN_A = ("s", 1)
GEN_B = ("s", 2)


def reorderable_query():
    return Restrict(
        jn("R1", oj("R2", "R3", P23), P12), Comparison("R3.j", "=", Const(5))
    )


def blocked_query():
    return Restrict(jn("R1", oj("R2", "R3", P23), P12), IsNull("R3.j"))


# -- cache mechanics ----------------------------------------------------------


def test_lru_eviction_order_and_hit_promotion():
    cache = PlanCache(capacity=2)
    cache.store("a", GEN_A, 1)
    cache.store("b", GEN_A, 2)
    assert cache.lookup("a", GEN_A) == 1  # promotes "a" to MRU
    cache.store("c", GEN_A, 3)  # evicts "b", the LRU
    assert "b" not in cache and "a" in cache and "c" in cache
    stats = cache.stats()
    assert stats.evictions == 1 and stats.size == 2 and stats.capacity == 2


def test_generation_mismatch_invalidates_and_drops_entry():
    cache = PlanCache(capacity=4)
    cache.store("a", GEN_A, 1)
    assert cache.lookup("a", GEN_B) is None
    assert "a" not in cache  # stale entry removed, not retried
    stats = cache.stats()
    assert stats.invalidations == 1 and stats.misses == 1 and stats.hits == 0
    # Re-store under the new generation; old generation now misses.
    cache.store("a", GEN_B, 2)
    assert cache.lookup("a", GEN_B) == 2
    assert cache.lookup("a", GEN_A) is None


def test_counters_mirror_into_instrumentation():
    cache = PlanCache(capacity=1)
    cache.store("a", GEN_A, 1)
    cache.lookup("a", GEN_A)
    cache.lookup("missing", GEN_A)
    cache.lookup("a", GEN_B)
    cache.store("a", GEN_A, 1)
    cache.store("b", GEN_A, 2)  # evicts
    snap = instrumentation.snapshot()
    assert snap["plan_cache_hits"] == 1
    assert snap["plan_cache_misses"] == 2  # plain miss + invalidation-miss
    assert snap["plan_cache_invalidations"] == 1
    assert snap["plan_cache_evictions"] == 1


def test_stats_summary_and_snapshot_agree():
    cache = PlanCache(capacity=3)
    cache.store("a", GEN_A, 1)
    cache.lookup("a", GEN_A)
    cache.lookup("b", GEN_A)
    snap = cache.snapshot()
    assert snap == {
        "hits": 1,
        "misses": 1,
        "invalidations": 0,
        "evictions": 0,
        "stores": 1,
        "size": 1,
        "capacity": 3,
    }
    assert "50.0%" in cache.summary()


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


# -- environment switch -------------------------------------------------------


def test_env_zero_disables_active_cache(monkeypatch):
    monkeypatch.setenv(PLAN_CACHE_ENV, "0")
    reset_default_plan_cache()
    assert active_plan_cache() is None
    monkeypatch.setenv(PLAN_CACHE_ENV, "off")
    assert active_plan_cache() is None


def test_env_integer_sets_default_capacity(monkeypatch):
    monkeypatch.setenv(PLAN_CACHE_ENV, "7")
    reset_default_plan_cache()
    cache = active_plan_cache()
    assert cache is not None and cache.capacity == 7
    # The autouse fixture resets the default afterwards.


# -- pipeline integration -----------------------------------------------------


def test_pipeline_hit_replays_identical_plan():
    storage = example1_storage(300)
    cache = PlanCache(capacity=8)
    first = optimize_query(reorderable_query(), storage, cache=cache)
    second = optimize_query(reorderable_query(), storage, cache=cache)
    assert not first.cache_hit and second.cache_hit
    assert first.fingerprint == second.fingerprint is not None
    assert second.reordered and second.chosen == first.chosen
    assert bag_equal(
        execute(second.chosen, storage).relation,
        execute(first.chosen, storage).relation,
    )


def test_pipeline_insert_invalidates():
    storage = example1_storage(200)
    cache = PlanCache(capacity=8)
    optimize_query(reorderable_query(), storage, cache=cache)
    storage["R1"].insert(next(iter(storage["R1"].rows)))
    third = optimize_query(reorderable_query(), storage, cache=cache)
    assert not third.cache_hit
    assert cache.stats().invalidations == 1
    # And the refreshed entry hits again.
    assert optimize_query(reorderable_query(), storage, cache=cache).cache_hit


def test_pipeline_distinct_storages_never_share_entries():
    cache = PlanCache(capacity=8)
    s1 = example1_storage(100)
    s2 = example1_storage(100)  # identical contents, different instance
    optimize_query(reorderable_query(), s1, cache=cache)
    crossed = optimize_query(reorderable_query(), s2, cache=cache)
    assert not crossed.cache_hit
    assert cache.stats().invalidations == 1


def test_pipeline_blocked_query_caches_verdict_only():
    """Order-sensitive queries replay the (cheap) verdict, never a tree."""
    storage = example1_storage(200)
    cache = PlanCache(capacity=8)
    first = optimize_query(blocked_query(), storage, cache=cache)
    # IS NULL blocks pushdown entirely: no graph stage, nothing cached.
    if first.fingerprint is None:
        assert len(cache) == 0
        return
    second = optimize_query(blocked_query(), storage, cache=cache)
    assert second.cache_hit and not second.reordered
    assert second.chosen == second.pushed


def test_use_cache_false_bypasses_everything():
    storage = example1_storage(100)
    cache = PlanCache(capacity=8)
    optimize_query(reorderable_query(), storage, cache=cache)
    bypassed = optimize_query(reorderable_query(), storage, cache=cache, use_cache=False)
    assert not bypassed.cache_hit
    assert cache.stats().hits == 0


def test_default_cache_used_when_none_passed():
    storage = example1_storage(100)
    first = optimize_query(reorderable_query(), storage)
    second = optimize_query(reorderable_query(), storage)
    assert not first.cache_hit and second.cache_hit
    assert default_plan_cache().stats().hits == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
