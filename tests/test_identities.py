"""Randomized verification of identities 1-13 and the Figure-3 proof.

Each identity is checked over a batch of randomized databases (with nulls,
duplicates, and empty relations); identities with strongness preconditions
(8, 9, 12) are additionally shown to FAIL when the precondition is
deliberately violated — the preconditions are necessary, not decorative.
"""

import pytest

from repro.algebra import (
    Comparison,
    Const,
    And,
    IsNull,
    Or,
    bag_equal,
    eq,
)
from repro.core import IDENTITIES, TriSetting, check_identity, identity12_proof_steps
from repro.datagen import random_databases
from repro.util.errors import PredicateError

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
PXZ = eq("X.b", "Z.a")
#: Example 3's shape: not strong w.r.t. Y.
WEAK_PYZ = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))


def settings(count=30, seed=101, pyz=PYZ, pxz=None):
    for db in random_databases(SCHEMAS, count, seed=seed):
        yield TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=pyz, pxz=pxz)


class TestUnconditionalIdentities:
    @pytest.mark.parametrize("number", ["1", "2", "3", "4", "5", "6", "7", "10", "11", "13"])
    def test_identity_holds_on_random_data(self, number):
        for setting in settings():
            ok, diff = check_identity(number, setting)
            assert ok, f"identity {number} failed:\n{diff}"

    def test_identity1_with_cycle_conjunct(self):
        """Identity 1's optional P_xz: the conjunct moves between operators."""
        for setting in settings(pxz=PXZ):
            ok, diff = check_identity("1", setting)
            assert ok, f"identity 1 (with P_xz) failed:\n{diff}"

    def test_identity_catalog_complete(self):
        expected = {str(i) for i in range(1, 14)} | {"11m", "12m"}
        assert set(IDENTITIES) == expected
        for identity in IDENTITIES.values():
            assert identity.title

    def test_mirror_identity_11m(self):
        for setting in settings():
            ok, diff = check_identity("11m", setting)
            assert ok, f"identity 11m failed:\n{diff}"

    def test_mirror_identity_12m_with_strong_pxy(self):
        for setting in settings():
            ok, diff = check_identity("12m", setting)
            assert ok, f"identity 12m failed:\n{diff}"

    def test_mirror_identity_12m_fails_without_strong_pxy(self):
        """The mirror's strongness condition sits on P_xy (the *inner*
        predicate), not P_yz — the classifier's (RightOJ, RightOJ) case."""
        weak_pxy = Or((eq("X.a", "Y.a"), IsNull("Y.a")))
        identity = IDENTITIES["12m"]
        failures = 0
        for db in random_databases(SCHEMAS, 60, seed=404):
            setting = TriSetting(
                x=db["X"], y=db["Y"], z=db["Z"], pxy=weak_pxy, pyz=PYZ
            )
            ok, _ = identity.check(setting)
            failures += not ok
        assert failures > 0


class TestStrongnessPreconditions:
    @pytest.mark.parametrize("number", ["8", "9", "12"])
    def test_identity_holds_with_strong_predicate(self, number):
        for setting in settings():
            ok, diff = check_identity(number, setting)
            assert ok, f"identity {number} failed:\n{diff}"

    @pytest.mark.parametrize("number", ["8", "9", "12"])
    def test_check_identity_refuses_violated_precondition(self, number):
        setting = next(iter(settings(count=1, pyz=WEAK_PYZ)))
        with pytest.raises(PredicateError):
            check_identity(number, setting)

    @pytest.mark.parametrize("number", ["8", "9", "12"])
    def test_identity_fails_without_strong_predicate(self, number):
        """The preconditions are necessary: dropping them yields witnesses."""
        identity = IDENTITIES[number]
        failures = 0
        for setting in settings(count=60, seed=202, pyz=WEAK_PYZ):
            ok, _diff = identity.check(setting)
            if not ok:
                failures += 1
        assert failures > 0, f"no counterexample found for weakened identity {number}"

    def test_example3_exact_counterexample(self):
        """The paper's Example 3, verbatim: A={(a)}, B={(b,-)}, C={(c)}."""
        from repro.algebra import NULL, Relation

        a = Relation.from_dicts(["A.attr1"], [{"A.attr1": "a"}])
        b = Relation.from_dicts(
            ["B.attr1", "B.attr2"], [{"B.attr1": "b", "B.attr2": NULL}]
        )
        c = Relation.from_dicts(["C.attr1"], [{"C.attr1": "c"}])
        pab = eq("A.attr1", "B.attr1")
        pbc = Or((eq("B.attr2", "C.attr1"), IsNull("B.attr2")))
        setting = TriSetting(x=a, y=b, z=c, pxy=pab, pyz=pbc)
        identity = IDENTITIES["12"]
        assert not identity.precondition(setting)
        ok, diff = identity.check(setting)
        assert not ok
        # LHS = (A→B)→C pads B then matches C via IS NULL; RHS does not.
        lhs = identity.lhs(setting)
        rhs = identity.rhs(setting)
        assert len(lhs) == 1 and len(rhs) == 1
        assert not bag_equal(lhs, rhs)


class TestFigure3ProofReplay:
    def test_all_steps_equal_with_strong_predicate(self):
        for setting in settings(count=20, seed=303):
            steps = identity12_proof_steps(setting)
            assert len(steps) == 8
            reference = steps[0][1]
            for label, relation in steps[1:]:
                assert bag_equal(reference, relation), f"step broke: {label}"

    def test_proof_first_and_last_are_identity12(self):
        for setting in settings(count=5, seed=404):
            steps = identity12_proof_steps(setting)
            assert bag_equal(steps[0][1], IDENTITIES["12"].lhs(setting))
            assert bag_equal(steps[-1][1], IDENTITIES["12"].rhs(setting))

    def test_strongness_sensitive_step_breaks_without_precondition(self):
        """With a weak P_yz the chain must break exactly at the step that
        invokes identities 8 and 9."""
        broke = False
        for setting in settings(count=60, seed=505, pyz=WEAK_PYZ):
            steps = identity12_proof_steps(setting)
            if not bag_equal(steps[2][1], steps[3][1]):
                broke = True
                # Everything before the strongness step still agrees.
                assert bag_equal(steps[0][1], steps[1][1])
                assert bag_equal(steps[1][1], steps[2][1])
                break
        assert broke


class TestAsymmetricStrongness:
    def test_identity12_needs_strong_wrt_y_not_z(self):
        """Strong w.r.t. Z (null-supplied) alone does NOT rescue identity 12."""
        tricky = Or(
            (
                eq("Y.b", "Z.b"),
                And((Comparison("Z.b", "=", Const(2)), IsNull("Y.b"))),
            )
        )
        assert tricky.is_strong(["Z.b"])
        assert not tricky.is_strong(["Y.b"])
        identity = IDENTITIES["12"]
        failures = 0
        for setting in settings(count=80, seed=606, pyz=tricky):
            ok, _ = identity.check(setting)
            if not ok:
                failures += 1
        assert failures > 0
