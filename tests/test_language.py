"""Tests for the Section-5 language: lexer, parser, store, compiler."""

import pytest

from repro.algebra import NULL, bag_equal
from repro.core import implementing_trees
from repro.datagen import section5_catalog, section5_store
from repro.language import (
    Catalog,
    ObjectStore,
    compile_query,
    parse,
    tokenize,
)
from repro.util.errors import CatalogError, ParseError


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("Select All From x")]
        assert kinds[:3] == ["KEYWORD", "KEYWORD", "KEYWORD"]

    def test_hash_in_identifiers(self):
        tokens = tokenize("EMPLOYEE.D#")
        assert tokens[0].text == "EMPLOYEE"
        assert tokens[2].text == "D#"

    def test_long_arrow_beats_short(self):
        tokens = tokenize("A-->B->C")
        ops = [t.text for t in tokens if t.kind == "OP"]
        assert ops == ["-->", "->"]

    def test_string_literal(self):
        tokens = tokenize("WHERE x.y = 'Queretaro'")
        strings = [t for t in tokens if t.kind == "STRING"]
        assert strings[0].text == "Queretaro"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("10 3.5")
        assert [t.text for t in tokens if t.kind == "NUMBER"] == ["10", "3.5"]

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("a ; b")


class TestParser:
    def test_select_all(self):
        q = parse("SELECT ALL FROM EMPLOYEE")
        assert q.select_all and q.from_items[0].base == "EMPLOYEE"

    def test_select_list(self):
        q = parse("SELECT EMPLOYEE.Name, DEPARTMENT.D# FROM EMPLOYEE, DEPARTMENT "
                  "WHERE EMPLOYEE.D# = DEPARTMENT.D#")
        assert not q.select_all
        assert len(q.select_list) == 2

    def test_from_operators(self):
        q = parse("SELECT ALL FROM EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit")
        first, second = q.from_items
        assert [op.kind for op in first.ops] == ["unnest"]
        assert [op.kind for op in second.ops] == ["link", "link"]
        assert second.ops[0].field_name == "Manager"

    def test_where_precedence(self):
        q = parse(
            "SELECT ALL FROM E WHERE E.a = 1 AND E.b = 2 OR E.c = 3"
        )
        # OR binds loosest.
        from repro.language import OrCond

        assert isinstance(q.where, OrCond)

    def test_parenthesized_condition(self):
        q = parse("SELECT ALL FROM E WHERE E.a = 1 AND (E.b = 2 OR E.c = 3)")
        from repro.language import AndCond

        assert isinstance(q.where, AndCond)

    def test_is_null(self):
        q = parse("SELECT ALL FROM E WHERE E.a IS NULL AND E.b IS NOT NULL")
        from repro.language import AndCond, IsNullCond

        assert isinstance(q.where, AndCond)
        first, second = q.where.parts
        assert isinstance(first, IsNullCond) and not first.negated
        assert isinstance(second, IsNullCond) and second.negated

    def test_trailing_garbage(self):
        # "FROM E extra" now parses as an alias, so the garbage must be
        # something no grammar rule accepts.
        with pytest.raises(ParseError):
            parse("SELECT ALL FROM E WHERE E.a = 1 )")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("SELECT ALL")

    def test_round_trip_str(self):
        text = "SELECT ALL FROM EMPLOYEE*ChildName WHERE EMPLOYEE.Rank > 10"
        assert "EMPLOYEE*ChildName" in str(parse(text))


class TestObjectStore:
    def test_insert_and_base_relation(self):
        store = section5_store(seed=1)
        rel = store.base_relation("EMPLOYEE")
        assert len(rel) == 9
        assert "EMPLOYEE.@oid" in rel.scheme

    def test_unknown_field_rejected(self):
        store = ObjectStore(section5_catalog())
        with pytest.raises(CatalogError):
            store.insert("EMPLOYEE", Nope=1)

    def test_value_relation_distinct_values(self):
        cat = Catalog()
        cat.define("E").add_set("Kids")
        store = ObjectStore(cat)
        store.insert("E", Kids=("a", "b"))
        store.insert("E", Kids=("b",))
        rel, membership = store.value_relation("E", "Kids", "E_Kids")
        assert len(rel) == 2  # distinct values only
        assert len(membership) == 3  # pairs keep ownership

    def test_value_relation_requires_set_field(self):
        store = ObjectStore(section5_catalog())
        with pytest.raises(CatalogError):
            store.value_relation("EMPLOYEE", "Name", "x")

    def test_entity_refs_surface_as_oid_columns(self):
        store = section5_store(seed=2)
        rel = store.base_relation("DEPARTMENT")
        assert "DEPARTMENT.@Manager" in rel.scheme

    def test_linked_copy_renames(self):
        store = section5_store(seed=3)
        rel = store.base_relation("EMPLOYEE", instance="D_Manager")
        assert "D_Manager.Name" in rel.scheme


class TestCompiler:
    def test_queretaro_example(self):
        """The paper's first Section-5 example, checked row by row."""
        cat = section5_catalog()
        store = ObjectStore(cat)
        e1 = store.insert("EMPLOYEE", Name="Ana", Rank=3, ChildName=("Kim", "Lu"), **{"D#": 1})
        store.insert("EMPLOYEE", Name="Bob", Rank=4, ChildName=(), **{"D#": 1})
        store.insert("EMPLOYEE", Name="Cyd", Rank=5, ChildName=("Max",), **{"D#": 2})
        store.insert("DEPARTMENT", Location="Queretaro", Manager=e1, **{"D#": 1})
        store.insert("DEPARTMENT", Location="Zurich", Manager=e1, **{"D#": 2})
        cq = compile_query(
            "Select All From EMPLOYEE*ChildName, DEPARTMENT "
            "Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'",
            store,
        )
        rows = list(cq.run())
        # Ana twice (two children), Bob once with null ChildName; Cyd excluded.
        assert len(rows) == 3
        null_children = [r for r in rows if r["EMPLOYEE_ChildName.ChildName"] is NULL]
        assert len(null_children) == 1
        assert null_children[0]["EMPLOYEE.Name"] == "Bob"

    def test_block_always_freely_reorderable(self):
        """Section 5.3's observation on every compiled block."""
        store = section5_store(seed=4)
        cq = compile_query(
            "Select All From DEPARTMENT-->Manager-->Audit, EMPLOYEE*ChildName "
            "Where EMPLOYEE.D# = DEPARTMENT.D# and EMPLOYEE.Rank > 1",
            store,
        )
        assert cq.verdict.freely_reorderable

    def test_all_its_of_a_block_agree(self):
        store = section5_store(seed=5)
        cq = compile_query(
            "Select All From DEPARTMENT-->Manager, EMPLOYEE "
            "Where EMPLOYEE.D# = DEPARTMENT.D#",
            store,
        )
        reference = cq.run()
        for tree in implementing_trees(cq.graph):
            assert bag_equal(cq.run(tree), reference)

    def test_optimized_tree_agrees(self):
        store = section5_store(seed=6)
        cq = compile_query(
            "Select All From DEPARTMENT-->Manager-->Audit Where DEPARTMENT.D# >= 0",
            store,
        )
        assert bag_equal(cq.run(cq.optimized_tree()), cq.run())

    def test_link_pads_missing_reference(self):
        cat = section5_catalog()
        store = ObjectStore(cat)
        store.insert("DEPARTMENT", Location="Zurich", **{"D#": 1})  # no Audit
        cq = compile_query("Select All From DEPARTMENT-->Audit", store)
        rows = list(cq.run())
        assert len(rows) == 1
        assert rows[0]["DEPARTMENT_Audit.Title"] is NULL

    def test_select_list_projection(self):
        store = section5_store(seed=7)
        cq = compile_query(
            "Select DEPARTMENT.Location From DEPARTMENT-->Manager", store
        )
        rows = list(cq.run())
        assert rows and set(rows[0].keys()) == {"DEPARTMENT.Location"}

    def test_derived_attribute_in_where_rejected(self):
        """The paper forbids Where references to '*'/'->' outputs."""
        store = section5_store(seed=8)
        with pytest.raises(ParseError):
            compile_query(
                "Select All From EMPLOYEE*ChildName "
                "Where EMPLOYEE_ChildName.ChildName = 'Kim'",
                store,
            )

    def test_disconnected_from_items_rejected(self):
        store = section5_store(seed=9)
        from repro.util.errors import GraphUndefinedError

        with pytest.raises(GraphUndefinedError):
            compile_query("Select All From EMPLOYEE, DEPARTMENT", store)

    def test_unknown_type(self):
        store = section5_store(seed=10)
        with pytest.raises(CatalogError):
            compile_query("Select All From NOPE", store)

    def test_field_resolution_across_chain(self):
        """Audit resolves to DEPARTMENT even after linking Manager."""
        store = section5_store(seed=11)
        cq = compile_query("Select All From DEPARTMENT-->Manager-->Audit", store)
        assert ("DEPARTMENT", "DEPARTMENT_Audit") in cq.graph.oj_edges

    def test_prosecutor_query(self):
        """The paper's combined Flatten+Link example compiles and runs."""
        store = section5_store(n_departments=4, employees_per_department=3, seed=12)
        cq = compile_query(
            "Select All "
            "From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
            "Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and "
            "EMPLOYEE.Rank > 2",
            store,
        )
        assert cq.verdict.freely_reorderable
        result = cq.run()
        # Every surviving employee row appears (children multiply, absence pads).
        assert result.scheme >= {"EMPLOYEE.Name", "DEPARTMENT_Audit.Title"}


class TestAliases:
    """The paper's "several copies of the same relation with renamed
    attributes" (Section 1.2), surfaced as FROM aliases."""

    def _store(self):
        from repro.datagen import section5_catalog

        store = ObjectStore(section5_catalog())
        store.insert("EMPLOYEE", Name="Ana", Rank=9, **{"D#": 1})
        store.insert("EMPLOYEE", Name="Bob", Rank=3, **{"D#": 1})
        store.insert("EMPLOYEE", Name="Cyd", Rank=9, **{"D#": 2})
        return store

    def test_parse_alias(self):
        q = parse("Select All From EMPLOYEE E1, EMPLOYEE E2 Where E1.Rank = E2.Rank")
        assert q.from_items[0].alias == "E1"
        assert q.from_items[0].instance == "E1"
        assert "EMPLOYEE E1" in str(q)

    def test_self_join(self):
        from repro.algebra import NULL  # noqa: F401  (parity with other tests)

        cq = compile_query(
            "Select E1.Name, E2.Name From EMPLOYEE E1, EMPLOYEE E2 "
            "Where E1.Rank = E2.Rank and E1.D# < E2.D#",
            self._store(),
        )
        rows = [dict(r) for r in cq.run()]
        assert rows == [{"E1.Name": "Ana", "E2.Name": "Cyd"}]
        assert cq.verdict.freely_reorderable

    def test_alias_with_operators(self):
        store = self._store()
        cq = compile_query(
            "Select All From EMPLOYEE E1*ChildName, EMPLOYEE E2 "
            "Where E1.D# = E2.D# and E1.Rank > E2.Rank",
            store,
        )
        # The unnest instance hangs off the alias.
        assert ("E1", "E1_ChildName") in cq.graph.oj_edges
        assert cq.verdict.freely_reorderable

    def test_duplicate_binding_rejected(self):
        with pytest.raises(CatalogError):
            compile_query(
                "Select All From EMPLOYEE, EMPLOYEE Where EMPLOYEE.Rank = EMPLOYEE.Rank",
                self._store(),
            )

    def test_same_alias_twice_rejected(self):
        with pytest.raises(CatalogError):
            compile_query(
                "Select All From EMPLOYEE E1, EMPLOYEE E1 Where E1.Rank = E1.Rank",
                self._store(),
            )


class TestEnclosingBlockRestriction:
    """Section 5: derived attributes "may be restricted in an enclosing
    query block" — restrict_result is that block."""

    def _store(self):
        from repro.datagen import section5_catalog

        store = ObjectStore(section5_catalog())
        store.insert("EMPLOYEE", Name="Ana", Rank=9, ChildName=("Kim", "Lu"), **{"D#": 1})
        store.insert("EMPLOYEE", Name="Bob", Rank=3, ChildName=(), **{"D#": 1})
        return store

    def test_restrict_derived_attribute_after_unnest(self):
        cq = compile_query("Select All From EMPLOYEE*ChildName", self._store())
        rows = list(cq.restrict_result("EMPLOYEE_ChildName.ChildName = 'Kim'"))
        assert len(rows) == 1
        assert rows[0]["EMPLOYEE.Name"] == "Ana"

    def test_find_childless_employees(self):
        """The IS NULL probe is only meaningful AFTER unnesting; the
        enclosing block makes that ordering explicit."""
        cq = compile_query("Select All From EMPLOYEE*ChildName", self._store())
        rows = list(cq.restrict_result("EMPLOYEE_ChildName.ChildName IS NULL"))
        assert [r["EMPLOYEE.Name"] for r in rows] == ["Bob"]

    def test_position_is_unambiguous(self):
        """The same condition inside the Where clause is rejected (its
        position would be ambiguous); the enclosing block accepts it and
        the result is well defined on every implementing tree."""
        store = self._store()
        with pytest.raises(ParseError):
            compile_query(
                "Select All From EMPLOYEE*ChildName "
                "Where EMPLOYEE_ChildName.ChildName = 'Kim'",
                store,
            )
        cq = compile_query("Select All From EMPLOYEE*ChildName", store)
        reference = cq.restrict_result("EMPLOYEE_ChildName.ChildName = 'Kim'")
        for tree in implementing_trees(cq.graph):
            assert bag_equal(
                cq.restrict_result("EMPLOYEE_ChildName.ChildName = 'Kim'", tree),
                reference,
            )

    def test_unknown_attribute_rejected(self):
        cq = compile_query("Select All From EMPLOYEE*ChildName", self._store())
        with pytest.raises(CatalogError):
            cq.restrict_result("NOPE.x = 1")
