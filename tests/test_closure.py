"""Tests for BT closures and paths — the constructive side of Lemma 3.

Lemma 3: on a nice graph, a sequence of BTs maps any IT to any other IT.
Machine check: the BFS closure from any seed equals the full enumerated IT
set, and explicit BT paths exist between random tree pairs.  Theorem 1's
mechanism is then visible directly: the closure under *result-preserving*
BTs alone already covers every IT.
"""

import pytest

from repro.core import (
    bt_closure,
    bt_path,
    apply_transform,
    canonicalize,
    implementing_trees,
    preserving_equivalence_class,
    sample_implementing_tree,
)
from repro.datagen import chain, example2_graph, figure1_graph, random_nice_graph
from repro.util.rng import make_rng


class TestClosureEqualsITSet:
    @pytest.mark.parametrize(
        "scenario_factory",
        [
            lambda: chain(3),
            lambda: chain(3, ["out", "join"]),
            lambda: chain(3, ["out", "out"]),
            lambda: chain(4, ["join", "out", "join"]),
            lambda: figure1_graph(),
        ],
    )
    def test_closure_covers_all_its(self, scenario_factory):
        scenario = scenario_factory()
        reg = scenario.registry
        all_trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
        seed_tree = next(iter(sorted(all_trees, key=repr)))
        closure = bt_closure(seed_tree, reg)
        assert set(closure.trees) == all_trees

    @pytest.mark.parametrize("seed", range(5))
    def test_closure_on_random_nice_graphs(self, seed):
        scenario = random_nice_graph(2, 2, seed=seed)
        reg = scenario.registry
        all_trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
        seed_tree = sample_implementing_tree(scenario.graph, make_rng(seed))
        closure = bt_closure(canonicalize(seed_tree), reg)
        assert set(closure.trees) == all_trees

    def test_preserving_closure_covers_all_its_when_nice_and_strong(self):
        """Theorem 1's engine: preserving BTs alone reach every IT."""
        scenario = chain(4, ["join", "out", "out"])
        reg = scenario.registry
        all_trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
        seed_tree = next(iter(sorted(all_trees, key=repr)))
        preserved = preserving_equivalence_class(seed_tree, reg)
        assert preserved == all_trees

    def test_preserving_closure_fragments_on_non_nice_graph(self):
        """On Example 2's graph the preserving closure is a strict subset:
        the non-preserving rotation separates the IT space into classes
        that really do evaluate differently."""
        scenario = example2_graph()
        reg = scenario.registry
        all_trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
        seed_tree = next(iter(sorted(all_trees, key=repr)))
        preserved = preserving_equivalence_class(seed_tree, reg)
        assert preserved < all_trees

    def test_full_closure_still_covers_non_nice_graph(self):
        """All BTs (preserving or not) still span the whole IT space."""
        scenario = example2_graph()
        reg = scenario.registry
        all_trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
        seed_tree = next(iter(sorted(all_trees, key=repr)))
        closure = bt_closure(seed_tree, reg)
        assert set(closure.trees) == all_trees


class TestPaths:
    def test_path_between_random_pairs(self):
        scenario = chain(4, ["join", "out", "join"])
        reg = scenario.registry
        rng = make_rng(9)
        trees = list(implementing_trees(scenario.graph))
        for _ in range(10):
            a = canonicalize(trees[rng.randrange(len(trees))])
            b = canonicalize(trees[rng.randrange(len(trees))])
            path = bt_path(a, b, reg)
            assert path is not None
            # Replay the path and confirm it lands on b.
            cur = a
            for t in path:
                cur = canonicalize(apply_transform(cur, t, reg))
            assert cur == b

    def test_trivial_path(self):
        scenario = chain(2)
        reg = scenario.registry
        tree = next(implementing_trees(scenario.graph))
        assert bt_path(tree, tree, reg) == []

    def test_path_to_unreachable_is_none(self):
        """A tree of a different graph is unreachable (max_size guards)."""
        reg_a = chain(2).registry
        a = next(implementing_trees(chain(2).graph))
        other = next(implementing_trees(chain(2, ["out"]).graph))
        assert bt_path(a, other, reg_a, max_size=50) is None

    def test_closure_path_reconstruction(self):
        scenario = chain(3, ["out", "out"])
        reg = scenario.registry
        trees = list(implementing_trees(scenario.graph))
        closure = bt_closure(canonicalize(trees[0]), reg)
        target = canonicalize(trees[-1])
        steps = closure.path_to(target)
        cur = canonicalize(trees[0])
        for t in steps:
            cur = canonicalize(apply_transform(cur, t, reg))
        assert cur == target

    def test_path_to_missing_raises(self):
        scenario = chain(2)
        reg = scenario.registry
        trees = list(implementing_trees(scenario.graph))
        closure = bt_closure(canonicalize(trees[0]), reg)
        other = next(implementing_trees(chain(2, ["out"]).graph))
        with pytest.raises(KeyError):
            closure.path_to(other)

    def test_max_size_truncation(self):
        scenario = chain(5)
        reg = scenario.registry
        tree = canonicalize(next(implementing_trees(scenario.graph)))
        closure = bt_closure(tree, reg, max_size=10)
        assert closure.truncated
        assert len(closure) <= 10


class TestEquivalenceClasses:
    """Partitioning the IT space by provable equality — Theorem 1 gives a
    single class; ambiguous graphs fracture into the distinct readings."""

    def test_nice_graph_single_class(self):
        from repro.core import equivalence_classes

        scenario = chain(3, ["join", "out"])
        classes = equivalence_classes(scenario.graph, scenario.registry)
        assert [len(c) for c in classes] == [8]

    def test_example2_two_readings(self):
        """Example 2's 8 trees split into exactly two classes of four —
        the 'join inside the outerjoin' and 'join after the outerjoin'
        readings, each internally reorderable."""
        from repro.core import equivalence_classes, jn, oj
        from repro.algebra import eq

        scenario = example2_graph()
        classes = equivalence_classes(scenario.graph, scenario.registry)
        assert sorted(len(c) for c in classes) == [4, 4]
        p12, p23 = eq("R1.a", "R2.a"), eq("R2.a", "R3.a")
        inside = canonicalize(oj("R1", jn("R2", "R3", p23), p12))
        after = canonicalize(jn(oj("R1", "R2", p12), "R3", p23))
        containing = lambda t: next(c for c in classes if t in c)
        assert containing(inside) is not containing(after)

    def test_classes_are_semantically_homogeneous(self):
        """Within a class all trees agree; across Example 2's classes a
        witness database separates them."""
        from repro.algebra import bag_equal
        from repro.core import equivalence_classes
        from repro.datagen import random_databases

        scenario = example2_graph()
        classes = equivalence_classes(scenario.graph, scenario.registry)
        dbs = random_databases(scenario.schemas, 15, seed=70)
        for db in dbs:
            for cls in classes:
                members = sorted(cls, key=repr)
                reference = members[0].eval(db)
                for tree in members[1:]:
                    assert bag_equal(tree.eval(db), reference)
        # Some database separates the two classes (they are truly distinct).
        a = sorted(classes[0], key=repr)[0]
        b = sorted(classes[1], key=repr)[0]
        assert any(not bag_equal(a.eval(db), b.eval(db)) for db in dbs)

    def test_weak_chain_also_fractures(self):
        from repro.core import equivalence_classes
        from repro.datagen import weaken_oj_edge

        scenario = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))
        classes = equivalence_classes(scenario.graph, scenario.registry)
        assert len(classes) == 2


class TestGraphDot:
    def test_dot_rendering(self):
        scenario = example2_graph()
        dot = scenario.graph.to_dot()
        assert dot.startswith("graph query_graph {")
        assert '"R2" -- "R3"' in dot       # join edge
        assert "dir=forward" in dot          # outerjoin arrow
        assert dot.rstrip().endswith("}")
