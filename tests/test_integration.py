"""End-to-end integration tests across all subsystems.

Each test is a small story tying several packages together, the way a
downstream user of the library would: graph → theorem → optimizer →
engine → equality with the algebra oracle.
"""

import pytest

from repro.algebra import NULL, bag_equal, eq
from repro.core import (
    brute_force_check,
    bt_path,
    canonicalize,
    graph_of,
    implementing_trees,
    jn,
    oj,
    theorem1_applies,
)
from repro.datagen import (
    departments_database,
    example1_storage,
    figure2_graph,
    random_databases,
    section5_store,
)
from repro.engine import Storage, execute
from repro.language import compile_query
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    RetrievalCostModel,
)


class TestMotivatingWorkload:
    """The introduction's departments/employees listing."""

    def test_outerjoin_lists_empty_departments(self):
        db = departments_database(n_departments=4, empty_departments=1)
        q = oj("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
        out = q.eval(db)
        # All 3 staffed departments x 2 employees + 1 padded empty dept.
        assert len(out) == 7
        padded = [r for r in out if r["EMP.eno"] is NULL]
        assert len(padded) == 1

    def test_join_silently_drops_them(self):
        db = departments_database(n_departments=4, empty_departments=1)
        q = jn("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
        assert len(q.eval(db)) == 6


class TestFullPipeline:
    def test_written_query_to_optimal_plan(self):
        """Parse nothing, just algebra: written tree → graph → Theorem 1 →
        DP plan → engine, asserting semantics and the cost win."""
        storage = example1_storage(500)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        written = jn("R1", oj("R2", "R3", p23), p12)

        graph = graph_of(written, storage.registry)
        verdict = theorem1_applies(graph, storage.registry)
        assert verdict.freely_reorderable

        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        best = DPOptimizer(graph, model).optimize()

        written_run = execute(written, storage)
        best_run = execute(best.expr, storage)
        assert bag_equal(written_run.relation, best_run.relation)
        assert best_run.tuples_retrieved < written_run.tuples_retrieved / 100

    def test_transform_path_realizes_the_optimizer_choice(self):
        """Lemma 3 in anger: the optimizer's plan is reachable from the
        written tree by explicit result-preserving BTs."""
        storage = example1_storage(50)
        p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
        written = jn("R1", oj("R2", "R3", p23), p12)
        graph = graph_of(written, storage.registry)
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        best = DPOptimizer(graph, model).optimize()
        path = bt_path(
            canonicalize(written), canonicalize(best.expr), storage.registry,
            preserving_only=True,
        )
        assert path is not None and len(path) >= 1

    def test_figure2_graph_fully_consistent(self):
        """Figure 2's nice topology: all ITs agree on random databases and
        the DP picks one of them."""
        scenario = figure2_graph()
        dbs = random_databases(scenario.schemas, 5, seed=42)
        report = brute_force_check(scenario.graph, dbs, max_trees=500)
        assert report.consistent

        storage = Storage.from_database(dbs[0])
        model = CoutCostModel(CardinalityEstimator(storage))
        plan = DPOptimizer(scenario.graph, model).optimize()
        oracle = plan.expr.eval(dbs[0])
        engine = execute(plan.expr, storage).relation
        assert bag_equal(oracle, engine)


class TestLanguageToEngine:
    def test_compiled_block_through_physical_engine(self):
        """A Section-5 query block executed by the physical engine matches
        the algebra evaluation of any IT."""
        store = section5_store(n_departments=4, employees_per_department=2, seed=21)
        cq = compile_query(
            "Select All From DEPARTMENT-->Manager, EMPLOYEE "
            "Where EMPLOYEE.D# = DEPARTMENT.D#",
            store,
        )
        storage = Storage.from_database(cq.database)
        algebra_result = cq.initial_tree.eval(cq.database)
        engine_result = execute(cq.initial_tree, storage).relation
        assert bag_equal(algebra_result, engine_result)

    def test_unnest_link_roundtrip_counts(self):
        """UnNest semantics: one row per child, or one padded row."""
        store = section5_store(n_departments=2, employees_per_department=4, seed=22)
        cq = compile_query("Select All From EMPLOYEE*ChildName", store)
        rows = list(cq.run())
        expected = 0
        for emp in store.instances("EMPLOYEE"):
            expected += max(1, len(emp["ChildName"]))
        assert len(rows) == expected


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(3))
    def test_all_its_engine_and_algebra_agree(self, seed):
        """For every IT of a mixed chain: engine == algebra, pairwise equal."""
        from repro.datagen import chain

        scenario = chain(3, ["join", "out"])
        dbs = random_databases(scenario.schemas, 3, seed=seed)
        for db in dbs:
            storage = Storage.from_database(db)
            results = []
            for tree in implementing_trees(scenario.graph):
                oracle = tree.eval(db)
                engine = execute(tree, storage).relation
                assert bag_equal(oracle, engine), tree.to_infix()
                results.append(oracle)
            for other in results[1:]:
                assert bag_equal(results[0], other)
