"""Validation of the cardinality estimator against true cardinalities.

A System-R estimator is a model, not an oracle; these tests pin down the
cases where it should be exact (keys, uniform domains) and bound its
error (q-error) on randomized data so regressions in the estimator are
caught even though no single number is "correct".
"""

import pytest

from repro.algebra import eq, gt
from repro.core import jn, oj
from repro.datagen import example1_storage, random_databases
from repro.engine import Storage, execute
from repro.optimizer import CardinalityEstimator


def q_error(estimate: float, actual: float) -> float:
    """max(est/act, act/est) with the usual 1-row floor."""
    est = max(estimate, 1.0)
    act = max(actual, 1.0)
    return max(est / act, act / est)


class TestExactCases:
    def test_key_foreign_key_join_exact(self):
        storage = example1_storage(500)
        est = CardinalityEstimator(storage)
        info = est.estimate_expression(jn("R2", "R3", eq("R2.j", "R3.j")))
        actual = len(execute(jn("R2", "R3", eq("R2.j", "R3.j")), storage).relation)
        assert info.cardinality == pytest.approx(actual)

    def test_selective_key_probe_exact(self):
        storage = example1_storage(500)
        est = CardinalityEstimator(storage)
        q = jn("R1", "R2", eq("R1.k", "R2.k"))
        info = est.estimate_expression(q)
        actual = len(execute(q, storage).relation)
        assert info.cardinality == pytest.approx(actual)

    def test_outerjoin_preserved_floor_exact_here(self):
        storage = example1_storage(300)
        est = CardinalityEstimator(storage)
        q = oj("R2", "R3", eq("R2.j", "R3.j"))
        info = est.estimate_expression(q)
        actual = len(execute(q, storage).relation)
        assert info.cardinality == pytest.approx(actual)


class TestBoundedError:
    SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}

    @pytest.mark.parametrize("seed", range(8))
    def test_equijoin_q_error_bounded(self, seed):
        db = random_databases(self.SCHEMAS, 1, seed=seed, max_rows=30, domain=8,
                              null_probability=0.1, allow_empty=False)[0]
        storage = Storage.from_database(db)
        est = CardinalityEstimator(storage)
        q = jn("X", "Y", eq("X.a", "Y.a"))
        estimate = est.estimate_expression(q).cardinality
        actual = len(execute(q, storage).relation)
        assert q_error(estimate, actual) < 12, (estimate, actual)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_join_pipeline_q_error(self, seed):
        db = random_databases(self.SCHEMAS, 1, seed=seed + 100, max_rows=25, domain=6,
                              null_probability=0.1, allow_empty=False)[0]
        storage = Storage.from_database(db)
        est = CardinalityEstimator(storage)
        q = jn(jn("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.b", "Z.b"))
        estimate = est.estimate_expression(q).cardinality
        actual = len(execute(q, storage).relation)
        assert q_error(estimate, actual) < 40, (estimate, actual)

    def test_inequality_constant_selectivity_order_of_magnitude(self):
        db = random_databases(self.SCHEMAS, 1, seed=9, max_rows=40, domain=10,
                              null_probability=0.0, allow_empty=False)[0]
        storage = Storage.from_database(db)
        est = CardinalityEstimator(storage)
        q = jn("X", "Y", gt("X.a", "Y.a"))
        estimate = est.estimate_expression(q).cardinality
        actual = len(execute(q, storage).relation)
        # 1/3 selectivity is a blunt instrument; demand only the ballpark.
        assert q_error(estimate, actual) < 10


class TestMonotonicity:
    def test_outerjoin_estimate_at_least_preserved(self):
        """Structural invariant, any data: |X → Y| ≥ |X| in the model."""
        for seed in range(6):
            db = random_databases(TestBoundedError.SCHEMAS, 1, seed=seed + 200,
                                  max_rows=20, allow_empty=False)[0]
            storage = Storage.from_database(db)
            est = CardinalityEstimator(storage)
            q = oj("X", "Y", eq("X.a", "Y.a"))
            info = est.estimate_expression(q)
            assert info.cardinality >= est.base("X").cardinality - 1e-9

    def test_semi_plus_anti_equals_left(self):
        from repro.core import aj, sj

        db = random_databases(TestBoundedError.SCHEMAS, 1, seed=300,
                              max_rows=20, allow_empty=False)[0]
        storage = Storage.from_database(db)
        est = CardinalityEstimator(storage)
        semi = est.estimate_expression(sj("X", "Y", eq("X.a", "Y.a"))).cardinality
        anti = est.estimate_expression(aj("X", "Y", eq("X.a", "Y.a"))).cardinality
        assert semi + anti == pytest.approx(est.base("X").cardinality)
