"""Tests for implementing-tree enumeration, counting, and sampling."""

import pytest

from repro.algebra import eq
from repro.core import (
    Join,
    LeftOuterJoin,
    RightOuterJoin,
    count_implementing_trees,
    graph_of,
    implementing_trees,
    is_implementing_tree,
    jn,
    oj,
    sample_implementing_tree,
)
from repro.core.graph import QueryGraph
from repro.datagen import chain, example2_graph, figure1_graph, join_cycle
from repro.util.errors import GraphUndefinedError
from repro.util.rng import make_rng


class TestCounting:
    def test_single_node(self):
        assert count_implementing_trees(QueryGraph(["A"])) == 1

    def test_two_nodes_join(self):
        # A - B: two trees (A-B and B-A).
        assert count_implementing_trees(chain(2).graph) == 2

    def test_two_nodes_outerjoin(self):
        # A → B and B ← A.
        assert count_implementing_trees(chain(2, ["out"]).graph) == 2

    def test_join_chain_of_three(self):
        # Chain R1-R2-R3: cuts {R1}|{R2,R3} and {R1,R2}|{R3}, both orders,
        # sub-trees 2 ways each: 2*(1*2) + 2*(2*1) = 8.
        assert count_implementing_trees(chain(3).graph) == 8

    def test_counts_match_enumeration(self):
        for scenario in (chain(3), chain(4), chain(3, ["out", "join"]), figure1_graph()):
            trees = list(implementing_trees(scenario.graph))
            assert len(trees) == count_implementing_trees(scenario.graph)
            assert len(set(trees)) == len(trees)  # no duplicates

    def test_oj_direction_restricts_trees(self):
        """An OJ cut is only legal in the edge's direction, halving options."""
        join_count = count_implementing_trees(chain(2).graph)
        oj_count = count_implementing_trees(chain(2, ["out"]).graph)
        assert join_count == oj_count == 2  # reversal gives the second tree

    def test_disconnected_graph_has_no_trees(self):
        g = QueryGraph.from_edges(join=[("A", "B", eq("A.a", "B.a"))], isolated=["C"])
        assert count_implementing_trees(g) == 0
        with pytest.raises(GraphUndefinedError):
            list(implementing_trees(g))

    def test_growth_with_chain_length(self):
        counts = [count_implementing_trees(chain(n).graph) for n in (2, 3, 4, 5)]
        assert counts == sorted(counts)
        assert counts[-1] > 10 * counts[-2] / 2  # super-linear growth


class TestEnumerationCorrectness:
    def test_every_tree_implements_the_graph(self):
        scenario = chain(3, ["join", "out"])
        reg = scenario.registry
        for tree in implementing_trees(scenario.graph):
            assert is_implementing_tree(tree, scenario.graph, reg)

    def test_mixed_cut_skipped(self):
        """Example 2's graph: no tree may cut both the OJ and join edge at once."""
        g = example2_graph().graph
        for tree in implementing_trees(g):
            # Every root operator is a single-edge OJ or pure-join cut.
            assert isinstance(tree, (Join, LeftOuterJoin, RightOuterJoin))

    def test_no_cartesian_products(self):
        """Figure 1's point: no IT ever joins R and T directly."""
        scenario = figure1_graph()
        for tree in implementing_trees(scenario.graph):
            for _path, node in tree.nodes():
                if isinstance(node, Join):
                    left, right = node.left.relations(), node.right.relations()
                    assert not (left == {"R"} and right == {"T"})
                    assert not (left == {"T"} and right == {"R"})

    def test_cycle_graph_moves_conjuncts(self):
        """On a join cycle some cut carries two conjuncts (a general cutset)."""
        g = join_cycle(3).graph
        trees = list(implementing_trees(g))
        assert trees
        two_conjunct_roots = [
            t for t in trees if len(t.predicate.conjuncts()) == 2
        ]
        assert two_conjunct_roots  # the cycle must be broken by a 2-edge cut


class TestSampling:
    def test_sample_is_a_valid_tree(self):
        scenario = chain(4, ["join", "out", "join"])
        rng = make_rng(3)
        universe = set(implementing_trees(scenario.graph))
        for _ in range(20):
            tree = sample_implementing_tree(scenario.graph, rng)
            assert tree in universe

    def test_sampling_covers_the_space(self):
        scenario = chain(3)
        rng = make_rng(5)
        seen = {sample_implementing_tree(scenario.graph, rng) for _ in range(200)}
        assert len(seen) == 8  # all trees of the 3-chain

    def test_sample_single_node(self):
        g = QueryGraph(["A"])
        tree = sample_implementing_tree(g, make_rng(1))
        assert tree.relations() == frozenset({"A"})


class TestGraphRoundTrip:
    def test_graph_of_enumerated_tree_round_trips(self):
        scenario = chain(4, ["out", "join", "out"])
        reg = scenario.registry
        for tree in implementing_trees(scenario.graph):
            assert graph_of(tree, reg) == scenario.graph

    def test_handwritten_trees_in_enumeration(self):
        scenario = chain(3, ["join", "out"])
        p12 = eq("R1.a", "R2.a")
        p23 = eq("R2.a", "R3.a")
        q = oj(jn("R1", "R2", p12), "R3", p23)
        assert q in set(implementing_trees(scenario.graph))
