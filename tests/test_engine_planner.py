"""Tests for the physical planner's access-path choices."""

import pytest

from repro.algebra import And, Comparison, Schema, eq, gt
from repro.core import aj, jn, oj, rel, roj, sj
from repro.core.expressions import Project, Restrict
from repro.engine import (
    HashJoin,
    IndexNestedLoopJoin,
    NestedLoopJoin,
    Planner,
    SeqScan,
    Storage,
    split_equijoin,
)
from repro.util.errors import PlanningError


@pytest.fixture
def storage():
    st = Storage()
    st.create_table("R", ["R.a", "R.b"], [{"R.a": i, "R.b": i} for i in range(3)])
    st.create_table("S", ["S.a", "S.b"], [{"S.a": i, "S.b": i} for i in range(3)])
    st["S"].create_index("S.a")
    return st


class TestSplitEquijoin:
    def test_basic_split(self):
        left, right = Schema(["R.a"]), Schema(["S.a"])
        out = split_equijoin(eq("R.a", "S.a"), left, right)
        assert out == ("R.a", "S.a", None)

    def test_reversed_sides(self):
        left, right = Schema(["R.a"]), Schema(["S.a"])
        out = split_equijoin(eq("S.a", "R.a"), left, right)
        assert out == ("R.a", "S.a", None)

    def test_residual_collected(self):
        left, right = Schema(["R.a", "R.b"]), Schema(["S.a", "S.b"])
        p = And((eq("R.a", "S.a"), gt("R.b", "S.b")))
        left_key, right_key, residual = split_equijoin(p, left, right)
        assert (left_key, right_key) == ("R.a", "S.a")
        assert residual is not None

    def test_no_equi_conjunct(self):
        left, right = Schema(["R.a"]), Schema(["S.a"])
        assert split_equijoin(gt("R.a", "S.a"), left, right) is None

    def test_constant_comparison_not_a_key(self):
        left, right = Schema(["R.a"]), Schema(["S.a"])
        assert split_equijoin(Comparison("R.a", "=", 5), left, right) is None


class TestPlannerChoices:
    def test_rel_becomes_seqscan(self, storage):
        plan = Planner(storage).plan(rel("R"))
        assert isinstance(plan, SeqScan)

    def test_indexed_inner_uses_inlj(self, storage):
        plan = Planner(storage).plan(jn("R", "S", eq("R.a", "S.a")))
        assert isinstance(plan, IndexNestedLoopJoin)

    def test_unindexed_equi_uses_hash_join(self, storage):
        plan = Planner(storage).plan(jn("S", "R", eq("S.b", "R.b")))
        assert isinstance(plan, HashJoin)

    def test_inequality_uses_nlj(self, storage):
        plan = Planner(storage).plan(jn("R", "S", gt("R.a", "S.a")))
        assert isinstance(plan, NestedLoopJoin)

    def test_right_outerjoin_swaps_operands(self, storage):
        # R ← S : S preserved, so S drives the probe side.
        plan = Planner(storage).plan(roj("R", "S", eq("R.b", "S.b")))
        assert isinstance(plan, HashJoin)
        assert plan.join_type == "left_outer"
        assert "S.b" == plan.left_key

    def test_antijoin_and_semijoin_types(self, storage):
        anti = Planner(storage).plan(aj("R", "S", eq("R.a", "S.a")))
        semi = Planner(storage).plan(sj("R", "S", eq("R.a", "S.a")))
        assert anti.join_type == "anti"
        assert semi.join_type == "semi"

    def test_restrict_project(self, storage):
        plan = Planner(storage).plan(
            Project(Restrict(rel("R"), Comparison("R.a", "=", 1)), ["R.a"])
        )
        out = plan.run()
        assert len(out) == 1

    def test_outerjoin_direction_preserved(self, storage):
        plan = Planner(storage).plan(oj("R", "S", eq("R.a", "S.a")))
        assert plan.join_type == "left_outer"

    def test_unplannable_node(self, storage):
        from repro.core.expressions import Union

        with pytest.raises(PlanningError):
            Planner(storage).plan(Union(rel("R"), rel("S")))
