"""Trace exporters and the trace-document schema contract.

The canonical flat trace form (``docs/trace.schema.json``) is validated
by the same dependency-free draft-07 subset that guards the benchmark
reports; these tests pin the exporters to that schema from both sides —
every exported trace validates, and representative tampering is caught.
"""

from __future__ import annotations

import json

import pytest

from repro.algebra import eq
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine.executor import execute
from repro.observability import (
    load_trace,
    records_to_spans,
    spans_to_records,
    to_chrome_trace,
    trace_document,
    tracing,
    write_trace,
)
from repro.tools import benchschema, traceexport
from repro.tools.benchschema import SchemaValidationError, validate_trace


@pytest.fixture
def traced_roots():
    storage = example1_storage(30)
    query = oj(jn("R1", "R2", eq("R1.k", "R2.k")), "R3", eq("R2.j", "R3.j"))
    with tracing(enabled=True):
        result = execute(query, storage)
    return [result.trace]


class TestCanonicalForm:
    def test_exported_trace_validates(self, traced_roots, tmp_path):
        path = write_trace(tmp_path / "t.json", traced_roots, meta={"case": "example1"})
        doc = load_trace(path)
        validate_trace(doc)  # must not raise
        assert doc["meta"]["format"] == "repro-trace"
        assert doc["meta"]["case"] == "example1"
        assert len(doc["spans"]) >= 4  # query root + >= 3 operators

    def test_records_roundtrip(self, traced_roots):
        records = spans_to_records(traced_roots)
        rebuilt = records_to_spans(records)
        assert len(rebuilt) == 1
        original = [
            (s.name, s.category, dict(s.counters)) for _p, s in traced_roots[0].walk()
        ]
        recovered = [
            (s.name, s.category, dict(s.counters)) for _p, s in rebuilt[0].walk()
        ]
        assert original == recovered

    @pytest.mark.parametrize(
        "tamper, fragment",
        [
            (lambda d: d["spans"][0].pop("name"), "missing required key 'name'"),
            (lambda d: d["spans"][0].update(surprise=1), "unexpected key"),
            (lambda d: d["spans"][0].update(start_ns="late"), "expected integer"),
            (lambda d: d["meta"].update(format="not-a-trace"), "not in"),
            (lambda d: d.update(extra=[]), "unexpected key"),
            (
                lambda d: d["spans"][0]["counters"].update(rows_out=1.5),
                "expected integer",
            ),
        ],
    )
    def test_tampered_documents_rejected(self, traced_roots, tamper, fragment):
        doc = trace_document(traced_roots)
        doc = json.loads(json.dumps(doc))  # plain JSON types, fresh copy
        tamper(doc)
        with pytest.raises(SchemaValidationError) as err:
            validate_trace(doc)
        assert any(fragment in e for e in err.value.errors), err.value.errors


class TestChromeForm:
    def test_chrome_events_shape(self, traced_roots):
        doc = to_chrome_trace(traced_roots)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete, "no complete events exported"
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            assert "name" in event and "cat" in event
        # Counters travel in args so Perfetto shows them per-slice.
        roots_rows = [
            e for e in complete if e["args"].get("rows_out") is not None
        ]
        assert roots_rows


class TestBenchReportSchema:
    def _minimal_report(self):
        return {
            "meta": {
                "generated_by": "benchmarks/run_all.py",
                "seed": 0,
                "smoke": True,
                "mode": "fast",
                "python": "3",
            },
            "scenarios": [],
            "comparisons": {},
        }

    def test_trace_overhead_key_accepted(self):
        report = self._minimal_report()
        report["trace_overhead"] = {
            "overall": {"traced_s": 1.0, "untraced_s": 1.01, "overhead_pct": -0.99}
        }
        benchschema.validate_report(report)  # must not raise

    def test_trace_overhead_shape_enforced(self):
        report = self._minimal_report()
        report["trace_overhead"] = {"overall": {"traced_s": 1.0}}
        with pytest.raises(SchemaValidationError):
            benchschema.validate_report(report)

    def test_checked_in_bench_reports_still_validate(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for report_path in sorted(root.glob("BENCH_*.json")):
            document = json.loads(report_path.read_text())
            if benchschema.is_servicebench_report(document):
                benchschema.validate_servicebench_report(document)
            elif benchschema.is_trafficgen_report(document):
                benchschema.validate_trafficgen_report(document, root=root)
            else:
                benchschema.validate_report(document)

    def test_checked_in_overhead_below_acceptance_bar(self):
        """BENCH_PR3.json's overall ambient-tracing overhead stays < 5%.

        Only the ``overall`` aggregate is gated: per-scenario entries on
        sub-50ms benchmark sums are dominated by pytest-benchmark
        calibration noise and swing tens of percent either way.
        """
        from pathlib import Path

        report_path = Path(__file__).resolve().parents[1] / "BENCH_PR3.json"
        report = json.loads(report_path.read_text())
        overall = report["trace_overhead"]["overall"]
        assert overall["overhead_pct"] is not None
        assert overall["overhead_pct"] < 5.0, overall


class TestTraceexportCli:
    def test_writes_and_validates(self, tmp_path, capsys):
        out = tmp_path / "example1.trace.json"
        assert traceexport.main(["--output", str(out), "--n", "40", "--validate"]) == 0
        doc = load_trace(out)
        validate_trace(doc)
        assert doc["meta"]["example"] == "example1"
        assert doc["meta"]["rows"] == 1
        assert "validated" in capsys.readouterr().out

    def test_chrome_form(self, tmp_path):
        out = tmp_path / "example1.chrome.json"
        assert traceexport.main(
            ["--output", str(out), "--n", "40", "--form", "chrome", "--validate"]
        ) == 0
        doc = json.loads(out.read_text())
        assert "traceEvents" in doc
