"""Tests for basic transforms (Section 3.2) and their classification.

The key empirical checks: every BT preserves the graph; the classifier's
"preserving" verdicts are confirmed by evaluation on randomized databases;
and Lemma 2 holds — on nice+strong trees every applicable BT preserves the
result.
"""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import (
    BasicTransform,
    Join,
    LeftOuterJoin,
    RightOuterJoin,
    applicable_transforms,
    apply_transform,
    canonicalize,
    classify_transform,
    graph_of,
    jn,
    oj,
    rel,
    reverse_node,
    roj,
    rotate_left,
    rotate_right,
    sample_implementing_tree,
)
from repro.datagen import chain, example2_graph, random_databases, random_nice_graph
from repro.util.errors import NotApplicableError
from repro.util.rng import make_rng

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")
P13 = eq("R1.a", "R3.a")


@pytest.fixture
def reg():
    return chain(3).registry


class TestReversal:
    def test_join_reversal(self):
        node = jn("R1", "R2", P12)
        rev = reverse_node(node)
        assert isinstance(rev, Join)
        assert rev.left == rel("R2") and rev.right == rel("R1")

    def test_outerjoin_reversal_switches_class(self):
        node = oj("R1", "R2", P12)
        rev = reverse_node(node)
        assert isinstance(rev, RightOuterJoin)
        assert rev.left == rel("R2")
        # and back again
        assert reverse_node(rev) == node

    def test_reversal_preserves_semantics(self, reg):
        dbs = random_databases({"R1": ["R1.a", "R1.b"], "R2": ["R2.a", "R2.b"]}, 10, seed=2)
        node = oj("R1", "R2", P12)
        rev = reverse_node(node)
        for db in dbs:
            assert bag_equal(node.eval(db), rev.eval(db))


class TestRotations:
    def test_rotate_right_shape(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)
        out = rotate_right(q, reg)
        assert isinstance(out, Join)
        assert isinstance(out.right, LeftOuterJoin)
        assert out.to_infix() == "(R1 - (R2 → R3))"

    def test_rotate_left_is_inverse(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)
        there = rotate_right(q, reg)
        back = rotate_left(there, reg)
        assert back == q

    def test_rotation_preserves_graph(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)
        assert graph_of(rotate_right(q, reg), reg) == graph_of(q, reg)

    def test_not_applicable_when_predicate_misses_middle(self, reg):
        # Outer predicate references R1 (not the middle R2): rotation would
        # strand the operator without a supporting edge.
        q = jn(jn("R1", "R2", P12), "R3", P13)
        with pytest.raises(NotApplicableError):
            rotate_right(q, reg)

    def test_conjunct_migration_on_cycle(self):
        """Identity 1's P_xz: the cycle conjunct moves between join operators."""
        from repro.algebra import And
        from repro.datagen import join_cycle

        scenario = join_cycle(3)
        reg = scenario.registry
        q = jn(
            jn("R1", "R2", eq("R1.a", "R2.a")),
            "R3",
            And((eq("R2.a", "R3.a"), eq("R1.a", "R3.a"))),
        )
        out = rotate_right(q, reg)
        # The R1-R3 conjunct must now live at the outer operator.
        assert "R3.a" in repr(out.predicate)
        assert graph_of(out, reg) == graph_of(q, reg)

    def test_conjunct_migration_requires_joins(self, reg):
        from repro.algebra import And

        # Outer operator is an outerjoin whose predicate would need to split.
        q = oj(jn("R1", "R2", P12), "R3", And((P23, P13)))
        with pytest.raises(NotApplicableError):
            rotate_right(q, reg)

    def test_rotation_on_leaf_child_not_applicable(self, reg):
        q = jn("R1", "R2", P12)
        with pytest.raises(NotApplicableError):
            rotate_right(q, reg)


class TestApplicableTransforms:
    def test_reversals_everywhere(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)
        kinds = [(t.kind, t.path) for t in applicable_transforms(q, reg)]
        assert ("reversal", ()) in kinds
        assert ("reversal", ("L",)) in kinds
        assert ("rotate_right", ()) in kinds

    def test_apply_transform_round_trip(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)
        for t in applicable_transforms(q, reg):
            out = apply_transform(q, t, reg)
            assert graph_of(out, reg) == graph_of(q, reg)

    def test_apply_at_bad_path(self, reg):
        q = jn("R1", "R2", P12)
        with pytest.raises(NotApplicableError):
            apply_transform(q, BasicTransform("reversal", ("L",)), reg)


class TestClassification:
    def classify(self, q, kind, path, reg):
        return classify_transform(q, BasicTransform(kind, path), reg)

    def test_identity11_preserving(self, reg):
        q = oj(jn("R1", "R2", P12), "R3", P23)  # (X − Y) → Z
        verdict = self.classify(q, "rotate_right", (), reg)
        assert verdict.preserving and verdict.identity == "identity 11"

    def test_identity12_preserving_with_strong(self, reg):
        q = oj(oj("R1", "R2", P12), "R3", P23)
        verdict = self.classify(q, "rotate_right", (), reg)
        assert verdict.preserving and verdict.identity == "identity 12"

    def test_identity12_blocked_without_strong(self, reg):
        from repro.algebra import IsNull, Or

        weak = Or((eq("R2.a", "R3.a"), IsNull("R2.a")))
        q = oj(oj("R1", "R2", P12), "R3", weak)
        verdict = self.classify(q, "rotate_right", (), reg)
        assert not verdict.preserving
        assert "strong" in verdict.reason

    def test_identity13_preserving(self, reg):
        q = oj(roj("R1", "R2", P12), "R3", P23)  # (X ← Y) → Z
        verdict = self.classify(q, "rotate_right", (), reg)
        assert verdict.preserving and verdict.identity == "identity 13"

    def test_forbidden_oj_into_join(self, reg):
        q = jn(oj("R1", "R2", P12), "R3", P23)  # [X → Y − Z]
        verdict = self.classify(q, "rotate_right", (), reg)
        assert not verdict.preserving

    def test_forbidden_two_arrows(self, reg):
        q = roj(oj("R1", "R2", P12), "R3", P23)  # [X → Y ← Z]
        verdict = self.classify(q, "rotate_right", (), reg)
        assert not verdict.preserving

    def test_reversal_always_preserving(self, reg):
        q = oj("R1", "R2", P12)
        verdict = self.classify(q, "reversal", (), reg)
        assert verdict.preserving

    def test_preserving_verdicts_hold_on_random_data(self):
        """Classifier soundness: 'preserving' implies equal evaluation."""
        scenario = chain(3, ["out", "out"])
        reg = scenario.registry
        dbs = random_databases(scenario.schemas, 12, seed=11)
        rng = make_rng(4)
        for _ in range(15):
            q = sample_implementing_tree(scenario.graph, rng)
            for t in applicable_transforms(q, reg):
                verdict = classify_transform(q, t, reg)
                if not verdict.preserving:
                    continue
                q2 = apply_transform(q, t, reg)
                for db in dbs:
                    assert bag_equal(q.eval(db), q2.eval(db)), (
                        f"{q!r} --{t}--> {q2!r} ({verdict.identity})"
                    )

    def test_lemma2_all_applicable_bts_preserve_on_nice_graphs(self):
        """Lemma 2, empirically, over random nice graphs and random ITs."""
        for seed in range(6):
            scenario = random_nice_graph(2, 3, seed=seed)
            reg = scenario.registry
            dbs = random_databases(scenario.schemas, 6, seed=seed + 100)
            rng = make_rng(seed)
            q = sample_implementing_tree(scenario.graph, rng)
            for t in applicable_transforms(q, reg):
                verdict = classify_transform(q, t, reg)
                assert verdict.preserving, f"{q!r} {t} -> {verdict.reason}"
                q2 = apply_transform(q, t, reg)
                for db in dbs:
                    assert bag_equal(q.eval(db), q2.eval(db))

    def test_nonpreserving_bt_has_a_witness(self):
        """Example 2 again, through the BT machinery: the rotation at the
        root of (R1 → R2) − R3 is not preserving, and data shows it."""
        scenario = example2_graph()
        reg = scenario.registry
        q = jn(oj("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a"))
        t = BasicTransform("rotate_right", ())
        assert not classify_transform(q, t, reg).preserving
        q2 = apply_transform(q, t, reg)
        dbs = random_databases(scenario.schemas, 40, seed=13)
        assert any(not bag_equal(q.eval(db), q2.eval(db)) for db in dbs)


class TestCanonicalize:
    def test_canonical_conjunct_order(self, reg):
        from repro.algebra import And

        a, b = eq("R1.a", "R2.a"), eq("R1.b", "R2.b")
        q1 = jn("R1", "R2", And((a, b)))
        q2 = jn("R1", "R2", And((b, a)))
        assert q1 != q2
        assert canonicalize(q1) == canonicalize(q2)

    def test_leaves_unchanged(self):
        assert canonicalize(rel("R1")) == rel("R1")
