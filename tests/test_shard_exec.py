"""Process-sharded execution: wire format, eligibility, pool, dispatch.

The shard subsystem's contract, bottom up: the spill wire format
round-trips rows (NULL identity and mixed-type keys included) across a
real process boundary; :func:`shard_spec_of` accepts exactly the
co-partitionable cores; :func:`sharded_counts` is bag-equal to the
algebra oracle; a dead worker fails loudly, returns its ledger lease,
and the pool respawns it; and with ``REPRO_SHARD=0`` the engine is
byte-identical to a run that never heard of sharding.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.algebra import bag_equal, eq
from repro.algebra.nulls import NULL
from repro.algebra.predicates import conjunction, lt
from repro.algebra.relation import Database, Relation
from repro.algebra.tuples import Row
from repro.core import Rel, Restrict, jn, oj
from repro.engine.parallel.pool import WorkerLedger
from repro.engine.shard.executor import (
    _shard_of,
    shard_spec_of,
    sharded_counts,
)
from repro.engine.shard.pool import ShardPool, ShardWorkerError
from repro.engine.shard.wire import decode_pairs, encode_pairs, intern_plan_strings
from repro.util.errors import PlanningError

ROOT = Path(__file__).resolve().parents[1]


def mixed_db() -> Database:
    """Two tables joinable on ``a``, with NULL and mixed-type shard keys.

    ``1`` (int), ``1.0`` (float) and ``True`` (bool) are equal in
    Python, so the salted router must co-locate them; NULL keys must
    ride on shard 0 and never match anything.
    """
    r = Relation.from_counts(
        ("R.a", "R.b"),
        {
            Row({"R.a": 1, "R.b": "x"}): 2,
            Row({"R.a": 1.0, "R.b": "y"}): 1,
            Row({"R.a": "k", "R.b": "z"}): 1,
            Row({"R.a": NULL, "R.b": "n"}): 3,
            Row({"R.a": 7, "R.b": "w"}): 1,
        },
    )
    s = Relation.from_counts(
        ("S.a", "S.c"),
        {
            Row({"S.a": True, "S.c": 10}): 1,
            Row({"S.a": "k", "S.c": 20}): 2,
            Row({"S.a": NULL, "S.c": 30}): 1,
            Row({"S.a": 9, "S.c": 40}): 1,
        },
    )
    return Database({"R": r, "S": s})


@pytest.fixture(scope="module")
def pool():
    with ShardPool(workers=2, name="test-shard") as p:
        yield p


# -- wire format ------------------------------------------------------------


def test_wire_round_trip_preserves_null_identity_and_mixed_keys():
    pairs = [
        (Row({"R.a": 1, "R.b": NULL}), 3),
        (Row({"R.a": 1.0, "R.b": "s"}), 1),
        (Row({"R.a": True, "R.b": 2.5}), 2),
        (Row({"R.a": "k", "R.b": None}), 1),
        (Row({"R.a": NULL, "R.b": 0}), 4),
    ]
    # batch_rows=2 forces the stream across batch boundaries.
    decoded = decode_pairs(encode_pairs(pairs, batch_rows=2))
    assert decoded == pairs
    # NULL must come back as *the* singleton, not a lookalike copy —
    # 3VL dispatch tests identity on the far side of the pipe.
    assert decoded[0][0]["R.b"] is NULL
    assert decoded[4][0]["R.a"] is NULL
    # Row hashes survive the trip (the parent merges by hash).
    for (row, _), (back, _) in zip(pairs, decoded):
        assert hash(row) == hash(back)


def test_wire_rejects_degenerate_batch_size():
    with pytest.raises(ValueError):
        encode_pairs([], batch_rows=0)


def test_decode_interns_attribute_names_by_default():
    pairs = [(Row({"".join(["R.", "attr_long_name"]): 1}), 1)]
    decoded = decode_pairs(encode_pairs(pairs))
    for key in decoded[0][0]._values:
        assert key is sys.intern(key)
    # intern_keys=False (the parent's merge path) still round-trips.
    assert decode_pairs(encode_pairs(pairs), intern_keys=False) == pairs


def test_intern_plan_strings_round_trips_an_expression():
    expr = Restrict(
        oj("R", "S", eq("R.a", "S.a")),
        conjunction([eq("R.b", "S.c"), eq("R.a", "S.a")]),
    )
    clone = pickle.loads(pickle.dumps(expr, pickle.HIGHEST_PROTOCOL))
    intern_plan_strings(clone)
    assert clone.to_infix() == expr.to_infix()
    db = mixed_db()
    assert bag_equal(clone.eval(db), expr.eval(db))


# -- eligibility ------------------------------------------------------------


def test_shard_spec_accepts_equi_chain_and_names_one_attribute_per_rel():
    db = mixed_db()
    spec = shard_spec_of(jn("R", "S", eq("R.a", "S.a")), db.registry)
    assert spec == {"R": "R.a", "S": "S.a"}


def test_shard_spec_declines_non_equi_and_single_relation():
    db = mixed_db()
    assert shard_spec_of(jn("R", "S", lt("R.a", "S.a")), db.registry) is None
    assert shard_spec_of(Rel("R"), db.registry) is None


def test_salted_router_colocates_cross_type_equal_keys():
    for nshards in (2, 3, 7):
        assert _shard_of(1, nshards) == _shard_of(1.0, nshards) == _shard_of(True, nshards)


# -- cross-process evaluation ------------------------------------------------


@pytest.mark.parametrize("builder", [jn, oj])
def test_sharded_counts_matches_oracle_across_processes(pool, builder):
    db = mixed_db()
    expr = builder("R", "S", eq("R.a", "S.a"))
    schema, merged = sharded_counts(expr, db, pool=pool, shards=3)
    sharded = Relation.from_counts(schema, merged)
    assert bag_equal(sharded, expr.eval(db))


def test_sharded_counts_raises_on_ineligible_core(pool):
    db = mixed_db()
    with pytest.raises(PlanningError):
        sharded_counts(jn("R", "S", lt("R.a", "S.a")), db, pool=pool, shards=3)


def test_run_many_survives_worker_death_and_respawns():
    db = mixed_db()
    expr = jn("R", "S", eq("R.a", "S.a"))
    ledger = WorkerLedger(ceiling=8)
    with ShardPool(workers=2, name="death-drill", ledger=ledger) as p:
        assert ledger.snapshot()["by_kind"]["process"] == 2
        # Warm both workers, then kill one: the in-flight query fails
        # loudly and the dead worker's lease goes back to the ledger.
        _schema, merged = sharded_counts(expr, db, pool=p, shards=3)
        p.terminate_worker(0)
        with pytest.raises(ShardWorkerError):
            sharded_counts(expr, db, pool=p, shards=3)
        assert ledger.snapshot()["by_kind"]["process"] == 1
        assert p.snapshot()["deaths"] == 1
        # The next query respawns the slot (re-leasing it) and succeeds.
        schema, again = sharded_counts(expr, db, pool=p, shards=3)
        assert bag_equal(Relation.from_counts(schema, again), expr.eval(db))
        assert ledger.snapshot()["by_kind"]["process"] == 2
        assert p.snapshot()["respawns"] >= 1
        assert merged == again
    assert ledger.snapshot()["granted"] == 0


def test_zero_worker_pool_degrades_to_inline_evaluation():
    db = mixed_db()
    expr = jn("R", "S", eq("R.a", "S.a"))
    ledger = WorkerLedger(ceiling=0)
    with ShardPool(workers=2, name="clamped", ledger=ledger) as p:
        assert p.workers == 0
        schema, merged = sharded_counts(expr, db, pool=p, shards=3)
    assert bag_equal(Relation.from_counts(schema, merged), expr.eval(db))


# -- the REPRO_SHARD=0 byte-identity proof -----------------------------------

_IDENTITY_SCRIPT = textwrap.dedent(
    """
    import pickle, sys
    from repro.datagen import example1_storage
    from repro.algebra import Comparison, Const, eq
    from repro.core import Restrict, jn, oj
    from repro.engine import execute
    from repro.optimizer import optimize_query

    storage = example1_storage(200)
    query = Restrict(
        jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k")),
        Comparison("R3.j", "=", Const(3)),
    )
    pipeline = optimize_query(query, storage, use_cache=False)
    result = execute(pipeline.chosen, storage)
    rows = sorted(
        (tuple(sorted(row._values.items(), key=str)), n)
        for row, n in result.relation.counts().items()
    )
    sys.stdout.buffer.write(pickle.dumps((str(pipeline.chosen.to_infix()), rows)))
    """
)


def test_shard_disabled_is_byte_identical_to_a_shardless_run(tmp_path):
    """``REPRO_SHARD=0`` must not perturb plans or results in any way.

    Two fresh interpreters run the same pipeline: one with the variable
    unset (a world that never heard of sharding), one with it explicitly
    off.  Their canonical (plan, rows) serializations must agree to the
    byte — the dispatch is gated before it is consulted, so turning it
    off cannot leave a fingerprint.
    """
    script = tmp_path / "identity.py"
    script.write_text(_IDENTITY_SCRIPT)
    outputs = []
    for env_value in (None, "0"):
        env = {k: v for k, v in os.environ.items() if k != "REPRO_SHARD"}
        env["PYTHONPATH"] = str(ROOT / "src")
        env["PYTHONHASHSEED"] = "0"
        if env_value is not None:
            env["REPRO_SHARD"] = env_value
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            capture_output=True,
            timeout=300,
            check=True,
        )
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
