"""Additional property-based tests for the extension modules.

Hypothesis strategies drive: pushdown semantics preservation, witness
shrinking invariants, graph-law properties (induced subgraphs, cuts), and
schema/tuple algebraic laws used silently throughout the proofs.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.algebra import (
    NULL,
    Comparison,
    Const,
    Relation,
    Row,
    Schema,
    bag_equal,
    eq,
)
from repro.core import (
    Restrict,
    graph_of,
    jn,
    oj,
    push_restrictions,
    sample_implementing_tree,
)
from repro.datagen import chain, random_nice_graph
from repro.util.rng import make_rng

values = st.one_of(st.integers(min_value=0, max_value=3), st.just(NULL))


def relation_strategy(attrs, max_rows=4):
    row = st.fixed_dictionaries({a: values for a in attrs})
    return st.lists(row, min_size=0, max_size=max_rows).map(
        lambda dicts: Relation(list(attrs), [Row(d) for d in dicts])
    )


class TestTupleLaws:
    @given(
        a=st.dictionaries(st.sampled_from(["x", "y"]), values, min_size=1),
        b=st.dictionaries(st.sampled_from(["p", "q"]), values, min_size=1),
    )
    @settings(max_examples=40, deadline=None)
    def test_concat_project_inverse(self, a, b):
        ra, rb = Row(a), Row(b)
        merged = ra.concat(rb)
        assert merged.project(sorted(ra.scheme)) == ra
        assert merged.project(sorted(rb.scheme)) == rb

    @given(a=st.dictionaries(st.sampled_from(["x", "y"]), values, min_size=1))
    @settings(max_examples=40, deadline=None)
    def test_pad_then_project_is_identity(self, a):
        row = Row(a)
        wide = row.pad_to(Schema(sorted(row.scheme | {"extra1", "extra2"})))
        assert wide.project(sorted(row.scheme)) == row

    @given(
        a=st.dictionaries(st.sampled_from(["x"]), values, min_size=1),
        b=st.dictionaries(st.sampled_from(["y"]), values, min_size=1),
        c=st.dictionaries(st.sampled_from(["z"]), values, min_size=1),
    )
    @settings(max_examples=30, deadline=None)
    def test_concat_associative(self, a, b, c):
        ra, rb, rc = Row(a), Row(b), Row(c)
        assert ra.concat(rb).concat(rc) == ra.concat(rb.concat(rc))


class TestPushdownProperties:
    @given(
        x=relation_strategy(("R1.a", "R1.b")),
        y=relation_strategy(("R2.a", "R2.b")),
        z=relation_strategy(("R3.a", "R3.b")),
        constant=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_pushdown_preserves_semantics(self, x, y, z, constant):
        from repro.algebra import Database

        db = Database({"R1": x, "R2": y, "R3": z})
        registry = chain(3).registry
        q = Restrict(
            oj(jn("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a")),
            Comparison("R1.b", "=", Const(constant)),
        )
        report = push_restrictions(q, registry)
        assert bag_equal(q.eval(db), report.query.eval(db))

    @given(constant=st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_pushdown_idempotent_placement(self, constant):
        registry = chain(3).registry
        q = Restrict(
            jn(jn("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a")),
            Comparison("R1.b", "=", Const(constant)),
        )
        once = push_restrictions(q, registry)
        twice = push_restrictions(once.query, registry)
        assert once.query == twice.query


class TestGraphLaws:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_induced_subgraph_edges_subset(self, seed):
        scenario = random_nice_graph(3, 2, seed=seed)
        g = scenario.graph
        rng = make_rng(seed)
        nodes = sorted(g.nodes)
        keep = frozenset(rng.sample(nodes, rng.randint(1, len(nodes))))
        sub = g.induced(keep)
        assert set(sub.join_edges) <= set(g.join_edges)
        assert set(sub.oj_edges) <= set(g.oj_edges)
        assert sub.nodes == keep

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_cut_partitions_crossing_edges(self, seed):
        scenario = random_nice_graph(2, 3, seed=seed)
        g = scenario.graph
        rng = make_rng(seed)
        nodes = sorted(g.nodes)
        k = rng.randint(1, len(nodes) - 1)
        side_a = frozenset(nodes[:k])
        side_b = frozenset(nodes[k:])
        joins, ojs = g.cut(side_a, side_b)
        total_edges = len(g.join_edges) + len(g.oj_edges)
        within_a = g.induced(side_a)
        within_b = g.induced(side_b)
        inside = (
            len(within_a.join_edges) + len(within_a.oj_edges)
            + len(within_b.join_edges) + len(within_b.oj_edges)
        )
        assert inside + len(joins) + len(ojs) == total_edges

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=20, deadline=None)
    def test_graph_roundtrip_from_sampled_tree(self, seed):
        scenario = random_nice_graph(2, 2, seed=seed)
        tree = sample_implementing_tree(scenario.graph, make_rng(seed))
        assert graph_of(tree, scenario.registry) == scenario.graph
