"""Tests for the "nice" class: definition, Lemma 1, and their equivalence.

The exhaustive small-graph sweep at the bottom is this repository's
machine check of Lemma 1: the decomposition-based definition and the
forbidden-pattern characterization agree on *every* 3- and 4-node graph we
can build from a fixed edge menu, and on random larger graphs.
"""

from itertools import product

import pytest

from repro.algebra import eq
from repro.core import (
    QueryGraph,
    is_nice,
    is_nice_by_decomposition,
    nice_decomposition,
    violations,
)
from repro.datagen import (
    chain,
    example2_graph,
    figure2_graph,
    random_graph,
    random_nice_graph,
)


class TestForbiddenPatterns:
    def test_single_node_is_nice(self):
        assert is_nice(QueryGraph(["A"]))

    def test_pure_join_chain_is_nice(self):
        assert is_nice(chain(4).graph)

    def test_oj_chain_is_nice(self):
        assert is_nice(chain(3, ["out", "out"]).graph)

    def test_branching_oj_tree_is_nice(self):
        # A → B, A → C: two arrows out of A are fine.
        g = QueryGraph.from_edges(
            oj=[("A", "B", eq("A.a", "B.a")), ("A", "C", eq("A.a", "C.a"))]
        )
        assert is_nice(g)

    def test_example2_pattern_oj_into_join(self):
        """X → Y − Z is forbidden (Lemma 1, condition 2)."""
        scenario = example2_graph()
        kinds = {v.kind for v in violations(scenario.graph)}
        assert kinds == {"oj-into-join"}

    def test_two_incoming_arrows(self):
        """X → Y ← Z is forbidden (Lemma 1, condition 3)."""
        g = QueryGraph.from_edges(
            oj=[("A", "B", eq("A.a", "B.a")), ("C", "B", eq("C.a", "B.a"))]
        )
        kinds = {v.kind for v in violations(g)}
        assert "two-incoming-oj" in kinds

    def test_oj_cycle(self):
        """Cycles of outerjoin edges are forbidden (Lemma 1, condition 1)."""
        g = QueryGraph.from_edges(
            oj=[
                ("A", "B", eq("A.a", "B.a")),
                ("B", "C", eq("B.a", "C.a")),
                ("C", "A", eq("C.a", "A.a")),
            ]
        )
        kinds = {v.kind for v in violations(g)}
        # The directed 3-cycle also has a node with... in a directed cycle
        # every node has in-degree 1, so only the cycle condition fires.
        assert "oj-cycle" in kinds

    def test_undirected_oj_cycle_detected(self):
        # A → B, A → C, B → D, C → D would give D two incoming arrows AND
        # an undirected cycle; make the diamond with in-degree 1 instead:
        g = QueryGraph.from_edges(
            oj=[
                ("A", "B", eq("A.a", "B.a")),
                ("B", "C", eq("B.a", "C.a")),
                ("A", "D", eq("A.a", "D.a")),
                ("D", "C", eq("D.a", "C.a")),
            ]
        )
        kinds = {v.kind for v in violations(g)}
        assert "oj-cycle" in kinds or "two-incoming-oj" in kinds

    def test_disconnected_not_nice(self):
        g = QueryGraph.from_edges(join=[("A", "B", eq("A.a", "B.a"))], isolated=["C"])
        kinds = {v.kind for v in violations(g)}
        assert "disconnected" in kinds

    def test_figure2_is_nice(self):
        assert is_nice(figure2_graph().graph)

    def test_join_edge_below_oj_tree(self):
        # A → B, then B − C: the forbidden X → Y − Z again, one level down.
        g = QueryGraph.from_edges(
            oj=[("A", "B", eq("A.a", "B.a"))], join=[("B", "C", eq("B.a", "C.a"))]
        )
        assert not is_nice(g)


class TestDecomposition:
    def test_figure2_decomposition(self):
        d = nice_decomposition(figure2_graph().graph)
        assert d is not None
        assert d.g1_nodes == frozenset({"A", "B", "C"})
        assert d.forest_roots == frozenset({"A", "C"})
        assert set(d.forest_edges) == {("A", "D"), ("D", "E"), ("C", "F")}

    def test_pure_join_graph_decomposition(self):
        d = nice_decomposition(chain(3).graph)
        assert d is not None
        assert d.g1_nodes == frozenset({"R1", "R2", "R3"})
        assert not d.forest_edges

    def test_single_oj_tree_rooted_at_trivial_core(self):
        d = nice_decomposition(chain(3, ["out", "out"]).graph)
        assert d is not None
        assert d.g1_nodes == frozenset({"R1"})
        assert d.forest_roots == frozenset({"R1"})

    def test_example2_has_no_decomposition(self):
        assert nice_decomposition(example2_graph().graph) is None


class TestLemma1Equivalence:
    """Definition-based and pattern-based niceness must always agree."""

    def test_exhaustive_three_node_graphs(self):
        nodes = ["A", "B", "C"]
        pairs = [("A", "B"), ("B", "C"), ("A", "C")]
        # Edge menu per pair: absent, join, oj either direction.
        options = ["none", "join", "fwd", "rev"]
        checked = 0
        for combo in product(options, repeat=3):
            join_edges, oj_edges = [], []
            for (u, v), kind in zip(pairs, combo):
                p = eq(f"{u}.a", f"{v}.a")
                if kind == "join":
                    join_edges.append((u, v, p))
                elif kind == "fwd":
                    oj_edges.append((u, v, p))
                elif kind == "rev":
                    oj_edges.append((v, u, p))
            g = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
            assert is_nice(g) == is_nice_by_decomposition(g), g.describe()
            checked += 1
        assert checked == 64

    @pytest.mark.parametrize("seed", range(40))
    def test_random_graphs(self, seed):
        g = random_graph(6, seed=seed, oj_probability=0.5, extra_edges=2).graph
        assert is_nice(g) == is_nice_by_decomposition(g), g.describe()

    @pytest.mark.parametrize("seed", range(20))
    def test_random_nice_graphs_are_nice_both_ways(self, seed):
        g = random_nice_graph(3, 3, seed=seed, extra_join_edges=1).graph
        assert is_nice(g)
        assert is_nice_by_decomposition(g)

    def test_connected_subgraph_of_nice_is_nice(self):
        """The Section-3.1 observation, on Figure 2's graph."""
        g = figure2_graph().graph
        from itertools import combinations

        for size in (2, 3, 4, 5):
            for subset in combinations(sorted(g.nodes), size):
                sub = g.induced(subset)
                if sub.is_connected():
                    assert is_nice(sub), sub.describe()
