"""QueryService backend routing: parity, per-query routes, books, resync.

The service contract for non-local routes: results are bag-equal to the
local engine; ``backend=`` works both as a constructor default and as a
per-query override; unknown routes are rejected eagerly (constructor and
submit) rather than failing inside a worker; the snapshot carries the
per-route counts and per-instance backend books; storage mutations
between queries trigger a generation-keyed resync; and repeated shapes
reuse prepared statements via the plan fingerprint.
"""

from __future__ import annotations

import pytest

from repro.algebra import Comparison, Const, bag_equal, eq
from repro.core import Restrict, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer import PlanCache
from repro.service import QueryService

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")


def query(constant: int = 5):
    return Restrict(
        jn("R1", oj("R2", "R3", P23), P12), Comparison("R3.j", "=", Const(constant))
    )


@pytest.fixture
def storage():
    return example1_storage(300)


def test_sqlite_route_matches_local(storage):
    queries = [query(c) for c in range(4)]
    expected = [execute(q, storage).relation for q in queries]
    with QueryService(storage) as service:
        for q, reference in zip(queries, expected):
            outcome = service.execute(q, backend="sqlite")
            assert outcome.status == "ok", outcome.error
            assert bag_equal(outcome.require(), reference)


def test_constructor_default_backend_routes_every_query(storage):
    with QueryService(storage, backend="sqlite") as service:
        outcome = service.execute(query())
        assert outcome.status == "ok", outcome.error
        snap = service.snapshot()
    assert snap["backends"]["default"] == "sqlite"
    assert snap["backends"]["routes"] == {"sqlite": 1}


def test_per_query_override_beats_the_default(storage):
    with QueryService(storage, backend="sqlite") as service:
        local = service.execute(query(), backend="local")
        routed = service.execute(query())
        assert bag_equal(local.require(), routed.require())
        snap = service.snapshot()
    assert snap["backends"]["routes"] == {"sqlite": 1}  # local is not counted
    assert "sqlite" in snap["backends"]["instances"]
    assert "local" not in snap["backends"]["instances"]


def test_unknown_backend_rejected_eagerly(storage):
    with pytest.raises(ValueError):
        QueryService(storage, backend="no-such-engine")
    with QueryService(storage) as service:
        with pytest.raises(ValueError):
            service.submit(query(), backend="no-such-engine")


def test_env_default_routes_through_backend(storage, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "sqlite")
    with QueryService(storage) as service:
        assert service.default_backend == "sqlite"
        outcome = service.execute(query())
        assert outcome.status == "ok", outcome.error
        assert service.snapshot()["backends"]["routes"] == {"sqlite": 1}


def test_mutation_triggers_resync(storage):
    q = jn("R1", oj("R2", "R3", P23), P12)  # unrestricted: non-empty result
    with QueryService(storage) as service:
        first = service.execute(q, backend="sqlite").require()
        assert len(first) > 0
        table = storage["R1"]
        for row in list(table.scan()):
            table.insert(row)  # double every row: multiplicities change
        second = service.execute(q, backend="sqlite").require()
        expected = execute(q, storage).relation
        assert bag_equal(second, expected)
        assert not bag_equal(first, expected)  # the mutation was visible
        books = service.snapshot()["backends"]["instances"]["sqlite"]
        assert books["syncs"] == 2
        assert books["sync_hits"] == 0  # both syncs saw a new generation


def test_repeated_shapes_reuse_prepared_statements(storage):
    q = query()
    with QueryService(storage, plan_cache=PlanCache(16)) as service:
        for _ in range(3):
            assert service.execute(q, backend="sqlite").status == "ok"
        books = service.snapshot()["backends"]["instances"]["sqlite"]
    assert books["statement_misses"] == 1
    assert books["statement_hits"] == 2
    assert books["hinted_queries"] == 3


def test_close_closes_backend_instances(storage):
    service = QueryService(storage)
    service.execute(query(), backend="sqlite")
    backend = service._backends["sqlite"]
    service.close()
    assert backend.closed
    assert service._backends == {}


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
