"""Tests for the data/topology generators themselves."""

import pytest

from repro.core import is_nice
from repro.datagen import (
    chain,
    duplicate_free_database,
    example1_storage,
    example2_graph,
    figure1_graph,
    figure2_graph,
    join_cycle,
    random_database,
    random_databases,
    random_graph,
    random_nice_graph,
    section5_store,
    star,
    weaken_oj_edge,
)
from repro.util.errors import GraphUndefinedError


class TestRandomDatabases:
    def test_deterministic_by_seed(self):
        schemas = {"X": ["X.a"], "Y": ["Y.a"]}
        assert random_database(schemas, seed=5)["X"] == random_database(schemas, seed=5)["X"]

    def test_different_seeds_differ_somewhere(self):
        schemas = {"X": ["X.a", "X.b"]}
        batch = random_databases(schemas, 10, seed=1)
        assert len({db["X"] for db in batch}) > 1

    def test_nulls_and_duplicates_occur(self):
        from repro.algebra import is_null

        schemas = {"X": ["X.a", "X.b"]}
        sawnull = sawdup = False
        for db in random_databases(schemas, 30, seed=2):
            rel = db["X"]
            if any(any(is_null(v) for v in row.values()) for row in rel):
                sawnull = True
            if not rel.is_duplicate_free():
                sawdup = True
        assert sawnull and sawdup

    def test_duplicate_free_generator(self):
        schemas = {"X": ["X.a"], "Y": ["Y.a"]}
        for seed in range(10):
            db = duplicate_free_database(schemas, seed=seed)
            assert db["X"].is_duplicate_free()

    def test_allow_empty_false(self):
        schemas = {"X": ["X.a"]}
        for seed in range(10):
            db = random_database(schemas, seed=seed, allow_empty=False)
            assert len(db["X"]) >= 1


class TestTopologies:
    def test_chain_kinds(self):
        s = chain(4, ["join", "out", "in"])
        assert len(s.graph.join_edges) == 1
        assert ("R2", "R3") in s.graph.oj_edges
        assert ("R4", "R3") in s.graph.oj_edges

    def test_chain_validation(self):
        with pytest.raises(GraphUndefinedError):
            chain(3, ["join"])
        with pytest.raises(GraphUndefinedError):
            chain(3, ["join", "bogus"])

    def test_star(self):
        s = star(4, oj_leaves=2)
        assert len(s.graph.join_edges) == 2
        assert len(s.graph.oj_edges) == 2
        assert is_nice(s.graph)

    def test_join_cycle(self):
        s = join_cycle(4)
        assert len(s.graph.join_edges) == 4
        assert is_nice(s.graph)

    def test_figures(self):
        assert is_nice(figure2_graph().graph)
        assert is_nice(figure1_graph().graph)
        assert not is_nice(example2_graph().graph)

    def test_weaken_oj_edge(self):
        s = chain(3, ["out", "out"])
        weak = weaken_oj_edge(s, ("R2", "R3"))
        pred = weak.graph.oj_edges[("R2", "R3")]
        assert not pred.is_strong(["R2.a"])

    def test_weaken_requires_oj_edge(self):
        with pytest.raises(GraphUndefinedError):
            weaken_oj_edge(chain(3), ("R1", "R2"))

    def test_random_nice_graph_is_nice(self):
        for seed in range(15):
            s = random_nice_graph(3, 3, seed=seed, extra_join_edges=2)
            assert is_nice(s.graph), s.graph.describe()

    def test_random_graph_is_connected(self):
        for seed in range(15):
            s = random_graph(6, seed=seed)
            assert s.graph.is_connected()

    def test_registry_matches_schemas(self):
        s = chain(3)
        reg = s.registry
        assert reg.owner("R2.a") == "R2"


class TestWorkloads:
    def test_example1_shape(self):
        st = example1_storage(20)
        assert len(st["R1"]) == 1
        assert len(st["R2"]) == len(st["R3"]) == 20
        assert st["R3"].index_on("R3.j") is not None

    def test_section5_store_has_padding_cases(self):
        store = section5_store(n_departments=6, seed=1)
        employees = store.instances("EMPLOYEE")
        assert any(not e["ChildName"] for e in employees)  # childless employee
        departments = store.instances("DEPARTMENT")
        from repro.algebra import NULL

        assert any(d["Audit"] is NULL for d in departments)  # unaudited dept
