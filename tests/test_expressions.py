"""Unit tests for expression trees: evaluation, schemes, tree surgery."""

import pytest

from repro.algebra import Database, NULL, Relation, eq
from repro.core import (
    LeftOuterJoin,
    Rel,
    Restrict,
    RightOuterJoin,
    aj,
    jn,
    oj,
    rel,
    replace_at,
    roj,
    sj,
    subtree_at,
)
from repro.core.expressions import Project, Union
from repro.util.errors import EvaluationError


@pytest.fixture
def db():
    return Database(
        {
            "X": Relation.from_dicts(["X.a"], [{"X.a": 1}, {"X.a": 2}]),
            "Y": Relation.from_dicts(["Y.a"], [{"Y.a": 1}]),
            "Z": Relation.from_dicts(["Z.a"], [{"Z.a": 1}, {"Z.a": 3}]),
        }
    )


class TestLeavesAndBuilders:
    def test_rel_eval(self, db):
        assert len(rel("X").eval(db)) == 2

    def test_rel_unknown(self, db):
        with pytest.raises(EvaluationError):
            rel("missing").eval(db)

    def test_builders_coerce_strings(self):
        q = jn("X", "Y", eq("X.a", "Y.a"))
        assert isinstance(q.left, Rel) and q.left.name == "X"

    def test_relations(self):
        q = jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.a", "Z.a"))
        assert q.relations() == frozenset({"X", "Y", "Z"})

    def test_reuse_of_relation_rejected(self):
        with pytest.raises(EvaluationError):
            jn("X", "X", eq("X.a", "X.a"))


class TestEvaluation:
    def test_join(self, db):
        out = jn("X", "Y", eq("X.a", "Y.a")).eval(db)
        assert len(out) == 1

    def test_left_outerjoin_preserves_left(self, db):
        out = oj("X", "Y", eq("X.a", "Y.a")).eval(db)
        assert len(out) == 2
        padded = [r for r in out if r["Y.a"] is NULL]
        assert len(padded) == 1 and padded[0]["X.a"] == 2

    def test_right_outerjoin_preserves_right(self, db):
        # X ← Y : Y preserved, X null-supplied.
        out = roj("X", "Y", eq("X.a", "Y.a")).eval(db)
        assert len(out) == 1  # the single Y row, matched
        out2 = roj("Y", "X", eq("X.a", "Y.a")).eval(db)
        assert len(out2) == 2  # X preserved now

    def test_reversal_pair_equivalence(self, db):
        """X → Y and Y ← X evaluate identically (Section 2.1 convention)."""
        p = eq("X.a", "Y.a")
        assert oj("X", "Y", p).eval(db) == roj("Y", "X", p).eval(db)

    def test_antijoin_and_semijoin(self, db):
        p = eq("X.a", "Y.a")
        assert {r["X.a"] for r in aj("X", "Y", p).eval(db)} == {2}
        assert {r["X.a"] for r in sj("X", "Y", p).eval(db)} == {1}

    def test_restrict_and_project(self, db):
        q = Project(Restrict(rel("X"), eq("X.a", "X.a")), ["X.a"])
        assert len(q.eval(db)) == 2

    def test_union(self, db):
        q = Union(rel("X"), rel("Y"))
        assert len(q.eval(db)) == 3


class TestSchemes:
    def test_binary_scheme(self, db):
        reg = db.registry
        q = jn("X", "Y", eq("X.a", "Y.a"))
        assert q.scheme(reg).attributes == frozenset({"X.a", "Y.a"})

    def test_antijoin_scheme_is_left(self, db):
        q = aj("X", "Y", eq("X.a", "Y.a"))
        assert q.scheme(db.registry).attributes == frozenset({"X.a"})


class TestTreeSurgery:
    def test_nodes_paths(self):
        q = jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.a", "Z.a"))
        paths = dict(q.nodes())
        assert paths[()] is q
        assert isinstance(paths[("L",)], LeftOuterJoin)
        assert paths[("L", "R")] == Rel("Y")

    def test_size_and_height(self):
        q = jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.a", "Z.a"))
        assert q.size() == 5
        assert q.height() == 2

    def test_subtree_at(self):
        q = jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.a", "Z.a"))
        assert subtree_at(q, ("L", "L")) == Rel("X")

    def test_replace_at(self):
        q = jn(oj("X", "Y", eq("X.a", "Y.a")), "Z", eq("Y.a", "Z.a"))
        q2 = replace_at(q, ("L",), Rel("W"))
        assert subtree_at(q2, ("L",)) == Rel("W")
        # original untouched
        assert isinstance(subtree_at(q, ("L",)), LeftOuterJoin)

    def test_structural_equality_and_hash(self):
        p = eq("X.a", "Y.a")
        assert oj("X", "Y", p) == oj("X", "Y", p)
        assert oj("X", "Y", p) != roj("X", "Y", p)
        assert jn("X", "Y", p) != jn("Y", "X", p)  # operand order is meaningful
        assert len({oj("X", "Y", p), oj("X", "Y", p)}) == 1

    def test_to_infix(self):
        p = eq("X.a", "Y.a")
        q = jn(oj("X", "Y", p), "Z", eq("Y.a", "Z.a"))
        assert q.to_infix() == "((X → Y) - Z)"
        assert "[" in q.to_infix(show_predicates=True)

    def test_with_parts_preserves_type(self):
        p = eq("X.a", "Y.a")
        node = roj("X", "Y", p)
        rebuilt = node.with_parts(Rel("X"), Rel("Y"))
        assert isinstance(rebuilt, RightOuterJoin)
        assert rebuilt.predicate == p
