"""Tests for the optimizer stack: estimates, DP, greedy, and baselines."""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import (
    canonicalize,
    graph_of,
    implementing_trees,
    jn,
    oj,
)
from repro.datagen import chain, example1_storage, figure2_graph, random_databases
from repro.engine import Storage, execute
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    GreedyOptimizer,
    OuterjoinBarrierOptimizer,
    RetrievalCostModel,
    connected_subsets,
    count_dp_entries,
    fixed_order_plan,
)
from repro.util.errors import PlanningError


@pytest.fixture
def ex1():
    storage = example1_storage(200)
    p12, p23 = eq("R1.k", "R2.k"), eq("R2.j", "R3.j")
    written = jn("R1", oj("R2", "R3", p23), p12)
    graph = graph_of(written, storage.registry)
    return storage, written, graph


class TestCardinalityEstimator:
    def test_base_estimates(self, ex1):
        storage, _written, _graph = ex1
        est = CardinalityEstimator(storage)
        info = est.base("R2")
        assert info.cardinality == 200
        assert info.distinct_of("R2.k") == 200

    def test_equijoin_selectivity(self, ex1):
        storage, _w, _g = ex1
        est = CardinalityEstimator(storage)
        left, right = est.base("R2"), est.base("R3")
        sel = est.join_selectivity(eq("R2.j", "R3.j"), left, right)
        assert sel == pytest.approx(1 / 200)

    def test_join_cardinality(self, ex1):
        storage, _w, _g = ex1
        est = CardinalityEstimator(storage)
        out = est.combine("join", eq("R2.j", "R3.j"), est.base("R2"), est.base("R3"))
        assert out.cardinality == pytest.approx(200)

    def test_outerjoin_never_below_preserved(self, ex1):
        storage, _w, _g = ex1
        est = CardinalityEstimator(storage)
        out = est.combine(
            "left_outer", eq("R2.k", "R1.k"), est.base("R2"), est.base("R1")
        )
        assert out.cardinality >= 200

    def test_semi_anti_partition(self, ex1):
        storage, _w, _g = ex1
        est = CardinalityEstimator(storage)
        semi = est.combine("semi", eq("R2.j", "R3.j"), est.base("R2"), est.base("R3"))
        anti = est.combine("anti", eq("R2.j", "R3.j"), est.base("R2"), est.base("R3"))
        assert semi.cardinality + anti.cardinality == pytest.approx(200)

    def test_estimate_expression_tree(self, ex1):
        storage, written, _g = ex1
        est = CardinalityEstimator(storage)
        info = est.estimate_expression(written)
        assert info.nodes == frozenset({"R1", "R2", "R3"})
        assert info.cardinality >= 0


class TestSubgraphEnumeration:
    def test_connected_subsets_of_chain(self):
        g = chain(3).graph
        subsets = connected_subsets(g)
        # 3 singletons + 2 pairs + 1 triple (R1,R3 is not connected).
        assert len(subsets) == 6

    def test_counts_by_size(self):
        g = figure2_graph().graph
        by_size = count_dp_entries(g)
        assert by_size[1] == 6
        assert by_size[len(g.nodes)] == 1


class TestDPOptimizer:
    def test_finds_the_cheap_order(self, ex1):
        storage, written, graph = ex1
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        best = DPOptimizer(graph, model).optimize()
        assert best.cost == pytest.approx(3.0)
        measured = execute(best.expr, storage)
        assert measured.tuples_retrieved == 3

    def test_dp_plan_is_an_implementing_tree(self, ex1):
        storage, _written, graph = ex1
        model = CoutCostModel(CardinalityEstimator(storage))
        best = DPOptimizer(graph, model).optimize()
        universe = {canonicalize(t) for t in implementing_trees(graph)}
        assert canonicalize(best.expr) in universe

    def test_dp_optimal_among_all_trees(self, ex1):
        """DP cost equals the minimum over exhaustively costed ITs."""
        storage, _written, graph = ex1
        model = CoutCostModel(CardinalityEstimator(storage))
        best = DPOptimizer(graph, model).optimize()
        exhaustive = min(model.plan_cost(t) for t in implementing_trees(graph))
        assert best.cost == pytest.approx(exhaustive)

    def test_dp_result_correct(self, ex1):
        storage, written, graph = ex1
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        best = DPOptimizer(graph, model).optimize()
        assert bag_equal(
            execute(best.expr, storage).relation, execute(written, storage).relation
        )

    def test_disconnected_graph_rejected(self):
        from repro.core import QueryGraph

        g = QueryGraph.from_edges(join=[("A", "B", eq("A.a", "B.a"))], isolated=["C"])
        storage = Storage()
        storage.create_table("A", ["A.a"], [])
        storage.create_table("B", ["B.a"], [])
        storage.create_table("C", ["C.a"], [])
        model = CoutCostModel(CardinalityEstimator(storage))
        with pytest.raises(PlanningError):
            DPOptimizer(g, model).optimize()


class TestGreedyAndBaselines:
    def test_greedy_matches_dp_on_example1(self, ex1):
        storage, _written, graph = ex1
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        greedy = GreedyOptimizer(graph, model).optimize()
        dp = DPOptimizer(graph, model).optimize()
        assert greedy.cost == pytest.approx(dp.cost)

    def test_greedy_never_beats_dp(self):
        """DP is exact, so greedy's cost is an upper bound."""
        for seed in range(5):
            from repro.datagen import random_nice_graph

            scenario = random_nice_graph(3, 2, seed=seed)
            dbs = random_databases(scenario.schemas, 1, seed=seed, max_rows=8,
                                   allow_empty=False)
            storage = Storage.from_database(dbs[0])
            model = CoutCostModel(CardinalityEstimator(storage))
            dp = DPOptimizer(scenario.graph, model).optimize()
            greedy = GreedyOptimizer(scenario.graph, model).optimize()
            assert greedy.cost >= dp.cost - 1e-9

    def test_fixed_order_costs_the_written_tree(self, ex1):
        storage, written, _graph = ex1
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        plan = fixed_order_plan(written, model)
        assert plan.expr is written
        assert plan.cost > 3

    def test_barrier_baseline_cannot_cross_outerjoin(self, ex1):
        """The conventional optimizer stays stuck at the written OJ position."""
        storage, written, _graph = ex1
        model = RetrievalCostModel(CardinalityEstimator(storage), storage)
        barrier = OuterjoinBarrierOptimizer(storage.registry, model).optimize(written)
        dp = DPOptimizer(_graph, model).optimize()
        assert barrier.cost > dp.cost
        measured = execute(barrier.expr, storage)
        assert measured.tuples_retrieved == 2 * 200 + 1

    def test_barrier_baseline_still_reorders_joins(self):
        """Within a join-only region the barrier baseline uses the DP."""
        st = Storage()
        st.create_table("A", ["A.k"], [{"A.k": i} for i in range(50)])
        st.create_table("B", ["B.k", "B.j"], [{"B.k": i, "B.j": i} for i in range(50)])
        st.create_table("C", ["C.j"], [{"C.j": 0}])
        # Written order joins the two big tables first.
        written = jn(jn("A", "B", eq("A.k", "B.k")), "C", eq("B.j", "C.j"))
        model = CoutCostModel(CardinalityEstimator(st))
        barrier = OuterjoinBarrierOptimizer(st.registry, model).optimize(written)
        fixed = fixed_order_plan(written, model)
        assert barrier.cost <= fixed.cost
        # It found the selective C-first order.
        assert barrier.cost < fixed.cost
