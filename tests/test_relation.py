"""Unit tests for bag relations and databases."""

import pytest

from repro.algebra import Database, NULL, Relation, Row, Schema
from repro.util.errors import SchemaError


def rel(*dicts):
    attrs = sorted(dicts[0]) if dicts else ["a"]
    return Relation.from_dicts(attrs, dicts)


class TestRelationConstruction:
    def test_bag_multiplicity(self):
        r = rel({"a": 1}, {"a": 1}, {"a": 2})
        assert len(r) == 3
        assert r.distinct_count() == 2
        assert r.multiplicity(Row({"a": 1})) == 2

    def test_iteration_with_multiplicity(self):
        r = rel({"a": 1}, {"a": 1})
        assert len(list(r)) == 2

    def test_row_scheme_checked(self):
        with pytest.raises(SchemaError):
            Relation(["a"], [Row({"b": 1})])

    def test_from_counts(self):
        r = Relation.from_counts(["a"], {Row({"a": 1}): 3})
        assert len(r) == 3
        with pytest.raises(SchemaError):
            Relation.from_counts(["a"], {Row({"a": 1}): -1})

    def test_empty(self):
        r = Relation(["a"])
        assert r.is_empty() and len(r) == 0

    def test_contains(self):
        r = rel({"a": 1})
        assert Row({"a": 1}) in r
        assert Row({"a": 9}) not in r


class TestRelationOperations:
    def test_distinct(self):
        r = rel({"a": 1}, {"a": 1}, {"a": 2}).distinct()
        assert len(r) == 2
        assert r.is_duplicate_free()

    def test_pad_to(self):
        r = rel({"a": 1}).pad_to(Schema(["a", "b"]))
        row = next(iter(r))
        assert row["b"] is NULL

    def test_pad_preserves_multiplicity(self):
        r = rel({"a": 1}, {"a": 1}).pad_to(["a", "b"])
        assert len(r) == 2

    def test_rename(self):
        r = rel({"a": 1, "b": 2}).rename({"a": "x"})
        assert r.scheme == frozenset({"x", "b"})
        assert next(iter(r))["x"] == 1

    def test_rename_missing_attr(self):
        with pytest.raises(SchemaError):
            rel({"a": 1}).rename({"q": "x"})

    def test_rename_collision(self):
        with pytest.raises(SchemaError):
            rel({"a": 1, "b": 2}).rename({"a": "b"})

    def test_equality_same_scheme(self):
        assert rel({"a": 1}, {"a": 2}) == rel({"a": 2}, {"a": 1})
        assert rel({"a": 1}) != rel({"a": 1}, {"a": 1})

    def test_hash(self):
        assert len({rel({"a": 1}), rel({"a": 1})}) == 1

    def test_map_rows(self):
        r = rel({"a": 1}, {"a": 2}).map_rows(lambda row: Row({"a": row["a"] * 10}))
        assert sorted(row["a"] for row in r) == [10, 20]


class TestDatabase:
    def test_registry_tracks_ownership(self):
        db = Database({"R": rel({"R.a": 1}), "S": rel({"S.a": 2})})
        assert db.registry.owner("S.a") == "S"

    def test_disjoint_schemes_enforced(self):
        with pytest.raises(SchemaError):
            Database({"R": rel({"k": 1}), "S": rel({"k": 2})})

    def test_lookup_unknown(self):
        with pytest.raises(SchemaError):
            Database()["missing"]

    def test_with_relation_replaces(self):
        db = Database({"R": rel({"R.a": 1})})
        db2 = db.with_relation("R", rel({"R.a": 7}))
        assert next(iter(db2["R"]))["R.a"] == 7
        assert next(iter(db["R"]))["R.a"] == 1  # original untouched

    def test_relations_tuple(self):
        db = Database({"R": rel({"R.a": 1}), "S": rel({"S.a": 1})})
        assert set(db.relations()) == {"R", "S"}
