"""Ablations on the optimizer design choices DESIGN.md calls out.

1. **Bushy vs left-deep plan spaces.**  The DP explores every connected
   cut (bushy trees included).  Restricting to left-deep trees — the
   classic System-R space — can miss the optimum on star-like
   join/outerjoin graphs; the ablation quantifies the gap.

2. **Cost-model fidelity.**  The retrieval cost model is only useful if
   its estimates track the engine's measured retrievals; we sweep plans
   and compare estimate vs measurement (they coincide exactly on the
   Example-1 family, whose cardinalities the estimator gets right).

3. **Exhaustive-DP sanity.**  The DP's chosen cost equals the minimum
   over exhaustively enumerated and individually costed implementing
   trees (the DP is exact, not heuristic).
"""

from repro.core import count_implementing_trees, graph_of, implementing_trees, jn, oj
from repro.algebra import eq
from repro.datagen import example1_storage, random_databases, star
from repro.engine import Storage, execute
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    RetrievalCostModel,
)


def _leftdeep_best(graph, model):
    """Cheapest left-deep IT by exhaustive enumeration."""
    best = None
    for tree in implementing_trees(graph):
        # Left-deep: every right child is a leaf.
        if any(node.right.children() for _p, node in tree.nodes() if node.children()):
            continue
        cost = model.plan_cost(tree)
        if best is None or cost < best[0]:
            best = (cost, tree)
    return best


def test_bushy_vs_leftdeep(benchmark, report):
    scenario = star(4, oj_leaves=2)
    dbs = random_databases(scenario.schemas, 1, seed=9, max_rows=9, allow_empty=False)
    storage = Storage.from_database(dbs[0])
    model = CoutCostModel(CardinalityEstimator(storage))

    def optimize_both():
        bushy = DPOptimizer(scenario.graph, model).optimize()
        leftdeep = _leftdeep_best(scenario.graph, model)
        return bushy, leftdeep

    bushy, leftdeep = benchmark.pedantic(optimize_both, rounds=1, iterations=1)
    assert leftdeep is not None
    assert bushy.cost <= leftdeep[0] + 1e-9
    report.add("bushy optimum", "≤ left-deep optimum", f"{bushy.cost:.1f}")
    report.add("left-deep optimum", "may be worse", f"{leftdeep[0]:.1f}")
    report.add("plan space", "bushy ⊋ left-deep", str(count_implementing_trees(scenario.graph)))
    report.dump("Ablation: bushy vs left-deep")


def test_cost_model_tracks_measurements(benchmark, report):
    storage = example1_storage(2_000)
    written = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    graph = graph_of(written, storage.registry)
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)

    def compare_all():
        mismatches = []
        for tree in implementing_trees(graph):
            estimated = model.plan_cost(tree)
            measured = execute(tree, storage).tuples_retrieved
            if abs(estimated - measured) > max(2.0, 0.05 * measured):
                mismatches.append((tree.to_infix(), estimated, measured))
        return mismatches

    mismatches = benchmark.pedantic(compare_all, rounds=1, iterations=1)
    assert not mismatches, mismatches
    report.add("estimate vs measured", "tracks (Example-1 family)", "8/8 plans within 5%")
    report.dump("Ablation: cost-model fidelity")


def test_dp_is_exact(benchmark, report):
    storage = example1_storage(300)
    written = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    graph = graph_of(written, storage.registry)
    model = CoutCostModel(CardinalityEstimator(storage))

    def both():
        dp = DPOptimizer(graph, model).optimize()
        exhaustive = min(model.plan_cost(t) for t in implementing_trees(graph))
        return dp.cost, exhaustive

    dp_cost, exhaustive = benchmark(both)
    assert abs(dp_cost - exhaustive) < 1e-9
    report.add("DP cost vs exhaustive min", "equal (exact DP)", f"{dp_cost:.1f} == {exhaustive:.1f}")
    report.dump("Ablation: DP exactness")
