"""Experiment: Example 1 (second scenario) — outerjoin-first can win.

Paper claim: "the strategy of evaluating joins before outerjoins ... is
not necessarily the least expensive alternative for all cases.  For the
same (freely-reorderable) expression R1 − R2 → R3, if the join predicate
is (R1.A > R2.B) and the outerjoin predicate is (R2.C = R3.D), evaluating
the join first would produce a large output ... The optimal strategy in
this case is to do the outerjoin first."

Measured as intermediate-result volume (output rows produced by each
operator): join-first creates the big ``R1.A > R2.B`` intermediate and
then outerjoins it; outerjoin-first pays |R2| for the R2→R3 leg and joins
last, producing the big result only once, at the top, where it is the
final answer anyway.  The comparison metric is rows produced *below the
root* — the classic C_out argument.
"""

import pytest

from repro.algebra import bag_equal, eq, gt
from repro.core import jn, oj
from repro.datagen import example1b_storage
from repro.engine import execute
from repro.optimizer import CardinalityEstimator, CoutCostModel, DPOptimizer
from repro.core import graph_of

PJOIN = gt("R1.A", "R2.B")
POJ = eq("R2.C", "R3.D")


def join_first():
    return oj(jn("R1", "R2", PJOIN), "R3", POJ)


def outerjoin_first():
    return jn("R1", oj("R2", "R3", POJ), PJOIN)


def _intermediate_rows(result) -> int:
    """Rows emitted by all non-root operators of the executed plan."""
    emitted = result.metrics.rows_emitted
    total = sum(emitted.values())
    # The root operator's output is the final answer; exclude the largest
    # contribution once (single-root plans).
    return total - len(result.relation)


@pytest.mark.parametrize("scale", [(60, 60, 60), (100, 100, 100)])
def test_outerjoin_first_produces_less_intermediate(benchmark, report, scale):
    n1, n2, n3 = scale
    storage = example1b_storage(n1, n2, n3, seed=5)

    def both():
        return execute(join_first(), storage), execute(outerjoin_first(), storage)

    jf, of = benchmark(both)
    assert bag_equal(jf.relation, of.relation)  # freely reorderable
    jf_mid = _intermediate_rows(jf)
    of_mid = _intermediate_rows(of)
    assert of_mid < jf_mid, (of_mid, jf_mid)
    report.add(
        f"intermediate rows at n={n1}",
        "outerjoin-first smaller",
        f"join-first={jf_mid}, outerjoin-first={of_mid}",
    )
    report.dump("Example 1b: outerjoin-first wins")


def test_optimizer_chooses_outerjoin_first(benchmark, report):
    """The C_out DP lands on the outerjoin-first shape by itself."""
    storage = example1b_storage(80, 80, 80, seed=7)
    graph = graph_of(join_first(), storage.registry)
    model = CoutCostModel(CardinalityEstimator(storage))

    plan = benchmark(lambda: DPOptimizer(graph, model).optimize())
    # The chosen tree evaluates R2→R3 below the inequality join.
    infix = plan.expr.to_infix()
    assert "R2 → R3" in infix or "R3 ← R2" in infix, infix
    join_first_cost = model.plan_cost(join_first())
    assert plan.cost < join_first_cost
    report.add("optimal shape", "outerjoin first", infix)
    report.add("cost vs join-first", "smaller", f"{plan.cost:.0f} < {join_first_cost:.0f}")
    report.dump("Example 1b: optimizer choice")
