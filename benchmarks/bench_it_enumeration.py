"""Experiment: the implementing-tree space the graph abstracts over.

Context for Figure 1 / Section 3: the query graph is valuable precisely
because the set of implementing trees it stands for grows explosively.
This bench tabulates IT counts for chains and stars (pure-join vs
outerjoined variants) and times counting vs full enumeration.
"""

import pytest

from repro.core import count_implementing_trees, implementing_trees
from repro.datagen import chain, star


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_it_counts_join_chain(benchmark, report, n):
    graph = chain(n).graph
    count = benchmark(lambda: count_implementing_trees(graph))
    report.add(f"join chain n={n}", "grows super-exponentially", str(count))
    report.dump("IT growth: join chains")


@pytest.mark.parametrize("n", [3, 4, 5, 6])
def test_it_counts_oj_chain_equal_to_join_chain(benchmark, report, n):
    """On acyclic graphs every connected cut crosses exactly one edge, and
    a single edge supports exactly one operator in each operand order
    whether it is a join or a directed outerjoin — so the IT count depends
    only on the tree shape, not on edge kinds.  (A finding the paper
    leaves implicit: the graph abstraction costs outerjoins nothing in
    plan-space size on tree-shaped queries.)"""
    oj_graph = chain(n, ["out"] * (n - 1)).graph
    join_graph = chain(n).graph
    oj_count = benchmark(lambda: count_implementing_trees(oj_graph))
    join_count = count_implementing_trees(join_graph)
    assert oj_count == join_count
    report.add(f"chain n={n}", "same shape, same count", f"{oj_count} == {join_count}")
    report.dump("IT growth: outerjoin vs join chains")


def test_it_counts_shrink_when_oj_meets_a_cycle(benchmark, report):
    """Multi-edge cuts exist only in cyclic graphs, and there a mixed
    join/outerjoin cut supports no operator — so replacing one cycle edge
    by an outerjoin strictly shrinks the IT space."""
    from repro.algebra import eq
    from repro.core import QueryGraph
    from repro.datagen import join_cycle

    all_join = join_cycle(3).graph
    one_oj = QueryGraph.from_edges(
        join=[("R1", "R2", eq("R1.a", "R2.a")), ("R2", "R3", eq("R2.a", "R3.a"))],
        oj=[("R1", "R3", eq("R1.a", "R3.a"))],
    )

    def count_both():
        return count_implementing_trees(all_join), count_implementing_trees(one_oj)

    join_count, oj_count = benchmark(count_both)
    assert oj_count < join_count
    report.add("3-cycle all-join vs one-OJ", "OJ forbids mixed cuts", f"{join_count} > {oj_count}")
    report.dump("IT growth: cycles are where edge kinds matter")


@pytest.mark.parametrize("leaves", [3, 4, 5])
def test_it_counts_star(benchmark, report, leaves):
    graph = star(leaves, oj_leaves=1).graph
    count = benchmark(lambda: count_implementing_trees(graph))
    report.add(f"star {leaves} leaves (1 OJ)", "large", str(count))
    report.dump("IT growth: stars")


def test_enumeration_vs_counting(benchmark, report):
    """Counting via memoized recursion is much cheaper than materializing."""
    graph = chain(6).graph

    def enumerate_all():
        return sum(1 for _ in implementing_trees(graph))

    total = benchmark.pedantic(enumerate_all, rounds=1, iterations=1)
    assert total == count_implementing_trees(graph)
    report.add("chain n=6 trees enumerated", "= counted", str(total))
    report.dump("IT growth: enumeration cross-check")
