"""Experiment: Example 1 — reordering cuts retrievals from 2N+1 to 3.

Paper claim: for ``R1 − (R2 → R3)`` with key indexes, |R1| = 1 and
|R2| = |R3| = 10^7, "the first expression retrieves 2·10^7 + 1 tuples,
and the second retrieves only 3".

We measure the exact retrieval counts at laptop scales (the counts are
scale-free: 2N+1 vs 3 at every N) and report the analytic value for the
paper's N = 10^7 alongside.
"""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import jn, oj
from repro.datagen import example1_storage
from repro.engine import execute

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")


def written_query():
    """R1 − (R2 → R3): the order a naive evaluator uses."""
    return jn("R1", oj("R2", "R3", P23), P12)


def reordered_query():
    """(R1 − R2) → R3: the order Theorem 1 licenses."""
    return oj(jn("R1", "R2", P12), "R3", P23)


@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_example1_written_order(benchmark, report, n):
    storage = example1_storage(n)
    query = written_query()
    result = benchmark(lambda: execute(query, storage))
    assert result.tuples_retrieved == 2 * n + 1
    report.add(f"retrievals written N={n}", "2N+1 (2*10^7+1 at 10^7)", str(result.tuples_retrieved))
    report.dump("Example 1: written order")


@pytest.mark.parametrize("n", [1_000, 10_000, 100_000])
def test_example1_reordered(benchmark, report, n):
    storage = example1_storage(n)
    query = reordered_query()
    result = benchmark(lambda: execute(query, storage))
    assert result.tuples_retrieved == 3
    report.add(f"retrievals reordered N={n}", "3", str(result.tuples_retrieved))
    report.dump("Example 1: reordered")


def test_example1_equivalence_and_ratio(benchmark, report):
    """The headline table: same answer, ~N-fold retrieval ratio."""
    n = 10_000
    storage = example1_storage(n)

    def both():
        slow = execute(written_query(), storage)
        fast = execute(reordered_query(), storage)
        return slow, fast

    slow, fast = benchmark(both)
    assert bag_equal(slow.relation, fast.relation)
    ratio = slow.tuples_retrieved / fast.tuples_retrieved
    assert ratio > n / 2  # (2N+1)/3 ≈ 0.67N
    report.add("result equality", "equal (Theorem 1)", "bag-equal")
    report.add(f"ratio at N={n}", f"{(2 * n + 1) / 3:.0f}x", f"{ratio:.0f}x")
    report.add("analytic at N=10^7", "20,000,001 vs 3", f"{2 * 10**7 + 1:,} vs 3")
    report.dump("Example 1: equivalence and ratio")
