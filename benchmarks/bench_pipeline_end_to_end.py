"""Experiment: the complete Section-4 + Section-6.1 pipeline, measured.

Simplify (strong restrictions convert outerjoins) → push restrictions to
the leaves → abstract to a graph → certify with Theorem 1 → DP-reorder →
execute.  Compared against executing the query exactly as written.

Also measures the graceful degradation: an IS NULL restriction (the
find-unmatched-rows idiom) blocks both the conversion and the pushdown,
and the pipeline falls back to the written order — correctness first.
"""

import pytest

from repro.algebra import Comparison, Const, IsNull, bag_equal, eq
from repro.core import Restrict, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer.pipeline import optimize_and_run

P12 = eq("R1.k", "R2.k")
P23 = eq("R2.j", "R3.j")


def strong_query():
    return Restrict(
        jn("R1", oj("R2", "R3", P23), P12), Comparison("R3.j", "=", Const(5))
    )


def isnull_query():
    return Restrict(jn("R1", oj("R2", "R3", P23), P12), IsNull("R3.j"))


@pytest.mark.parametrize("n", [500, 5_000])
def test_pipeline_beats_written_order(benchmark, report, n):
    storage = example1_storage(n)
    query = strong_query()

    def run_pipeline():
        # use_cache=False: this scenario times the full pipeline (simplify,
        # push, certify, DP); cached-plan latency is servicebench's subject.
        return optimize_and_run(query, storage, use_cache=False)

    result, run = benchmark(run_pipeline)
    baseline = execute(query, storage)
    assert bag_equal(run.relation, baseline.relation)
    assert result.conversions and result.reordered
    assert run.tuples_retrieved < baseline.tuples_retrieved
    report.add(
        f"retrievals at N={n}",
        "pipeline < written",
        f"{run.tuples_retrieved} < {baseline.tuples_retrieved}",
    )
    report.dump("Pipeline: simplify + push + reorder")


def test_pipeline_blocks_on_isnull(benchmark, report):
    storage = example1_storage(500)
    query = isnull_query()

    def run_pipeline():
        return optimize_and_run(query, storage, use_cache=False)

    result, run = benchmark(run_pipeline)
    baseline = execute(query, storage)
    assert bag_equal(run.relation, baseline.relation)
    assert not result.reordered and result.blocked
    report.add("IS NULL restriction", "blocks reordering", "fell back to written order")
    report.add("correctness", "preserved", "bag-equal with naive evaluation")
    report.dump("Pipeline: order-sensitive restriction handled safely")


def test_pipeline_explanation_trace(benchmark, report):
    storage = example1_storage(200)

    def explain():
        result, _run = optimize_and_run(strong_query(), storage, use_cache=False)
        return result.explain()

    text = benchmark(explain)
    assert "simplify:" in text and "push:" in text
    report.add("explanation", "auditable trace", f"{len(text.splitlines())} lines")
    report.dump("Pipeline: explainability")
