"""Experiment: planning-time scalability — the §6.1 cost of being exact.

The paper's pitch is that freely-reorderable queries need no *extra*
optimizer machinery — but the baseline machinery itself (DP over
connected subgraphs) is exponential.  This bench tabulates DP table sizes
and wall-clock planning time against query size for chains and stars,
with the O(n^3) greedy as the scalable alternative, and verifies greedy's
optimality gap stays modest on these shapes.
"""

import pytest

from repro.datagen import chain, random_databases, star
from repro.engine import Storage
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    GreedyOptimizer,
    connected_subsets,
)


def _storage_for(scenario, seed=0):
    dbs = random_databases(scenario.schemas, 1, seed=seed, max_rows=9, allow_empty=False)
    return Storage.from_database(dbs[0])


@pytest.mark.parametrize("n", [4, 6, 8, 10])
def test_dp_planning_time_chain(benchmark, report, bench_seed, n):
    kinds = ["join" if i % 2 == 0 else "out" for i in range(n - 1)]
    scenario = chain(n, kinds)
    storage = _storage_for(scenario, seed=bench_seed + n)
    model = CoutCostModel(CardinalityEstimator(storage))

    plan = benchmark(lambda: DPOptimizer(scenario.graph, model).optimize())
    table = len(connected_subsets(scenario.graph))
    assert plan.nodes == scenario.graph.nodes
    report.add(f"chain n={n}", "DP table = connected subsets", f"{table} entries")
    report.dump("Planning scalability: chains")


@pytest.mark.parametrize("leaves", [4, 6, 8])
def test_dp_planning_time_star(benchmark, report, bench_seed, leaves):
    scenario = star(leaves, oj_leaves=leaves // 2)
    storage = _storage_for(scenario, seed=bench_seed + leaves)
    model = CoutCostModel(CardinalityEstimator(storage))

    plan = benchmark(lambda: DPOptimizer(scenario.graph, model).optimize())
    table = len(connected_subsets(scenario.graph))
    assert plan.nodes == scenario.graph.nodes
    report.add(f"star leaves={leaves}", "2^n-ish table", f"{table} entries")
    report.dump("Planning scalability: stars")


@pytest.mark.parametrize("leaves", [6, 8])
def test_greedy_optimality_gap(benchmark, report, bench_seed, leaves):
    """Greedy never beats the DP, and on stars it can miss by a wide
    margin (cheapest-merge-first commits to locally attractive pairs) —
    the classic argument for paying the DP's exponential table when the
    query is small enough."""
    scenario = star(leaves, oj_leaves=2)
    storage = _storage_for(scenario, seed=bench_seed + leaves + 50)
    model = CoutCostModel(CardinalityEstimator(storage))
    dp_cost = DPOptimizer(scenario.graph, model).optimize().cost

    greedy = benchmark(lambda: GreedyOptimizer(scenario.graph, model).optimize())
    gap = (greedy.cost - dp_cost) / max(dp_cost, 1e-9)
    assert greedy.cost >= dp_cost - 1e-9  # DP is exact: a lower bound
    report.add(f"star leaves={leaves} gap", "≥ 0; can be large", f"{gap * 100:.0f}%")
    report.dump("Planning scalability: greedy optimality gap")
