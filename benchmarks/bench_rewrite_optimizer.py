"""Experiment: graph-DP vs transformation-based optimization.

Theorem 1 underwrites BOTH classic optimizer architectures:

* the *generative* DP plans from the graph (Section 6.1's sketch);
* the *transformational* rewriter searches outward from the written tree
  through result-preserving basic transforms — and because the preserving
  closure equals the full IT space on nice+strong graphs (the content of
  Theorem 1's proof), exhaustive rewriting reaches the same optimum.

This bench measures both architectures plus hill-climbing on Example 1's
workload, comparing plan quality and trees explored.
"""

from repro.algebra import eq
from repro.core import count_implementing_trees, graph_of, jn, oj
from repro.datagen import example1_storage
from repro.engine import execute
from repro.optimizer import CardinalityEstimator, DPOptimizer, RetrievalCostModel
from repro.optimizer.rewriter import RewriteOptimizer


def setup(n=400):
    storage = example1_storage(n)
    written = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)
    return storage, written, model


def test_dp_vs_exhaustive_rewrite(benchmark, report):
    storage, written, model = setup()
    graph = graph_of(written, storage.registry)
    rewriter = RewriteOptimizer(storage.registry, model)

    def both():
        dp = DPOptimizer(graph, model).optimize()
        rewrite = rewriter.optimize_exhaustive(written)
        return dp, rewrite

    dp, rewrite = benchmark(both)
    assert abs(dp.cost - rewrite.best.cost) < 1e-9
    report.add("DP optimum", "graph-generative", f"{dp.cost:.0f}")
    report.add("rewrite optimum", "= DP (Theorem 1 completeness)", f"{rewrite.best.cost:.0f}")
    report.add("trees explored by rewriter", "= #ITs", str(rewrite.trees_explored))
    report.add("#ITs", "reference", str(count_implementing_trees(graph)))
    report.dump("Rewrite architecture: completeness via Theorem 1")


def test_hill_climb_quality(benchmark, report):
    storage, written, model = setup()
    rewriter = RewriteOptimizer(storage.registry, model)

    result = benchmark(lambda: rewriter.optimize_hill_climb(written))
    measured = execute(result.best.expr, storage)
    assert measured.tuples_retrieved == 3
    report.add("hill-climb plan", "finds the 3-retrieval plan", result.best.expr.to_infix())
    report.add("trees explored", "≪ exhaustive", str(result.trees_explored))
    report.dump("Rewrite architecture: hill climbing")
