"""Experiment: Example 2 — joins and outerjoins do not always associate.

Paper claim: "Despite having the same graph, R1 → (R2 − R3) is not
equivalent to (R1 → R2) − R3 ... The first expression yields
{(r1, −, −)}, while the second yields the empty set."

We reproduce the paper's literal one-tuple database, then let the
brute-force checker find disagreement witnesses over random databases.
"""

from repro.algebra import Database, NULL, Relation, bag_equal, eq
from repro.core import brute_force_check, graph_of, is_nice, jn, oj
from repro.datagen import example2_graph, random_databases

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.b", "R3.b")


def paper_database() -> Database:
    """r1, r2, r3 with (r2, r3) not satisfying the join predicate."""
    return Database(
        {
            "R1": Relation.from_dicts(["R1.a"], [{"R1.a": 1}]),
            "R2": Relation.from_dicts(["R2.a", "R2.b"], [{"R2.a": 1, "R2.b": 5}]),
            "R3": Relation.from_dicts(["R3.b"], [{"R3.b": 6}]),
        }
    )


def test_example2_literal(benchmark, report):
    db = paper_database()
    q1 = oj("R1", jn("R2", "R3", P23), P12)  # R1 → (R2 − R3)
    q2 = jn(oj("R1", "R2", P12), "R3", P23)  # (R1 → R2) − R3

    r1, r2 = benchmark(lambda: (q1.eval(db), q2.eval(db)))
    assert graph_of(q1, db.registry) == graph_of(q2, db.registry)
    assert len(r1) == 1 and next(iter(r1))["R2.a"] is NULL  # {(r1, -, -)}
    assert len(r2) == 0  # the empty set
    assert not bag_equal(r1, r2)
    report.add("graphs", "identical", "identical")
    report.add("R1→(R2−R3)", "{(r1,-,-)}", f"{len(r1)} row, padded")
    report.add("(R1→R2)−R3", "empty set", f"{len(r2)} rows")
    report.dump("Example 2: non-associativity")


def test_example2_graph_not_nice(benchmark, report):
    scenario = example2_graph()
    nice = benchmark(lambda: is_nice(scenario.graph))
    assert not nice
    report.add("graph class", "outside 'nice'", "forbidden pattern X→Y−Z found")
    report.dump("Example 2: graph classification")


def test_example2_brute_force_witness_rate(benchmark, report):
    """How often does a random database expose the disagreement?"""
    scenario = example2_graph()
    dbs = random_databases(scenario.schemas, 50, seed=31)

    def count_witnesses():
        witnesses = 0
        for db in dbs:
            if not brute_force_check(scenario.graph, [db]).consistent:
                witnesses += 1
        return witnesses

    witnesses = benchmark(count_witnesses)
    assert witnesses > 0
    report.add("witness databases", "> 0 (inequivalent)", f"{witnesses}/50")
    report.dump("Example 2: randomized witnesses")
