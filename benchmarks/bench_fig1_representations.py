"""Experiment: Figure 1 — query graph vs implementing trees.

Paper claims around Figure 1: the two representations carry different
information; "ITs correspond only to connectivity-preserving
parenthesizations, i.e., joins without graph edges (i.e., Cartesian
products) are excluded"; and "a reassociation joining R and T is
disallowed" for the pictured graph.
"""

from repro.core import (
    Join,
    count_implementing_trees,
    graph_of,
    implementing_trees,
)
from repro.datagen import figure1_graph


def test_fig1_enumeration(benchmark, report):
    scenario = figure1_graph()
    trees = benchmark(lambda: list(implementing_trees(scenario.graph)))
    assert len(trees) == count_implementing_trees(scenario.graph)
    report.add("distinct ITs of R-S-T-U", "many (graph abstracts them)", str(len(trees)))
    report.dump("Figure 1: implementing trees")


def test_fig1_no_rt_reassociation(benchmark, report):
    """No IT ever joins the subtrees {R} and {T} directly."""
    scenario = figure1_graph()

    def violating_trees():
        bad = 0
        for tree in implementing_trees(scenario.graph):
            for _path, node in tree.nodes():
                if isinstance(node, Join):
                    sides = {frozenset(node.left.relations()), frozenset(node.right.relations())}
                    if sides == {frozenset({"R"}), frozenset({"T"})}:
                        bad += 1
        return bad

    bad = benchmark(violating_trees)
    assert bad == 0
    report.add("trees joining R with T", "0 (disallowed)", str(bad))
    report.dump("Figure 1: R-T reassociation excluded")


def test_fig1_trees_round_trip_to_graph(benchmark, report):
    """Every IT maps back to the one graph: graph(Q) loses only order."""
    scenario = figure1_graph()
    reg = scenario.registry
    trees = list(implementing_trees(scenario.graph))

    def round_trip():
        return all(graph_of(t, reg) == scenario.graph for t in trees)

    assert benchmark(round_trip)
    report.add("graph(IT) == G for all ITs", "yes (definition)", "yes")
    report.dump("Figure 1: representation round trip")
