"""Experiment: Figure 4 — reversal and reassociation on implementing trees.

Paper content: Figure 4 illustrates the two basic transforms on the IT of
Figure 1.  We measure: every BT preserves graph(Q); the BT graph over the
IT space is connected (Lemma 3); and BFS path lengths between random tree
pairs stay small.
"""

from repro.core import (
    applicable_transforms,
    apply_transform,
    bt_closure,
    bt_path,
    canonicalize,
    count_implementing_trees,
    graph_of,
    implementing_trees,
    sample_implementing_tree,
)
from repro.datagen import figure1_graph
from repro.util.rng import make_rng


def test_fig4_bts_preserve_graph(benchmark, report):
    scenario = figure1_graph()
    reg = scenario.registry
    trees = list(implementing_trees(scenario.graph))

    def apply_all():
        applied = 0
        for tree in trees[:40]:
            for t in applicable_transforms(tree, reg):
                out = apply_transform(tree, t, reg)
                assert graph_of(out, reg) == scenario.graph
                applied += 1
        return applied

    applied = benchmark(apply_all)
    report.add("BT applications checked", "graph invariant", str(applied))
    report.dump("Figure 4: graph preservation")


def test_fig4_closure_connects_the_it_space(benchmark, report):
    scenario = figure1_graph()
    reg = scenario.registry
    seed_tree = canonicalize(next(implementing_trees(scenario.graph)))

    closure = benchmark.pedantic(
        lambda: bt_closure(seed_tree, reg), rounds=1, iterations=1
    )
    total = count_implementing_trees(scenario.graph)
    assert len(closure) == total
    report.add("closure size", "= #ITs (Lemma 3)", f"{len(closure)} == {total}")
    report.dump("Figure 4: closure connectivity")


def test_fig4_bt_path_lengths(benchmark, report):
    scenario = figure1_graph()
    reg = scenario.registry
    rng = make_rng(44)
    pairs = [
        (
            canonicalize(sample_implementing_tree(scenario.graph, rng)),
            canonicalize(sample_implementing_tree(scenario.graph, rng)),
        )
        for _ in range(8)
    ]

    def longest_path():
        longest = 0
        for a, b in pairs:
            path = bt_path(a, b, reg)
            assert path is not None
            longest = max(longest, len(path))
        return longest

    longest = benchmark.pedantic(longest_path, rounds=1, iterations=1)
    report.add("max BT path (8 random pairs)", "finite sequence", str(longest))
    report.dump("Figure 4: BT path lengths")
