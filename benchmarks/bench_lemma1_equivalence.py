"""Experiment: Lemma 1 — the two definitions of "nice" coincide.

Paper claim (Lemma 1): G is nice (decomposes into a connected join core
G1 plus an outward outerjoin forest G2) iff G has no outerjoin cycle, no
path X → Y − Z, and no path X → Y ← Z.

Machine check: exhaustive sweep over every 3-node graph buildable from a
fixed edge menu (4^3 = 64 graphs), plus randomized 6- and 8-node graphs;
the decomposition-based and pattern-based checkers must agree everywhere.
"""

from itertools import product

from repro.algebra import eq
from repro.core import QueryGraph, is_nice, is_nice_by_decomposition
from repro.datagen import random_graph, random_nice_graph


def _all_three_node_graphs():
    nodes = ["A", "B", "C"]
    pairs = [("A", "B"), ("B", "C"), ("A", "C")]
    options = ["none", "join", "fwd", "rev"]
    graphs = []
    for combo in product(options, repeat=3):
        join_edges, oj_edges = [], []
        for (u, v), kind in zip(pairs, combo):
            p = eq(f"{u}.a", f"{v}.a")
            if kind == "join":
                join_edges.append((u, v, p))
            elif kind == "fwd":
                oj_edges.append((u, v, p))
            elif kind == "rev":
                oj_edges.append((v, u, p))
        graphs.append(QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes))
    return graphs


def test_lemma1_exhaustive_three_nodes(benchmark, report):
    graphs = _all_three_node_graphs()

    def check_all():
        agree = nice_count = 0
        for g in graphs:
            a, b = is_nice(g), is_nice_by_decomposition(g)
            assert a == b, g.describe()
            agree += 1
            nice_count += a
        return agree, nice_count

    agree, nice_count = benchmark(check_all)
    assert agree == 64
    report.add("3-node graphs checked", "definitions equivalent", f"{agree} (nice: {nice_count})")
    report.dump("Lemma 1: exhaustive 3-node sweep")


def _all_four_node_graphs():
    nodes = ["A", "B", "C", "D"]
    pairs = [
        ("A", "B"), ("A", "C"), ("A", "D"), ("B", "C"), ("B", "D"), ("C", "D"),
    ]
    options = ["none", "join", "fwd", "rev"]
    for combo in product(options, repeat=6):
        join_edges, oj_edges = [], []
        for (u, v), kind in zip(pairs, combo):
            p = eq(f"{u}.a", f"{v}.a")
            if kind == "join":
                join_edges.append((u, v, p))
            elif kind == "fwd":
                oj_edges.append((u, v, p))
            elif kind == "rev":
                oj_edges.append((v, u, p))
        yield QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)


def test_lemma1_exhaustive_four_nodes(benchmark, report):
    """All 4^6 = 4096 four-node graphs over the edge menu."""

    def check_all():
        agree = nice_count = 0
        for g in _all_four_node_graphs():
            a, b = is_nice(g), is_nice_by_decomposition(g)
            assert a == b, g.describe()
            agree += 1
            nice_count += a
        return agree, nice_count

    agree, nice_count = benchmark.pedantic(check_all, rounds=1, iterations=1)
    assert agree == 4096
    report.add("4-node graphs checked", "definitions equivalent", f"{agree} (nice: {nice_count})")
    report.dump("Lemma 1: exhaustive 4-node sweep")


def test_lemma1_random_graphs(benchmark, report):
    graphs = [random_graph(7, seed=s, oj_probability=0.5, extra_edges=3).graph
              for s in range(120)]

    def check_all():
        nice_count = 0
        for g in graphs:
            a, b = is_nice(g), is_nice_by_decomposition(g)
            assert a == b, g.describe()
            nice_count += a
        return nice_count

    nice_count = benchmark(check_all)
    report.add("random 7-node graphs", "definitions equivalent", f"120 checked, {nice_count} nice")
    report.dump("Lemma 1: randomized sweep")


def test_lemma1_constructed_nice_graphs(benchmark, report):
    graphs = [random_nice_graph(3, 4, seed=s, extra_join_edges=2).graph for s in range(60)]

    def check_all():
        for g in graphs:
            assert is_nice(g) and is_nice_by_decomposition(g)
        return len(graphs)

    n = benchmark(check_all)
    report.add("constructed nice graphs", "recognized nice", f"{n}/60")
    report.dump("Lemma 1: construction round trip")
