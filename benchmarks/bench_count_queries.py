"""Experiment: Count queries need outerjoins ([MURA89], introduction).

The introduction lists "processing queries with Count operations" among
the motivations for outerjoin support: COUNT-per-group must report zero
for empty groups, which a plain join cannot express.  This bench runs the
departments/employees counting query both ways and then confirms the
count query inherits free reorderability (every IT gives the same
counts), so the optimizer may reorder below the aggregation.
"""

from repro.algebra import bag_equal, eq
from repro.algebra.aggregation import group_count
from repro.core import graph_of, implementing_trees, jn, oj, theorem1_applies
from repro.datagen import departments_database


def test_zero_groups_require_outerjoin(benchmark, report):
    db = departments_database(n_departments=6, employees_per_department=3, empty_departments=2)
    p = eq("DEPT.dno", "EMP.dno")

    def both_counts():
        via_oj = group_count(oj("DEPT", "EMP", p).eval(db), ["DEPT.dno"], "EMP.eno")
        via_jn = group_count(jn("DEPT", "EMP", p).eval(db), ["DEPT.dno"], "EMP.eno")
        return via_oj, via_jn

    via_oj, via_jn = benchmark(both_counts)
    zero_groups = sum(1 for r in via_oj if r["count"] == 0)
    assert zero_groups == 2
    assert len(via_oj) == 6 and len(via_jn) == 4
    report.add("groups via outerjoin", "all 6 (2 at zero)", f"{len(via_oj)} groups, {zero_groups} zeros")
    report.add("groups via join", "only 4 (zeros lost)", f"{len(via_jn)} groups")
    report.dump("Count queries: the [MURA89] motivation")


def test_count_query_is_freely_reorderable_below_aggregation(benchmark, report):
    db = departments_database(n_departments=4, empty_departments=1)
    q = oj("DEPT", "EMP", eq("DEPT.dno", "EMP.dno"))
    graph = graph_of(q, db.registry)
    assert theorem1_applies(graph, db.registry).freely_reorderable

    def counts_over_all_trees():
        reference = None
        trees = 0
        for tree in implementing_trees(graph):
            counts = group_count(tree.eval(db), ["DEPT.dno"], "EMP.eno")
            if reference is None:
                reference = counts
            else:
                assert bag_equal(counts, reference)
            trees += 1
        return trees

    trees = benchmark(counts_over_all_trees)
    report.add("ITs under the COUNT", "all give the same counts", f"{trees} trees")
    report.dump("Count queries: reorderable below the aggregation")
