"""Experiment: Section 6.2 — generalized outerjoin identities 15 and 16.

Paper claim: under duplicate-free relations and strong predicates,
``X OJ (Y JN Z) = (X OJ Y) GOJ[sch(X)] Z`` (15) and the join/GOJ exchange
(16) hold; identity 15 read right-to-left reassociates the non-nice
query of Example 2.
"""

from repro.algebra import bag_equal, eq
from repro.core import (
    GojSetting,
    check_identity15,
    check_identity16,
    jn,
    oj,
    reassociate_outerjoin_of_join,
)
from repro.datagen import duplicate_free_database
from repro.util.rng import make_rng

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")


def _settings(count, seed):
    rng = make_rng(seed)
    out = []
    for _ in range(count):
        db = duplicate_free_database(SCHEMAS, seed=rng)
        out.append(GojSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=PYZ))
    return out


def test_identity15_sweep(benchmark, report):
    settings = _settings(40, seed=61)

    def sweep():
        failures = 0
        for s in settings:
            ok, _ = check_identity15(s)
            if not ok:
                failures += 1
        return failures

    failures = benchmark(sweep)
    assert failures == 0
    report.add("identity 15", "holds (dup-free, strong)", "0/40 failures")
    report.dump("Identity 15: X OJ (Y JN Z) = (X OJ Y) GOJ[sch(X)] Z")


def test_identity16_sweep(benchmark, report):
    settings = _settings(40, seed=62)

    def sweep():
        failures = 0
        for s in settings:
            ok, _ = check_identity16(s, ["Y.a"])
            if not ok:
                failures += 1
        return failures

    failures = benchmark(sweep)
    assert failures == 0
    report.add("identity 16 (S = {Y.a})", "holds", "0/40 failures")
    report.dump("Identity 16: join/GOJ exchange")


def test_example2_rescue_via_goj(benchmark, report):
    """The non-nice X → (Y − Z) becomes left-deep with one GOJ."""
    settings = _settings(25, seed=63)
    original = oj("X", jn("Y", "Z", PYZ), PXY)
    rewritten = reassociate_outerjoin_of_join(original)

    def sweep():
        rng = make_rng(64)
        agreements = 0
        for _ in range(25):
            db = duplicate_free_database(SCHEMAS, seed=rng)
            if bag_equal(original.eval(db), rewritten.eval(db)):
                agreements += 1
        return agreements

    agreements = benchmark(sweep)
    assert agreements == 25
    report.add("GOJ rewrite agreement", "exact (identity 15 r-to-l)", "25/25 databases")
    report.add("rewritten shape", "left-deep with GOJ", rewritten.to_infix())
    report.dump("Section 6.2: rescuing Example 2 with GOJ")
