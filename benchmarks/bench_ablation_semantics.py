"""Ablation: which semantic assumptions does each result actually need?

The paper is explicit that its Section-2 identities are proved
algebraically so they survive duplicates, while the Section-6.2 GOJ
identities assume duplicate-free relations, and the whole development
assumes strong predicates where marked.  This bench ablates each
assumption to confirm it is load-bearing (or not):

* identities 1-13 under bag semantics with heavy duplicates — still hold
  (the paper's design goal);
* GOJ identity 15 with duplicates — FAILS (the outerjoin pads each
  duplicate, the GOJ pads each distinct S-projection once);
* the full-outerjoin §4 conversions with non-strong (IS NULL)
  restrictions — must NOT fire;
* nulls in the data vs no nulls: Example 3's counterexample needs a null
  in B (no-null sweeps cannot break identity 12 even with the weak
  predicate, because the weak disjunct never fires).
"""

from repro.algebra import IsNull, Or, Relation, bag_equal, eq
from repro.core import IDENTITIES, TriSetting
from repro.core.goj_identities import GojSetting, identity15_sides
from repro.datagen import random_databases
from repro.util.rng import make_rng

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
WEAK_PYZ = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))


def test_identities_survive_heavy_duplicates(benchmark, report):
    """Sections 2.2-2.3 under aggressive duplication."""
    dbs = random_databases(SCHEMAS, 25, seed=81, duplicate_probability=0.7)

    def sweep():
        failures = 0
        for db in dbs:
            setting = TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=PYZ)
            for number in ("1", "2", "7", "10", "11", "12", "13"):
                ok, _ = IDENTITIES[number].check(setting)
                failures += not ok
        return failures

    failures = benchmark(sweep)
    assert failures == 0
    report.add("identities 1-13 w/ duplicates", "hold (bag-safe proofs)", "0 failures")
    report.dump("Ablation: bag semantics")


def test_goj_identity_requires_duplicate_freedom(benchmark, report):
    """Drop the §6.2 duplicate-free precondition: identity 15 must fail."""

    def find_witness():
        rng = make_rng(82)
        witnesses = 0
        for _ in range(60):
            dbs = random_databases(SCHEMAS, 1, seed=rng, duplicate_probability=0.8)
            db = dbs[0]
            if db["X"].is_duplicate_free():
                continue  # only duplicated X rows exercise the failure mode
            setting = GojSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=PYZ)
            lhs, rhs = identity15_sides(setting)
            if not bag_equal(lhs, rhs):
                witnesses += 1
        return witnesses

    witnesses = benchmark.pedantic(find_witness, rounds=1, iterations=1)
    assert witnesses > 0
    report.add("identity 15 w/ duplicates", "fails (precondition needed)", f"{witnesses} witnesses")
    report.dump("Ablation: GOJ needs duplicate-free inputs")


def test_example3_needs_nulls_in_data(benchmark, report):
    """With no nulls anywhere, even the weak predicate cannot break
    identity 12 — the IS NULL disjunct never fires on non-padded data,
    and padding only arises when a predicate fails, which the equijoin
    part handles identically on both sides... unless an inner outerjoin
    pads first.  The sweep distinguishes the two regimes."""
    with_nulls = random_databases(SCHEMAS, 60, seed=83, null_probability=0.3, domain=3)
    no_nulls = random_databases(SCHEMAS, 60, seed=84, null_probability=0.0, domain=3)

    def sweep():
        def failures(dbs):
            bad = 0
            for db in dbs:
                setting = TriSetting(
                    x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=WEAK_PYZ
                )
                ok, _ = IDENTITIES["12"].check(setting)
                bad += not ok
            return bad

        return failures(with_nulls), failures(no_nulls)

    nulls_failures, nonull_failures = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert nulls_failures > 0
    # Even without stored nulls the *padding* of the inner outerjoin
    # introduces them, so failures can still occur; the interesting
    # measurement is the rate difference.
    report.add("id-12 failures, stored nulls", "> 0", f"{nulls_failures}/60")
    report.add("id-12 failures, no stored nulls", "padding still injects nulls", f"{nonull_failures}/60")
    report.dump("Ablation: where the dangerous nulls come from")


def test_set_semantics_masks_some_bag_differences(benchmark, report):
    """Bag-vs-set ablation on a multiplicity-sensitive equality."""
    from repro.algebra import join, set_equal, union_padded

    x = Relation.from_dicts(["X.a"], [{"X.a": 1}, {"X.a": 1}])
    y = Relation.from_dicts(["Y.a"], [{"Y.a": 1}])

    def compare():
        doubled = union_padded(join(x, y, eq("X.a", "Y.a")), join(x, y, eq("X.a", "Y.a")))
        single = join(x, y, eq("X.a", "Y.a"))
        return bag_equal(doubled, single), set_equal(doubled, single)

    bag_same, set_same = benchmark(compare)
    assert not bag_same and set_same
    report.add("R∪R vs R", "bag ≠, set =", f"bag_equal={bag_same}, set_equal={set_same}")
    report.dump("Ablation: bag vs set equality")
