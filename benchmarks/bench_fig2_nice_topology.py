"""Experiment: Figure 2 — the "nice" topology is freely reorderable.

Paper claim (Theorem + Figure 2): a connected join core with outerjoin
trees going outward, under strong predicates, is freely reorderable —
every implementing tree evaluates to the same result.

We verify the decomposition, count the ITs, and evaluate every single one
on randomized databases, asserting bag-equality across the board.
"""

from repro.core import (
    brute_force_check,
    count_implementing_trees,
    nice_decomposition,
    theorem1_applies,
)
from repro.datagen import figure2_graph, random_databases


def test_fig2_theorem_certificate(benchmark, report):
    scenario = figure2_graph()
    verdict = benchmark(lambda: theorem1_applies(scenario.graph, scenario.registry))
    assert verdict.freely_reorderable
    d = nice_decomposition(scenario.graph)
    assert d is not None
    report.add("nice decomposition", "core + outward forest",
               f"core={sorted(d.g1_nodes)}, roots={sorted(d.forest_roots)}")
    report.add("Theorem 1 verdict", "freely reorderable", "freely reorderable")
    report.dump("Figure 2: certificate")


def test_fig2_it_count(benchmark, report):
    scenario = figure2_graph()
    count = benchmark(lambda: count_implementing_trees(scenario.graph))
    assert count > 100  # the graph abstracts over a large plan space
    report.add("implementing trees", "all equivalent", str(count))
    report.dump("Figure 2: IT count")


def test_fig2_all_trees_agree(benchmark, report):
    scenario = figure2_graph()
    dbs = random_databases(scenario.schemas, 3, seed=1990)

    def check():
        return brute_force_check(scenario.graph, dbs)

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    assert result.consistent
    report.add(
        "evaluation agreement",
        "all ITs equal",
        f"{result.trees_checked} trees x {len(dbs)} dbs: consistent",
    )
    report.dump("Figure 2: exhaustive evaluation")
