"""Experiment: identities 11-13 (Section 2.3) — outerjoin reassociation.

Paper claim: the three "three operand" reassociation rules hold, identity
12 only under P_yz strong w.r.t. Y; "the analysis of whether join
predicates must be strong appears to be new".  We sweep all three over
randomized databases, confirm 12's precondition is necessary, and confirm
the asymmetry: strongness w.r.t. Z (the null-supplied side) does NOT
rescue identity 12 — the reproduction's witness that Section 1.3's
"preserved relation" phrasing (not Lemma 2's "null-supplied") is the
operative condition.
"""

import pytest

from repro.algebra import And, Comparison, Const, IsNull, Or, eq
from repro.core import IDENTITIES, TriSetting
from repro.datagen import random_databases

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
WEAK_PYZ = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))
#: Strong w.r.t. Z.b (null-supplied), NOT w.r.t. Y.b (preserved side).
Z_ONLY_STRONG = Or(
    (eq("Y.b", "Z.b"), And((Comparison("Z.b", "=", Const(2)), IsNull("Y.b"))))
)


def _sweep(number, dbs, pyz=PYZ):
    identity = IDENTITIES[number]
    failures = 0
    for db in dbs:
        setting = TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=pyz)
        ok, _ = identity.check(setting)
        if not ok:
            failures += 1
    return failures


@pytest.mark.parametrize("number", ["11", "12", "13"])
def test_reassociation_identity(benchmark, report, number):
    dbs = random_databases(SCHEMAS, 50, seed=int(number) * 11)
    failures = benchmark(lambda: _sweep(number, dbs))
    assert failures == 0
    report.add(f"identity {number}", "holds", "0/50 failures")
    report.dump(f"Identity {number}: {IDENTITIES[number].title}")


def test_identity12_needs_strongness(benchmark, report):
    dbs = random_databases(SCHEMAS, 60, seed=555)
    failures = benchmark(lambda: _sweep("12", dbs, pyz=WEAK_PYZ))
    assert failures > 0
    report.add("identity 12, weak P_yz", "fails (Example 3)", f"{failures}/60 failures")
    report.dump("Identity 12: strongness necessity")


def test_identity12_null_supplied_strongness_insufficient(benchmark, report):
    """The erratum witness: P_yz strong w.r.t. Z alone is not enough."""
    assert Z_ONLY_STRONG.is_strong(["Z.b"])
    assert not Z_ONLY_STRONG.is_strong(["Y.b"])
    dbs = random_databases(SCHEMAS, 80, seed=556, domain=4)
    failures = benchmark(lambda: _sweep("12", dbs, pyz=Z_ONLY_STRONG))
    assert failures > 0
    report.add(
        "identity 12, Z-only-strong P_yz",
        "must fail (Sec 1.3 phrasing operative)",
        f"{failures}/80 failures",
    )
    report.dump("Identity 12: the preserved-vs-null-supplied erratum")


def test_identities_11_13_need_no_strongness(benchmark, report):
    """11 and 13 survive even the weak predicate — no precondition."""
    dbs = random_databases(SCHEMAS, 50, seed=557)

    def sweep_both():
        return _sweep("11", dbs, pyz=WEAK_PYZ) + _sweep("13", dbs, pyz=WEAK_PYZ)

    failures = benchmark(sweep_both)
    assert failures == 0
    report.add("identities 11/13, weak P_yz", "still hold", "0/100 failures")
    report.dump("Identities 11, 13: unconditional")
