#!/usr/bin/env python
"""Run the whole benchmark suite and write BENCH_PR1.json.

Thin CLI over :mod:`repro.tools.benchrunner`; see that module for the
report format and flags (``--naive``, ``--smoke``, ``--seed``, ``--only``,
``--output``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.tools.benchrunner import main

if __name__ == "__main__":
    raise SystemExit(main())
