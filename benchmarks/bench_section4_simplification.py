"""Experiment: Section 4 — strong restrictions simplify outerjoins to joins.

Paper claims: a restriction strong on attributes of R makes any outerjoin
null-supplying R pointless ("regular join would suffice"); the rewrite is
"guaranteed to simplify query processing"; and the referential-integrity
rewrite, though semantically valid, can exit the freely-reorderable class
(R1 → R2 → R3 becoming R1 → (R2 − R3)).
"""

from repro.algebra import Comparison, Const, bag_equal, eq
from repro.core import (
    Restrict,
    apply_referential_integrity,
    is_nice,
    oj,
    simplify_outerjoins,
    theorem1_applies,
)
from repro.datagen import chain, random_databases
from repro.engine import Storage
from repro.optimizer import CardinalityEstimator, CoutCostModel, DPOptimizer

P12 = eq("R1.a", "R2.a")
P23 = eq("R2.a", "R3.a")


def test_simplification_correct_and_profitable(benchmark, report):
    scenario = chain(3, ["out", "out"])
    reg = scenario.registry
    query = Restrict(
        oj(oj("R1", "R2", P12), "R3", P23), Comparison("R3.b", "=", Const(1))
    )
    dbs = random_databases(scenario.schemas, 20, seed=71, domain=3)

    def run():
        rep = simplify_outerjoins(query, reg)
        for db in dbs:
            assert bag_equal(query.eval(db), rep.query.eval(db))
        return rep

    rep = benchmark(run)
    assert rep.changed and len(rep.conversions) == 2
    report.add("conversions", "OJ ⇒ JN along the path", f"{len(rep.conversions)} operators")
    report.add("semantics", "unchanged", "20/20 databases bag-equal")
    report.dump("Section 4: simplification rule")


def test_simplification_unlocks_cheaper_plans(benchmark, report):
    """After OJ⇒JN conversion the optimizer plans over joins, whose
    outputs never exceed the outerjoin's (the OJ must keep every preserved
    tuple) — so the optimal cost can only drop.  On cyclic graphs the cut
    space itself also grows (mixed cuts become pure-join cuts)."""
    scenario = chain(3, ["out", "out"])
    dbs = random_databases(scenario.schemas, 1, seed=72, max_rows=8, allow_empty=False)
    storage = Storage.from_database(dbs[0])
    model = CoutCostModel(CardinalityEstimator(storage))

    before_graph = scenario.graph
    after_graph = apply_referential_integrity(
        apply_referential_integrity(before_graph, ("R1", "R2")), ("R2", "R3")
    )

    def optimize_both():
        before = DPOptimizer(before_graph, model).optimize()
        after = DPOptimizer(after_graph, model).optimize()
        return before, after

    before, after = benchmark(optimize_both)
    assert after.cost <= before.cost
    report.add("plan cost", "≤ before (joins shrink)", f"{before.cost:.1f} → {after.cost:.1f}")

    # The cut-space effect needs a cycle: convert one edge of a triangle.
    from repro.algebra import eq as _eq
    from repro.core import QueryGraph
    from repro.optimizer import combinable_pairs, connected_subsets

    with_oj = QueryGraph.from_edges(
        join=[("A", "B", _eq("A.a", "B.a")), ("B", "C", _eq("B.a", "C.a"))],
        oj=[("A", "C", _eq("A.b", "C.b"))],
    )
    all_join = apply_referential_integrity(with_oj, ("A", "C"))

    def cuts(graph):
        return sum(
            1
            for s in connected_subsets(graph)
            if len(s) > 1
            for _ in combinable_pairs(graph, s)
        )

    before_cuts, after_cuts = cuts(with_oj), cuts(all_join)
    assert after_cuts > before_cuts
    report.add("legal cuts (triangle)", "more after OJ⇒JN", f"{before_cuts} → {after_cuts}")
    report.dump("Section 4: simplification enlarges the plan space")


def test_referential_integrity_breaks_niceness(benchmark, report):
    """The cautionary tale: converting the *inner* edge only."""
    scenario = chain(3, ["out", "out"])

    def convert():
        return apply_referential_integrity(scenario.graph, ("R2", "R3"))

    revised = benchmark(convert)
    assert is_nice(scenario.graph)
    assert not is_nice(revised)
    verdict = theorem1_applies(revised, scenario.registry)
    assert not verdict.freely_reorderable
    report.add("R1→R2→R3", "freely reorderable", "nice")
    report.add("R1→(R2−R3) after RI rewrite", "NOT freely reorderable", "forbidden X→Y−Z")
    report.dump("Section 4: referential-integrity caution")
