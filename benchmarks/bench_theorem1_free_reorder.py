"""Experiment: Lemma 3 and Theorem 1 — free reorderability, end to end.

Paper claims:

* Lemma 3: on a nice graph, BT sequences connect any two ITs; we verify
  constructively (closure = full IT space).
* Theorem 1: nice + strong ⇒ every IT evaluates to the same result; we
  verify by exhaustive evaluation, and show both hypotheses are needed
  (non-nice graph: Example 2; non-strong predicate: Example 3 pattern).
"""

from repro.core import (
    brute_force_check,
    bt_closure,
    canonicalize,
    count_implementing_trees,
    implementing_trees,
    preserving_equivalence_class,
    theorem1_applies,
)
from repro.datagen import (
    chain,
    example2_graph,
    random_databases,
    random_nice_graph,
    weaken_oj_edge,
)


def test_lemma3_closure_equals_it_space(benchmark, report):
    def sweep():
        checked = []
        for seed in range(5):
            scenario = random_nice_graph(2, 2, seed=seed)
            reg = scenario.registry
            trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
            seed_tree = next(iter(sorted(trees, key=repr)))
            closure = bt_closure(seed_tree, reg)
            assert set(closure.trees) == trees
            checked.append(len(trees))
        return checked

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add("closure == IT space", "Lemma 3", f"5 graphs, IT counts {sizes}")
    report.dump("Lemma 3: BT connectivity")


def test_theorem1_preserving_bts_suffice(benchmark, report):
    """Theorem 1's engine: preserving BTs alone already span the space."""
    scenario = chain(4, ["join", "out", "out"])
    reg = scenario.registry
    trees = {canonicalize(t) for t in implementing_trees(scenario.graph)}
    seed_tree = next(iter(sorted(trees, key=repr)))

    preserved = benchmark.pedantic(
        lambda: preserving_equivalence_class(seed_tree, reg), rounds=1, iterations=1
    )
    assert preserved == trees
    report.add("preserving closure", "= IT space (nice+strong)", f"{len(preserved)} trees")
    report.dump("Theorem 1: preserving BTs suffice")


def test_theorem1_exhaustive_evaluation(benchmark, report, bench_seed):
    def sweep():
        results = []
        for seed in range(4):
            scenario = random_nice_graph(2, 2, seed=seed + 10)
            assert theorem1_applies(scenario.graph, scenario.registry).freely_reorderable
            dbs = random_databases(scenario.schemas, 5, seed=bench_seed + seed + 400)
            rep = brute_force_check(scenario.graph, dbs)
            assert rep.consistent
            results.append(rep.trees_checked)
        return results

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add("all ITs agree (nice+strong)", "Theorem 1", f"tree counts {counts}")
    report.dump("Theorem 1: exhaustive evaluation")


def test_theorem1_hypotheses_necessary(benchmark, report, bench_seed):
    def sweep():
        # Drop niceness: Example 2.
        e2 = example2_graph()
        dbs = random_databases(e2.schemas, 40, seed=bench_seed + 41)
        non_nice = brute_force_check(e2.graph, dbs)
        # Drop strongness: weakened chained OJ edge.
        weak = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))
        dbs2 = random_databases(weak.schemas, 60, seed=bench_seed + 42)
        non_strong = brute_force_check(weak.graph, dbs2)
        return non_nice.consistent, non_strong.consistent

    nice_ok, strong_ok = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert not nice_ok and not strong_ok
    report.add("without niceness", "reordering unsafe", "witness found")
    report.add("without strongness", "reordering unsafe", "witness found")
    report.dump("Theorem 1: both hypotheses necessary")


def test_it_space_sizes_for_reference(benchmark, report):
    """The sizes Theorem 1 quantifies over (also the optimizer's space)."""
    rows = []

    def count_all():
        rows.clear()
        for n in (3, 4, 5):
            for kinds, label in (
                (["join"] * (n - 1), "all-join"),
                (["out"] * (n - 1), "all-outerjoin"),
            ):
                rows.append((n, label, count_implementing_trees(chain(n, kinds).graph)))
        return rows

    counted = benchmark(count_all)
    for n, label, count in counted:
        report.add(f"chain n={n} {label}", "full IT space", str(count))
    report.dump("Theorem 1: IT space sizes")


def test_equivalence_class_structure(benchmark, report):
    """How non-reorderable IS a non-nice graph?  Partition the IT space
    into provably-equal classes: nice graphs give one class (Theorem 1);
    Example 2's graph fractures into exactly two four-tree classes — the
    two readings of the ambiguous graph, each internally reorderable."""
    from repro.core import equivalence_classes
    from repro.datagen import example2_graph, weaken_oj_edge

    nice = chain(3, ["join", "out"])
    ambiguous = example2_graph()
    weak = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))

    def partition_all():
        return (
            [len(c) for c in equivalence_classes(nice.graph, nice.registry)],
            [len(c) for c in equivalence_classes(ambiguous.graph, ambiguous.registry)],
            [len(c) for c in equivalence_classes(weak.graph, weak.registry)],
        )

    nice_sizes, ambiguous_sizes, weak_sizes = benchmark(partition_all)
    assert nice_sizes == [8]
    assert sorted(ambiguous_sizes) == [4, 4]
    assert len(weak_sizes) == 2
    report.add("nice chain", "1 class (Theorem 1)", str(nice_sizes))
    report.add("Example 2 graph", "2 readings", str(ambiguous_sizes))
    report.add("weak-predicate chain", "fractured", str(weak_sizes))
    report.dump("Theorem 1: equivalence-class structure of the IT space")
