"""Experiment: regenerating the paper's counterexamples mechanically.

Examples 2 and 3 exhibit hand-crafted one-tuple-per-relation databases.
This bench shows the library can *discover* equally small witnesses by
randomized search + greedy shrinking — evidence that the forbidden
patterns fail robustly, not just on adversarial data, and a tool for
studying new operator classes (Section 6.3's programme).
"""

from repro.core.witness import find_witness, minimal_witness
from repro.datagen import chain, example2_graph, weaken_oj_edge


def test_example2_witness_minimizes_to_paper_size(benchmark, report):
    scenario = example2_graph()

    def search_and_shrink():
        return minimal_witness(scenario.graph, scenario.registry, seed=4)

    witness = benchmark.pedantic(search_and_shrink, rounds=1, iterations=1)
    assert witness is not None and witness.still_disagrees()
    assert witness.total_tuples() <= 3
    report.add("minimal witness size", "3 tuples (Example 2)", f"{witness.total_tuples()} tuples")
    report.add("trees", "the two associations", f"{witness.first.to_infix()} vs {witness.second.to_infix()}")
    report.dump("Witness minimization: Example 2 regenerated")


def test_example3_style_witness(benchmark, report):
    scenario = weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3"))

    def search_and_shrink():
        return minimal_witness(scenario.graph, scenario.registry, seed=11)

    witness = benchmark.pedantic(search_and_shrink, rounds=1, iterations=1)
    assert witness is not None and witness.still_disagrees()
    assert witness.total_tuples() <= 4
    report.add(
        "minimal witness size", "~3 tuples (Example 3)", f"{witness.total_tuples()} tuples"
    )
    report.dump("Witness minimization: Example-3 pattern regenerated")


def test_search_cost_on_nice_graph(benchmark, report):
    """Negative control: on a nice graph the search exhausts its budget."""
    scenario = chain(3, ["join", "out"])

    def search():
        return find_witness(scenario.graph, scenario.registry, attempts=40, seed=2)

    witness = benchmark.pedantic(search, rounds=1, iterations=1)
    assert witness is None
    report.add("witness on nice graph", "none exists (Theorem 1)", "none found in 40 attempts")
    report.dump("Witness minimization: negative control")
