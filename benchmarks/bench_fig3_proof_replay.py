"""Experiment: Figure 3 — replay the algebraic proof of identity 12.

Paper content: Figure 3 derives ``(X → Y) → Z = X → (Y → Z)`` in seven
steps from equations 1, 2, 4, 5, 6, 7, 8, 9, 10.  We evaluate every line
of the derivation on randomized databases and assert that consecutive
lines are bag-equal — with the strong predicate — and that the chain
breaks exactly at the eqn-8/9 step when strongness is dropped.
"""

from repro.algebra import IsNull, Or, bag_equal, eq
from repro.core import TriSetting, identity12_proof_steps
from repro.datagen import random_databases

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
WEAK_PYZ = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))


def test_fig3_all_steps_equal(benchmark, report):
    dbs = random_databases(SCHEMAS, 15, seed=12)

    def replay():
        settings_checked = 0
        for db in dbs:
            setting = TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=PYZ)
            steps = identity12_proof_steps(setting)
            reference = steps[0][1]
            for label, relation in steps[1:]:
                assert bag_equal(reference, relation), label
            settings_checked += 1
        return settings_checked

    checked = benchmark(replay)
    assert checked == 15
    report.add("proof lines equal", "all 8 stages", f"8 stages x {checked} dbs")
    report.dump("Figure 3: proof replay")


def test_fig3_breaks_at_strongness_step_without_precondition(benchmark, report):
    dbs = random_databases(SCHEMAS, 60, seed=13)

    def find_break():
        for db in dbs:
            setting = TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=WEAK_PYZ)
            steps = identity12_proof_steps(setting)
            if not bag_equal(steps[2][1], steps[3][1]):
                # Everything before the eqn-8/9 step still agrees.
                assert bag_equal(steps[0][1], steps[1][1])
                assert bag_equal(steps[1][1], steps[2][1])
                return True
        return False

    assert benchmark(find_break)
    report.add("break point (weak P_yz)", "the eqn 8/9 step", "step 3→4 diverges")
    report.dump("Figure 3: strongness is load-bearing")
