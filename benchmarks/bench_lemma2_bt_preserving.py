"""Experiment: Lemma 2 — on nice+strong graphs every applicable BT preserves.

Paper claim (Lemma 2): "If G = graph(Q) is 'nice' and outerjoin predicates
are strong ... then all BTs applicable to Q are result preserving."  The
proof names the only two dangerous patterns: [X → Y − Z] and [X → Y ← Z].

Measured: on random nice graphs, 100% of applicable BTs are classified
preserving and verified by evaluation; on Example 2's non-nice graph a
strictly positive fraction is non-preserving, and those instances really
do change results on random data.
"""

from repro.algebra import bag_equal, eq
from repro.core import (
    applicable_transforms,
    apply_transform,
    classify_transform,
    jn,
    oj,
    sample_implementing_tree,
)
from repro.datagen import example2_graph, random_databases, random_nice_graph
from repro.util.rng import make_rng


def test_lemma2_nice_graphs_all_bts_preserve(benchmark, report):
    def sweep():
        total = 0
        for seed in range(8):
            scenario = random_nice_graph(2, 3, seed=seed)
            reg = scenario.registry
            dbs = random_databases(scenario.schemas, 4, seed=seed + 200)
            rng = make_rng(seed)
            q = sample_implementing_tree(scenario.graph, rng)
            for t in applicable_transforms(q, reg):
                verdict = classify_transform(q, t, reg)
                assert verdict.preserving, f"{q!r} {t}: {verdict.reason}"
                q2 = apply_transform(q, t, reg)
                for db in dbs:
                    assert bag_equal(q.eval(db), q2.eval(db))
                total += 1
        return total

    total = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add("BTs on nice graphs", "100% preserving", f"{total}/{total}")
    report.dump("Lemma 2: nice graphs")


def test_lemma2_forbidden_patterns_on_non_nice_graph(benchmark, report):
    scenario = example2_graph()
    reg = scenario.registry
    q = jn(oj("R1", "R2", eq("R1.a", "R2.a")), "R3", eq("R2.a", "R3.a"))
    dbs = random_databases(scenario.schemas, 40, seed=300)

    def sweep():
        preserving = non_preserving = confirmed_breaks = 0
        for t in applicable_transforms(q, reg):
            verdict = classify_transform(q, t, reg)
            q2 = apply_transform(q, t, reg)
            if verdict.preserving:
                preserving += 1
                for db in dbs:
                    assert bag_equal(q.eval(db), q2.eval(db))
            else:
                non_preserving += 1
                if any(not bag_equal(q.eval(db), q2.eval(db)) for db in dbs):
                    confirmed_breaks += 1
        return preserving, non_preserving, confirmed_breaks

    preserving, non_preserving, confirmed = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert non_preserving > 0
    assert confirmed == non_preserving
    report.add(
        "BTs on Example-2 tree",
        "[X→Y−Z] not preserving",
        f"{preserving} preserving, {non_preserving} not (all confirmed by data)",
    )
    report.dump("Lemma 2: the forbidden patterns really break")
