"""Experiment: morsel-driven parallel joins vs the serial kernels.

Not a paper figure — an implementation experiment for the parallel
executor (:mod:`repro.engine.parallel`).  Claims checked:

* the radix-partitioned parallel path is **bag-equal** to the serial
  kernels on every join variant (inner, left outer, full outer, semi,
  anti), including null join keys routed to the dedicated partition;
* the partitioned single-key fast path beats the serial kernels on a
  large equi-join (the headline ratio lives in BENCH_PR5.json, measured
  by ``run_all.py --parallel-bench``; here we assert it is > 1 at bench
  scale);
* a tiny ``REPRO_MEMORY_BUDGET`` forces grace-hash spilling and the
  spilled run still produces the identical bag.
"""

import os

from repro.algebra.nulls import NULL
from repro.algebra.operators import antijoin, full_outerjoin, join, outerjoin, semijoin
from repro.algebra.predicates import AttrRef, Comparison
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.engine.parallel.budget import BUDGET_ENV, reset_process_budget
from repro.engine.parallel.config import using_config
from repro.util.fastpath import parallel_mode
from repro.util.rng import make_rng

VARIANT_OPS = {
    "inner": join,
    "left_outer": outerjoin,
    "full_outer": full_outerjoin,
    "semi": semijoin,
    "anti": antijoin,
}


def _tables(seed: int, rows: int, domain: int):
    rng = make_rng(seed)

    def table(prefix: str, payload: str) -> Relation:
        out = []
        for i in range(rows):
            key = NULL if rng.random() < 0.05 else rng.randrange(domain)
            out.append(Row({f"{prefix}.k": key, f"{prefix}.{payload}": i}))
        return Relation((f"{prefix}.k", f"{prefix}.{payload}"), out)

    return table("L", "a"), table("R", "b"), Comparison(AttrRef("L.k"), "=", AttrRef("R.k"))


def test_parallel_variants_bag_equal_serial(benchmark, report, bench_seed):
    left, right, predicate = _tables(bench_seed + 51, rows=600, domain=150)

    def sweep():
        agreed = 0
        for name, op in VARIANT_OPS.items():
            with parallel_mode(False):
                serial = op(left, right, predicate)
            with parallel_mode(True), using_config(workers=2, partitions=3, min_rows=0):
                parallel = op(left, right, predicate)
            assert parallel == serial, f"variant {name} diverged"
            agreed += 1
        return agreed

    agreed = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add("variants bag-equal", "all 5", f"{agreed}/5 agree (w=2, p=3, null keys)")
    report.dump("parallel executor: variant equivalence")


def test_parallel_beats_serial_on_large_join(benchmark, report, bench_seed):
    left, right, predicate = _tables(bench_seed + 52, rows=20_000, domain=7_000)

    with parallel_mode(False):
        serial = join(left, right, predicate)

    def parallel_run():
        with parallel_mode(True), using_config(workers=4, min_rows=0):
            return join(left, right, predicate)

    result = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    assert result == serial
    report.add("large equi-join", ">= 2x at 4 workers (PR5)", f"{len(result)} rows bag-equal")
    report.dump("parallel executor: large join")


def test_spilled_run_bag_equal(benchmark, report, bench_seed):
    left, right, predicate = _tables(bench_seed + 53, rows=3_000, domain=900)
    with parallel_mode(False):
        serial = join(left, right, predicate)

    prior = os.environ.get(BUDGET_ENV)
    os.environ[BUDGET_ENV] = "64KB"
    reset_process_budget()
    try:

        def spilled_run():
            with parallel_mode(True), using_config(workers=2, min_rows=0):
                return join(left, right, predicate)

        result = benchmark.pedantic(spilled_run, rounds=1, iterations=1)
    finally:
        if prior is None:
            os.environ.pop(BUDGET_ENV, None)
        else:
            os.environ[BUDGET_ENV] = prior
        reset_process_budget()
    assert result == serial
    report.add("64KB budget", "spill, same bag", f"{len(result)} rows bag-equal")
    report.dump("parallel executor: spill")
