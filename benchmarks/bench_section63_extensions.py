"""Experiment: Section 6.3's two forward-looking conjectures, resolved.

1. **Tree-level conditions.**  "We conjecture that there are also simple
   conditions on the expression trees.  For example, the null-supplied
   input of an operand should not be created by a regular join, nor
   involved later as an operand of a regular join."  Formalized as:
   T1 — a padded relation is never referenced by a join predicate;
   T2 — no relation is padded twice.  Measured: over the IT spaces of
   randomized graphs, (T1 ∧ T2) agrees with graph-niceness on every tree;
   the conjecture holds, with the tree test usable by an optimizer that
   never materializes the graph.

2. **Join/semijoin queries.**  "Semijoin edges in series appear to be an
   additional forbidden subgraph."  Measured: series semijoins collapse
   the valid-tree space to a single right-deep order (zero reordering
   freedom — the transform-level face of 'forbidden'), while parallel
   semijoins and join/semijoin mixes keep multiple valid trees that all
   agree on randomized databases.
"""

from repro.algebra import SchemaRegistry, eq
from repro.core import count_implementing_trees, is_nice, sample_implementing_tree
from repro.core.semijoin_theory import (
    JoinSemijoinGraph,
    check_semijoin_graph,
    semijoin_implementing_trees,
)
from repro.core.tree_conditions import satisfies_tree_conditions
from repro.datagen import random_databases, random_graph
from repro.util.rng import make_rng

SJ_SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
PXZ = eq("X.b", "Z.a")


def test_tree_conditions_match_niceness(benchmark, report):
    def sweep():
        graphs = trees = 0
        for seed in range(40):
            scenario = random_graph(5, seed=seed, oj_probability=0.5, extra_edges=1)
            if count_implementing_trees(scenario.graph) == 0:
                continue
            nice = is_nice(scenario.graph)
            rng = make_rng(seed + 1)
            for _ in range(5):
                tree = sample_implementing_tree(scenario.graph, rng)
                assert satisfies_tree_conditions(tree, scenario.registry) == nice
                trees += 1
            graphs += 1
        return graphs, trees

    graphs, trees = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.add("tree test == graph test", "conjectured", f"{trees} trees over {graphs} graphs")
    report.dump("Section 6.3: tree-level conditions confirmed")


def test_semijoin_series_forbidden(benchmark, report):
    reg = SchemaRegistry(SJ_SCHEMAS)
    series = JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("Y", "Z", PYZ)])
    parallel = JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("X", "Z", PXZ)])
    mixed = JoinSemijoinGraph.from_edges(join=[("X", "Y", PXY)], sj=[("Y", "Z", PYZ)])

    def count_trees():
        return (
            len(list(semijoin_implementing_trees(series, reg))),
            len(list(semijoin_implementing_trees(parallel, reg))),
            len(list(semijoin_implementing_trees(mixed, reg))),
        )

    s, p, m = benchmark(count_trees)
    assert s == 1  # series: no freedom at all
    assert p >= 2 and m >= 2
    report.add("semijoins in series", "forbidden (no reordering)", f"{s} valid tree")
    report.add("semijoins in parallel", "reorderable", f"{p} valid trees")
    report.add("join + semijoin mix", "reorderable", f"{m} valid trees")
    report.dump("Section 6.3: the semijoin-in-series pattern")


def test_semijoin_valid_trees_agree(benchmark, report):
    reg = SchemaRegistry(SJ_SCHEMAS)
    parallel = JoinSemijoinGraph.from_edges(sj=[("X", "Y", PXY), ("X", "Z", PXZ)])
    mixed = JoinSemijoinGraph.from_edges(join=[("X", "Y", PXY)], sj=[("Y", "Z", PYZ)])
    dbs = random_databases(SJ_SCHEMAS, 20, seed=44)

    def check_both():
        a = check_semijoin_graph(parallel, reg, dbs)
        b = check_semijoin_graph(mixed, reg, dbs)
        return a, b

    a, b = benchmark(check_both)
    assert a.consistent and b.consistent
    report.add("parallel agreement", "all trees equal", f"{a.tree_count} trees x 20 dbs")
    report.add("mixed agreement", "all trees equal", f"{b.tree_count} trees x 20 dbs")
    report.dump("Section 6.3: semijoin reorderability where it exists")
