"""Experiment: the motivation workload at realistic shape.

The introduction motivates outerjoins with report queries that must not
lose rows ("we often want to see all departments, even those without
employees").  This bench runs that scenario at a believable scale and
fan-out: the customer/orders report with *optional* shipments and
profiles,

    PROFILE ← CUSTOMER − ORDERS → SHIPMENT

and measures (a) that the graph is certified freely reorderable, (b) the
retrieval gap between the DP's plan and the written/barrier orders, and
(c) that every strategy returns the identical report.
"""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import graph_of, jn, oj, roj, theorem1_applies
from repro.datagen import sales_storage
from repro.engine import execute
from repro.optimizer import (
    CardinalityEstimator,
    DPOptimizer,
    OuterjoinBarrierOptimizer,
    RetrievalCostModel,
    fixed_order_plan,
)

P_CO = eq("CUSTOMER.ck", "ORDERS.ck")
P_OS = eq("ORDERS.ok", "SHIPMENT.ok")
P_CP = eq("CUSTOMER.ck", "PROFILE.ck")


def written_report():
    """As a user would write it: decorate first, join last.

    PROFILE ← (CUSTOMER) joined against (ORDERS → SHIPMENT).
    """
    return roj(
        "PROFILE", jn("CUSTOMER", oj("ORDERS", "SHIPMENT", P_OS), P_CO), P_CP
    )


def test_sales_graph_certified(benchmark, report):
    storage = sales_storage(seed=1)
    query = written_report()

    def certify():
        graph = graph_of(query, storage.registry)
        return graph, theorem1_applies(graph, storage.registry)

    graph, verdict = benchmark(certify)
    assert verdict.freely_reorderable
    report.add("graph", "PROFILE ← CUSTOMER − ORDERS → SHIPMENT", "nice + strong")
    report.dump("Sales workload: certification")


@pytest.mark.parametrize("n_customers", [200, 800])
def test_sales_optimizer_comparison(benchmark, report, n_customers):
    storage = sales_storage(n_customers=n_customers, seed=2)
    query = written_report()
    graph = graph_of(query, storage.registry)
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)

    def optimize_and_measure():
        dp = DPOptimizer(graph, model).optimize()
        barrier = OuterjoinBarrierOptimizer(storage.registry, model).optimize(query)
        fixed = fixed_order_plan(query, model)
        runs = {
            "dp": execute(dp.expr, storage),
            "barrier": execute(barrier.expr, storage),
            "fixed": execute(fixed.expr, storage),
        }
        return runs

    runs = benchmark.pedantic(optimize_and_measure, rounds=1, iterations=1)
    reference = runs["dp"].relation
    for name, run in runs.items():
        assert bag_equal(reference, run.relation), name
    assert runs["dp"].tuples_retrieved <= runs["barrier"].tuples_retrieved
    assert runs["dp"].tuples_retrieved <= runs["fixed"].tuples_retrieved
    counts = {k: v.tuples_retrieved for k, v in runs.items()}
    report.add(
        f"retrievals ({n_customers} customers)",
        "dp ≤ barrier/fixed, same report",
        ", ".join(f"{k}={v}" for k, v in counts.items()),
    )
    report.dump("Sales workload: optimizer comparison")


def test_sales_report_keeps_optional_rows(benchmark, report):
    """The semantic point: unshipped orders and profile-less customers
    stay in the report, null-padded."""
    from repro.algebra import NULL

    storage = sales_storage(seed=3)
    query = written_report()

    result = benchmark(lambda: execute(query, storage))
    rows = list(result.relation)
    unshipped = sum(1 for r in rows if r["SHIPMENT.carrier"] is NULL)
    unprofiled = sum(1 for r in rows if r["PROFILE.segment"] is NULL)
    assert unshipped > 0 and unprofiled > 0
    total_orders = len(storage["ORDERS"])
    assert len(rows) == total_orders  # nothing lost, nothing duplicated
    report.add("rows in report", "= |ORDERS| (no loss)", f"{len(rows)} == {total_orders}")
    report.add("null-padded shipments", "> 0", str(unshipped))
    report.add("null-padded profiles", "> 0", str(unprofiled))
    report.dump("Sales workload: outerjoin semantics")
