"""Experiment: identities 1-10 (Section 2.2) over randomized databases.

Paper claim: the associativity identities (1-3), distributivity identities
(4-7), strong-predicate identities (8, 9), and the outerjoin expansion
(10) hold for all ground-relation values; 8 and 9 require P_yz strong
w.r.t. Y.
"""

import pytest

from repro.algebra import IsNull, Or, eq
from repro.core import IDENTITIES, TriSetting
from repro.datagen import random_databases

SCHEMAS = {"X": ["X.a", "X.b"], "Y": ["Y.a", "Y.b"], "Z": ["Z.a", "Z.b"]}
PXY = eq("X.a", "Y.a")
PYZ = eq("Y.b", "Z.b")
PXZ = eq("X.b", "Z.a")
WEAK_PYZ = Or((eq("Y.b", "Z.b"), IsNull("Y.b")))


def _sweep(number, dbs, pyz=PYZ, pxz=None):
    identity = IDENTITIES[number]
    failures = 0
    for db in dbs:
        setting = TriSetting(x=db["X"], y=db["Y"], z=db["Z"], pxy=PXY, pyz=pyz, pxz=pxz)
        ok, _ = identity.check(setting)
        if not ok:
            failures += 1
    return failures


@pytest.mark.parametrize("number", ["1", "2", "3", "4", "5", "6", "7", "8", "9", "10"])
def test_identity_sweep(benchmark, report, number):
    dbs = random_databases(SCHEMAS, 40, seed=int(number) * 13 + 1)
    failures = benchmark(lambda: _sweep(number, dbs))
    assert failures == 0
    report.add(f"identity {number}", "holds for all values", f"0/40 failures")
    report.dump(f"Identity {number}: {IDENTITIES[number].title}")


def test_identity1_with_cycle_conjunct(benchmark, report):
    """Identity 1's P_xz variant: the conjunct migrates between joins."""
    dbs = random_databases(SCHEMAS, 40, seed=777)
    failures = benchmark(lambda: _sweep("1", dbs, pxz=PXZ))
    assert failures == 0
    report.add("identity 1 + P_xz", "holds (conjunct moves)", "0/40 failures")
    report.dump("Identity 1 with cycle conjunct")


@pytest.mark.parametrize("number", ["8", "9"])
def test_strongness_necessity(benchmark, report, number):
    """Dropping the strongness precondition must produce counterexamples."""
    dbs = random_databases(SCHEMAS, 60, seed=int(number) * 29)
    failures = benchmark(lambda: _sweep(number, dbs, pyz=WEAK_PYZ))
    assert failures > 0
    report.add(
        f"identity {number} without strongness", "fails (precondition needed)",
        f"{failures}/60 failures",
    )
    report.dump(f"Identity {number}: necessity of strongness")
