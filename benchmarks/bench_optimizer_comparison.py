"""Experiment: Section 6.1 — a reordering-aware optimizer vs baselines.

Paper claim: "For designers of query optimizers, freely-reorderable
queries are much simpler than the general case ... now it must fill in
Join or else Outerjoin (preserving the operator direction).  There is no
need to insert additional operators, or perform a subtle analysis."

Measured: across chain and star topologies with skewed cardinalities, the
graph-DP (which crosses outerjoins freely, licensed by Theorem 1) beats
the outerjoin-barrier baseline (a conventional optimizer) and the
fixed-order baseline; greedy comes close at much lower planning cost.
All plans are executed and verified equal.
"""

import pytest

from repro.algebra import bag_equal, eq
from repro.core import graph_of, jn, oj
from repro.datagen import example1_storage
from repro.engine import Storage, execute
from repro.optimizer import (
    CardinalityEstimator,
    CoutCostModel,
    DPOptimizer,
    GreedyOptimizer,
    OuterjoinBarrierOptimizer,
    RetrievalCostModel,
    fixed_order_plan,
)


def _chain_storage(cards, indexed=True):
    """R1 - R2 → R3 with controllable cardinalities."""
    storage = Storage()
    storage.create_table("R1", ["R1.k"], [{"R1.k": i} for i in range(cards[0])])
    storage.create_table(
        "R2", ["R2.k", "R2.j"], [{"R2.k": i, "R2.j": i} for i in range(cards[1])]
    )
    storage.create_table("R3", ["R3.j"], [{"R3.j": i} for i in range(cards[2])])
    if indexed:
        for t, a in (("R2", "R2.k"), ("R3", "R3.j")):
            storage[t].create_index(a)
    return storage


WRITTEN = lambda: jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))


@pytest.mark.parametrize("cards", [(1, 500, 500), (5, 1000, 1000)])
def test_dp_vs_baselines_measured(benchmark, report, cards):
    storage = _chain_storage(cards)
    written = WRITTEN()
    graph = graph_of(written, storage.registry)
    model = RetrievalCostModel(CardinalityEstimator(storage), storage)

    def optimize_all():
        dp = DPOptimizer(graph, model).optimize()
        greedy = GreedyOptimizer(graph, model).optimize()
        barrier = OuterjoinBarrierOptimizer(storage.registry, model).optimize(written)
        fixed = fixed_order_plan(written, model)
        return dp, greedy, barrier, fixed

    dp, greedy, barrier, fixed = benchmark(optimize_all)
    measured = {}
    reference = None
    for name, plan in (("dp", dp), ("greedy", greedy), ("barrier", barrier), ("fixed", fixed)):
        run = execute(plan.expr, storage)
        measured[name] = run.tuples_retrieved
        if reference is None:
            reference = run.relation
        else:
            assert bag_equal(reference, run.relation)
    assert measured["dp"] <= measured["greedy"]
    assert measured["dp"] < measured["barrier"]
    assert measured["dp"] < measured["fixed"]
    n = cards[1]
    report.add(
        f"retrievals (|R2|={n})",
        "DP << barrier/fixed (~2N+1 vs small)",
        ", ".join(f"{k}={v}" for k, v in measured.items()),
    )
    report.dump("Section 6.1: optimizer comparison (measured retrievals)")


def test_planning_cost_dp_vs_greedy(benchmark, report, bench_seed):
    """Greedy's selling point: far fewer cost evaluations on wide graphs."""
    from repro.datagen import star, random_databases

    scenario = star(6, oj_leaves=3)
    dbs = random_databases(
        scenario.schemas, 1, seed=bench_seed + 5, max_rows=9, allow_empty=False
    )
    storage = Storage.from_database(dbs[0])
    model = CoutCostModel(CardinalityEstimator(storage))

    def both():
        dp = DPOptimizer(scenario.graph, model).optimize()
        greedy = GreedyOptimizer(scenario.graph, model).optimize()
        return dp, greedy

    dp, greedy = benchmark(both)
    assert greedy.cost >= dp.cost - 1e-9
    gap = (greedy.cost - dp.cost) / max(dp.cost, 1e-9)
    report.add("greedy optimality gap", "small but nonnegative", f"{gap * 100:.1f}%")
    report.dump("Section 6.1: greedy vs exact DP")


def test_barrier_penalty_grows_with_scale(benchmark, report):
    """The Example-1 effect as a sweep: the conventional-optimizer penalty
    is linear in N while the DP plan stays at 3 retrievals."""
    rows = []

    def sweep():
        rows.clear()
        for n in (100, 400, 1600):
            storage = example1_storage(n)
            written = WRITTEN()
            graph = graph_of(written, storage.registry)
            model = RetrievalCostModel(CardinalityEstimator(storage), storage)
            dp = DPOptimizer(graph, model).optimize()
            barrier = OuterjoinBarrierOptimizer(storage.registry, model).optimize(written)
            dp_run = execute(dp.expr, storage).tuples_retrieved
            barrier_run = execute(barrier.expr, storage).tuples_retrieved
            rows.append((n, dp_run, barrier_run))
        return rows

    swept = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, dp_run, barrier_run in swept:
        assert dp_run == 3 and barrier_run == 2 * n + 1
        report.add(f"N={n}", "3 vs 2N+1", f"dp={dp_run}, barrier={barrier_run}")
    report.dump("Section 6.1: barrier penalty sweep")
