"""Experiment: Example 3 — non-strong predicates break identity 12.

Paper claim: with A = {(a)}, B = {(b, −)}, C = {(c)}, P_ab = (A.attr1 =
B.attr1) and P_bc = (B.attr2 = C.attr1 OR B.attr2 IS NULL), the two
associations of A → B → C differ — "Identity 12 does not extend to
arbitrary predicates."
"""

from repro.algebra import NULL, IsNull, Or, Relation, bag_equal, eq
from repro.core import IDENTITIES, TriSetting
from repro.datagen import random_databases

PAB = eq("A.attr1", "B.attr1")
PBC = Or((eq("B.attr2", "C.attr1"), IsNull("B.attr2")))


def paper_setting() -> TriSetting:
    a = Relation.from_dicts(["A.attr1"], [{"A.attr1": "a"}])
    b = Relation.from_dicts(["B.attr1", "B.attr2"], [{"B.attr1": "b", "B.attr2": NULL}])
    c = Relation.from_dicts(["C.attr1"], [{"C.attr1": "c"}])
    return TriSetting(x=a, y=b, z=c, pxy=PAB, pyz=PBC)


def test_example3_literal(benchmark, report):
    setting = paper_setting()
    identity = IDENTITIES["12"]

    lhs, rhs = benchmark(lambda: (identity.lhs(setting), identity.rhs(setting)))
    assert not identity.precondition(setting)  # P_bc is not strong w.r.t. B
    assert not bag_equal(lhs, rhs)
    # (A→B)→C: A→B pads B (a≠b), the IS NULL disjunct matches C.
    lhs_row = next(iter(lhs))
    assert lhs_row["B.attr1"] is NULL and lhs_row["C.attr1"] == "c"
    # A→(B→C): P_ab fails, so everything right of A is padded.
    rhs_row = next(iter(rhs))
    assert rhs_row["C.attr1"] is NULL
    report.add("P_bc strong wrt B", "no", "no (abstract evaluation)")
    report.add("(A→B)→C", "{(a,-,-,c)}", repr(dict(lhs_row)))
    report.add("A→(B→C)", "{(a,-,-,-)}", repr(dict(rhs_row)))
    report.dump("Example 3: literal counterexample")


def test_example3_failure_rate_on_random_data(benchmark, report):
    """With the weak predicate, how often does identity 12 break?"""
    schemas = {"A": ["A.attr1"], "B": ["B.attr1", "B.attr2"], "C": ["C.attr1"]}
    dbs = random_databases(schemas, 80, seed=17, domain=3)
    identity = IDENTITIES["12"]

    def count_failures():
        failures = 0
        for db in dbs:
            setting = TriSetting(x=db["A"], y=db["B"], z=db["C"], pxy=PAB, pyz=PBC)
            ok, _diff = identity.check(setting)
            if not ok:
                failures += 1
        return failures

    failures = benchmark(count_failures)
    assert failures > 0
    report.add("identity-12 failures (weak P_bc)", "> 0", f"{failures}/80 databases")
    report.dump("Example 3: randomized failure rate")


def test_strong_predicate_restores_identity(benchmark, report):
    """Control: the same sweep with a strong P_bc never fails."""
    schemas = {"A": ["A.attr1"], "B": ["B.attr1", "B.attr2"], "C": ["C.attr1"]}
    dbs = random_databases(schemas, 80, seed=18, domain=3)
    strong_pbc = eq("B.attr2", "C.attr1")
    identity = IDENTITIES["12"]

    def count_failures():
        failures = 0
        for db in dbs:
            setting = TriSetting(x=db["A"], y=db["B"], z=db["C"], pxy=PAB, pyz=strong_pbc)
            ok, _diff = identity.check(setting)
            if not ok:
                failures += 1
        return failures

    failures = benchmark(count_failures)
    assert failures == 0
    report.add("identity-12 failures (strong P_bc)", "0", f"{failures}/80 databases")
    report.dump("Example 3: strong-predicate control")
