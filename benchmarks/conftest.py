"""Shared helpers for the benchmark/experiment suite.

Every benchmark regenerates one of the paper's examples, figures, or
identity families; the asserts inside each benchmark ARE the reproduction
check (who wins, by what factor, where it breaks), while pytest-benchmark
provides the timing table.  ``report()`` collects the paper-vs-measured
rows; run with ``-s`` to see them inline, or read EXPERIMENTS.md for the
recorded values.

Two hooks exist for the persistent runner (``benchmarks/run_all.py``):

* ``--bench-seed N`` offsets the random-database seeds of the scenarios
  that opt in (via the ``bench_seed`` fixture), so the same workload can
  be replayed on fresh data.  The default 0 reproduces the recorded
  numbers exactly.
* when ``REPRO_BENCH_STATS_FILE`` is set, the session dumps the global
  work counters (:mod:`repro.tools.instrumentation`) there as JSON —
  tuples retrieved, plans optimized, DP subsets, trees enumerated.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.optimizer.plancache import reset_default_plan_cache
from repro.tools import instrumentation


@pytest.fixture(autouse=True)
def _reset_plan_cache():
    """Keep the process-wide plan cache from leaking across scenarios.

    Timed closures that want to measure the *uncached* pipeline pass
    ``use_cache=False`` explicitly; this fixture only guarantees one
    scenario's cached plans never warm another's measurements.
    """
    reset_default_plan_cache()
    yield
    reset_default_plan_cache()


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        action="store",
        type=int,
        default=0,
        help="offset added to the data-generation seeds of seed-aware benchmarks",
    )


@pytest.fixture
def bench_seed(request) -> int:
    return request.config.getoption("--bench-seed")


def pytest_sessionfinish(session, exitstatus):
    stats_file = os.environ.get("REPRO_BENCH_STATS_FILE")
    if stats_file:
        with open(stats_file, "w") as handle:
            json.dump(instrumentation.snapshot(), handle, indent=2, sort_keys=True)


class ExperimentReport:
    """Accumulates 'paper says / we measured' rows for one experiment."""

    def __init__(self):
        self.rows: list[tuple[str, str, str]] = []

    def add(self, metric: str, paper: str, measured: str) -> None:
        self.rows.append((metric, paper, measured))

    def dump(self, title: str) -> None:
        width = max((len(m) for m, _p, _me in self.rows), default=10)
        print(f"\n=== {title} ===")
        for metric, paper, measured in self.rows:
            print(f"  {metric.ljust(width)}  paper: {paper:<22} measured: {measured}")


@pytest.fixture
def report():
    return ExperimentReport()
