"""Shared helpers for the benchmark/experiment suite.

Every benchmark regenerates one of the paper's examples, figures, or
identity families; the asserts inside each benchmark ARE the reproduction
check (who wins, by what factor, where it breaks), while pytest-benchmark
provides the timing table.  ``report()`` collects the paper-vs-measured
rows; run with ``-s`` to see them inline, or read EXPERIMENTS.md for the
recorded values.
"""

from __future__ import annotations

import pytest


class ExperimentReport:
    """Accumulates 'paper says / we measured' rows for one experiment."""

    def __init__(self):
        self.rows: list[tuple[str, str, str]] = []

    def add(self, metric: str, paper: str, measured: str) -> None:
        self.rows.append((metric, paper, measured))

    def dump(self, title: str) -> None:
        width = max((len(m) for m, _p, _me in self.rows), default=10)
        print(f"\n=== {title} ===")
        for metric, paper, measured in self.rows:
            print(f"  {metric.ljust(width)}  paper: {paper:<22} measured: {measured}")


@pytest.fixture
def report():
    return ExperimentReport()
