"""Experiment: Section 5 — the UnNest/Link language compiles to freely-
reorderable query blocks.

Paper claims: every query block built from SQL + ``*`` + ``->`` satisfies
the preconditions of Theorem 1 (no two arrows into a node, no cycles,
strong access predicates), so "each query block is freely reorderable".
We compile the paper's three example queries plus randomized blocks, and
for each: assert the Theorem-1 certificate, evaluate *every* implementing
tree, and assert they all agree.
"""

from repro.algebra import bag_equal
from repro.core import brute_force_check, count_implementing_trees
from repro.datagen import section5_store
from repro.language import compile_query

QUERETARO = (
    "Select All From EMPLOYEE*ChildName, DEPARTMENT "
    "Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Queretaro'"
)
ZURICH = (
    "Select All From DEPARTMENT-->Manager-->Audit "
    "Where DEPARTMENT.Location = 'Zurich'"
)
PROSECUTOR = (
    "Select All From EMPLOYEE*ChildName, DEPARTMENT-->Manager-->Audit "
    "Where EMPLOYEE.D# = DEPARTMENT.D# and DEPARTMENT.Location = 'Zurich' and "
    "EMPLOYEE.Rank > 10"
)


def test_paper_queries_certified(benchmark, report):
    store = section5_store(n_departments=5, employees_per_department=3, seed=91)

    def compile_all():
        return [compile_query(text, store) for text in (QUERETARO, ZURICH, PROSECUTOR)]

    compiled = benchmark(compile_all)
    for cq in compiled:
        assert cq.verdict.freely_reorderable
    report.add("Queretaro block", "freely reorderable", "certified")
    report.add("Zurich block", "freely reorderable", "certified")
    report.add("prosecutor block", "freely reorderable", "certified")
    report.dump("Section 5: paper queries certified")


def test_every_it_of_each_block_agrees(benchmark, report):
    store = section5_store(n_departments=4, employees_per_department=2, seed=92)

    def check_all():
        rows = []
        for text in (QUERETARO, ZURICH, PROSECUTOR):
            cq = compile_query(text, store)
            reference = cq.initial_tree.eval(cq.database)
            report_bf = brute_force_check(
                cq.graph, [cq.database], max_trees=300
            )
            assert report_bf.consistent
            rows.append((report_bf.trees_checked, len(reference)))
        return rows

    rows = benchmark.pedantic(check_all, rounds=1, iterations=1)
    for (trees, cardinality), name in zip(rows, ("Queretaro", "Zurich", "prosecutor")):
        report.add(f"{name}: trees x rows", "all ITs equal", f"{trees} trees, {cardinality} rows")
    report.dump("Section 5: exhaustive block evaluation")


def test_optimizer_on_language_blocks(benchmark, report):
    """Section 6.1's programme on a Section-5 block: optimize with the
    generic DP, no outerjoin analysis, and get the same answer."""
    store = section5_store(n_departments=6, employees_per_department=4, seed=93)
    cq = compile_query(PROSECUTOR, store)

    def optimize_and_run():
        tree = cq.optimized_tree()
        return tree, cq.run(tree)

    tree, optimized_result = benchmark(optimize_and_run)
    assert bag_equal(optimized_result, cq.run())
    report.add("IT space", "optimizer's playground", str(count_implementing_trees(cq.graph)))
    report.add("optimized plan", "any IT is correct", tree.to_infix())
    report.dump("Section 5 + 6.1: block optimization")


def test_unnest_padding_semantics(benchmark, report):
    """UnNest: n tuples for n children, one padded tuple for none."""
    store = section5_store(n_departments=4, employees_per_department=4, seed=94)

    def run():
        cq = compile_query("Select All From EMPLOYEE*ChildName", store)
        return list(cq.run())

    rows = benchmark(run)
    expected = sum(
        max(1, len(e["ChildName"])) for e in store.instances("EMPLOYEE")
    )
    assert len(rows) == expected
    report.add("UnNest row count", "Σ max(1, |children|)", f"{len(rows)} == {expected}")
    report.dump("Section 5: UnNest semantics")
