"""Tuples (rows), concatenation, padding, and projection.

Implements the tuple-level definitions of Section 1.2:

* a *tuple on scheme S* assigns a value to every attribute of ``S``;
* a *null tuple* assigns the null value to every attribute;
* tuples on disjoint schemes can be *concatenated*;
* a tuple on ``S`` can be *padded* to a superscheme ``S'`` by concatenating
  it with ``null_{S'-S}``.

The class is named :class:`Row` to avoid clashing with ``typing.Tuple``.
Rows are immutable and hashable so relations can be bags (multisets) keyed
by row.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Any, Dict, FrozenSet

from repro.algebra.nulls import NULL, is_null
from repro.algebra.schema import Schema
from repro.util.errors import SchemaError


class Row(Mapping[str, Any]):
    """An immutable tuple: an assignment of values to attribute names."""

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any] | Iterable[tuple[str, Any]]):
        d: Dict[str, Any] = dict(values)
        for attr in d:
            if not isinstance(attr, str) or not attr:
                raise SchemaError(f"attribute names must be non-empty strings, got {attr!r}")
        object.__setattr__(self, "_values", d)
        object.__setattr__(self, "_hash", hash(frozenset(d.items())))

    # -- Mapping interface ---------------------------------------------------

    def __getitem__(self, attribute: str) -> Any:
        return self._values[attribute]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        return NotImplemented

    def __reduce__(self):
        # Rebuild through __init__ so the cached hash is recomputed on
        # unpickling.  The default slotted-class pickling would carry
        # ``_hash`` across verbatim, which is wrong across processes:
        # string hashing is salted per process (PYTHONHASHSEED), so a
        # child's cached hash would break dict lookups in the parent —
        # the shard wire format depends on this round-trip.
        return (Row, (self._values,))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}={self._values[a]!r}" for a in sorted(self._values))
        return f"Row({inner})"

    # -- scheme --------------------------------------------------------------

    @property
    def scheme(self) -> FrozenSet[str]:
        """The scheme of this tuple (``sch(t)`` in the paper)."""
        return frozenset(self._values)

    def schema(self) -> Schema:
        return Schema(self._values)

    # -- Section 1.2 operations ------------------------------------------------

    def concat(self, other: "Row") -> "Row":
        """Concatenate with a tuple on a disjoint scheme (``(t1, t2)``)."""
        overlap = self.scheme & other.scheme
        if overlap:
            raise SchemaError(f"cannot concatenate tuples sharing attributes {sorted(overlap)}")
        merged = dict(self._values)
        merged.update(other._values)
        return Row(merged)

    def pad_to(self, scheme: Schema | Iterable[str]) -> "Row":
        """Pad to a superscheme by concatenating with the null tuple.

        Section 1.2: "If t is a tuple on scheme S, we may obtain a tuple t'
        on scheme S' ⊇ S by padding, i.e. concatenating t with null_{S'-S}".
        """
        target = scheme.attributes if isinstance(scheme, Schema) else frozenset(scheme)
        missing = target - self.scheme
        extra = self.scheme - target
        if extra:
            raise SchemaError(
                f"cannot pad to a scheme missing existing attributes {sorted(extra)}"
            )
        if not missing:
            return self
        merged = dict(self._values)
        for attr in missing:
            merged[attr] = NULL
        return Row(merged)

    def project(self, attributes: Iterable[str]) -> "Row":
        """Restrict the assignment to the given attributes."""
        attrs = list(attributes)
        missing = [a for a in attrs if a not in self._values]
        if missing:
            raise SchemaError(f"cannot project on absent attributes {sorted(missing)}")
        return Row({a: self._values[a] for a in attrs})

    def is_all_null(self, attributes: Iterable[str] | None = None) -> bool:
        """True iff every listed attribute (default: all) holds null."""
        attrs = self.scheme if attributes is None else attributes
        return all(is_null(self._values[a]) for a in attrs)

    def with_value(self, attribute: str, value: Any) -> "Row":
        """A copy with one attribute re-assigned (used by generators)."""
        if attribute not in self._values:
            raise SchemaError(f"attribute {attribute!r} not in scheme")
        merged = dict(self._values)
        merged[attribute] = value
        return Row(merged)


def null_row(scheme: Schema | Iterable[str]) -> Row:
    """The null tuple ``null_S`` on the given scheme (Section 1.2)."""
    attrs = scheme.attributes if isinstance(scheme, Schema) else frozenset(scheme)
    return Row({a: NULL for a in attrs})


def concat_rows(first: Row, second: Row) -> Row:
    """Function form of :meth:`Row.concat` (reads like the paper's (t1,t2))."""
    return first.concat(second)
