"""Hash-partitioned fast kernels for the join-like algebra operators.

The naive operators in :mod:`repro.algebra.operators` transcribe the
paper's definitions tuple-at-a-time: every left row scans the full right
relation.  That is the right shape for a semantic oracle and the wrong
shape for the randomized-database property tests and benchmarks built on
top of it.  These kernels keep the oracle's semantics bit-for-bit while
replacing the quadratic scan with a build/probe hash join:

* the join predicate is decomposed into *equality key pairs* — conjuncts
  ``a = b`` with ``a`` an attribute of the left scheme and ``b`` one of
  the right scheme — plus a *residual* of all remaining conjuncts;
* the right relation is partitioned once into a hash table keyed by its
  key values.  Rows with a null in any key column go to a separate
  never-matching pool (SQL 3VL: ``NULL = x`` is unknown, and unknown does
  not satisfy), so they fall through to padding / anti output exactly as
  in the nested loop;
* each left row with non-null keys probes its bucket and evaluates only
  the residual conjuncts; a left row with a null key matches nothing.

A predicate with no usable equality conjunct (pure non-equi, or
``TRUE``) yields no key pairs and the caller falls back to the nested
loop.  So do *micro inputs* (distinct-row product below
``_SMALL_INPUT_LIMIT``): building key tuples and hash buckets costs more
than a handful of nested-loop probes, and the brute-force enumeration
workloads evaluate thousands of operators over 2–4 row relations.
Decompositions are memoized per (predicate, schemes) because the same
operator predicate is applied to thousands of randomized databases in a
property-test run.

Correctness argument: a pair ``(t1, t2)`` satisfies the full conjunction
iff every conjunct evaluates to True; the key conjuncts evaluate to True
iff both sides are non-null and equal — precisely hash-bucket equality —
and the residual conjuncts are evaluated verbatim.  The property tests
in ``tests/test_kernel_equivalence.py`` check bag equality against the
naive operators over randomized null-bearing databases.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.algebra.nulls import is_null
from repro.algebra.predicates import AttrRef, Comparison, PairView, Predicate
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row, null_row

#: Decomposition of a join predicate against a (left, right) scheme pair:
#: parallel key-attribute tuples plus the residual conjuncts.
Decomposition = Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[Predicate, ...]]

_DECOMP_CACHE: Dict[Tuple[Predicate, frozenset, frozenset], Decomposition] = {}
_DECOMP_CACHE_LIMIT = 4096

#: Below this distinct-row product the nested loop wins; the kernels
#: decline and the caller falls back.  Tests force it to 0 to exercise
#: the hash path on tiny randomized relations.
_SMALL_INPUT_LIMIT = 32


def _too_small(left: Relation, right: Relation) -> bool:
    return len(left.counts()) * len(right.counts()) < _SMALL_INPUT_LIMIT


@contextmanager
def small_input_limit(limit: int):
    """Temporarily override the small-input fallback threshold.

    The conformance harness sets it to 0 so the ``kernels`` executor tier
    really runs the hash kernels on tiny fuzz relations instead of
    silently falling back to the nested loop.
    """
    global _SMALL_INPUT_LIMIT
    previous = _SMALL_INPUT_LIMIT
    _SMALL_INPUT_LIMIT = limit
    try:
        yield
    finally:
        _SMALL_INPUT_LIMIT = previous


def decompose_join_predicate(
    predicate: Predicate, left_attrs: frozenset, right_attrs: frozenset
) -> Decomposition:
    """Split a predicate into hashable equality key pairs and a residual.

    Returns ``(left_keys, right_keys, residual_conjuncts)`` with
    ``left_keys[i] = right_keys[i]`` the i-th equality conjunct.  Empty
    key tuples mean the predicate has no cross-scheme equality conjunct
    and hash partitioning does not apply.
    """
    cache_key = (predicate, left_attrs, right_attrs)
    hit = _DECOMP_CACHE.get(cache_key)
    if hit is not None:
        return hit
    left_keys: List[str] = []
    right_keys: List[str] = []
    residual: List[Predicate] = []
    for conjunct in predicate.conjuncts():
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op == "="
            and isinstance(conjunct.left, AttrRef)
            and isinstance(conjunct.right, AttrRef)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_attrs and b in right_attrs:
                left_keys.append(a)
                right_keys.append(b)
                continue
            if b in left_attrs and a in right_attrs:
                left_keys.append(b)
                right_keys.append(a)
                continue
        residual.append(conjunct)
    result = (tuple(left_keys), tuple(right_keys), tuple(residual))
    if len(_DECOMP_CACHE) >= _DECOMP_CACHE_LIMIT:
        _DECOMP_CACHE.clear()
    _DECOMP_CACHE[cache_key] = result
    return result


#: A build-side hash table: key values -> [(row, multiplicity), ...], plus
#: the rows whose key contains a null (they can never match).
_BuildTable = Tuple[Dict[Tuple, List[Tuple[Row, int]]], List[Tuple[Row, int]]]


def _build(right: Relation, right_keys: Tuple[str, ...]) -> _BuildTable:
    table: Dict[Tuple, List[Tuple[Row, int]]] = {}
    never_match: List[Tuple[Row, int]] = []
    for r2, n2 in right.counts().items():
        key = tuple(r2[a] for a in right_keys)
        if any(is_null(v) for v in key):
            never_match.append((r2, n2))
        else:
            table.setdefault(key, []).append((r2, n2))
    return table, never_match


def _residual_true(residual: Tuple[Predicate, ...], view: PairView) -> bool:
    """Does every residual conjunct evaluate to (exactly) True?"""
    return all(c.evaluate(view) is True for c in residual)


def _probe_key(row: Row, left_keys: Tuple[str, ...]) -> Optional[Tuple]:
    """The probe key of a left row, or None when a key column is null."""
    key = tuple(row[a] for a in left_keys)
    if any(is_null(v) for v in key):
        return None
    return key


def join_counts(
    left: Relation, right: Relation, predicate: Predicate
) -> Optional[Counter]:
    """Hash-join output multiplicities, or None when not applicable."""
    if _too_small(left, right):
        return None
    left_keys, right_keys, residual = decompose_join_predicate(
        predicate, left.scheme, right.scheme
    )
    if not left_keys:
        return None
    table, _ = _build(right, right_keys)
    out: Counter[Row] = Counter()
    for r1, n1 in left.counts().items():
        key = _probe_key(r1, left_keys)
        if key is None:
            continue
        for r2, n2 in table.get(key, ()):
            if not residual or _residual_true(residual, PairView(r1, r2)):
                out[r1.concat(r2)] += n1 * n2
    return out


def outerjoin_counts(
    left: Relation, right: Relation, predicate: Predicate
) -> Optional[Counter]:
    """One-sided outerjoin multiplicities (left preserved), or None."""
    if _too_small(left, right):
        return None
    left_keys, right_keys, residual = decompose_join_predicate(
        predicate, left.scheme, right.scheme
    )
    if not left_keys:
        return None
    table, _ = _build(right, right_keys)
    padding = null_row(right.schema)
    out: Counter[Row] = Counter()
    for r1, n1 in left.counts().items():
        key = _probe_key(r1, left_keys)
        matched = False
        if key is not None:
            for r2, n2 in table.get(key, ()):
                if not residual or _residual_true(residual, PairView(r1, r2)):
                    matched = True
                    out[r1.concat(r2)] += n1 * n2
        if not matched:
            out[r1.concat(padding)] += n1
    return out


def full_outerjoin_counts(
    left: Relation, right: Relation, predicate: Predicate
) -> Optional[Counter]:
    """Two-sided outerjoin multiplicities, or None when not applicable."""
    if _too_small(left, right):
        return None
    left_keys, right_keys, residual = decompose_join_predicate(
        predicate, left.scheme, right.scheme
    )
    if not left_keys:
        return None
    table, _ = _build(right, right_keys)
    left_padding = null_row(right.schema)
    right_padding = null_row(left.schema)
    out: Counter[Row] = Counter()
    matched_right: set[Row] = set()
    for r1, n1 in left.counts().items():
        key = _probe_key(r1, left_keys)
        matched = False
        if key is not None:
            for r2, n2 in table.get(key, ()):
                if not residual or _residual_true(residual, PairView(r1, r2)):
                    matched = True
                    matched_right.add(r2)
                    out[r1.concat(r2)] += n1 * n2
        if not matched:
            out[r1.concat(left_padding)] += n1
    for r2, n2 in right.counts().items():
        if r2 not in matched_right:
            out[right_padding.concat(r2)] += n2
    return out


def _semi_anti_counts(
    left: Relation, right: Relation, predicate: Predicate, want_match: bool
) -> Optional[Counter]:
    if _too_small(left, right):
        return None
    left_keys, right_keys, residual = decompose_join_predicate(
        predicate, left.scheme, right.scheme
    )
    if not left_keys:
        return None
    table, _ = _build(right, right_keys)
    out: Counter[Row] = Counter()
    if not residual:
        # Pure equi-join: membership in the table decides the match.
        for r1, n1 in left.counts().items():
            key = _probe_key(r1, left_keys)
            if (key is not None and key in table) is want_match:
                out[r1] += n1
        return out
    for r1, n1 in left.counts().items():
        key = _probe_key(r1, left_keys)
        matched = False
        if key is not None:
            for r2, _n2 in table.get(key, ()):
                if _residual_true(residual, PairView(r1, r2)):
                    matched = True
                    break
        if matched is want_match:
            out[r1] += n1
    return out


def semijoin_counts(
    left: Relation, right: Relation, predicate: Predicate
) -> Optional[Counter]:
    """Hash semijoin multiplicities, or None when not applicable."""
    return _semi_anti_counts(left, right, predicate, want_match=True)


def antijoin_counts(
    left: Relation, right: Relation, predicate: Predicate
) -> Optional[Counter]:
    """Hash antijoin multiplicities, or None when not applicable."""
    return _semi_anti_counts(left, right, predicate, want_match=False)
