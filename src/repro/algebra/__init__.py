"""Relational-algebra substrate: tuples, nulls, predicates, and operators.

This package implements every definition of the paper's Sections 1.2 and
2.1 from scratch: schemes, tuples with nulls, bag relations, three-valued
predicates with strongness analysis, and the join-like operators
(join, outerjoin, antijoin, semijoin, generalized outerjoin).
"""

from repro.algebra.aggregation import group_count
from repro.algebra.comparison import bag_equal, explain_difference, set_equal
from repro.algebra.goj import generalized_outerjoin
from repro.algebra.kernels import decompose_join_predicate
from repro.algebra.nulls import NULL, is_null, satisfied, tv_and, tv_not, tv_or
from repro.algebra.operators import (
    antijoin,
    full_outerjoin,
    cross,
    difference,
    join,
    naive_antijoin,
    naive_full_outerjoin,
    naive_join,
    naive_outerjoin,
    naive_semijoin,
    outerjoin,
    project,
    restrict,
    semijoin,
    union_padded,
)
from repro.algebra.predicates import (
    And,
    AttrRef,
    Comparison,
    Const,
    CustomPredicate,
    IsNull,
    Not,
    Or,
    PairView,
    Predicate,
    TruePredicate,
    conjunction,
    eq,
    gt,
    lt,
    references,
)
from repro.algebra.relation import Database, Relation
from repro.algebra.schema import Schema, SchemaRegistry, qualify
from repro.algebra.sqlrender import SQLRenderError, sql_identifier, sql_literal
from repro.algebra.tuples import Row, concat_rows, null_row

__all__ = [
    "NULL",
    "And",
    "AttrRef",
    "Comparison",
    "Const",
    "CustomPredicate",
    "Database",
    "IsNull",
    "Not",
    "Or",
    "PairView",
    "Predicate",
    "Relation",
    "Row",
    "SQLRenderError",
    "Schema",
    "SchemaRegistry",
    "TruePredicate",
    "antijoin",
    "bag_equal",
    "concat_rows",
    "conjunction",
    "cross",
    "decompose_join_predicate",
    "difference",
    "eq",
    "full_outerjoin",
    "explain_difference",
    "generalized_outerjoin",
    "group_count",
    "gt",
    "is_null",
    "join",
    "lt",
    "naive_antijoin",
    "naive_full_outerjoin",
    "naive_join",
    "naive_outerjoin",
    "naive_semijoin",
    "null_row",
    "outerjoin",
    "project",
    "qualify",
    "references",
    "restrict",
    "satisfied",
    "semijoin",
    "set_equal",
    "sql_identifier",
    "sql_literal",
    "tv_and",
    "tv_not",
    "tv_or",
    "union_padded",
]
