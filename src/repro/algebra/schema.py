"""Schemes, attribute ownership, and the scheme-disjointness rules.

Section 1.2 of the paper: a *scheme* is a finite set of attribute names; a
*database* is a set of relations whose schemes are mutually disjoint (the
"ground relations").  Because schemes are disjoint, an attribute name
uniquely identifies the ground relation that owns it; the whole query-graph
construction (which relations does this predicate conjunct reference?)
rests on that ownership function, which :class:`SchemaRegistry` provides.

Attribute names are plain strings.  By convention the library qualifies
them as ``"Relation.attr"`` (see :func:`qualify`), which makes disjointness
automatic for distinct relation names, but nothing requires that format.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Dict, FrozenSet

from repro.util.errors import SchemaError


def qualify(relation: str, attribute: str) -> str:
    """Return the conventional qualified name ``"relation.attribute"``."""
    return f"{relation}.{attribute}"


class Schema:
    """An immutable set of attribute names.

    Thin wrapper over ``frozenset`` adding validation and set-algebra
    helpers used throughout the library (concatenation schemes, padding
    schemes, projection schemes).
    """

    __slots__ = ("_attrs",)

    def __init__(self, attributes: Iterable[str]):
        attrs = frozenset(attributes)
        for a in attrs:
            if not isinstance(a, str) or not a:
                raise SchemaError(f"attribute names must be non-empty strings, got {a!r}")
        self._attrs = attrs

    @property
    def attributes(self) -> FrozenSet[str]:
        return self._attrs

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._attrs))

    def __len__(self) -> int:
        return len(self._attrs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._attrs == other._attrs
        if isinstance(other, frozenset):
            return self._attrs == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._attrs)

    def __repr__(self) -> str:
        return f"Schema({sorted(self._attrs)})"

    # -- set algebra -------------------------------------------------------

    def union(self, other: "Schema | Iterable[str]") -> "Schema":
        return Schema(self._attrs | _as_attrs(other))

    def intersection(self, other: "Schema | Iterable[str]") -> "Schema":
        return Schema(self._attrs & _as_attrs(other))

    def difference(self, other: "Schema | Iterable[str]") -> "Schema":
        return Schema(self._attrs - _as_attrs(other))

    def is_disjoint(self, other: "Schema | Iterable[str]") -> bool:
        return self._attrs.isdisjoint(_as_attrs(other))

    def is_subset(self, other: "Schema | Iterable[str]") -> bool:
        return self._attrs <= _as_attrs(other)

    def require_disjoint(self, other: "Schema | Iterable[str]", context: str = "") -> None:
        """Raise :class:`SchemaError` unless the schemes are disjoint.

        Concatenation (Section 1.2) and every generic join operator
        (Section 2.1 convention: ``sch(eval(X)) ∩ sch(eval(Y)) = ∅``)
        require disjoint operand schemes.
        """
        overlap = self._attrs & _as_attrs(other)
        if overlap:
            where = f" in {context}" if context else ""
            raise SchemaError(f"schemes must be disjoint{where}; shared: {sorted(overlap)}")


def _as_attrs(obj: "Schema | Iterable[str]") -> FrozenSet[str]:
    if isinstance(obj, Schema):
        return obj.attributes
    return frozenset(obj)


class SchemaRegistry(Mapping[str, Schema]):
    """The database schema: relation name -> scheme, with attribute ownership.

    Enforces the paper's requirement that ground relations have mutually
    disjoint schemes, and answers the central question of query-graph
    construction: *which ground relation owns this attribute?*
    """

    def __init__(self, schemas: Mapping[str, Iterable[str]] | None = None):
        self._schemas: Dict[str, Schema] = {}
        self._owner: Dict[str, str] = {}
        if schemas:
            for name, attrs in schemas.items():
                self.register(name, attrs)

    def register(self, relation: str, attributes: Iterable[str]) -> Schema:
        """Register a ground relation's scheme, checking disjointness."""
        if relation in self._schemas:
            raise SchemaError(f"relation {relation!r} registered twice")
        schema = attributes if isinstance(attributes, Schema) else Schema(attributes)
        for attr in schema.attributes:
            owner = self._owner.get(attr)
            if owner is not None:
                raise SchemaError(
                    f"attribute {attr!r} of {relation!r} already owned by {owner!r}; "
                    "ground relations must have mutually disjoint schemes"
                )
        self._schemas[relation] = schema
        for attr in schema.attributes:
            self._owner[attr] = relation
        return schema

    # -- Mapping interface --------------------------------------------------

    def __getitem__(self, relation: str) -> Schema:
        try:
            return self._schemas[relation]
        except KeyError:
            raise SchemaError(f"unknown relation {relation!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._schemas)

    def __len__(self) -> int:
        return len(self._schemas)

    def __contains__(self, relation: object) -> bool:
        # Mapping.__contains__ relies on __getitem__ raising KeyError; ours
        # raises SchemaError, so membership must be answered directly.
        return relation in self._schemas

    # -- ownership -----------------------------------------------------------

    def owner(self, attribute: str) -> str:
        """Return the name of the ground relation owning ``attribute``."""
        try:
            return self._owner[attribute]
        except KeyError:
            raise SchemaError(f"attribute {attribute!r} is not owned by any relation") from None

    def owners(self, attributes: Iterable[str]) -> FrozenSet[str]:
        """Return the set of ground relations referenced by ``attributes``."""
        return frozenset(self.owner(a) for a in attributes)

    def scheme_of(self, relations: Iterable[str]) -> Schema:
        """Union of the schemes of the given relations."""
        attrs: set[str] = set()
        for r in relations:
            attrs |= self[r].attributes
        return Schema(attrs)

    def restricted_to(self, relations: Iterable[str]) -> "SchemaRegistry":
        """A registry containing only the given relations (for subqueries)."""
        sub = SchemaRegistry()
        for r in relations:
            sub.register(r, self[r])
        return sub
