"""Relation comparison under the paper's padding convention.

Section 2.1: "For comparing or computing the union of relations X, Y, we
first pad the tuples of each relation to scheme sch(X) ∪ sch(Y)."  All
identity checks in this library compare relations through these helpers,
under bag semantics by default (the paper's proofs are designed to survive
duplicates) with a set-semantics variant for the duplicate-free GOJ
identities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.algebra.relation import Relation
from repro.algebra.tuples import Row


def _padded_pair(left: Relation, right: Relation) -> Tuple[Relation, Relation]:
    schema = left.schema.union(right.schema)
    return left.pad_to(schema), right.pad_to(schema)


def bag_equal(left: Relation, right: Relation) -> bool:
    """Bag equality after padding both sides to the union scheme."""
    a, b = _padded_pair(left, right)
    return a.counts() == b.counts()


def set_equal(left: Relation, right: Relation) -> bool:
    """Set equality (ignoring multiplicities) after padding."""
    a, b = _padded_pair(left, right)
    return set(a.distinct_rows()) == set(b.distinct_rows())


@dataclass
class RelationDiff:
    """A human-readable account of how two relations differ.

    Produced by :func:`explain_difference`; used in test assertions and in
    counterexample reports from the reorderability brute-force checker so
    that a failing identity shows *which* tuples diverge, not just a bool.
    """

    equal: bool
    only_left: List[Tuple[Row, int]] = field(default_factory=list)
    only_right: List[Tuple[Row, int]] = field(default_factory=list)

    def __str__(self) -> str:
        if self.equal:
            return "relations are bag-equal"
        lines = ["relations differ:"]
        for row, n in self.only_left:
            lines.append(f"  left has {n} extra of {row!r}")
        for row, n in self.only_right:
            lines.append(f"  right has {n} extra of {row!r}")
        return "\n".join(lines)


def explain_difference(left: Relation, right: Relation) -> RelationDiff:
    """Diff two relations under the padding convention (bag semantics)."""
    a, b = _padded_pair(left, right)
    only_left: List[Tuple[Row, int]] = []
    only_right: List[Tuple[Row, int]] = []
    rows = set(a.distinct_rows()) | set(b.distinct_rows())
    for row in rows:
        d = a.multiplicity(row) - b.multiplicity(row)
        if d > 0:
            only_left.append((row, d))
        elif d < 0:
            only_right.append((row, -d))
    return RelationDiff(equal=not only_left and not only_right,
                        only_left=only_left, only_right=only_right)
