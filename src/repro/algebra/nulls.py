"""The null value and three-valued (Kleene) logic.

The paper's Section 1.2 defines a *null tuple* on a scheme as an assignment
of a null value to every attribute, and Section 2.1 builds its central
notion of a *strong* predicate on how predicates behave on nulls: a
predicate is strong with respect to a set ``S`` of attributes if it returns
``False`` whenever a tuple is null on all of ``S``.

We model nulls the way SQL does: a singleton marker value :data:`NULL`, and
predicate evaluation in three-valued logic with truth values ``True``,
``False`` and *unknown* (represented by Python's ``None``).  At operator
boundaries (restriction, join matching) *unknown* behaves like ``False``:
a tuple "satisfies" a predicate only when the predicate evaluates to
``True``.  This matches the paper's two-valued statement "p(t) = False"
for null inputs of strong predicates.
"""

from __future__ import annotations

from typing import Optional


class _Null:
    """The singleton null marker.

    A dedicated class (rather than Python's ``None``) keeps nulls distinct
    from the *unknown* truth value and from missing dictionary entries, and
    lets rows containing nulls participate in hashing, sorting keys and
    equality without ambiguity.
    """

    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __hash__(self) -> int:
        return hash("repro.algebra.nulls.NULL")

    def __eq__(self, other: object) -> bool:
        # Python-level equality: NULL is equal to itself only.  SQL-level
        # comparison semantics (NULL = anything -> unknown) live in the
        # predicate evaluator, not here; rows need plain structural equality
        # to support bag semantics.
        return other is self

    def __reduce__(self):
        return (_Null, ())


#: The null value used to pad tuples (Section 1.2 "padding").
NULL = _Null()

#: Type alias documenting three-valued truth: True, False, or None=unknown.
TruthValue = Optional[bool]


def is_null(value: object) -> bool:
    """Return ``True`` iff ``value`` is the null marker."""
    return value is NULL


def tv_and(*values: TruthValue) -> TruthValue:
    """Kleene conjunction over any number of truth values."""
    saw_unknown = False
    for v in values:
        if v is False:
            return False
        if v is None:
            saw_unknown = True
    return None if saw_unknown else True


def tv_or(*values: TruthValue) -> TruthValue:
    """Kleene disjunction over any number of truth values."""
    saw_unknown = False
    for v in values:
        if v is True:
            return True
        if v is None:
            saw_unknown = True
    return None if saw_unknown else False


def tv_not(value: TruthValue) -> TruthValue:
    """Kleene negation."""
    if value is None:
        return None
    return not value


def satisfied(value: TruthValue) -> bool:
    """Collapse a three-valued result at an operator boundary.

    A tuple satisfies a predicate only when the predicate is definitely
    ``True``; *unknown* filters out, exactly as in SQL ``WHERE``/``ON``
    clauses and as required for the paper's strong-predicate machinery.
    """
    return value is True
