"""The join-like algebra operators of Sections 1.2, 2.1, and the classics.

Implemented here, all under bag semantics (multiplicities multiply through
matches and add through union):

* ``join``          — regular join ``JN[p](R1, R2)`` (Section 1.2)
* ``outerjoin``     — one-sided outerjoin ``OJ[p](R1, R2)``; ``R1`` is the
                      preserved relation, ``R2`` the null-supplied one
* ``antijoin``      — ``AJ[p](R1, R2)`` = ``R1 ▷ R2`` (Section 2.1)
* ``semijoin``      — the complement of antijoin (needed by Section 6.3's
                      discussion and useful on its own)
* ``restrict``      — selection, keeping rows whose predicate is True
* ``project``       — projection, optionally duplicate-removing (the π of
                      Section 6.2 removes duplicates)
* ``union_padded``  — union under the Section 2.1 convention: both inputs
                      are first padded to the union scheme
* ``difference``    — set or bag difference (set form is the "−" of
                      equation 14)
* ``cross``         — Cartesian product (excluded from implementing trees,
                      but the engine and tests need it)

Every binary operator validates the paper's standing convention that
operand schemes are disjoint.

Each join-like operator exists in two forms: the naive nested-loop
transcription of the paper (``naive_join`` & co., the semantic oracle)
and a hash-partitioned fast path (:mod:`repro.algebra.kernels`) that the
public names dispatch to whenever the predicate has an equality conjunct
across the schemes and :func:`repro.util.fastpath.fast_enabled` is on.
The two are property-tested bag-equal on randomized null-bearing
databases (``tests/test_kernel_equivalence.py``).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.algebra import kernels
from repro.algebra.predicates import PairView, Predicate
from repro.algebra.nulls import satisfied
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.util.errors import SchemaError
from repro.util.fastpath import fast_enabled, parallel_enabled


def _parallel_counts(left: Relation, right: Relation, predicate: Predicate, variant: str):
    """Morsel-driven partitioned counts, or None when inapplicable.

    Lazily imports :mod:`repro.engine.parallel` (the engine imports the
    algebra, so a module-level import here would be a cycle).  Only
    consulted when :func:`repro.util.fastpath.parallel_enabled` is on.
    """
    from repro.engine.parallel import parallel_counts

    return parallel_counts(left, right, predicate, variant)


def _require_disjoint(left: Relation, right: Relation, op: str) -> None:
    left.schema.require_disjoint(right.schema, context=op)


def _output_schema(left: Relation, right: Relation) -> Schema:
    return left.schema.union(right.schema)


def restrict(relation: Relation, predicate: Predicate) -> Relation:
    """Selection: keep rows on which the predicate evaluates to True.

    Rows with an *unknown* outcome are discarded, matching SQL and the
    two-valued reading of the paper ("p(t) = False").
    """
    out: Counter[Row] = Counter()
    for row, n in relation.counts().items():
        if satisfied(predicate.evaluate(row)):
            out[row] += n
    return Relation.from_counts(relation.schema, out)


def project(relation: Relation, attributes: Iterable[str], dedup: bool = True) -> Relation:
    """Projection.  ``dedup=True`` is the paper's π (removal of duplicates)."""
    attrs = list(attributes)
    target = Schema(attrs)
    if not target.is_subset(relation.schema):
        extra = target.difference(relation.schema)
        raise SchemaError(f"cannot project on absent attributes {sorted(extra.attributes)}")
    out: Counter[Row] = Counter()
    for row, n in relation.counts().items():
        out[row.project(attrs)] += n
    if dedup:
        out = Counter({row: 1 for row in out})
    return Relation.from_counts(target, out)


def cross(left: Relation, right: Relation) -> Relation:
    """Cartesian product (not available inside implementing trees)."""
    _require_disjoint(left, right, "cross")
    out: Counter[Row] = Counter()
    for r1, n1 in left.counts().items():
        for r2, n2 in right.counts().items():
            out[r1.concat(r2)] += n1 * n2
    return Relation.from_counts(_output_schema(left, right), out)


def join(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Regular join ``JN[p](R1, R2)``.

    "Yields the concatenations of tuples from R1, R2 that satisfy the join
    predicate p" (Section 1.2).
    """
    _require_disjoint(left, right, "join")
    if parallel_enabled():
        out = _parallel_counts(left, right, predicate, "inner")
        if out is not None:
            return Relation._adopt_counts(_output_schema(left, right), out)
    if fast_enabled():
        out = kernels.join_counts(left, right, predicate)
        if out is not None:
            return Relation.from_counts(_output_schema(left, right), out)
    return naive_join(left, right, predicate)


def naive_join(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Nested-loop reference implementation of :func:`join` (the oracle)."""
    _require_disjoint(left, right, "join")
    out: Counter[Row] = Counter()
    for r1, n1 in left.counts().items():
        for r2, n2 in right.counts().items():
            if satisfied(predicate.evaluate(PairView(r1, r2))):
                out[r1.concat(r2)] += n1 * n2
    return Relation.from_counts(_output_schema(left, right), out)


def outerjoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """One-sided outerjoin ``OJ[p](R1, R2)`` = ``R1 → R2``.

    ``JN[p](R1, R2)`` plus the non-matched tuples of ``R1`` padded with
    nulls on the attributes of ``R2`` (Section 1.2).  The arrow of the
    paper's infix notation points at the null-supplied relation, i.e. at
    ``right`` here.
    """
    _require_disjoint(left, right, "outerjoin")
    if parallel_enabled():
        out = _parallel_counts(left, right, predicate, "left_outer")
        if out is not None:
            return Relation._adopt_counts(_output_schema(left, right), out)
    if fast_enabled():
        out = kernels.outerjoin_counts(left, right, predicate)
        if out is not None:
            return Relation.from_counts(_output_schema(left, right), out)
    return naive_outerjoin(left, right, predicate)


def naive_outerjoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Nested-loop reference implementation of :func:`outerjoin`."""
    _require_disjoint(left, right, "outerjoin")
    schema = _output_schema(left, right)
    padding = null_row(right.schema)
    out: Counter[Row] = Counter()
    for r1, n1 in left.counts().items():
        matched = False
        for r2, n2 in right.counts().items():
            if satisfied(predicate.evaluate(PairView(r1, r2))):
                matched = True
                out[r1.concat(r2)] += n1 * n2
        if not matched:
            out[r1.concat(padding)] += n1
    return Relation.from_counts(schema, out)


def full_outerjoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Two-sided outerjoin: preserve both inputs.

    The paper excludes this operator from its core development ("Two-sided
    outerjoin will not be discussed", Section 1.2) but leans on it in
    Section 4: "A similar argument can be used to convert 2-sided
    outerjoin to one-sided outerjoin" — a restriction strong on one side's
    attributes makes that side's padding pointless.  The operator is
    provided so that conversion can be implemented and tested.

    ``JN(R1,R2) ∪ (unmatched R1 padded) ∪ (unmatched R2 padded)``.
    """
    _require_disjoint(left, right, "full_outerjoin")
    if parallel_enabled():
        out = _parallel_counts(left, right, predicate, "full_outer")
        if out is not None:
            return Relation._adopt_counts(_output_schema(left, right), out)
    if fast_enabled():
        out = kernels.full_outerjoin_counts(left, right, predicate)
        if out is not None:
            return Relation.from_counts(_output_schema(left, right), out)
    return naive_full_outerjoin(left, right, predicate)


def naive_full_outerjoin(
    left: Relation, right: Relation, predicate: Predicate
) -> Relation:
    """Nested-loop reference implementation of :func:`full_outerjoin`."""
    _require_disjoint(left, right, "full_outerjoin")
    schema = _output_schema(left, right)
    left_padding = null_row(right.schema)
    right_padding = null_row(left.schema)
    out: Counter[Row] = Counter()
    matched_right: set[Row] = set()
    for r1, n1 in left.counts().items():
        matched = False
        for r2, n2 in right.counts().items():
            if satisfied(predicate.evaluate(PairView(r1, r2))):
                matched = True
                matched_right.add(r2)
                out[r1.concat(r2)] += n1 * n2
        if not matched:
            out[r1.concat(left_padding)] += n1
    for r2, n2 in right.counts().items():
        if r2 not in matched_right:
            out[right_padding.concat(r2)] += n2
    return Relation.from_counts(schema, out)


def antijoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Antijoin ``AJ[p](R1, R2)`` = ``R1 ▷ R2``.

    ``{r1 ∈ R1 | no tuple of R2 satisfies p(r1, r2)}`` (Section 2.1).
    The output scheme is ``sch(R1)``.
    """
    _require_disjoint(left, right, "antijoin")
    if parallel_enabled():
        out = _parallel_counts(left, right, predicate, "anti")
        if out is not None:
            return Relation._adopt_counts(left.schema, out)
    if fast_enabled():
        out = kernels.antijoin_counts(left, right, predicate)
        if out is not None:
            return Relation.from_counts(left.schema, out)
    return naive_antijoin(left, right, predicate)


def naive_antijoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Nested-loop reference implementation of :func:`antijoin`."""
    _require_disjoint(left, right, "antijoin")
    out: Counter[Row] = Counter()
    # Materialize the probe side once; re-walking right.distinct_rows()
    # per left row was the suite's hottest loop.
    right_rows = tuple(right.distinct_rows())
    for r1, n1 in left.counts().items():
        if not _has_match(r1, right_rows, predicate):
            out[r1] += n1
    return Relation.from_counts(left.schema, out)


def semijoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Semijoin: the tuples of ``R1`` that do have a match in ``R2``."""
    _require_disjoint(left, right, "semijoin")
    if parallel_enabled():
        out = _parallel_counts(left, right, predicate, "semi")
        if out is not None:
            return Relation._adopt_counts(left.schema, out)
    if fast_enabled():
        out = kernels.semijoin_counts(left, right, predicate)
        if out is not None:
            return Relation.from_counts(left.schema, out)
    return naive_semijoin(left, right, predicate)


def naive_semijoin(left: Relation, right: Relation, predicate: Predicate) -> Relation:
    """Nested-loop reference implementation of :func:`semijoin`."""
    _require_disjoint(left, right, "semijoin")
    out: Counter[Row] = Counter()
    right_rows = tuple(right.distinct_rows())
    for r1, n1 in left.counts().items():
        if _has_match(r1, right_rows, predicate):
            out[r1] += n1
    return Relation.from_counts(left.schema, out)


def _has_match(r1: Row, right_rows: Iterable[Row], predicate: Predicate) -> bool:
    """Does any (pre-materialized) right row satisfy the predicate with r1?"""
    for r2 in right_rows:
        if satisfied(predicate.evaluate(PairView(r1, r2))):
            return True
    return False


def union_padded(left: Relation, right: Relation) -> Relation:
    """Union under the padding convention of Section 2.1.

    "For comparing or computing the union of relations X, Y, we first pad
    the tuples of each relation to scheme sch(X) ∪ sch(Y)."  Multiplicities
    add (bag union), which is what makes the expansions such as equation 10
    (``X → Y = X − Y ∪ X ▷ Y``) exact under duplicates.
    """
    schema = left.schema.union(right.schema)
    a = left.pad_to(schema)
    b = right.pad_to(schema)
    out: Counter[Row] = Counter(a.counts())
    for row, n in b.counts().items():
        out[row] += n
    return Relation.from_counts(schema, out)


def difference(left: Relation, right: Relation, bag: bool = False) -> Relation:
    """Difference of relations on the same scheme.

    ``bag=False`` (default) is set difference — the "−" of equation 14's
    ``π[S](R1) − π[S]JN(R1, R2)``: a row survives iff it never occurs in
    ``right``.  ``bag=True`` subtracts multiplicities.
    """
    if left.schema != right.schema:
        raise SchemaError(
            f"difference requires equal schemes, got {sorted(left.scheme)} "
            f"vs {sorted(right.scheme)}"
        )
    out: Counter[Row] = Counter()
    if bag:
        for row, n in left.counts().items():
            m = n - right.multiplicity(row)
            if m > 0:
                out[row] += m
    else:
        for row, n in left.counts().items():
            if right.multiplicity(row) == 0:
                out[row] += n
    return Relation.from_counts(left.schema, out)
