"""SQL-compatible rendering of identifiers, literals, and predicates.

The conformance subsystem (:mod:`repro.conformance`) lowers query
expressions to SQLite SQL so that a completely independent engine can act
as a semantic oracle.  That lowering is only sound because the library's
null and three-valued-logic model was copied from SQL in the first place
(:mod:`repro.algebra.nulls`): ``NULL`` renders to SQL ``NULL``,
comparisons with a null operand become *unknown* on both sides, and
``WHERE``/``ON`` keep a row only when the predicate is definitely true —
exactly :func:`repro.algebra.nulls.satisfied`.

This module owns the value-level rendering rules; predicate rendering
lives on the :class:`~repro.algebra.predicates.Predicate` classes as
``to_sql`` (structured like the paper's grammar, one method per node),
built on these helpers.
"""

from __future__ import annotations

from typing import Any

from repro.algebra.nulls import is_null
from repro.util.errors import PredicateError


class SQLRenderError(PredicateError):
    """A value or predicate has no faithful SQL rendering."""


def sql_identifier(name: str) -> str:
    """Quote an attribute/table name for SQLite.

    The library's conventional attribute names contain a dot
    (``"X.a"``), so every identifier is double-quoted; embedded quotes
    are doubled per the SQL standard.
    """
    if not isinstance(name, str) or not name:
        raise SQLRenderError(f"cannot render {name!r} as an SQL identifier")
    return '"' + name.replace('"', '""') + '"'


def sql_literal(value: Any) -> str:
    """Render a Python-side constant as a SQLite literal.

    Supported: the :data:`~repro.algebra.nulls.NULL` marker, ``bool``
    (SQLite has no boolean type; rendered as 1/0), ``int``, ``float``,
    and ``str``.  Anything else raises — an unsupported constant must
    fail loudly rather than silently diverge from the Python evaluator.
    """
    if is_null(value):
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise SQLRenderError(f"non-finite float {value!r} has no SQL literal")
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise SQLRenderError(f"no SQL literal for {type(value).__name__} value {value!r}")
