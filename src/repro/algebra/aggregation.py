"""Grouped counting — the [MURA89] use case from the introduction.

The paper's introduction lists "processing queries with Count operations
[MURA89]" among the places outerjoins arise: the classic ``COUNT``-per-
group query must report **zero** for groups with no matches, and the only
relational way to keep those groups is an outerjoin whose padded rows
count as 0.

``group_count`` therefore counts, per group, the rows whose *counted
attribute* is non-null — so a null-padded row contributes the group but
not the count, exactly SQL's ``COUNT(attr)`` semantics.  ``group_count``
over a plain join silently loses the zero groups; the tests and the
``bench_count_queries`` experiment show the difference on the
departments/employees workload.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from typing import Dict

from repro.algebra.nulls import is_null
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row
from repro.util.errors import SchemaError


def group_count(
    relation: Relation,
    group_attributes: Iterable[str],
    counted_attribute: str,
    output_attribute: str = "count",
) -> Relation:
    """``SELECT group, COUNT(counted) ... GROUP BY group`` semantics.

    Rows whose ``counted_attribute`` is null (typically outerjoin padding)
    establish their group but contribute nothing to its count; a group
    consisting only of padded rows therefore reports **0** — the behaviour
    that motivates computing counts over outerjoins.
    """
    group_attrs = sorted(group_attributes)
    missing = [a for a in group_attrs + [counted_attribute] if a not in relation.scheme]
    if missing:
        raise SchemaError(f"attributes {missing} not in relation scheme")
    if output_attribute in group_attrs:
        raise SchemaError(f"output attribute {output_attribute!r} collides with a group key")

    counts: Dict[Row, int] = Counter()
    for row, multiplicity in relation.counts().items():
        key = row.project(group_attrs)
        counts.setdefault(key, 0)
        if not is_null(row[counted_attribute]):
            counts[key] += multiplicity

    schema = Schema(group_attrs + [output_attribute])
    rows = [
        key.concat(Row({output_attribute: count})) for key, count in counts.items()
    ]
    return Relation(schema, rows)
