"""Predicates: three-valued evaluation, conjuncts, and strongness analysis.

Section 1.2 defines simple and join predicates as functions of the values
of a fixed set of attributes.  Section 2.1 adds the pivotal notion:

    A predicate ``p`` is *strong* with respect to a set ``S`` of attributes
    if, whenever a tuple ``t`` has a null value for all attributes in ``S``,
    ``p(t) = False``.

Strongness is what separates Example 3's broken reassociation from
identity 12's valid one, and it is a precondition of Theorem 1.  This
module decides strongness by *abstract evaluation*: the probed attributes
are bound to an abstract "definitely null" value, every other attribute to
"could be anything (including null)", and the predicate is reduced over
sets of possible Kleene truth values.  The predicate is strong w.r.t. ``S``
iff ``True`` is not a possible outcome.  The analysis is sound (it never
claims strongness that does not hold); for predicates where one attribute
occurs several times it may be conservative, which only ever makes the
library *demand* strongness it cannot prove.

Predicates are immutable, hashable, and structurally comparable, because
they label query-graph edges and operator nodes that must themselves be
canonicalizable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any, FrozenSet, Tuple

from repro.algebra.nulls import TruthValue, is_null, tv_and, tv_not, tv_or
from repro.util.errors import PredicateError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """A value-producing expression inside a predicate: attribute or constant."""

    __slots__ = ()

    def attributes(self) -> FrozenSet[str]:
        raise NotImplementedError

    def value(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def to_sql(self) -> str:
        """Render as a SQLite scalar expression (see :mod:`repro.algebra.sqlrender`)."""
        raise NotImplementedError


class AttrRef(Term):
    """Reference to an attribute by (qualified) name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise PredicateError(f"attribute reference must be a non-empty string, got {name!r}")
        self.name = name

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def value(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise PredicateError(f"row has no attribute {self.name!r}") from None

    def to_sql(self) -> str:
        from repro.algebra.sqlrender import sql_identifier

        return sql_identifier(self.name)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AttrRef) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("AttrRef", self.name))

    def __repr__(self) -> str:
        return self.name


class Const(Term):
    """A literal constant (may be :data:`NULL`, though ``IsNull`` is clearer)."""

    __slots__ = ("const",)

    def __init__(self, const: Any):
        self.const = const

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def value(self, row: Mapping[str, Any]) -> Any:
        return self.const

    def to_sql(self) -> str:
        from repro.algebra.sqlrender import sql_literal

        return sql_literal(self.const)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.const == self.const

    def __hash__(self) -> int:
        return hash(("Const", self.const))

    def __repr__(self) -> str:
        return repr(self.const)


def _as_term(obj: Any) -> Term:
    """Coerce strings to attribute references and other values to constants."""
    if isinstance(obj, Term):
        return obj
    if isinstance(obj, str):
        return AttrRef(obj)
    return Const(obj)


# ---------------------------------------------------------------------------
# Abstract values for strongness analysis
# ---------------------------------------------------------------------------

#: Abstract value: the attribute is definitely null.
_ABS_NULL = "abs-null"
#: Abstract value: the attribute may hold anything, including null.
_ABS_ANY = "abs-any"

#: A set of possible Kleene truth values, e.g. ``frozenset({True, None})``.
PossibleTruths = FrozenSet[TruthValue]

_ONLY_TRUE: PossibleTruths = frozenset({True})
_ONLY_FALSE: PossibleTruths = frozenset({False})
_ONLY_UNKNOWN: PossibleTruths = frozenset({None})
_ANYTHING: PossibleTruths = frozenset({True, False, None})


def _abs_term(term: Term, null_attrs: FrozenSet[str]) -> Any:
    """Abstract value of a term when ``null_attrs`` are all null."""
    if isinstance(term, Const):
        return _ABS_NULL if is_null(term.const) else term.const
    if isinstance(term, AttrRef):
        return _ABS_NULL if term.name in null_attrs else _ABS_ANY
    raise PredicateError(f"unknown term type {type(term).__name__}")


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Abstract base class for all predicates."""

    __slots__ = ()

    # -- interface ------------------------------------------------------------

    def attributes(self) -> FrozenSet[str]:
        """All attributes the predicate depends on."""
        raise NotImplementedError

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        """Three-valued evaluation against a row (any mapping)."""
        raise NotImplementedError

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        """Possible truth values if all ``null_attrs`` hold null."""
        raise NotImplementedError

    # -- derived behaviour ------------------------------------------------------

    def conjuncts(self) -> Tuple["Predicate", ...]:
        """Split a top-level conjunction into its conjuncts.

        Query-graph construction (Section 1.2) adds one join edge per
        predicate conjunct; everything that is not a top-level ``And`` is a
        single conjunct.
        """
        return (self,)

    def to_sql(self) -> str:
        """Render as a SQLite boolean expression.

        Sound because the library's 3VL was modeled on SQL's: unknown
        propagates through NOT/AND/OR identically, and the consumer
        (``WHERE``/``ON``) keeps rows only on definite truth.  Predicates
        with no SQL counterpart (:class:`CustomPredicate`) raise
        :class:`~repro.algebra.sqlrender.SQLRenderError`.
        """
        raise NotImplementedError

    def is_strong(self, attributes: Iterable[str]) -> bool:
        """Strongness test (Section 2.1).

        True iff the predicate cannot evaluate to ``True`` on any tuple
        whose value is null on *all* the given attributes.  Sound but
        possibly conservative; see the module docstring.
        """
        attrs = frozenset(attributes)
        if not attrs:
            # Vacuous probe: "all attributes of the empty set are null" holds
            # for every tuple, so strongness would require the predicate to be
            # unsatisfiable; test it as such.
            return True not in self.possible_truths(frozenset())
        return True not in self.possible_truths(attrs)

    def __and__(self, other: "Predicate") -> "Predicate":
        return conjunction([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


class TruePredicate(Predicate):
    """The always-true predicate (identity element of conjunction)."""

    __slots__ = ()

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        return True

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        return _ONLY_TRUE

    def conjuncts(self) -> Tuple[Predicate, ...]:
        return ()

    def to_sql(self) -> str:
        return "(1 = 1)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TruePredicate)

    def __hash__(self) -> int:
        return hash("TruePredicate")

    def __repr__(self) -> str:
        return "TRUE"


#: Comparison operators in SQL spelling, mapped to Python semantics.
_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Predicate):
    """``left op right`` with SQL null semantics (null operand -> unknown)."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Any, op: str, right: Any):
        if op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {op!r}")
        self.left = _as_term(left)
        self.op = op
        self.right = _as_term(right)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        lv = self.left.value(row)
        rv = self.right.value(row)
        if is_null(lv) or is_null(rv):
            return None
        try:
            return bool(_COMPARATORS[self.op](lv, rv))
        except TypeError as exc:
            raise PredicateError(
                f"cannot compare {lv!r} {self.op} {rv!r}: {exc}"
            ) from None

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        lv = _abs_term(self.left, null_attrs)
        rv = _abs_term(self.right, null_attrs)
        if lv is _ABS_NULL or rv is _ABS_NULL:
            return _ONLY_UNKNOWN
        if lv is _ABS_ANY or rv is _ABS_ANY:
            # The free attribute may be null (unknown) or any value
            # (true or false are both achievable for every comparator).
            return _ANYTHING
        # Both constants: exact evaluation.
        return frozenset({bool(_COMPARATORS[self.op](lv, rv))})

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.left == self.left
            and other.op == self.op
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class IsNull(Predicate):
    """``term IS NULL`` — two-valued, never unknown.

    This is the construct that makes Example 3's predicate non-strong:
    ``B.attr2 = C.attr1 OR B.attr2 IS NULL`` evaluates to ``True`` on a
    null-padded ``B`` tuple.
    """

    __slots__ = ("term",)

    def __init__(self, term: Any):
        self.term = _as_term(term)

    def attributes(self) -> FrozenSet[str]:
        return self.term.attributes()

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        return is_null(self.term.value(row))

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        v = _abs_term(self.term, null_attrs)
        if v is _ABS_NULL:
            return _ONLY_TRUE
        if v is _ABS_ANY:
            return frozenset({True, False})
        return _ONLY_FALSE

    def to_sql(self) -> str:
        return f"({self.term.to_sql()} IS NULL)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IsNull) and other.term == self.term

    def __hash__(self) -> int:
        return hash(("IsNull", self.term))

    def __repr__(self) -> str:
        return f"({self.term!r} IS NULL)"


class Not(Predicate):
    """Kleene negation."""

    __slots__ = ("child",)

    def __init__(self, child: Predicate):
        self.child = child

    def attributes(self) -> FrozenSet[str]:
        return self.child.attributes()

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        return tv_not(self.child.evaluate(row))

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        return frozenset(tv_not(v) for v in self.child.possible_truths(null_attrs))

    def to_sql(self) -> str:
        return f"(NOT {self.child.to_sql()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.child == self.child

    def __hash__(self) -> int:
        return hash(("Not", self.child))

    def __repr__(self) -> str:
        return f"(NOT {self.child!r})"


class And(Predicate):
    """Kleene conjunction; the children are the query-graph conjuncts."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Predicate]):
        kids = tuple(children)
        if len(kids) < 2:
            raise PredicateError("And requires at least two children; use conjunction()")
        self.children = kids

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for c in self.children:
            out |= c.attributes()
        return out

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        return tv_and(*(c.evaluate(row) for c in self.children))

    def conjuncts(self) -> Tuple[Predicate, ...]:
        out: list[Predicate] = []
        for c in self.children:
            out.extend(c.conjuncts())
        return tuple(out)

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        sets = [c.possible_truths(null_attrs) for c in self.children]
        out: set[TruthValue] = set()
        # AND can be False iff some child can be False.
        if any(False in s for s in sets):
            out.add(False)
        # AND can be True iff every child can be True.
        if all(True in s for s in sets):
            out.add(True)
        # AND can be Unknown iff every child can avoid False and some child
        # can be Unknown (children are treated as independent).
        if all(s - {False} for s in sets) and any(None in s for s in sets):
            out.add(None)
        return frozenset(out)

    def to_sql(self) -> str:
        return "(" + " AND ".join(c.to_sql() for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.children == self.children

    def __hash__(self) -> int:
        return hash(("And", self.children))

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(c) for c in self.children) + ")"


class Or(Predicate):
    """Kleene disjunction."""

    __slots__ = ("children",)

    def __init__(self, children: Iterable[Predicate]):
        kids = tuple(children)
        if len(kids) < 2:
            raise PredicateError("Or requires at least two children")
        self.children = kids

    def attributes(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for c in self.children:
            out |= c.attributes()
        return out

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        return tv_or(*(c.evaluate(row) for c in self.children))

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        sets = [c.possible_truths(null_attrs) for c in self.children]
        out: set[TruthValue] = set()
        # OR can be True iff some child can be True.
        if any(True in s for s in sets):
            out.add(True)
        # OR can be False iff every child can be False.
        if all(False in s for s in sets):
            out.add(False)
        # OR can be Unknown iff every child can avoid True and some child can
        # be Unknown.
        if all(s - {True} for s in sets) and any(None in s for s in sets):
            out.add(None)
        return frozenset(out)

    def to_sql(self) -> str:
        return "(" + " OR ".join(c.to_sql() for c in self.children) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.children == self.children

    def __hash__(self) -> int:
        return hash(("Or", self.children))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(c) for c in self.children) + ")"


class CustomPredicate(Predicate):
    """An opaque predicate given by a Python function.

    Used by the Section-5 language for the access-path predicates
    ``NestedIn(@r, @value)`` and ``LinkedTo(@r, @value)``; the paper notes
    that "the implementation technique for these predicates is not relevant
    to correctness of query reordering" — only their attribute sets and
    strongness matter, so both are declared explicitly here.

    ``null_rejecting`` lists attributes on which the predicate is
    individually null-rejecting: a null in any one of them forces the
    predicate to be non-true.  Strongness w.r.t. a set ``S`` then follows
    whenever ``S`` intersects ``null_rejecting``.
    """

    __slots__ = ("name", "fn", "_attrs", "null_rejecting")

    def __init__(
        self,
        name: str,
        fn: Callable[[Mapping[str, Any]], TruthValue],
        attributes: Iterable[str],
        null_rejecting: Iterable[str] = (),
    ):
        self.name = name
        self.fn = fn
        self._attrs = frozenset(attributes)
        self.null_rejecting = frozenset(null_rejecting)
        if not self.null_rejecting <= self._attrs:
            raise PredicateError("null_rejecting attributes must be referenced attributes")

    def attributes(self) -> FrozenSet[str]:
        return self._attrs

    def evaluate(self, row: Mapping[str, Any]) -> TruthValue:
        if any(is_null(row[a]) for a in self.null_rejecting):
            return False
        return self.fn(row)

    def possible_truths(self, null_attrs: FrozenSet[str]) -> PossibleTruths:
        if null_attrs & self.null_rejecting:
            return _ONLY_FALSE
        return _ANYTHING

    def to_sql(self) -> str:
        from repro.algebra.sqlrender import SQLRenderError

        raise SQLRenderError(
            f"opaque predicate {self.name!r} has no SQL rendering; conformance "
            "checks against SQLite must exclude queries that use it"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, CustomPredicate)
            and other.name == self.name
            and other._attrs == self._attrs
            and other.null_rejecting == self.null_rejecting
        )

    def __hash__(self) -> int:
        return hash(("CustomPredicate", self.name, self._attrs, self.null_rejecting))

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(sorted(self._attrs))})"


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def eq(left: Any, right: Any) -> Comparison:
    """Equality comparison; strings become attribute references."""
    return Comparison(left, "=", right)


def lt(left: Any, right: Any) -> Comparison:
    return Comparison(left, "<", right)


def gt(left: Any, right: Any) -> Comparison:
    return Comparison(left, ">", right)


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Conjoin predicates, flattening nested ``And`` and dropping ``TRUE``.

    Zero conjuncts yield :class:`TruePredicate`; one yields it unchanged.
    This is the collapse rule for parallel query-graph edges: "we will
    treat them as if they were a single conjunct" (Section 1.2).

    Conjuncts are put into a canonical (sorted-by-repr) order so that two
    operators labeled with the same conjunct set — however they were
    assembled by reassociations — compare structurally equal.  Lemma 3's
    closure computation relies on this.
    """
    flat: list[Predicate] = []
    for p in predicates:
        flat.extend(p.conjuncts())
    if not flat:
        return TruePredicate()
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=repr)
    return And(flat)


def references(predicate: Predicate, attributes: Iterable[str]) -> bool:
    """True iff the predicate references any of the given attributes."""
    return bool(predicate.attributes() & frozenset(attributes))


class PairView(Mapping[str, Any]):
    """A zero-copy view of two rows as one, for join-predicate evaluation.

    Join loops evaluate ``p(t1, t2)`` millions of times; building a merged
    ``Row`` for each pair would dominate run time, so physical operators
    evaluate against this lazy two-row view instead.
    """

    __slots__ = ("first", "second")

    def __init__(self, first: Mapping[str, Any], second: Mapping[str, Any]):
        self.first = first
        self.second = second

    def __getitem__(self, attribute: str) -> Any:
        try:
            return self.first[attribute]
        except KeyError:
            return self.second[attribute]

    def __iter__(self):
        yield from self.first
        yield from self.second

    def __len__(self) -> int:
        return len(self.first) + len(self.second)
