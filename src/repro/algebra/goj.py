"""The generalized outerjoin (GOJ) of Section 6.2.

Equation 14 of the paper (with π denoting duplicate-removing projection,
``−`` set difference, and ``×`` Cartesian product with the null tuple):

    GOJ[S](R1, R2) = JN(R1, R2)
                   ∪ (π[S](R1) − π[S] JN(R1, R2)) × null_{sch(R1)∪sch(R2)−S}

GOJ keeps every join result plus, for each ``S``-projection of ``R1`` that
found no match at all, one null-padded witness.  It refines Dayal's
Generalized-Join by omitting unmatched ``R1`` tuples whose S-projection
*did* appear in the join.  GOJ generalizes both join and outerjoin:

* ``S = sch(R1)`` on duplicate-free input reproduces the outerjoin;
* an ``S`` for which every projection is matched reproduces the join.

The operator exists to reassociate queries that fall *outside* the freely
reorderable class, e.g. Example 2's ``X → (Y − Z)``; see
:mod:`repro.core.goj_identities` for identities 15 and 16.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

from repro.algebra.operators import join
from repro.algebra.predicates import Predicate
from repro.algebra.relation import Relation
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row, null_row
from repro.util.errors import SchemaError


def generalized_outerjoin(
    left: Relation,
    right: Relation,
    predicate: Predicate,
    projection: Iterable[str],
) -> Relation:
    """``GOJ[S](R1, R2)`` per equation 14.

    ``projection`` is the attribute set ``S``; it must be contained in
    ``sch(R1)``.
    """
    s_attrs = list(projection)
    s_schema = Schema(s_attrs)
    if not s_schema.is_subset(left.schema):
        extra = s_schema.difference(left.schema)
        raise SchemaError(
            f"GOJ projection attributes must lie in sch(R1); stray: {sorted(extra.attributes)}"
        )
    left.schema.require_disjoint(right.schema, context="generalized_outerjoin")

    out_schema = left.schema.union(right.schema)
    joined = join(left, right, predicate)

    # π[S](R1) and π[S](JN): duplicate-removing projections (sets).
    left_projections = {row.project(s_attrs) for row in left.distinct_rows()}
    matched_projections = {row.project(s_attrs) for row in joined.distinct_rows()}

    out: Counter[Row] = Counter(joined.counts())
    padding = null_row(out_schema.difference(s_schema))
    for proj in left_projections - matched_projections:
        out[proj.concat(padding)] += 1
    return Relation.from_counts(out_schema, out)
