"""Relations as bags of rows, plus the database of ground relations.

The paper defines a relation as a finite *set* of tuples (Section 1.2) but
deliberately proves its identities algebraically so that they remain valid
"in an environment where duplicates are permitted" (Section 2).  We honor
that by making the bag (multiset) the primary representation; set semantics
is available through :meth:`Relation.distinct` and is required by the
generalized-outerjoin identities of Section 6.2, which the paper states
under a duplicate-free assumption.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from typing import Any, Dict, Tuple

from repro.algebra.schema import Schema, SchemaRegistry
from repro.algebra.tuples import Row
from repro.util.errors import SchemaError


class Relation:
    """An immutable bag of rows over a fixed scheme."""

    __slots__ = ("_schema", "_bag")

    def __init__(self, schema: Schema | Iterable[str], rows: Iterable[Row] = ()):
        self._schema = schema if isinstance(schema, Schema) else Schema(schema)
        bag: Counter[Row] = Counter()
        for row in rows:
            self._check_row(row)
            bag[row] += 1
        self._bag = bag

    @classmethod
    def from_counts(cls, schema: Schema | Iterable[str], counts: Mapping[Row, int]) -> "Relation":
        """Build directly from row multiplicities (internal fast path)."""
        rel = cls(schema)
        for row, n in counts.items():
            if n < 0:
                raise SchemaError(f"negative multiplicity {n} for {row!r}")
            if n:
                rel._check_row(row)
                rel._bag[row] = n
        return rel

    @classmethod
    def _adopt_counts(cls, schema: Schema | Iterable[str], counts: Counter) -> "Relation":
        """Take ownership of a freshly-built Counter, skipping row checks.

        Internal fast path for kernels whose construction already
        guarantees every row lies on ``schema`` with positive
        multiplicity (e.g. the parallel join merge, whose output rows are
        fusions of already-validated input rows).  The caller must hand
        over the Counter and not mutate it afterwards.
        """
        rel = cls(schema)
        rel._bag = counts
        return rel

    @classmethod
    def from_dicts(
        cls, schema: Schema | Iterable[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Convenience constructor from plain dictionaries."""
        return cls(schema, (Row(d) for d in dicts))

    def _check_row(self, row: Row) -> None:
        if row.scheme != self._schema.attributes:
            raise SchemaError(
                f"row scheme {sorted(row.scheme)} does not match relation scheme "
                f"{sorted(self._schema.attributes)}"
            )

    # -- basic accessors ---------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def scheme(self) -> frozenset[str]:
        """``sch(R)`` as a plain frozenset."""
        return self._schema.attributes

    def counts(self) -> Mapping[Row, int]:
        """Row -> multiplicity view (do not mutate)."""
        return self._bag

    def __iter__(self) -> Iterator[Row]:
        """Iterate rows with multiplicity (a row of count 3 appears 3 times)."""
        for row, n in self._bag.items():
            for _ in range(n):
                yield row

    def distinct_rows(self) -> Iterator[Row]:
        """Iterate each distinct row once."""
        return iter(self._bag)

    def __len__(self) -> int:
        """Bag cardinality (with duplicates)."""
        return sum(self._bag.values())

    def distinct_count(self) -> int:
        return len(self._bag)

    def multiplicity(self, row: Row) -> int:
        return self._bag.get(row, 0)

    def __contains__(self, row: object) -> bool:
        return isinstance(row, Row) and row in self._bag

    def is_empty(self) -> bool:
        return not self._bag

    # -- equality ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Bag equality on identical schemes.

        For the paper's padding-based comparison convention (compare after
        padding to the union scheme) use :func:`repro.algebra.comparison.bag_equal`.
        """
        if not isinstance(other, Relation):
            return NotImplemented
        return self._schema == other._schema and self._bag == other._bag

    def __hash__(self) -> int:
        return hash((self._schema, frozenset(self._bag.items())))

    def __repr__(self) -> str:
        shown = ", ".join(repr(r) for r in list(self)[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"Relation({sorted(self.scheme)}, [{shown}{suffix}], n={len(self)})"

    # -- derived relations ----------------------------------------------------

    def distinct(self) -> "Relation":
        """Duplicate elimination (set semantics)."""
        return Relation.from_counts(self._schema, {row: 1 for row in self._bag})

    def is_duplicate_free(self) -> bool:
        return all(n == 1 for n in self._bag.values())

    def pad_to(self, schema: Schema | Iterable[str]) -> "Relation":
        """Pad every row to a superscheme (Section 2.1 union convention)."""
        target = schema if isinstance(schema, Schema) else Schema(schema)
        if target == self._schema:
            return self
        out: Counter[Row] = Counter()
        for row, n in self._bag.items():
            out[row.pad_to(target)] += n
        return Relation.from_counts(target, out)

    def map_rows(self, fn) -> "Relation":
        """Apply ``fn`` to each distinct row; multiplicities carry over.

        The function must return rows on a common scheme; used by renaming
        and by the object-store flattening in the Section-5 front end.
        """
        pairs = [(fn(row), n) for row, n in self._bag.items()]
        if not pairs:
            return Relation(self._schema)
        schema = Schema(pairs[0][0].scheme)
        out: Counter[Row] = Counter()
        for row, n in pairs:
            out[row] += n
        return Relation.from_counts(schema, out)

    def rename(self, mapping: Mapping[str, str]) -> "Relation":
        """Rename attributes; unlisted attributes keep their names.

        Supports the paper's "several copies of the same relation with
        renamed attributes can be used" provision (Section 1.2).
        """
        missing = set(mapping) - set(self.scheme)
        if missing:
            raise SchemaError(f"cannot rename absent attributes {sorted(missing)}")
        new_names = [mapping.get(a, a) for a in self.scheme]
        if len(set(new_names)) != len(new_names):
            raise SchemaError("renaming would collapse two attributes into one")

        def ren(row: Row) -> Row:
            return Row({mapping.get(a, a): v for a, v in row.items()})

        out: Counter[Row] = Counter()
        for row, n in self._bag.items():
            out[ren(row)] += n
        return Relation.from_counts(Schema(new_names), out)


class Database(Mapping[str, Relation]):
    """A set of ground relations with mutually disjoint schemes.

    The evaluation context for query expressions: ``eval`` resolves each
    relation variable (leaf of the implementing tree) against this mapping.
    A :class:`SchemaRegistry` is maintained so that graph construction can
    resolve attribute ownership.
    """

    def __init__(self, relations: Mapping[str, Relation] | None = None):
        self._relations: Dict[str, Relation] = {}
        self._registry = SchemaRegistry()
        if relations:
            for name, rel in relations.items():
                self.add(name, rel)

    def add(self, name: str, relation: Relation) -> None:
        self._registry.register(name, relation.schema)
        self._relations[name] = relation

    @property
    def registry(self) -> SchemaRegistry:
        return self._registry

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown ground relation {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: object) -> bool:
        # Mapping.__contains__ expects KeyError from __getitem__; ours raises
        # SchemaError, so answer membership directly.
        return name in self._relations

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A copy of this database with one relation replaced or added."""
        out = Database()
        for n, r in self._relations.items():
            if n != name:
                out.add(n, r)
        out.add(name, relation)
        return out

    def relations(self) -> Tuple[str, ...]:
        return tuple(self._relations)
