"""Run a worked example under the tracer and export its trace.

``python -m repro.tools.traceexport`` executes Example 1 of the paper
(R1 ⋈ R2 on keys, then a left outerjoin to R3) on the physical engine
with tracing forced on, and writes the resulting span tree either in the
canonical flat-JSON form (``docs/trace.schema.json``) or as a Chrome
trace-event file for chrome://tracing / Perfetto.

``--validate`` re-reads the canonical document and checks it against the
checked-in schema with the dependency-free validator in
:mod:`repro.tools.benchschema`, exiting non-zero on any violation — this
is the CI trace-schema gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.algebra.predicates import eq
from repro.core.expressions import Expression, Join, LeftOuterJoin, Rel
from repro.datagen.workloads import example1_storage
from repro.engine.executor import execute
from repro.observability.export import load_trace, trace_document, write_trace
from repro.observability.spans import tracing
from repro.tools.benchschema import SchemaValidationError, validate_trace

DEFAULT_OUTPUT = Path("TRACE_EXAMPLE1.json")


def example1_query() -> Expression:
    """Example 1's expression: (R1 join R2 on keys) left-outerjoin R3."""
    return LeftOuterJoin(
        Join(Rel("R1"), Rel("R2"), eq("R1.k", "R2.k")),
        Rel("R3"),
        eq("R2.j", "R3.j"),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.traceexport",
        description="Trace Example 1 on the engine and export the span tree.",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="output file path"
    )
    parser.add_argument(
        "--form",
        choices=("json", "chrome"),
        default="json",
        help="canonical flat JSON (default) or Chrome trace-event format",
    )
    parser.add_argument(
        "--n", type=int, default=1000, help="|R2| = |R3| table size (default 1000)"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="check the canonical document against docs/trace.schema.json",
    )
    args = parser.parse_args(argv)

    storage = example1_storage(args.n)
    with tracing(enabled=True):
        result = execute(example1_query(), storage)
    if result.trace is None:
        print("tracing produced no span tree", file=sys.stderr)
        return 2
    roots = [result.trace]
    meta = {"example": "example1", "n": args.n, "rows": len(result.relation)}

    write_trace(args.output, roots, meta=meta, form=args.form)
    print(f"wrote {args.output} ({args.form}; {len(result.relation)} result rows)")

    if args.validate:
        doc = (
            load_trace(args.output)
            if args.form == "json"
            else trace_document(roots, meta=meta)
        )
        try:
            validate_trace(doc)
        except SchemaValidationError as exc:
            for err in exc.errors:
                print(f"schema violation: {err}", file=sys.stderr)
            return 1
        print(f"validated against docs/trace.schema.json ({len(doc['spans'])} spans)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
