"""Process-wide counters for the benchmark harness.

The benchmark runner (:mod:`repro.tools.benchrunner`) wants per-scenario
work metrics — base tuples retrieved, optimizer plans built, implementing
trees enumerated — without threading a metrics object through every API.
This module is the cheap global sink those code paths bump; the runner
snapshots it around each bench run, and ``benchmarks/conftest.py`` dumps
it at session end when ``REPRO_BENCH_STATS_FILE`` is set.

Counters are advisory telemetry only: nothing in the library reads them
back, so a stale or zeroed counter can never change results.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

#: The global counter sink.  Keys in use:
#: ``tuples_retrieved``        (engine base-table accesses),
#: ``plans_optimized``         (optimizer optimize() calls),
#: ``dp_subsets``              (DP table entries filled),
#: ``trees_enumerated``        (implementing trees materialized),
#: ``sqlite_oracle_queries``   (statements run on the SQLite oracle),
#: ``conformance_checks``      (differential cross_check() calls),
#: ``conformance_mismatches``  (tier disagreements observed),
#: ``fuzz_cases``              (fuzz cases executed),
#: ``fuzz_failures``           (fuzz cases that disagreed),
#: ``shrink_runs``             (counterexample minimizations),
#: ``planspace_checks``        (plan-space equivalence sweeps),
#: ``planspace_mismatches``    (non-equivalent trees found),
#: ``storage_to_database_builds`` (oracle-view cache misses).
STATS: Counter = Counter()


def bump(key: str, count: int = 1) -> None:
    """Add to one counter."""
    STATS[key] += count


def snapshot() -> Dict[str, int]:
    """A plain-dict copy of the current counters."""
    return dict(STATS)


def reset() -> None:
    """Zero all counters (the bench runner calls this between scenarios)."""
    STATS.clear()


def delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counters accumulated since a prior :func:`snapshot`."""
    now = snapshot()
    keys = set(now) | set(before)
    return {k: now.get(k, 0) - before.get(k, 0) for k in sorted(keys)}
