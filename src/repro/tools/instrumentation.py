"""Process-wide counters for the benchmark harness.

The benchmark runner (:mod:`repro.tools.benchrunner`) wants per-scenario
work metrics — base tuples retrieved, optimizer plans built, implementing
trees enumerated — without threading a metrics object through every API.
This module is the cheap global sink those code paths bump; the runner
snapshots it around each bench run, and ``benchmarks/conftest.py`` dumps
it at session end when ``REPRO_BENCH_STATS_FILE`` is set.

Counters are advisory telemetry only: nothing in the library reads them
back, so a stale or zeroed counter can never change results.

Thread safety: the sink is shared by every in-flight query, and
``Counter.__iadd__`` on an item is a read-modify-write that the GIL does
*not* make atomic — two racing queries could lose increments.  All
mutation therefore goes through :func:`bump` (and :func:`reset`), which
serialize under one lock; ``tests/test_stats_threadsafety.py`` hammers
the contract.  Reads (:func:`snapshot`, :func:`delta`) take the same
lock so they never observe a torn multi-key update.  Direct subscript
*reads* of :data:`STATS` remain fine; direct subscript *writes* are the
bug this module's lock exists to prevent — use :func:`bump`.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Dict

#: The global counter sink.  Keys in use:
#: ``tuples_retrieved``        (engine base-table accesses),
#: ``plans_optimized``         (optimizer optimize() calls),
#: ``dp_subsets``              (DP table entries filled),
#: ``trees_enumerated``        (implementing trees materialized),
#: ``sqlite_oracle_queries``   (statements run on the SQLite oracle),
#: ``conformance_checks``      (differential cross_check() calls),
#: ``conformance_mismatches``  (tier disagreements observed),
#: ``fuzz_cases``              (fuzz cases executed),
#: ``fuzz_failures``           (fuzz cases that disagreed),
#: ``shrink_runs``             (counterexample minimizations),
#: ``planspace_checks``        (plan-space equivalence sweeps),
#: ``planspace_mismatches``    (non-equivalent trees found),
#: ``storage_to_database_builds`` (oracle-view cache misses),
#: ``plan_cache_hits``         (optimizer plan-cache hits),
#: ``plan_cache_misses``       (optimizer plan-cache misses),
#: ``plan_cache_invalidations`` (entries dropped on generation change),
#: ``plan_cache_evictions``    (entries dropped by LRU pressure),
#: ``service_queries``         (queries admitted by a QueryService),
#: ``service_rejected``        (queries shed at admission),
#: ``service_timeouts``        (queries cancelled by deadline),
#: ``service_cancelled``       (queries cancelled by the caller),
#: ``parallel_joins``          (joins taken by the parallel executor),
#: ``parallel_tasks``          (per-partition join tasks dispatched),
#: ``parallel_partitions``     (radix partitions materialized),
#: ``parallel_spills``         (partition buffers spilled to disk),
#: ``batches_emitted``         (column batches emitted by batch-native ops),
#: ``batch_rows``              (rows carried by those batches),
#: ``predicate_vectorized``    (filter-kernel applications with >=1
#:                             vectorized conjunct pass),
#: ``trie_builds``             (WCOJ sorted-trie index constructions),
#: ``wcoj_seeks``              (leapfrog seek() calls across all joins),
#: ``wcoj_ties``               (leapfrog full-agreement matches).
STATS: Counter = Counter()

#: One lock serializes every mutation of :data:`STATS`; see module docs.
_lock = threading.Lock()


def bump(key: str, count: int = 1) -> None:
    """Add to one counter (thread-safe)."""
    with _lock:
        STATS[key] += count


def snapshot() -> Dict[str, int]:
    """A plain-dict copy of the current counters (thread-safe)."""
    with _lock:
        return dict(STATS)


def reset() -> None:
    """Zero all counters (the bench runner calls this between scenarios)."""
    with _lock:
        STATS.clear()


def delta(before: Dict[str, int]) -> Dict[str, int]:
    """Counters accumulated since a prior :func:`snapshot`."""
    now = snapshot()
    keys = set(now) | set(before)
    return {k: now.get(k, 0) - before.get(k, 0) for k in sorted(keys)}
