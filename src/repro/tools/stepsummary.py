"""Render perf-gate results as a GitHub job-summary markdown document.

``python -m repro.tools.stepsummary`` turns the perf job's artifacts into
the markdown table GitHub renders under the workflow run::

    python -m repro.tools.stepsummary \\
        --compare BENCH_PR3.json:/tmp/bench_perf.json \\
        --compare BENCH_PR5.json:/tmp/bench_pr5.json \\
        --backends /tmp/bench_pr10.json

Each ``--compare BASELINE:CANDIDATE`` pair goes through the same
aggregation as :mod:`repro.tools.tracecmp` (so the summary shows exactly
what the gate measured) and contributes one table of per-key deltas —
regressed keys first, capped at ``--max-rows`` non-regressed rows per
pair so a wide report stays readable.  ``--backends`` takes a BENCH_PR10
report and renders the per-topology backend matrix: every execution cell,
the speedup over the local engine, and the hinted-vs-native join-order
delta per backend.

Output goes to the file named by ``$GITHUB_STEP_SUMMARY`` when that
variable is set (appended, as GitHub requires), else to stdout — the
same command line works in CI and on a laptop.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.tools.tracecmp import Finding, aggregate_file, compare
from repro.util.errors import ReproError


def _fmt_ratio(ratio: Optional[float]) -> str:
    return f"{ratio:.2f}x" if ratio is not None else "n/a"


def compare_table(
    baseline: Path, candidate: Path, threshold: float, min_delta_ms: float, max_rows: int
) -> List[str]:
    """One markdown table of tracecmp deltas for a baseline/candidate pair."""
    findings: List[Finding] = compare(
        aggregate_file(baseline),
        aggregate_file(candidate),
        threshold=threshold,
        min_delta_ms=min_delta_ms,
    )
    regressed = [f for f in findings if f.regressed]
    steady = [f for f in findings if not f.regressed][:max_rows]
    lines = [
        f"### {baseline.name} vs {candidate.name}",
        "",
        f"{len(regressed)} regressed / {len(findings)} shared key(s)"
        f" (threshold {threshold}x, min delta {min_delta_ms}ms)",
        "",
        "| key | baseline (ms) | candidate (ms) | ratio | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for finding in regressed + steady:
        verdict = "**REGRESSED**" if finding.regressed else "ok"
        lines.append(
            f"| `{finding.key}` | {finding.baseline_ms:.2f} | "
            f"{finding.candidate_ms:.2f} | {_fmt_ratio(finding.ratio)} | {verdict} |"
        )
    hidden = len(findings) - len(regressed) - len(steady)
    if hidden > 0:
        lines.append("")
        lines.append(f"({hidden} further non-regressed key(s) elided)")
    lines.append("")
    return lines


def backends_table(report_path: Path) -> List[str]:
    """The BENCH_PR10 backend matrix as one markdown table per topology row."""
    doc = json.loads(report_path.read_text())
    section = doc.get("backends")
    if section is None:
        raise ReproError(f"{report_path}: report has no 'backends' section")
    cells = sorted(
        {cell for workload in section["workloads"] for cell in workload["cells"]}
    )
    header = (
        "| topology | "
        + " | ".join(cells)
        + " | hinted vs native | bag-equal |"
    )
    divider = "| --- |" + " ---: |" * len(cells) + " --- | --- |"
    lines = [
        f"### Backend matrix ({report_path.name})",
        "",
        f"Backends available: {', '.join(section['available'])}."
        " Cells are min-of-rounds seconds; *hinted vs native* is the"
        " native-order time over the hint-forced time per backend"
        " (>1 means the optimizer's order beat the backend's own).",
        "",
        header,
        divider,
    ]
    for workload in section["workloads"]:
        row = [workload["topology"]]
        for cell in cells:
            value = workload["cells"].get(cell)
            row.append(f"{value:.4f}s" if value is not None else "—")
        deltas = ", ".join(
            f"{name} {_fmt_ratio(ratio)}"
            for name, ratio in sorted(workload["hinted_vs_native"].items())
        )
        row.append(deltas or "—")
        row.append("yes" if workload["bag_equal"] else "**NO**")
        lines.append("| " + " | ".join(row) + " |")
    lines.append("")
    return lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.stepsummary",
        description="render perf deltas and the backend matrix as job-summary markdown",
    )
    parser.add_argument(
        "--compare",
        action="append",
        default=[],
        metavar="BASELINE:CANDIDATE",
        help="bench/trace file pair to diff (repeatable; same aggregation as tracecmp)",
    )
    parser.add_argument(
        "--backends",
        type=Path,
        default=None,
        help="BENCH_PR10-shaped report whose backend matrix to render",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.25, help="regression ratio (default 1.25)"
    )
    parser.add_argument(
        "--min-delta-ms",
        type=float,
        default=1.0,
        help="absolute regression floor in ms (default 1.0)",
    )
    parser.add_argument(
        "--max-rows",
        type=int,
        default=10,
        help="non-regressed rows shown per comparison (default 10)",
    )
    parser.add_argument(
        "--title", default="Perf summary", help="top-level heading of the document"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="append to this file instead of $GITHUB_STEP_SUMMARY / stdout",
    )
    args = parser.parse_args(argv)

    lines: List[str] = [f"## {args.title}", ""]
    for pair in args.compare:
        baseline, sep, candidate = pair.partition(":")
        if not sep or not baseline or not candidate:
            raise SystemExit(f"--compare wants BASELINE:CANDIDATE, got {pair!r}")
        lines += compare_table(
            Path(baseline),
            Path(candidate),
            threshold=args.threshold,
            min_delta_ms=args.min_delta_ms,
            max_rows=args.max_rows,
        )
    if args.backends is not None:
        lines += backends_table(args.backends)

    document = "\n".join(lines) + "\n"
    target = args.output
    if target is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        target = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if target is None:
        sys.stdout.write(document)
    else:
        with open(target, "a", encoding="utf-8") as handle:
            handle.write(document)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
