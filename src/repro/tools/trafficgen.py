"""Open-loop traffic harness for the query service (BENCH_PR9 artifact).

Produces the PR-9 benchmark artifact (``BENCH_PR9.json`` by default)::

    python -m repro.tools.trafficgen --out BENCH_PR9.json
    python -m repro.tools.trafficgen --smoke              # CI-sized
    python -m repro.tools.trafficgen --bench-seed 7       # reseed everything

Unlike :mod:`repro.tools.servicebench` (closed-loop: the next query is
submitted when a slot frees up), this harness is **open-loop**: arrivals
are scheduled from a seeded Poisson process at a fixed offered rate,
*independent of completions*.  When the service falls behind, queries
queue, blow their deadline, or get shed — exactly the regime a saturated
service lives in, and the one closed-loop harnesses famously understate
(coordinated omission).

Two sections, one claim each:

* ``open_loop`` — an arrival-rate sweep over a Zipf-skewed query mix on
  a join-chain topology, run twice per rate: ``threaded`` (the stock
  thread-pool service) and ``sharded`` (``shard=True``: co-partitioned
  hash joins across worker processes).  Per rate: p50/p99 sojourn
  latency (queue wait + execution, measured inside the service, so
  collection order cannot skew it), achieved throughput, and the
  deadline/shed accounting.  The headline is the per-mode *saturation
  throughput* — the best achieved ok-rate across the sweep.
* ``speedup`` — a closed-loop **paired drill** on a heavier instance of
  the same mix: both services stay alive and warm, and each round runs
  the identical batch through the threaded service and then the sharded
  one, back to back.  The per-round ratio cancels slow host drift
  (thermal state, neighbours on a shared box) that would otherwise
  swamp a single long A-then-B measurement, and the reported speedup is
  the **median of the per-round ratios** — robust to one unlucky round.
  Worker processes sidestep the GIL and co-partitioned shards keep each
  worker's hash tables small, so the acceptance bar is ``speedup > 1``
  at >= 2 worker processes (``--min-speedup``, default 1.0).

Determinism: every knob is explicit.  Service workers, shard workers,
and shard counts are constants or flags — never ``os.cpu_count()`` —
and every random draw (topology sampling, Zipf popularity, Poisson
interarrivals) threads through ``--bench-seed``, so two runs on
different hosts offer the identical query sequence at the identical
scheduled instants.  Wall-clock *measurements* naturally vary; the
workload does not.  For the most stable drill ratios also pin
``PYTHONHASHSEED=0`` in the environment (the CI job does): hash-table
iteration order then matches run to run, removing one more source of
timing variance.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from itertools import permutations
from statistics import median
from pathlib import Path
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence

from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import Expression, Restrict
from repro.algebra.predicates import conjunction, lt
from repro.datagen.random_db import random_database
from repro.datagen.topologies import GraphScenario, chain
from repro.engine.storage import Storage
from repro.service import QueryService
from repro.util.rng import make_rng

#: Offered arrival rates (queries/second) for the sweep.  Explicit and
#: constant — the sweep means the same thing on every host.
ARRIVAL_RATES = (4.0, 8.0, 16.0, 32.0)

#: CI-sized sweep used by ``--smoke``.
SMOKE_RATES = (4.0, 12.0)

#: Service thread count and shard worker-process count for every run.
#: Pinned (never ``os.cpu_count()``) so artifacts are comparable; 2 is
#: the floor at which the sharded path is allowed to claim a win.
SERVICE_WORKERS = 2
SHARD_WORKERS = 2

#: Zipf exponent for query-shape popularity: shape k is drawn with
#: weight ``1/(k+1)**SHAPE_SKEW`` — a few hot shapes, a long cold tail.
SHAPE_SKEW = 1.2

#: Join-key domain = rows / this, i.e. per-key multiplicity ~ divisor
#: (times a duplicates factor).  Sets the chain's intermediate fanout.
DOMAIN_DIVISOR = 3

#: Chain length for the open-loop sweep.  Shorter chain + modest rows
#: keeps per-query cost in the tens of milliseconds, so the fixed
#: ARRIVAL_RATES actually bracket the service's capacity.
SWEEP_RELATIONS = 4

#: Chain length for the speedup drill.  The 5-relation permutation
#: chain cuts output to ~1/120 of the candidate pairs, so queries are
#: join-heavy (where sharding helps) but results are tiny (so shipping
#: them back across the pipe costs nothing).
DRILL_RELATIONS = 5

#: Distinct query shapes in the drill mix.
DRILL_SHAPES = 4

#: Queries per measured round in the paired drill.
DRILL_BATCH = 8


def build_scenario(relations: int = 5) -> GraphScenario:
    """The traffic topology: an all-join chain (the CPU-bound mix).

    Every edge is an equijoin on the nodes' ``.a`` attributes, so every
    sampled implementing tree is co-partitionable on one attribute class
    and the sharded service can distribute each query.
    """
    return chain(relations, ["join"] * (relations - 1), name=f"trafficgen-chain{relations}")


def build_storage(scenario: GraphScenario, rows: int, seed: int) -> Storage:
    """Tables sized for CPU-bound joins.

    ``min_rows`` pins every table to at least half of ``rows`` (a
    randomly tiny relation would collapse the whole chain's cost), and
    ``domain = rows // DOMAIN_DIVISOR`` keeps per-key join fanout
    roughly constant as ``rows`` grows — so intermediate join sizes,
    and with them the per-query CPU, scale with ``rows`` instead of
    evaporating.
    """
    db = random_database(
        scenario.schemas,
        seed=seed,
        max_rows=rows,
        min_rows=max(rows // 2, 1),
        domain=max(rows // DOMAIN_DIVISOR, 8),
        null_probability=0.02,
    )
    return Storage.from_database(db)


def build_workload(scenario: GraphScenario, shapes: int, seed: int) -> List[Expression]:
    """``shapes`` distinct query shapes (distinct plan-cache fingerprints).

    Each shape is a sampled implementing tree topped with a chain of
    *cross-relation inequalities* (``Rp1.b < Rp2.b < ... < Rpn.b`` for a
    per-shape permutation of the relations).  These are the CPU-bound
    part by construction: an inequality between two relations cannot
    become a hash-join key and cannot be pushed below the join where
    both relations meet, so the joins run at full candidate-pair size
    while the final output is cut to roughly ``1/n!`` — heavy to
    compute, cheap to ship.  A strict chain along a permutation is never
    contradictory, and the permutation varies per shape, so every shape
    has its own plan-cache fingerprint.
    """
    rng = make_rng(seed)
    nodes = sorted(scenario.schemas)
    orders = list(permutations(nodes))
    queries: List[Expression] = []
    for i in range(shapes):
        tree = sample_implementing_tree(scenario.graph, rng)
        order = orders[(i * 7) % len(orders)]
        predicate = conjunction(
            [lt(f"{u}.b", f"{v}.b") for u, v in zip(order, order[1:])]
        )
        queries.append(Restrict(tree, predicate))
    return queries


def zipf_weights(n: int, skew: float = SHAPE_SKEW) -> List[float]:
    """Popularity weights ``1/(k+1)**skew`` for ``n`` query shapes."""
    return [1.0 / (k + 1) ** skew for k in range(n)]


def percentile(samples: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0..1) by the nearest-rank method; None if empty."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def make_service(storage: Storage, sharded: bool, queue_size: int) -> QueryService:
    """A service in one of the two benchmarked configurations.

    Both modes get the same thread count and queue; the sharded one
    additionally owns a pinned-size process pool.  ``shard=False`` is
    forced (not left to ``REPRO_SHARD``) so the threaded baseline is the
    baseline regardless of the ambient environment.
    """
    return QueryService(
        storage,
        workers=SERVICE_WORKERS,
        queue_size=queue_size,
        shard=sharded,
        shard_workers=SHARD_WORKERS if sharded else None,
    )


def open_loop_run(
    service: QueryService,
    workload: Sequence[Expression],
    weights: Sequence[float],
    rate_qps: float,
    queries: int,
    deadline_s: float,
    seed: int,
) -> Dict[str, Any]:
    """Offer ``queries`` arrivals at ``rate_qps`` and account for all of them.

    Arrival instants come from a seeded exponential interarrival stream
    (Poisson process), fixed before the first submission — completions
    never influence the schedule.  Sojourn latency per query is
    ``queue_wait_s + elapsed_s`` as measured by the service itself, so
    collecting tickets afterwards (in arrival order) cannot inflate it.
    """
    rng = make_rng(seed)
    picks = rng.choices(range(len(workload)), weights=weights, k=queries)
    gaps = [rng.expovariate(rate_qps) for _ in range(queries)]

    start = monotonic()
    scheduled = 0.0
    lateness: List[float] = []
    tickets = []
    for pick, gap in zip(picks, gaps):
        scheduled += gap
        delay = start + scheduled - monotonic()
        if delay > 0:
            time.sleep(delay)
        lateness.append(max(0.0, -delay))
        tickets.append(service.submit(workload[pick], timeout_s=deadline_s))
    outcomes = [ticket.result(timeout=600) for ticket in tickets]
    wall_s = monotonic() - start

    by_status: Dict[str, int] = {}
    latencies: List[float] = []
    for outcome in outcomes:
        by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        if outcome.status != "rejected":
            latencies.append(outcome.queue_wait_s + outcome.elapsed_s)
    ok = by_status.get("ok", 0)
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    return {
        "offered_qps": rate_qps,
        "queries": queries,
        "ok": ok,
        "shed": by_status.get("rejected", 0),
        "timeout": by_status.get("timeout", 0),
        "error": by_status.get("error", 0),
        "achieved_qps": round(ok / wall_s, 2) if wall_s else None,
        "p50_ms": round(p50 * 1e3, 3) if p50 is not None else None,
        "p99_ms": round(p99 * 1e3, 3) if p99 is not None else None,
        "max_submit_lateness_ms": round(max(lateness) * 1e3, 3) if lateness else None,
    }


def sweep(
    storage: Storage,
    workload: Sequence[Expression],
    rates: Sequence[float],
    queries_per_rate: int,
    deadline_s: float,
    seed: int,
    out,
) -> Dict[str, Any]:
    """The arrival-rate sweep, threaded and sharded, plus saturation."""
    weights = zipf_weights(len(workload))
    rows: List[Dict[str, Any]] = []
    for mode in ("threaded", "sharded"):
        for rate in rates:
            service = make_service(
                storage, sharded=(mode == "sharded"), queue_size=max(queries_per_rate // 2, 8)
            )
            with service:
                row = open_loop_run(
                    service,
                    workload,
                    weights,
                    rate_qps=rate,
                    queries=queries_per_rate,
                    deadline_s=deadline_s,
                    seed=seed,  # same seed per rate: identical offered traffic
                )
            row["mode"] = mode
            rows.append(row)
            print(
                f"  {mode} @ {rate} q/s: achieved {row['achieved_qps']} q/s, "
                f"p50 {row['p50_ms']} ms, p99 {row['p99_ms']} ms, "
                f"ok/shed/timeout {row['ok']}/{row['shed']}/{row['timeout']}",
                file=out,
            )
    saturation = {
        mode: max(
            (r["achieved_qps"] for r in rows if r["mode"] == mode and r["achieved_qps"]),
            default=None,
        )
        for mode in ("threaded", "sharded")
    }
    return {
        "deadline_s": deadline_s,
        "queries_per_rate": queries_per_rate,
        "shape_skew": SHAPE_SKEW,
        "rates": rows,
        "saturation_qps": saturation,
    }


def speedup_drill(
    storage: Storage, workload: Sequence[Expression], rounds: int, out
) -> Dict[str, Any]:
    """Paired closed-loop drill: threaded vs sharded, interleaved rounds.

    Both services come up together and both first serve the whole
    workload once (warmup: plan cache, and — for the sharded service —
    worker-resident shard partitions).  Then each round pushes the same
    :data:`DRILL_BATCH`-query batch through the threaded service and
    the sharded one back to back, and records the ratio.  Interleaving
    means any slow drift in host performance hits both sides of every
    ratio; the median across rounds discards the odd round where a
    background process landed on one side only.  The claim under test:
    at the same explicit worker count, worker *processes* beat worker
    *threads* on a CPU-bound join mix because they do not share a GIL
    and each works a cache-friendlier shard-sized table.
    """
    batch = [workload[i % len(workload)] for i in range(DRILL_BATCH)]
    services = {
        mode: make_service(
            storage,
            sharded=(mode == "sharded"),
            queue_size=max(DRILL_BATCH, len(workload)),
        )
        for mode in ("threaded", "sharded")
    }
    totals = {mode: {"ok": 0, "queries": 0, "elapsed_s": 0.0} for mode in services}
    round_rows: List[Dict[str, Any]] = []
    with services["threaded"], services["sharded"]:
        for service in services.values():
            for ticket in service.submit_batch(list(workload)):
                ticket.result(timeout=600)
        for index in range(rounds):
            times: Dict[str, float] = {}
            for mode, service in services.items():
                start = monotonic()
                tickets = service.submit_batch(batch)
                outcomes = [ticket.result(timeout=600) for ticket in tickets]
                times[mode] = monotonic() - start
                totals[mode]["ok"] += sum(1 for o in outcomes if o.ok)
                totals[mode]["queries"] += len(outcomes)
                totals[mode]["elapsed_s"] += times[mode]
            ratio = times["threaded"] / times["sharded"] if times["sharded"] else None
            round_rows.append(
                {
                    "threaded_s": round(times["threaded"], 4),
                    "sharded_s": round(times["sharded"], 4),
                    "speedup": round(ratio, 3) if ratio is not None else None,
                }
            )
            print(
                f"  round {index}: threaded {times['threaded']:.3f} s, "
                f"sharded {times['sharded']:.3f} s, speedup "
                f"{round_rows[-1]['speedup']}x",
                file=out,
            )
    results: Dict[str, Any] = {
        "queries": DRILL_BATCH * rounds,
        "batch_size": DRILL_BATCH,
        "shard_workers": SHARD_WORKERS,
        "rounds": round_rows,
    }
    for mode, total in totals.items():
        elapsed = total["elapsed_s"]
        results[mode] = {
            "ok": total["ok"],
            "queries": total["queries"],
            "elapsed_s": round(elapsed, 4),
            "qps": round(total["queries"] / elapsed, 2) if elapsed else None,
        }
    ratios = [row["speedup"] for row in round_rows if row["speedup"] is not None]
    results["speedup"] = round(median(ratios), 3) if ratios else None
    results["speedup_min"] = round(min(ratios), 3) if ratios else None
    results["speedup_max"] = round(max(ratios), 3) if ratios else None
    return results


def run(
    out_path: Optional[str],
    smoke: bool = False,
    seed: int = 0,
    out=sys.stdout,
) -> Dict[str, Any]:
    # Sweep sizing: per-query cost in the tens of milliseconds so the
    # fixed ARRIVAL_RATES span under- and over-saturation.  Drill
    # sizing: large tables so per-worker shards fit caches the whole
    # table does not — that superlinearity is what worker processes
    # harvest on top of GIL-free execution.
    sweep_shapes = 4 if smoke else 8
    sweep_rows = 800 if smoke else 3000
    queries_per_rate = 24 if smoke else 80
    drill_rows = 8000 if smoke else 10000
    drill_rounds = 3 if smoke else 5
    deadline_s = 10.0
    rates = SMOKE_RATES if smoke else ARRIVAL_RATES

    sweep_scenario = build_scenario(SWEEP_RELATIONS)
    sweep_storage = build_storage(sweep_scenario, rows=sweep_rows, seed=seed + 1)
    sweep_workload = build_workload(sweep_scenario, shapes=sweep_shapes, seed=seed + 2)

    report: Dict[str, Any] = {
        "meta": {
            "artifact": "BENCH_PR9",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "smoke": smoke,
            "seed": seed,
            "sweep_scenario": sweep_scenario.name,
            "sweep_rows_per_table": sweep_rows,
            "sweep_shapes": sweep_shapes,
            "drill_scenario": f"trafficgen-chain{DRILL_RELATIONS}",
            "drill_rows_per_table": drill_rows,
            "drill_shapes": DRILL_SHAPES,
            "service_workers": SERVICE_WORKERS,
            "shard_workers": SHARD_WORKERS,
            "worker_sizing": "explicit",
        }
    }

    print(
        f"[trafficgen] open-loop sweep: rates {list(rates)} q/s, "
        f"{queries_per_rate} queries/rate, Zipf({SHAPE_SKEW}) over {sweep_shapes} shapes",
        file=out,
    )
    report["open_loop"] = sweep(
        sweep_storage,
        sweep_workload,
        rates=rates,
        queries_per_rate=queries_per_rate,
        deadline_s=deadline_s,
        seed=seed + 3,
        out=out,
    )
    print(
        f"  saturation: {report['open_loop']['saturation_qps']}",
        file=out,
    )

    drill_scenario = build_scenario(DRILL_RELATIONS)
    drill_storage = build_storage(drill_scenario, rows=drill_rows, seed=seed + 1)
    drill_workload = build_workload(drill_scenario, shapes=DRILL_SHAPES, seed=seed + 2)
    print(
        f"[trafficgen] speedup drill: {drill_rounds} paired rounds of "
        f"{DRILL_BATCH} queries at {drill_rows} rows/table, "
        f"{SERVICE_WORKERS} threads vs {SHARD_WORKERS} worker processes",
        file=out,
    )
    report["speedup"] = speedup_drill(
        drill_storage, drill_workload, rounds=drill_rounds, out=out
    )
    print(f"  median speedup {report['speedup']['speedup']}x", file=out)

    from repro.tools.benchschema import validate_trafficgen_report

    validate_trafficgen_report(report)
    if out_path:
        Path(out_path).parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[trafficgen] wrote {out_path}", file=out)
    return report


def verify(report: Dict[str, Any], min_speedup: float = 1.0) -> List[str]:
    """Acceptance checks over a report; returns a list of violations."""
    problems: List[str] = []
    open_loop = report.get("open_loop", {})
    rows = open_loop.get("rates", ())
    if not rows:
        problems.append("open_loop sweep produced no rows")
    for row in rows:
        accounted = row["ok"] + row["shed"] + row["timeout"] + row["error"]
        if accounted != row["queries"]:
            problems.append(
                f"open_loop {row['mode']} @ {row['offered_qps']} q/s: "
                f"{row['queries'] - accounted} queries unaccounted for"
            )
        if row["ok"] and (row["p50_ms"] is None or row["p99_ms"] is None):
            problems.append(
                f"open_loop {row['mode']} @ {row['offered_qps']} q/s: missing percentiles"
            )
    for mode in ("threaded", "sharded"):
        if open_loop.get("saturation_qps", {}).get(mode) is None:
            problems.append(f"no saturation throughput for mode {mode!r}")
    drill = report.get("speedup", {})
    if not drill.get("rounds"):
        problems.append("speedup drill recorded no rounds")
    for mode in ("threaded", "sharded"):
        side = drill.get(mode, {})
        if side.get("ok") != side.get("queries"):
            problems.append(f"speedup drill {mode}: non-ok outcomes")
    speedup = drill.get("speedup")
    if drill.get("shard_workers", 0) < 2:
        problems.append("speedup drill must run with >= 2 worker processes")
    if speedup is None or speedup < min_speedup:
        problems.append(
            f"sharded/threaded median speedup {speedup} < required {min_speedup}x"
        )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trafficgen",
        description="open-loop traffic harness for the query service; writes BENCH_PR9.json",
    )
    parser.add_argument("--out", default="BENCH_PR9.json", help="output JSON path")
    parser.add_argument("--no-out", action="store_true", help="skip writing the artifact")
    parser.add_argument(
        "--bench-seed",
        type=int,
        default=0,
        help="seed for topology sampling, Zipf popularity, and Poisson arrivals",
    )
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        help="fail unless the median sharded/threaded speedup reaches this (default 1.0)",
    )
    args = parser.parse_args(argv)
    report = run(
        None if args.no_out else args.out,
        smoke=args.smoke,
        seed=args.bench_seed,
    )
    problems = verify(report, min_speedup=args.min_speedup)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
