"""Dependency-free validation of benchmark reports against the JSON Schema.

The benchmark runner (:mod:`repro.tools.benchrunner`) writes ``BENCH_*.json``
reports whose shape is pinned by ``docs/bench_report.schema.json``.  The
container has no ``jsonschema`` package, so this module implements the small
draft-07 subset that schema actually uses:

``type`` (string or list; with Python's bool/int split handled correctly),
``enum``, ``properties``, ``required``, ``additionalProperties`` (boolean or
schema), and ``items`` (single-schema form).

Anything else appearing in a schema is rejected loudly rather than silently
ignored, so the checked-in schema cannot drift ahead of the validator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.util.errors import ReproError

#: Path of the checked-in benchmark-report schema, relative to the repo root.
SCHEMA_RELPATH = Path("docs") / "bench_report.schema.json"

#: Path of the checked-in trace-document schema (see repro.observability).
TRACE_SCHEMA_RELPATH = Path("docs") / "trace.schema.json"

#: Path of the checked-in service-benchmark schema (BENCH_PR4 artifacts,
#: written by :mod:`repro.tools.servicebench`).
SERVICEBENCH_SCHEMA_RELPATH = Path("docs") / "servicebench.schema.json"

#: Path of the checked-in open-loop traffic schema (BENCH_PR9 artifacts,
#: written by :mod:`repro.tools.trafficgen`).
TRAFFICGEN_SCHEMA_RELPATH = Path("docs") / "trafficgen.schema.json"

#: Schema keywords the validator understands.  Annotation-only keywords are
#: accepted and skipped; anything unknown is an error.
_ANNOTATIONS = {"$schema", "title", "description"}
_KEYWORDS = {"type", "enum", "properties", "required", "additionalProperties", "items"}


class SchemaValidationError(ReproError):
    """A document does not conform to the benchmark-report schema."""

    def __init__(self, errors: List[str]):
        self.errors = list(errors)
        preview = "; ".join(self.errors[:5])
        more = f" (+{len(self.errors) - 5} more)" if len(self.errors) > 5 else ""
        super().__init__(f"bench report schema violation: {preview}{more}")


def _type_ok(value: Any, name: str) -> bool:
    """draft-07 ``type`` check.  bool is not an integer/number in JSON Schema."""
    if name == "object":
        return isinstance(value, dict)
    if name == "array":
        return isinstance(value, list)
    if name == "string":
        return isinstance(value, str)
    if name == "boolean":
        return isinstance(value, bool)
    if name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "null":
        return value is None
    raise ReproError(f"unsupported schema type {name!r}")


def _check(value: Any, schema: Dict[str, Any], path: str, errors: List[str]) -> None:
    unknown = set(schema) - _KEYWORDS - _ANNOTATIONS
    if unknown:
        raise ReproError(
            f"schema at {path or '$'} uses unsupported keyword(s): {sorted(unknown)}"
        )
    where = path or "$"

    if "type" in schema:
        names = schema["type"]
        if isinstance(names, str):
            names = [names]
        if not any(_type_ok(value, n) for n in names):
            errors.append(f"{where}: expected {' or '.join(names)}, got {type(value).__name__}")
            return

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{where}: {value!r} not in {schema['enum']!r}")
        return

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{where}: missing required key {key!r}")
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                _check(item, props[key], f"{where}.{key}", errors)
            elif extra is False:
                errors.append(f"{where}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                _check(item, extra, f"{where}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{where}[{i}]", errors)


def validate(document: Any, schema: Dict[str, Any]) -> List[str]:
    """All schema violations in ``document`` (empty list means valid)."""
    errors: List[str] = []
    _check(document, schema, "$", errors)
    return errors


def load_schema(root: Path | None = None, relpath: Path | str = SCHEMA_RELPATH) -> Dict[str, Any]:
    """Load a checked-in schema (the benchmark report's by default).

    ``root`` is the repository root; by default it is located relative to
    this file (``src/repro/tools`` → three parents up).  ``relpath``
    selects which schema — e.g. :data:`TRACE_SCHEMA_RELPATH` for trace
    documents.
    """
    if root is None:
        root = Path(__file__).resolve().parents[3]
    return json.loads((root / Path(relpath)).read_text())


def validate_report(document: Any, root: Path | None = None) -> None:
    """Raise :class:`SchemaValidationError` unless ``document`` is a valid
    benchmark report."""
    errors = validate(document, load_schema(root))
    if errors:
        raise SchemaValidationError(errors)


def validate_trace(document: Any, root: Path | None = None) -> None:
    """Raise :class:`SchemaValidationError` unless ``document`` is a valid
    trace document (``docs/trace.schema.json``)."""
    errors = validate(document, load_schema(root, TRACE_SCHEMA_RELPATH))
    if errors:
        raise SchemaValidationError(errors)


def validate_servicebench_report(document: Any, root: Path | None = None) -> None:
    """Raise :class:`SchemaValidationError` unless ``document`` is a valid
    service-benchmark artifact (``docs/servicebench.schema.json``)."""
    errors = validate(document, load_schema(root, SERVICEBENCH_SCHEMA_RELPATH))
    if errors:
        raise SchemaValidationError(errors)


def is_servicebench_report(document: Any) -> bool:
    """Dispatch helper: does this look like a BENCH_PR4 service artifact?"""
    return (
        isinstance(document, dict)
        and isinstance(document.get("meta"), dict)
        and document["meta"].get("artifact") == "BENCH_PR4"
    )


def validate_trafficgen_report(document: Any, root: Path | None = None) -> None:
    """Raise :class:`SchemaValidationError` unless ``document`` is a valid
    open-loop traffic artifact (``docs/trafficgen.schema.json``)."""
    errors = validate(document, load_schema(root, TRAFFICGEN_SCHEMA_RELPATH))
    if errors:
        raise SchemaValidationError(errors)


def is_trafficgen_report(document: Any) -> bool:
    """Dispatch helper: does this look like a BENCH_PR9 traffic artifact?"""
    return (
        isinstance(document, dict)
        and isinstance(document.get("meta"), dict)
        and document["meta"].get("artifact") == "BENCH_PR9"
    )
