"""Service + plan-cache benchmark: cold vs cached, 1/2/4/8 workers.

Produces the PR-4 benchmark artifact (``BENCH_PR4.json`` by default)::

    python -m repro.tools.servicebench --out BENCH_PR4.json
    python -m repro.tools.servicebench --smoke          # CI-sized
    python -m repro.tools.servicebench --stress         # overload drill

Three sections, one claim each:

* ``plan_cache`` — per-query optimization latency with a cold cache
  (every query pays simplify + push + certify + statistics view + DP)
  versus a warm one (repeated shapes replay the cached tree).  The
  headline is the speedup ratio; the acceptance bar is >= 3x.
* ``concurrency`` — a :class:`~repro.service.QueryService` at 1, 2, 4,
  and 8 workers, each measured twice: ``cold`` (caching off) and
  ``cached`` (shared primed cache).  Python threads share the GIL, so
  the point is not linear scaling but that throughput *holds* under
  concurrency and the cache multiplier survives it.
* ``conformance`` — :func:`repro.conformance.check_plan_cache` over
  randomized queries: every replayed plan bag-equal to the naive
  oracle.  The report embeds the tally so the artifact is
  self-certifying.

``--stress`` adds an overload drill (tiny queue, tight deadlines,
explicit cancellations) asserting the service degrades by *resolving*
every ticket — shed, timed out, or served — rather than wedging.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any, Dict, List, Optional, Sequence

from repro.conformance.plancache_check import check_plan_cache
from repro.core.enumeration import sample_implementing_tree
from repro.core.expressions import Expression, Restrict
from repro.algebra.predicates import Comparison
from repro.datagen.random_db import random_database
from repro.datagen.topologies import GraphScenario, chain
from repro.engine.storage import Storage
from repro.optimizer.pipeline import optimize_query
from repro.optimizer.plancache import PlanCache
from repro.service import QueryService
from repro.util.rng import make_rng

#: The benchmark's worker grid.  Explicit and constant — never derived
#: from ``os.cpu_count()`` — so the 1/2/4/8 sweep means the same thing on
#: a 2-core CI runner as on a big box, and artifacts are comparable.
WORKER_COUNTS = (1, 2, 4, 8)


def build_scenario(relations: int = 6) -> GraphScenario:
    """The bench scenario: a join/outerjoin chain long enough to make DP real."""
    kinds = ["join" if i % 3 else "out" for i in range(relations - 1)]
    return chain(relations, kinds, name=f"servicebench-chain{relations}")


def build_storage(scenario: GraphScenario, rows: int, seed: int) -> Storage:
    db = random_database(
        scenario.schemas, seed=seed, max_rows=rows, domain=max(rows // 4, 4),
        null_probability=0.1,
    )
    return Storage.from_database(db)


def build_workload(
    scenario: GraphScenario, shapes: int, seed: int
) -> List[Expression]:
    """``shapes`` distinct query shapes (distinct fingerprints) over the scenario.

    Each shape is an implementing tree plus a strong restriction whose
    constant varies — the constant is part of the predicate signature, so
    every shape is its own cache entry, and the trees vary so replay
    crosses tree boundaries (Theorem 1 in action).
    """
    rng = make_rng(seed)
    nodes = sorted(scenario.schemas)
    queries: List[Expression] = []
    for i in range(shapes):
        tree = sample_implementing_tree(scenario.graph, rng)
        attr = f"{rng.choice(nodes)}.b"
        queries.append(Restrict(tree, Comparison(attr, "<=", i)))
    return queries


def bench_plan_cache(
    storage: Storage, workload: Sequence[Expression], repeats: int
) -> Dict[str, Any]:
    """Cold vs warm optimization latency over ``repeats`` passes."""
    cold_s = 0.0
    cold_queries = 0
    for _ in range(repeats):
        for query in workload:
            start = perf_counter()
            optimize_query(query, storage, use_cache=False)
            cold_s += perf_counter() - start
            cold_queries += 1

    cache = PlanCache(capacity=max(len(workload) * 2, 8))
    for query in workload:  # prime
        optimize_query(query, storage, cache=cache)
    warm_s = 0.0
    warm_queries = 0
    for _ in range(repeats):
        for query in workload:
            start = perf_counter()
            result = optimize_query(query, storage, cache=cache)
            warm_s += perf_counter() - start
            warm_queries += 1
            assert result.cache_hit, "warm pass must hit the primed cache"
    cold_ms = cold_s * 1e3 / cold_queries
    warm_ms = warm_s * 1e3 / warm_queries
    return {
        "queries": cold_queries,
        "cold_ms_per_query": round(cold_ms, 4),
        "warm_ms_per_query": round(warm_ms, 4),
        "speedup": round(cold_ms / warm_ms, 2) if warm_ms else None,
        "cache": cache.snapshot(),
    }


def bench_concurrency(
    storage: Storage,
    workload: Sequence[Expression],
    queries_per_run: int,
    workers_grid: Sequence[int] = WORKER_COUNTS,
    parallel: bool = False,
) -> List[Dict[str, Any]]:
    """Throughput at each worker count, cold and cached.

    Every service is constructed with an *explicit* worker count and an
    explicit ``parallel`` flag (default off), so the measurement is
    deterministic regardless of the host CPU count or the ambient
    ``REPRO_PARALLEL`` environment.  With ``parallel=True`` each row also
    records how many intra-query workers the ledger left the service.
    """
    rows: List[Dict[str, Any]] = []
    batch = [workload[i % len(workload)] for i in range(queries_per_run)]
    for workers in workers_grid:
        for mode in ("cold", "cached"):
            if mode == "cached":
                cache = PlanCache(capacity=max(len(workload) * 2, 8))
                for query in workload:
                    optimize_query(query, storage, cache=cache)
                service = QueryService(
                    storage, workers=workers, queue_size=queries_per_run,
                    plan_cache=cache, parallel=parallel,
                )
            else:
                service = QueryService(
                    storage, workers=workers, queue_size=queries_per_run,
                    use_cache=False, parallel=parallel,
                )
            par_snap = service.snapshot()["parallel"]
            with service:
                start = monotonic()
                tickets = service.submit_batch(batch)
                outcomes = [t.result(timeout=600) for t in tickets]
                elapsed = monotonic() - start
            ok = sum(1 for o in outcomes if o.ok)
            hits = sum(1 for o in outcomes if o.cache_hit)
            row: Dict[str, Any] = {
                "workers": workers,
                "mode": mode,
                "queries": len(outcomes),
                "ok": ok,
                "cache_hits": hits,
                "elapsed_s": round(elapsed, 4),
                "qps": round(len(outcomes) / elapsed, 2) if elapsed else None,
            }
            if parallel:
                pool = par_snap["intra_pool"] or {"workers": 0}
                row["parallel"] = True
                row["intra_workers"] = pool["workers"]
            rows.append(row)
    return rows


def stress_drill(
    storage: Storage, workload: Sequence[Expression], queries: int, seed: int
) -> Dict[str, Any]:
    """Overload the service on purpose; every ticket must still resolve."""
    rng = make_rng(seed)
    service = QueryService(
        storage, workers=4, queue_size=8, use_cache=True,
        plan_cache=PlanCache(capacity=64), default_timeout_s=2.0,
        parallel=False,  # pinned: the drill measures shedding, not joins
    )
    outcomes: Dict[str, int] = {}
    with service:
        tickets = []
        for i in range(queries):
            query = workload[i % len(workload)]
            timeout = rng.choice((0.001, 0.05, 2.0, None))
            ticket = service.submit(query, timeout_s=timeout)
            if rng.random() < 0.1:
                ticket.cancel()
            tickets.append(ticket)
        for ticket in tickets:
            status = ticket.result(timeout=600).status
            outcomes[status] = outcomes.get(status, 0) + 1
    resolved = sum(outcomes.values())
    return {
        "queries": queries,
        "resolved": resolved,
        "outcomes": outcomes,
        "all_resolved": resolved == queries,
        "service": service.snapshot(),
    }


def run(
    out_path: Optional[str],
    smoke: bool = False,
    stress: bool = False,
    seed: int = 0,
    parallel: bool = False,
    out=sys.stdout,
) -> Dict[str, Any]:
    relations = 5 if smoke else 6
    rows = 30 if smoke else 80
    shapes = 4 if smoke else 8
    repeats = 3 if smoke else 10
    queries_per_run = 24 if smoke else 96
    conformance_cases = 50 if smoke else 200

    scenario = build_scenario(relations)
    storage = build_storage(scenario, rows=rows, seed=seed + 1)
    workload = build_workload(scenario, shapes=shapes, seed=seed + 2)

    report: Dict[str, Any] = {
        "meta": {
            "artifact": "BENCH_PR4",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "smoke": smoke,
            "seed": seed,
            "scenario": scenario.name,
            "rows_per_table": rows,
            "workload_shapes": shapes,
            "worker_grid": list(WORKER_COUNTS),
            "worker_sizing": "explicit",
            "parallel": parallel,
        }
    }

    print(f"[servicebench] plan cache: {shapes} shapes x {repeats} repeats", file=out)
    report["plan_cache"] = bench_plan_cache(storage, workload, repeats=repeats)
    print(
        f"  cold {report['plan_cache']['cold_ms_per_query']} ms/q, "
        f"warm {report['plan_cache']['warm_ms_per_query']} ms/q, "
        f"speedup {report['plan_cache']['speedup']}x",
        file=out,
    )

    print(
        f"[servicebench] concurrency: workers {list(WORKER_COUNTS)}"
        + (" (+ intra-query parallel joins)" if parallel else ""),
        file=out,
    )
    report["concurrency"] = bench_concurrency(
        storage, workload, queries_per_run=queries_per_run, parallel=parallel
    )
    for row in report["concurrency"]:
        print(
            f"  workers={row['workers']} mode={row['mode']}: "
            f"{row['qps']} q/s ({row['ok']}/{row['queries']} ok)",
            file=out,
        )

    print(f"[servicebench] conformance: {conformance_cases} cases", file=out)
    conf = check_plan_cache(cases=conformance_cases, seed=seed)
    report["conformance"] = {
        "cases": conf.cases,
        "cache_hits": conf.hits,
        "reorderable": conf.reorderable,
        "mismatches": conf.mismatches,
        "ok": conf.ok,
    }
    print(f"  {conf.summary().splitlines()[0]}", file=out)

    if stress:
        print("[servicebench] stress: 4 workers, queue 8, mixed deadlines", file=out)
        report["stress"] = stress_drill(
            storage, workload, queries=120 if smoke else 400, seed=seed + 3
        )
        print(
            f"  resolved {report['stress']['resolved']}/{report['stress']['queries']}: "
            f"{report['stress']['outcomes']}",
            file=out,
        )

    from repro.tools.benchschema import validate_servicebench_report

    validate_servicebench_report(report)
    if out_path:
        Path(out_path).parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[servicebench] wrote {out_path}", file=out)
    return report


def verify(report: Dict[str, Any], min_speedup: float = 3.0) -> List[str]:
    """Acceptance checks over a report; returns a list of violations."""
    problems: List[str] = []
    speedup = report.get("plan_cache", {}).get("speedup")
    if speedup is None or speedup < min_speedup:
        problems.append(f"plan-cache speedup {speedup} < required {min_speedup}x")
    seen = {(row["workers"], row["mode"]) for row in report.get("concurrency", ())}
    for workers in WORKER_COUNTS:
        for mode in ("cold", "cached"):
            if (workers, mode) not in seen:
                problems.append(f"missing concurrency row workers={workers} mode={mode}")
    for row in report.get("concurrency", ()):
        if row["ok"] != row["queries"]:
            problems.append(
                f"concurrency workers={row['workers']} mode={row['mode']}: "
                f"{row['queries'] - row['ok']} non-ok outcomes"
            )
    conf = report.get("conformance", {})
    if not conf.get("ok"):
        problems.append(f"conformance mismatches: {conf.get('mismatches')}")
    stress = report.get("stress")
    if stress is not None and not stress.get("all_resolved"):
        problems.append("stress drill left unresolved tickets")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.servicebench",
        description="benchmark the query service and plan cache, write BENCH_PR4.json",
    )
    parser.add_argument("--out", default="BENCH_PR4.json", help="output JSON path")
    parser.add_argument("--no-out", action="store_true", help="skip writing the artifact")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("--stress", action="store_true", help="add the overload drill")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="serve with intra-query parallel joins (shared ledger-governed pool)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless cached/cold speedup reaches this (default 3.0)",
    )
    args = parser.parse_args(argv)
    report = run(
        None if args.no_out else args.out,
        smoke=args.smoke,
        stress=args.stress,
        seed=args.seed,
        parallel=args.parallel,
    )
    problems = verify(report, min_speedup=args.min_speedup)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
