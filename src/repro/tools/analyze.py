"""Analyze a query's reorderability from the command line.

Two modes:

* ``--scenario NAME`` — analyze one of the built-in graph scenarios
  (``example1``, ``example2``, ``figure1``, ``figure2``, ``oj-chain``,
  ``weak-chain``): prints the graph, the Lemma-1/niceness verdict with
  violations, the strongness report, the implementing-tree count, and —
  when a scenario ships with data — the optimizer's pick.

* ``--sql "Select All From ..."`` — compile a Section-5 query block
  against the demo entity store and print the same analysis plus results.

Examples::

    python -m repro.tools.analyze --scenario example1
    python -m repro.tools.analyze --scenario example2
    python -m repro.tools.analyze --sql "Select All From DEPARTMENT-->Manager"
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.core import (
    count_implementing_trees,
    strongness_requirements,
    theorem1_applies,
    violations,
)
from repro.datagen import (
    chain,
    example2_graph,
    figure1_graph,
    figure2_graph,
    section5_store,
    weaken_oj_edge,
)
from repro.datagen.topologies import GraphScenario
from repro.language import compile_query


def _example1_scenario() -> GraphScenario:
    return chain(3, ["join", "out"], name="example1")


SCENARIOS: Dict[str, Callable[[], GraphScenario]] = {
    "example1": _example1_scenario,
    "example2": example2_graph,
    "figure1": figure1_graph,
    "figure2": figure2_graph,
    "oj-chain": lambda: chain(4, ["out", "out", "out"], name="oj-chain"),
    "weak-chain": lambda: weaken_oj_edge(chain(3, ["out", "out"]), ("R2", "R3")),
}


def analyze_scenario(name: str, out=None) -> int:
    out = out if out is not None else sys.stdout
    try:
        scenario = SCENARIOS[name]()
    except KeyError:
        print(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}", file=out)
        return 2
    graph, registry = scenario.graph, scenario.registry
    print(f"scenario: {scenario.name} — {scenario.description}", file=out)
    print(graph.describe(), file=out)
    print(file=out)

    problems = violations(graph)
    if problems:
        print("niceness: NOT nice", file=out)
        for p in problems:
            print(f"  - {p}", file=out)
    else:
        print("niceness: nice (no forbidden patterns)", file=out)

    for requirement in strongness_requirements(graph, registry):
        print(f"strongness: {requirement}", file=out)

    verdict = theorem1_applies(graph, registry)
    print(
        "Theorem 1: "
        + ("FREELY REORDERABLE" if verdict.freely_reorderable else "not freely reorderable"),
        file=out,
    )
    count = count_implementing_trees(graph)
    print(f"implementing trees: {count}", file=out)
    if verdict.freely_reorderable and count:
        print(
            "=> any of those trees evaluates to the same result; an optimizer "
            "may pick freely.",
            file=out,
        )
    elif count:
        print(
            "=> the trees may disagree; only the result-preserving transform "
            "closure of the written tree is safe.",
            file=out,
        )
    return 0 if verdict.freely_reorderable else 1


def analyze_sql(text: str, out=None) -> int:
    out = out if out is not None else sys.stdout
    store = section5_store(n_departments=4, employees_per_department=3, seed=7)
    compiled = compile_query(text, store)
    print(f"query: {compiled.source}", file=out)
    print(compiled.graph.describe(), file=out)
    print(file=out)
    print(
        "Theorem 1: "
        + (
            "FREELY REORDERABLE (as Section 5.3 guarantees for every block)"
            if compiled.verdict.freely_reorderable
            else str(compiled.verdict)
        ),
        file=out,
    )
    print(f"implementing trees: {count_implementing_trees(compiled.graph)}", file=out)
    print(f"initial tree:   {compiled.initial_tree.to_infix()}", file=out)
    optimized = compiled.optimized_tree()
    print(f"optimized tree: {optimized.to_infix()}", file=out)
    rows = list(compiled.run(optimized))
    print(f"result rows: {len(rows)} (against the built-in demo store)", file=out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Reorderability analysis for join/outerjoin queries "
        "(Rosenthal & Galindo-Legaria, SIGMOD 1990).",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--scenario", choices=sorted(SCENARIOS), help="analyze a built-in graph scenario"
    )
    group.add_argument("--sql", help="analyze a Section-5 query block (demo store)")
    args = parser.parse_args(argv)
    if args.scenario:
        return analyze_scenario(args.scenario)
    return analyze_sql(args.sql)


if __name__ == "__main__":
    raise SystemExit(main())
