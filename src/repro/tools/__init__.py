"""Command-line tools built on the library (see ``repro.tools.analyze``)."""
