"""Command-line front end for the differential conformance harness.

Four subcommands::

    python -m repro.tools.conformance fuzz --cases 1000 --seed 0
    python -m repro.tools.conformance replay artifacts/repros/repro-123.json
    python -m repro.tools.conformance planspace --scenario figure2 --seed 3
    python -m repro.tools.conformance plancache --cases 200 --seed 0

``fuzz`` runs a fixed-seed differential campaign across the executor
tiers, shrinking any disagreement to a minimal reproducer JSON under
``--artifacts`` (default ``artifacts/repros``).  ``replay`` re-runs one
such artifact and prints the per-tier verdict.  ``planspace`` checks
Theorem 1 executably: every implementing tree of the chosen scenario and
every optimizer's output must agree on a random database.  ``plancache``
checks the plan cache the same way: replayed (cached) plans must be
bag-equal to the naive oracle on randomized queries.

Exit status is 0 iff every check agreed — CI wires the fuzz smoke
directly to this.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.conformance import (
    EXECUTOR_TIERS,
    check_plan_cache,
    check_plan_space,
    replay_artifact,
    run_campaign,
)
from repro.datagen import (
    TOPOLOGY_KINDS,
    GraphScenario,
    chain,
    example2_graph,
    figure1_graph,
    figure2_graph,
    join_cycle,
    random_nice_graph,
    snowflake,
    star,
)
from repro.tools import instrumentation
from repro.util.errors import ReproError

SCENARIOS: Dict[str, Callable[[], GraphScenario]] = {
    "example1": lambda: chain(3, ["join", "out"], name="example1"),
    "example2": example2_graph,
    "figure1": figure1_graph,
    "figure2": figure2_graph,
    "oj-chain": lambda: chain(4, ["out", "out", "out"], name="oj-chain"),
    "star": lambda: star(4, oj_leaves=2),
    "snowflake": lambda: snowflake(3, arm_length=2, oj_arms=1),
    "cycle": lambda: join_cycle(4),
    "random-nice": lambda: random_nice_graph(3, 2, seed=1),
}


def _parse_executors(spec: Optional[str]) -> tuple:
    if not spec:
        return EXECUTOR_TIERS
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    unknown = [n for n in names if n not in EXECUTOR_TIERS]
    if unknown:
        raise SystemExit(
            f"unknown executor tier(s) {unknown}; known: {', '.join(EXECUTOR_TIERS)}"
        )
    return names


def _parse_topologies(spec: Optional[str]) -> Optional[tuple]:
    if spec is None:
        return None
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    unknown = [n for n in names if n not in TOPOLOGY_KINDS]
    if unknown or not names:
        # A spec that parses to nothing (e.g. "--topologies ,") would
        # silently widen to every family; treat it as the typo it is.
        raise SystemExit(
            f"unknown or empty topology kind(s) {unknown}; "
            f"known: {', '.join(TOPOLOGY_KINDS)}"
        )
    return names


def cmd_fuzz(args: argparse.Namespace, out) -> int:
    report = run_campaign(
        cases=args.cases,
        seed=args.seed,
        executors=_parse_executors(args.executors),
        artifacts_dir=args.artifacts,
        shrink=not args.no_shrink,
        topologies=_parse_topologies(args.topologies),
        corpus_dir=args.corpus_cache,
    )
    print(report.summary(), file=out)
    if args.stats:
        for key, value in sorted(instrumentation.snapshot().items()):
            print(f"  stat {key}: {value}", file=out)
    return 0 if report.ok else 1


def cmd_replay(args: argparse.Namespace, out) -> int:
    worst = 0
    for path in args.artifacts:
        try:
            case, result = replay_artifact(path)
        except (OSError, ValueError, KeyError, ReproError) as exc:
            raise SystemExit(f"cannot replay {path}: {exc}")
        print(f"{path}: {case.description}", file=out)
        print(f"  query: {case.expression!r}", file=out)
        print(f"  {result.summary()}", file=out)
        if not result.ok:
            worst = 1
    return worst


def cmd_planspace(args: argparse.Namespace, out) -> int:
    names = args.scenario or sorted(SCENARIOS)
    status = 0
    for name in names:
        factory = SCENARIOS.get(name)
        if factory is None:
            raise SystemExit(f"unknown scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}")
        report = check_plan_space(factory(), seed=args.seed, max_trees=args.max_trees)
        print(report.summary(), file=out)
        if not report.ok:
            status = 1
    return status


def cmd_plancache(args: argparse.Namespace, out) -> int:
    report = check_plan_cache(cases=args.cases, seed=args.seed)
    print(report.summary(), file=out)
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.conformance",
        description="differential conformance checks across executor tiers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run a fixed-seed differential fuzz campaign")
    fuzz.add_argument("--cases", type=int, default=200, help="number of cases (default 200)")
    fuzz.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    fuzz.add_argument(
        "--executors",
        default=None,
        help=f"comma-separated tier list (default all: {','.join(EXECUTOR_TIERS)})",
    )
    fuzz.add_argument(
        "--artifacts",
        default="artifacts/repros",
        help="directory for shrunk reproducer JSONs (default artifacts/repros)",
    )
    fuzz.add_argument(
        "--topologies",
        default=None,
        help=(
            "comma-separated topology families to draw from "
            f"(default all: {','.join(TOPOLOGY_KINDS)})"
        ),
    )
    fuzz.add_argument(
        "--corpus-cache",
        default=None,
        metavar="DIR",
        help=(
            "cache generated case corpora under DIR, keyed on "
            "(seed, cases, topologies, datagen sources); replays inputs on "
            "hit but always re-executes every check"
        ),
    )
    fuzz.add_argument("--no-shrink", action="store_true", help="keep raw counterexamples")
    fuzz.add_argument("--stats", action="store_true", help="print instrumentation counters")
    fuzz.set_defaults(func=cmd_fuzz)

    replay = sub.add_parser("replay", help="re-run reproducer artifact(s)")
    replay.add_argument("artifacts", nargs="+", help="reproducer JSON path(s)")
    replay.set_defaults(func=cmd_replay)

    planspace = sub.add_parser(
        "planspace", help="check all implementing trees + optimizer outputs agree"
    )
    planspace.add_argument(
        "--scenario",
        action="append",
        help=f"scenario name (repeatable; default all: {', '.join(sorted(SCENARIOS))})",
    )
    planspace.add_argument("--seed", type=int, default=0, help="database seed (default 0)")
    planspace.add_argument(
        "--max-trees", type=int, default=2000, help="enumeration cap per graph (default 2000)"
    )
    planspace.set_defaults(func=cmd_planspace)

    plancache = sub.add_parser(
        "plancache", help="check cached-plan replay is bag-equal to the naive oracle"
    )
    plancache.add_argument("--cases", type=int, default=200, help="number of cases (default 200)")
    plancache.add_argument("--seed", type=int, default=0, help="master seed (default 0)")
    plancache.set_defaults(func=cmd_plancache)

    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    raise SystemExit(main())
