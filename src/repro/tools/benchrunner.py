"""Persistent benchmark harness: run the bench suite, record a JSON report.

``benchmarks/run_all.py`` (a thin CLI over :func:`main`) executes every
``bench_*.py`` scenario in its own pytest subprocess and writes one report
(default ``BENCH_PR1.json`` at the repo root) containing, per scenario:

* wall-clock of the whole scenario run,
* per-test timings (pytest-benchmark means) when timing is enabled,
* the work counters from :mod:`repro.tools.instrumentation` — tuples
  retrieved from base tables, optimizer plans built, DP subsets filled,
  implementing trees enumerated.

For the headline scenarios (planning scalability, Theorem 1 free
reordering, optimizer comparison) the default mode *also* reruns with
``REPRO_NAIVE_KERNELS=1`` — the pre-optimization operators and
enumerators — and records per-test speedups, so the report doubles as the
before/after evidence for the hash-kernel and bitset fast paths.

Modes:

* default        — all scenarios timed (fast path), naive reruns +
                   comparisons for the headline scenarios;
* ``--naive``    — run everything on the naive path instead (no
                   comparisons); useful for an explicit before snapshot;
* ``--smoke``    — headline scenarios only, single pass, timing disabled:
                   the CI health check;
* ``--seed N``   — forwarded as ``--bench-seed`` to the suite (offsets
                   random-database generation in seed-aware scenarios);
* ``--only S``   — filter scenarios by substring;
* ``--trace-overhead`` — additionally rerun the headline scenarios with
                   ambient tracing on (``REPRO_TRACE`` unset) and off
                   (``REPRO_TRACE=0``) and record per-scenario overhead
                   under a ``trace_overhead`` report key.  The acceptance
                   bar is overhead below 5%; per-test benchmark means are
                   summed (min across repeats) so pytest startup cost
                   cannot mask a real per-query regression.
* ``--parallel-bench`` — additionally measure the morsel-driven parallel
                   executor (:mod:`repro.engine.parallel`) on a large
                   equi-join: serial kernels vs a 1/2/4/8-worker grid,
                   plus a spill-vs-in-memory cost curve at shrinking
                   ``REPRO_MEMORY_BUDGET`` values.  Serial and parallel
                   are timed in the *same process run* and the headline
                   number is their ratio, which stays stable even when
                   absolute wall-clock drifts on noisy runners.  Written
                   under a ``parallel`` report key (the BENCH_PR5
                   artifact's payload); every timed run is bag-equality
                   checked against the serial result.
* ``--batch-bench`` — additionally measure vectorized columnar execution
                   (:mod:`repro.engine.batch`) against the row-at-a-time
                   iterators on the headline 30k-row hash join: row
                   serial vs native batch drain vs batch-through-the-
                   row-adapter vs batching stacked on the 4-worker
                   parallel executor.  Cells are interleaved, warmed up,
                   reduced by min-of-N with raw per-round timings kept,
                   and sequence/bag-equality checked untimed.  Written
                   under a ``batch`` report key (the BENCH_PR6
                   artifact's payload).
* ``--yannakakis-bench`` — additionally measure the acyclic fast path
                   (:mod:`repro.engine.yannakakis`) against the binary
                   DP plan on a chain and a star workload built so every
                   binary join order pays a large dangling intermediate
                   while the full reducer shrinks the inputs to the
                   output's support first.  Both cells run the same query
                   end-to-end through the optimizer (cache disabled),
                   with the ``REPRO_YANNAKAKIS`` switch selecting the
                   plan shape; strategies and untimed bag-equality are
                   asserted before timing.  Written under a
                   ``yannakakis`` report key (the BENCH_PR7 artifact's
                   payload).
* ``--backend-bench`` — additionally measure local engine execution
                   against hinted and native execution on every available
                   SQL backend (:mod:`repro.backends`) over the chain,
                   star, and triangle workloads.  The optimizer's binary
                   DP tree is forced onto each backend via the
                   parenthesized hint grammar and raced against the
                   backend's own join order; each cell is bag-equality
                   checked untimed against the local result.  Written
                   under a ``backends`` report key (the BENCH_PR10
                   artifact's payload).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[3]
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR1.json"

#: Scenarios that get a naive-path rerun and a speedup comparison.
HEADLINE = (
    "bench_planning_scalability.py",
    "bench_theorem1_free_reorder.py",
    "bench_optimizer_comparison.py",
    "bench_parallel_join.py",
)

#: Instrumentation keys copied into each scenario record.
STAT_KEYS = ("tuples_retrieved", "plans_optimized", "dp_subsets", "trees_enumerated")


def discover_scenarios(bench_dir: Path = BENCH_DIR, only: Optional[str] = None) -> List[Path]:
    """All bench_*.py files, sorted; optionally filtered by substring."""
    scenarios = sorted(bench_dir.glob("bench_*.py"))
    if only:
        scenarios = [p for p in scenarios if only in p.name]
    return scenarios


def run_scenario(
    path: Path,
    *,
    naive: bool = False,
    seed: int = 0,
    timings: bool = True,
    trace: Optional[str] = None,
) -> Dict[str, object]:
    """Run one scenario in a pytest subprocess; return its record.

    ``trace`` pins the child's ``REPRO_TRACE``: ``"on"`` removes the
    variable (ambient tracing), ``"off"`` sets ``0``; None inherits.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_NAIVE_KERNELS"] = "1" if naive else ""
    if trace == "on":
        env.pop("REPRO_TRACE", None)
    elif trace == "off":
        env["REPRO_TRACE"] = "0"

    cmd = [sys.executable, "-m", "pytest", str(path), "-q", "-p", "no:cacheprovider"]
    cmd += ["--bench-seed", str(seed)]

    with tempfile.TemporaryDirectory() as tmp:
        stats_file = Path(tmp) / "stats.json"
        env["REPRO_BENCH_STATS_FILE"] = str(stats_file)
        bench_json = Path(tmp) / "bench.json"
        if timings:
            cmd += [f"--benchmark-json={bench_json}"]
        else:
            cmd += ["--benchmark-disable"]

        start = time.perf_counter()
        proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True)
        wall = time.perf_counter() - start

        record: Dict[str, object] = {
            "scenario": path.name,
            "mode": "naive" if naive else "fast",
            "ok": proc.returncode == 0,
            "returncode": proc.returncode,
            "wall_clock_s": round(wall, 4),
        }
        if proc.returncode != 0:
            record["tail"] = proc.stdout.splitlines()[-15:]
        if stats_file.exists():
            stats = json.loads(stats_file.read_text())
            for key in STAT_KEYS:
                record[key] = stats.get(key, 0)
        if timings and bench_json.exists():
            data = json.loads(bench_json.read_text())
            record["timings"] = {
                b["name"]: round(b["stats"]["mean"], 6) for b in data.get("benchmarks", [])
            }
    return record


def compare_records(fast: Dict[str, object], naive: Dict[str, object]) -> Dict[str, object]:
    """Per-test and wall-clock speedups of a fast/naive record pair."""
    tests: Dict[str, Dict[str, float]] = {}
    fast_t = fast.get("timings") or {}
    naive_t = naive.get("timings") or {}
    for name in sorted(set(fast_t) & set(naive_t)):
        f, n = fast_t[name], naive_t[name]
        tests[name] = {
            "fast_s": f,
            "naive_s": n,
            "speedup": round(n / f, 2) if f > 0 else None,
        }
    return {
        "tests": tests,
        "wall_clock": {
            "fast_s": fast["wall_clock_s"],
            "naive_s": naive["wall_clock_s"],
        },
        "tuples_retrieved": {
            "fast": fast.get("tuples_retrieved", 0),
            "naive": naive.get("tuples_retrieved", 0),
        },
    }


def measure_trace_overhead(
    scenarios: Sequence[Path], seed: int = 0, repeats: int = 4
) -> Dict[str, Dict[str, object]]:
    """Ambient-tracing overhead per scenario (and overall).

    Each scenario runs ``repeats`` times with ``REPRO_TRACE`` unset and
    ``repeats`` times with ``REPRO_TRACE=0``; per-test benchmark means
    are reduced by min across repeats (pytest-benchmark calibration is
    noisy on microsecond-scale tests) and summed over the tests both
    modes ran.  Overhead is the percentage the traced sum exceeds the
    untraced sum.
    """
    overhead: Dict[str, Dict[str, object]] = {}
    total_on = total_off = 0.0
    for path in scenarios:
        best: Dict[str, Dict[str, float]] = {"on": {}, "off": {}}
        for mode in ("on", "off"):
            for _ in range(repeats):
                record = run_scenario(path, seed=seed, timings=True, trace=mode)
                if not record["ok"]:
                    raise RuntimeError(f"{path.name} failed during overhead run ({mode})")
                for name, mean in (record.get("timings") or {}).items():
                    prior = best[mode].get(name)
                    best[mode][name] = mean if prior is None else min(prior, mean)
        shared = sorted(set(best["on"]) & set(best["off"]))
        traced_s = round(sum(best["on"][n] for n in shared), 6)
        untraced_s = round(sum(best["off"][n] for n in shared), 6)
        pct = round(100.0 * (traced_s - untraced_s) / untraced_s, 2) if untraced_s > 0 else None
        overhead[path.name] = {
            "traced_s": traced_s,
            "untraced_s": untraced_s,
            "overhead_pct": pct,
        }
        total_on += traced_s
        total_off += untraced_s
    overhead["overall"] = {
        "traced_s": round(total_on, 6),
        "untraced_s": round(total_off, 6),
        "overhead_pct": round(100.0 * (total_on - total_off) / total_off, 2)
        if total_off > 0
        else None,
    }
    return overhead


#: Worker grid for the parallel bench.  Explicit, never ``os.cpu_count()``.
PARALLEL_WORKER_GRID = (1, 2, 4, 8)

#: Memory budgets for the spill cost curve, largest (never spills) first.
SPILL_BUDGETS = ("unlimited", "32MB", "8MB", "2MB")


def _headline_table(rng, name: str, keys, payload: str, rows: int, null_fraction: float = 0.01):
    """Schema and row dicts for one headline bench base table.

    ``keys`` maps each key column to a half-open ``(lo, hi)`` range sampled
    uniformly; ``payload`` names a row-counter ballast column.  A
    ``null_fraction`` sprinkle of null keys keeps the dedicated null
    partition (parallel), the null composite-key drop (Yannakakis), and
    3VL comparisons on the measured path of every consumer.  All bench
    workloads — two-table equi-join, chain, star — are concatenations of
    these blocks, so their cell/schema plumbing lives in one place.
    """
    from repro.algebra.nulls import NULL

    schema = [f"{name}.{col}" for col in (*keys, payload)]
    data = []
    for i in range(rows):
        row = {}
        for col, (lo, hi) in keys.items():
            value = NULL if rng.random() < null_fraction else rng.randrange(lo, hi)
            row[f"{name}.{col}"] = value
        row[f"{name}.{payload}"] = i
        data.append(row)
    return schema, data


def _parallel_workload(seed: int, rows: int, domain: int):
    """A two-table equi-join workload sized to dominate partitioning cost.

    Key skew is mild (uniform keys over ``domain`` values, so about
    ``rows**2/domain`` output rows) plus a sprinkle of null keys so the
    dedicated null partition is on the measured path.
    """
    from repro.algebra.predicates import AttrRef, Comparison
    from repro.algebra.relation import Relation
    from repro.algebra.tuples import Row
    from repro.util.rng import make_rng

    rng = make_rng(seed)

    def table(prefix: str, payload: str) -> Relation:
        schema, data = _headline_table(rng, prefix, {"k": (0, domain)}, payload, rows)
        return Relation(tuple(schema), [Row(row) for row in data])

    predicate = Comparison(AttrRef("L.k"), "=", AttrRef("R.k"))
    return table("L", "a"), table("R", "b"), predicate


def measure_parallel(
    seed: int = 0,
    smoke: bool = False,
    workers_grid: Sequence[int] = PARALLEL_WORKER_GRID,
    budgets: Sequence[str] = SPILL_BUDGETS,
    rounds: int = 3,
    warmup_rounds: int = 1,
) -> Dict[str, object]:
    """Serial-vs-parallel speedup grid and the spill cost curve, in-process.

    Rounds are interleaved (serial, then each grid point, repeated) and
    reduced by min, so a load spike on the host hits both sides rather
    than biasing the ratio.  Before the timed rounds every cell runs
    ``warmup_rounds`` untimed passes — the first execution pays one-off
    costs (worker-pool spin-up, allocator growth, branch warm-up) that
    made the BENCH_PR5 grid non-monotonic across worker counts.  The
    per-round raw timings of every cell are recorded under
    ``raw_timings_s`` so outliers are diagnosable from the BENCH file
    itself.  Every parallel result is asserted bag-equal to the serial
    kernels' result before its time is recorded.
    """
    from repro.algebra.operators import join
    from repro.engine.parallel.budget import BUDGET_ENV, reset_process_budget
    from repro.engine.parallel.config import using_config
    from repro.tools import instrumentation
    from repro.util.fastpath import parallel_mode

    # ~20 matches per key: the probe loop (where the partitioned fast path
    # wins) dominates input scanning/partitioning, as in the paper-scale
    # key-FK joins; ~590k output rows at full size.
    rows = 4_000 if smoke else 30_000
    domain = max(rows // 20, 2)
    left, right, predicate = _parallel_workload(seed, rows, domain)

    def timed(fn):
        start = time.perf_counter()
        result = fn()
        return time.perf_counter() - start, result

    def run_serial():
        with parallel_mode(False):
            return join(left, right, predicate)

    def run_parallel(w: int):
        with parallel_mode(True), using_config(workers=w, min_rows=0):
            return join(left, right, predicate)

    serial_rel = run_serial()  # warm-up pass doubles as the oracle result
    for _ in range(max(warmup_rounds - 1, 0)):
        run_serial()
    for w in workers_grid:
        for _ in range(warmup_rounds):
            if run_parallel(w) != serial_rel:
                raise RuntimeError(
                    f"parallel join (workers={w}) is not bag-equal to serial"
                )

    raw: Dict[str, List[float]] = {"serial": []}
    for w in workers_grid:
        raw[f"workers={w}"] = []
    for _ in range(rounds):
        elapsed, rel = timed(run_serial)
        raw["serial"].append(round(elapsed, 4))
        if rel != serial_rel:
            raise RuntimeError("serial join result drifted between rounds")
        for w in workers_grid:
            elapsed, rel = timed(lambda: run_parallel(w))
            if rel != serial_rel:
                raise RuntimeError(f"parallel join (workers={w}) is not bag-equal to serial")
            raw[f"workers={w}"].append(round(elapsed, 4))

    serial_s = min(raw["serial"])
    grid_s: Dict[int, float] = {w: min(raw[f"workers={w}"]) for w in workers_grid}

    grid = [
        {
            "workers": w,
            "elapsed_s": round(grid_s[w], 4),
            "speedup": round(serial_s / grid_s[w], 2) if grid_s[w] > 0 else None,
        }
        for w in workers_grid
    ]

    # Spill cost curve: same join at 4 workers under shrinking budgets.
    # The budget env is read per operator, so flipping it between runs is
    # enough; reset_process_budget() drops the cached root budget.
    prior_budget = os.environ.get(BUDGET_ENV)
    curve: List[Dict[str, object]] = []
    in_memory_s: Optional[float] = None
    try:
        for budget in budgets:
            if budget == "unlimited":
                os.environ.pop(BUDGET_ENV, None)
            else:
                os.environ[BUDGET_ENV] = budget
            reset_process_budget()
            spills_before = instrumentation.snapshot().get("parallel_spills", 0)
            best = float("inf")
            for _ in range(rounds):
                with parallel_mode(True), using_config(workers=4, min_rows=0):
                    elapsed, rel = timed(lambda: join(left, right, predicate))
                if rel != serial_rel:
                    raise RuntimeError(f"spill run (budget={budget}) is not bag-equal to serial")
                best = min(best, elapsed)
            spill_events = instrumentation.snapshot().get("parallel_spills", 0) - spills_before
            if budget == "unlimited":
                in_memory_s = best
            curve.append(
                {
                    "budget": budget,
                    "elapsed_s": round(best, 4),
                    "spill_events": spill_events,
                    "cost_ratio": round(best / in_memory_s, 2)
                    if in_memory_s and in_memory_s > 0
                    else None,
                    "bag_equal": True,
                }
            )
    finally:
        if prior_budget is None:
            os.environ.pop(BUDGET_ENV, None)
        else:
            os.environ[BUDGET_ENV] = prior_budget
        reset_process_budget()

    speedup_at_4 = next((g["speedup"] for g in grid if g["workers"] == 4), None)
    return {
        "workload": {
            "left_rows": len(left),
            "right_rows": len(right),
            "output_rows": len(serial_rel),
            "domain": domain,
            "null_key_fraction": 0.01,
        },
        "rounds": rounds,
        "warmup_rounds": warmup_rounds,
        "raw_timings_s": raw,
        "serial_s": round(serial_s, 4),
        "grid": grid,
        "speedup_at_4_workers": speedup_at_4,
        "spill_curve": curve,
    }


def _batch_workload(seed: int, rows: int, domain: int):
    """The PR-5 headline join rebuilt as engine base tables (no indexes).

    Same shape as :func:`_parallel_workload` — uniform keys over
    ``domain`` values (~20 matches per key at full size), 1% null keys —
    but stored in :class:`~repro.engine.storage.Storage` so the measured
    object is the physical :class:`~repro.engine.iterators.HashJoin`
    pipeline, row path versus batch path.  No index is created: an
    indexed right side would make the planner prefer INLJ, which is not
    the operator under test.
    """
    from repro.engine.iterators import HashJoin, SeqScan
    from repro.engine.storage import Storage
    from repro.util.rng import make_rng

    rng = make_rng(seed)
    storage = Storage()
    for prefix, payload in (("L", "a"), ("R", "b")):
        schema, data = _headline_table(rng, prefix, {"k": (0, domain)}, payload, rows)
        storage.create_table(prefix, schema, data)
    plan = HashJoin(SeqScan(storage["L"]), SeqScan(storage["R"]), "L.k", "R.k")
    return storage, plan


def measure_batch(
    seed: int = 0,
    smoke: bool = False,
    rounds: int = 3,
    warmup_rounds: int = 1,
) -> Dict[str, object]:
    """Row-at-a-time vs vectorized execution of the headline hash join.

    Four cells, interleaved round-robin and reduced by min (after
    ``warmup_rounds`` untimed passes each), raw per-round timings kept:

    * ``row_serial``     — the PR-5 baseline: ``REPRO_BATCH=0``, rows
      drained through ``execute()``;
    * ``batch_serial``   — the headline: batches drained natively through
      ``execute_batches()``, rows counted but never materialized as
      ``Row`` objects (the columnar result is the batch engine's working
      representation; converting it back to rows is the *consumer's*
      choice, priced separately);
    * ``batch_rows``     — honesty cell: batch execution drained through
      the row-compat adapter, paying full ``Row`` materialization;
    * ``combined_4w``    — batching + the morsel-parallel executor at 4
      workers (vectorized children feeding the partitioned join).

    Correctness is verified untimed: the batch row stream must be
    *sequence*-identical to the row path's, and the combined run
    bag-equal to it.
    """
    from collections import Counter

    from repro.engine.metrics import Metrics
    from repro.engine.parallel.config import using_config
    from repro.util.fastpath import batch_mode, batch_size, parallel_mode

    rows = 4_000 if smoke else 30_000
    domain = max(rows // 20, 2)
    _storage, plan = _batch_workload(seed, rows, domain)

    def row_serial() -> list:
        with batch_mode(False):
            return list(plan.execute(Metrics()))

    def batch_serial() -> int:
        total = 0
        with batch_mode(True):
            for batch in plan.execute_batches(Metrics()):
                total += batch.num_rows
        return total

    def batch_rows() -> list:
        with batch_mode(True):
            return list(plan.execute(Metrics()))

    def combined_4w() -> int:
        total = 0
        with batch_mode(True), parallel_mode(True), using_config(workers=4, min_rows=0):
            for batch in plan.execute_batches(Metrics()):
                total += batch.num_rows
        return total

    # Untimed correctness pass (doubles as warm-up round one).
    baseline = row_serial()
    if batch_rows() != baseline:
        raise RuntimeError("batch row stream is not sequence-identical to the row path")
    if batch_serial() != len(baseline):
        raise RuntimeError("batch row count disagrees with the row path")
    combined_bag: Counter = Counter()
    with batch_mode(True), parallel_mode(True), using_config(workers=4, min_rows=0):
        for batch in plan.execute_batches(Metrics()):
            for row in batch.iter_rows():
                combined_bag[row] += 1
    if combined_bag != Counter(baseline):
        raise RuntimeError("combined batch+parallel run is not bag-equal to serial")

    cells = {
        "row_serial": row_serial,
        "batch_serial": batch_serial,
        "batch_rows": batch_rows,
        "combined_4w": combined_4w,
    }
    for _ in range(max(warmup_rounds - 1, 0)):
        for fn in cells.values():
            fn()

    raw: Dict[str, List[float]] = {name: [] for name in cells}
    for _ in range(rounds):
        for name, fn in cells.items():
            start = time.perf_counter()
            fn()
            raw[name].append(round(time.perf_counter() - start, 4))

    best = {name: min(times) for name, times in raw.items()}

    def speedup(cell: str) -> Optional[float]:
        return round(best["row_serial"] / best[cell], 2) if best[cell] > 0 else None

    return {
        "workload": {
            "left_rows": rows,
            "right_rows": rows,
            "output_rows": len(baseline),
            "domain": domain,
            "null_key_fraction": 0.01,
        },
        "rounds": rounds,
        "warmup_rounds": warmup_rounds,
        "batch_size": batch_size(),
        "raw_timings_s": raw,
        "row_serial_s": round(best["row_serial"], 4),
        "batch_serial_s": round(best["batch_serial"], 4),
        "batch_rows_s": round(best["batch_rows"], 4),
        "combined_4w_s": round(best["combined_4w"], 4),
        "speedup_batch_serial": speedup("batch_serial"),
        "speedup_batch_rows": speedup("batch_rows"),
        "speedup_combined_4w": speedup("combined_4w"),
        "bag_equal": True,
    }


def _yannakakis_workloads(seed: int, smoke: bool):
    """Acyclic workloads where binary join orders pay, and the reducer wins.

    Both separate the *dangling* keys from the *surviving* keys.  The
    heavy key windows carry massive duplication but are anti-correlated
    across tables, so every binary DP order fans them into a huge
    intermediate that the query's other end then kills entirely; only a
    handful of thinly-planted needle keys (outside the heavy windows)
    reach the output.  The full reducer semijoin-reduces the heavy rows
    away in passes linear in the base tables, before any join runs:

    * ``chain`` (E1 − E2 − E3): E2's halves pair an in-window heavy key
      with a far-range key matching nothing, so either join order
      explodes ~half of E2 through an endpoint's duplicates first;
    * ``star`` (H with leaves L1..L3): each hub third sits in exactly one
      leaf's heavy window, so whichever leaf DP joins first fans a third
      of the hub out through that leaf's duplicates.
    """
    from repro.algebra.predicates import eq
    from repro.core import jn
    from repro.engine.storage import Storage
    from repro.util.rng import make_rng

    rng = make_rng(seed)
    rows = 4_000 if smoke else 30_000
    workloads = []

    # Chain: heavy endpoint window [0, 200) (~100x duplication at full
    # size), E2 far range [1000, 1200), needle keys in [2000, 2010).
    window, far, needles = 200, (1_000, 1_200), (2_000, 2_010)
    heavy = rows * 4 // 5
    storage = Storage()
    for name, col in (("E1", "k1"), ("E3", "k2")):
        schema, data = _headline_table(rng, name, {col: (0, window)}, "p", heavy)
        data += _headline_table(rng, name, {col: needles}, "p", 30, null_fraction=0.0)[1]
        storage.create_table(name, schema, data)
    schema, data = _headline_table(rng, "E2", {"k1": (0, window), "k2": far}, "p", rows // 2)
    data += _headline_table(rng, "E2", {"k1": far, "k2": (0, window)}, "p", rows // 2)[1]
    data += _headline_table(rng, "E2", {"k1": needles, "k2": needles}, "p", 10, null_fraction=0.0)[1]
    storage.create_table("E2", schema, data)
    workloads.append(
        {
            "topology": "chain",
            "storage": storage,
            "query": jn(
                jn("E1", "E2", eq("E1.k1", "E2.k1")), "E3", eq("E2.k2", "E3.k2")
            ),
            "tables": {"E1": heavy + 30, "E2": rows + 10, "E3": heavy + 30},
        }
    )

    # Star: heavy leaf window [0, 100) (~160x duplication at full size),
    # hub far range [1000, 1100) — as narrow as the window, keeping the
    # hub's per-attribute distinct count low enough for the estimated
    # hub-leaf join to clear the cost gate's base-scan bill.
    window, far, needles = 100, (1_000, 1_100), (2_000, 2_005)
    leaf_heavy = rows * 8 // 15
    core = 5
    attrs = ("a", "b", "c")
    storage = Storage()
    schema = None
    data = []
    for in_window in attrs:
        ranges = {a: (0, window) if a == in_window else far for a in attrs}
        schema, part = _headline_table(rng, "H", ranges, "p", rows // 3)
        data += part
    data += _headline_table(
        rng, "H", {a: needles for a in attrs}, "p", core, null_fraction=0.0
    )[1]
    storage.create_table("H", schema, data)
    tables = {"H": len(data)}
    query = jn("H", "L1", eq("H.a", "L1.a"))
    for i, attr in enumerate(attrs):
        leaf = f"L{i + 1}"
        leaf_schema, leaf_data = _headline_table(rng, leaf, {attr: (0, window)}, "p", leaf_heavy)
        leaf_data += _headline_table(rng, leaf, {attr: needles}, "p", 10, null_fraction=0.0)[1]
        storage.create_table(leaf, leaf_schema, leaf_data)
        tables[leaf] = leaf_heavy + 10
        if i:
            query = jn(query, leaf, eq(f"H.{attr}", f"{leaf}.{attr}"))
    workloads.append({"topology": "star", "storage": storage, "query": query, "tables": tables})
    return workloads


def measure_yannakakis(
    seed: int = 0,
    smoke: bool = False,
    rounds: int = 3,
    warmup_rounds: int = 1,
) -> Dict[str, object]:
    """End-to-end DP plan vs the semijoin-reduced Yannakakis plan.

    Each workload runs the *same* query through the full optimizer
    pipeline twice per round — ``REPRO_YANNAKAKIS`` off (binary DP tree)
    and on (GYO join tree through the full reducer) — interleaved and
    reduced by min, caching disabled so both cells pay optimization every
    time.  Before any timing, an untimed pass asserts the strategies
    actually diverge ("dp" vs "yannakakis") and that the two results are
    bag-equal; a fast path that silently fell back would otherwise
    benchmark DP against itself.
    """
    from repro.algebra import bag_equal
    from repro.optimizer.pipeline import optimize_and_run
    from repro.util.fastpath import yannakakis_mode

    results: List[Dict[str, object]] = []
    for workload in _yannakakis_workloads(seed, smoke):
        topology, storage = workload["topology"], workload["storage"]
        query = workload["query"]

        def run(fast: bool):
            with yannakakis_mode(fast):
                result, execution = optimize_and_run(query, storage, use_cache=False)
            return result, execution.relation

        # Untimed strategy + correctness pass (doubles as warm-up one).
        pipeline, reduced = run(True)
        if pipeline.strategy != "yannakakis":
            raise RuntimeError(
                f"{topology}: fast path not taken (strategy={pipeline.strategy!r})"
            )
        pipeline, baseline = run(False)
        if pipeline.strategy != "dp":
            raise RuntimeError(
                f"{topology}: DP cell not on the DP path (strategy={pipeline.strategy!r})"
            )
        if not bag_equal(reduced, baseline):
            raise RuntimeError(f"{topology}: semijoin-reduced result is not bag-equal to DP")

        for _ in range(max(warmup_rounds - 1, 0)):
            run(True)
            run(False)

        raw: Dict[str, List[float]] = {"dp": [], "yannakakis": []}
        for _ in range(rounds):
            for cell, fast in (("dp", False), ("yannakakis", True)):
                start = time.perf_counter()
                run(fast)
                raw[cell].append(round(time.perf_counter() - start, 4))

        dp_s, yann_s = min(raw["dp"]), min(raw["yannakakis"])
        results.append(
            {
                "topology": topology,
                "tables": workload["tables"],
                "output_rows": len(baseline),
                "raw_timings_s": raw,
                "dp_s": round(dp_s, 4),
                "yannakakis_s": round(yann_s, 4),
                "speedup": round(dp_s / yann_s, 2) if yann_s > 0 else None,
                "bag_equal": True,
            }
        )
    return {"rounds": rounds, "warmup_rounds": warmup_rounds, "workloads": results}


def _wcoj_workloads(smoke: bool):
    """Cyclic workloads on the AGM worst-case family, where binary plans lose.

    Both instances plant ``k`` duplicate copies of the star-spike rows
    ``(0, j)`` and ``(j, 0)`` for ``j in 1..m`` in every relation of the
    cycle, plus a handful of diagonal *needle* rows ``(v, v)`` that form
    the only real matches.  The zero-spike makes EVERY binary join order
    pair the ``m*k`` left-spike rows with the ``m*k`` right-spike rows —
    an ``(m*k)^2`` intermediate — before the third relation kills all of
    it; Leapfrog Triejoin intersects one variable at a time, discovers
    the spike never completes a cycle after ``O(m)`` seeks, and emits
    just the needles.  Duplication keeps the per-attribute distinct
    counts low, so the estimated C_out of the best DP plan sits above the
    AGM bound and the cost gate genuinely dispatches to the operator —
    the bench measures the shipped gate, not a forced code path.

    * ``triangle``: R1(x,z) ⋈ R2(x,y) ⋈ R3(y,z), the 3-cycle;
    * ``clique4``: K4 with one edge variable per relation pair — R1 is a
      tiny all-zero anchor (plus needle diagonals) and R2/R3/R4 carry the
      spike triangle on their three pairwise-shared attributes.
    """
    from repro.algebra.predicates import eq
    from repro.core import jn
    from repro.engine.storage import Storage

    m, k = (8, 12) if smoke else (16, 20)
    needles = 5
    spike = []
    for j in range(1, m + 1):
        spike += [(0, j)] * k + [(j, 0)] * k
    diag = [(m + 1 + t, m + 1 + t) for t in range(needles)]

    workloads = []

    storage = Storage()
    for name in ("R1", "R2", "R3"):
        rows = [{f"{name}.a": a, f"{name}.b": b} for a, b in spike + diag]
        storage.create_table(name, [f"{name}.a", f"{name}.b"], rows)
    workloads.append(
        {
            "topology": "triangle",
            "storage": storage,
            "query": jn(
                jn("R1", "R2", eq("R1.a", "R2.a")),
                "R3",
                eq("R2.b", "R3.a") & eq("R3.b", "R1.b"),
            ),
            "tables": {name: 2 * m * k + needles for name in ("R1", "R2", "R3")},
        }
    )

    m, k = (8, 20) if smoke else (12, 24)
    spike = []
    for j in range(1, m + 1):
        spike += [(0, j)] * k + [(j, 0)] * k
    diag = [(m + 1 + t, m + 1 + t) for t in range(needles)]
    storage = Storage()
    for name in ("R2", "R3", "R4"):
        rows = [{f"{name}.a": 0, f"{name}.b": p, f"{name}.c": q} for p, q in spike]
        rows += [{f"{name}.a": v, f"{name}.b": v, f"{name}.c": w} for v, w in diag]
        storage.create_table(name, [f"{name}.a", f"{name}.b", f"{name}.c"], rows)
    anchor = [{"R1.a": 0, "R1.b": 0, "R1.c": 0}]
    anchor += [{"R1.a": v, "R1.b": v, "R1.c": v} for v, _w in diag]
    storage.create_table("R1", ["R1.a", "R1.b", "R1.c"], anchor)
    workloads.append(
        {
            "topology": "clique4",
            "storage": storage,
            "query": jn(
                jn(
                    jn("R1", "R2", eq("R1.a", "R2.a")),
                    "R3",
                    eq("R1.b", "R3.a") & eq("R2.b", "R3.b"),
                ),
                "R4",
                eq("R1.c", "R4.a") & eq("R2.c", "R4.b") & eq("R3.c", "R4.c"),
            ),
            "tables": {
                "R1": len(anchor),
                **{name: 2 * m * k + needles for name in ("R2", "R3", "R4")},
            },
        }
    )
    return workloads


def measure_wcoj(
    smoke: bool = False,
    rounds: int = 3,
    warmup_rounds: int = 1,
) -> Dict[str, object]:
    """End-to-end best DP binary plan vs the Leapfrog Triejoin dispatch.

    Each cyclic workload runs the *same* query through the full optimizer
    pipeline twice per round — ``REPRO_WCOJ`` off (binary DP tree) and on
    (AGM-gated Leapfrog Triejoin) — interleaved and reduced by min, with
    caching disabled so both cells pay optimization every time.  Before
    any timing, an untimed pass asserts the strategies actually diverge
    ("dp" vs "wcoj") and that the two results are bag-equal; a cost gate
    that silently kept the binary plan would otherwise benchmark DP
    against itself.
    """
    from repro.algebra import bag_equal
    from repro.optimizer.pipeline import optimize_and_run
    from repro.util.fastpath import wcoj_mode

    results: List[Dict[str, object]] = []
    for workload in _wcoj_workloads(smoke):
        topology, storage = workload["topology"], workload["storage"]
        query = workload["query"]

        def run(fast: bool):
            with wcoj_mode(fast):
                result, execution = optimize_and_run(query, storage, use_cache=False)
            return result, execution.relation

        # Untimed strategy + correctness pass (doubles as warm-up one).
        pipeline, leapfrog = run(True)
        if pipeline.strategy != "wcoj":
            raise RuntimeError(
                f"{topology}: WCOJ path not taken (strategy={pipeline.strategy!r})"
            )
        pipeline, baseline = run(False)
        if pipeline.strategy != "dp":
            raise RuntimeError(
                f"{topology}: DP cell not on the DP path (strategy={pipeline.strategy!r})"
            )
        if not bag_equal(leapfrog, baseline):
            raise RuntimeError(f"{topology}: Leapfrog Triejoin result is not bag-equal to DP")

        for _ in range(max(warmup_rounds - 1, 0)):
            run(True)
            run(False)

        raw: Dict[str, List[float]] = {"dp": [], "wcoj": []}
        for _ in range(rounds):
            for cell, fast in (("dp", False), ("wcoj", True)):
                start = time.perf_counter()
                run(fast)
                raw[cell].append(round(time.perf_counter() - start, 4))

        dp_s, wcoj_s = min(raw["dp"]), min(raw["wcoj"])
        results.append(
            {
                "topology": topology,
                "tables": workload["tables"],
                "output_rows": len(baseline),
                "raw_timings_s": raw,
                "dp_s": round(dp_s, 4),
                "wcoj_s": round(wcoj_s, 4),
                "speedup": round(dp_s / wcoj_s, 2) if wcoj_s > 0 else None,
                "bag_equal": True,
            }
        )
    return {"rounds": rounds, "warmup_rounds": warmup_rounds, "workloads": results}


def measure_backends(
    seed: int = 0,
    smoke: bool = False,
    rounds: int = 3,
    warmup_rounds: int = 1,
) -> Dict[str, object]:
    """Local engine vs hinted and native execution on the SQL backends.

    Reuses the chain and star workloads from the Yannakakis bench and the
    triangle workload from the WCOJ bench — all three were built so join
    *order* matters.  Per workload the optimizer runs once (fast paths
    off, so ``chosen`` is the binary DP tree every backend can follow)
    and then each cell runs the same query:

    * ``local``            — the DP tree on this library's engine;
    * ``<name>_hinted``    — the DP tree forced onto the backend via the
      parenthesized hint grammar (prepared-statement reuse keyed by the
      plan fingerprint);
    * ``<name>_native``    — the transpiled query handed to the backend's
      own optimizer, free to pick any join order.

    The hinted-vs-native ratio per backend is the join-order delta the
    issue asks for.  Before any timing, an untimed pass asserts every
    cell is bag-equal to the local result; data loads are untimed too
    (``sync`` once per workload), so cells time query execution only.
    """
    from repro.algebra import bag_equal
    from repro.backends.base import available_backends, create_backend
    from repro.engine.executor import execute as engine_execute
    from repro.optimizer.pipeline import optimize_query
    from repro.util.fastpath import wcoj_mode, yannakakis_mode

    workloads = _yannakakis_workloads(seed, smoke)  # chain, star
    workloads.append(_wcoj_workloads(smoke)[0])  # triangle
    names = [n for n in available_backends() if n != "local"]

    results: List[Dict[str, object]] = []
    for workload in workloads:
        topology, storage = workload["topology"], workload["storage"]
        query = workload["query"]
        with yannakakis_mode(False), wcoj_mode(False):
            pipeline = optimize_query(query, storage, use_cache=False)
        chosen, fingerprint = pipeline.chosen, pipeline.fingerprint

        backends = {name: create_backend(name) for name in names}
        cells: Dict[str, object] = {
            "local": lambda: engine_execute(chosen, storage).relation
        }
        for name, backend in backends.items():
            backend.sync(storage)
            cells[f"{name}_hinted"] = (
                lambda b=backend: b.execute(chosen, hint=chosen, fingerprint=fingerprint)
            )
            cells[f"{name}_native"] = lambda b=backend: b.execute(query)

        # Untimed correctness pass (doubles as one warm-up round): every
        # cell must produce the same bag before any number is recorded.
        baseline = cells["local"]()
        for cell, fn in cells.items():
            if cell == "local":
                continue
            if not bag_equal(fn(), baseline):
                raise RuntimeError(f"{topology}: {cell} is not bag-equal to local")
        for _ in range(max(warmup_rounds - 1, 0)):
            for fn in cells.values():
                fn()

        raw: Dict[str, List[float]] = {cell: [] for cell in cells}
        for _ in range(rounds):
            for cell, fn in cells.items():
                start = time.perf_counter()
                fn()
                raw[cell].append(round(time.perf_counter() - start, 4))
        for backend in backends.values():
            backend.close()

        best = {cell: min(times) for cell, times in raw.items()}
        speedup_vs_local = {
            cell: round(best["local"] / s, 2) if s > 0 else None
            for cell, s in best.items()
            if cell != "local"
        }
        hinted_vs_native = {}
        for name in names:
            native, hinted = best[f"{name}_native"], best[f"{name}_hinted"]
            hinted_vs_native[name] = round(native / hinted, 2) if hinted > 0 else None
        results.append(
            {
                "topology": topology,
                "tables": workload["tables"],
                "output_rows": len(baseline),
                "raw_timings_s": raw,
                "cells": {cell: round(s, 4) for cell, s in best.items()},
                "speedup_vs_local": speedup_vs_local,
                "hinted_vs_native": hinted_vs_native,
                "bag_equal": True,
            }
        )
    return {
        "rounds": rounds,
        "warmup_rounds": warmup_rounds,
        "available": ["local"] + names,
        "workloads": results,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_all.py", description="Run the benchmark suite and write a JSON report."
    )
    parser.add_argument("--naive", action="store_true", help="run on the naive kernels")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headline scenarios only, timing disabled (CI health check)",
    )
    parser.add_argument("--seed", type=int, default=0, help="forwarded as --bench-seed")
    parser.add_argument("--only", help="substring filter on scenario file names")
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="also measure ambient-tracing overhead on the headline scenarios",
    )
    parser.add_argument(
        "--parallel-bench",
        action="store_true",
        help="also measure the parallel executor (worker grid + spill curve); "
        "default output becomes BENCH_PR5.json",
    )
    parser.add_argument(
        "--batch-bench",
        action="store_true",
        help="also measure vectorized batch execution against the row-at-a-time "
        "path on the headline hash join; default output becomes BENCH_PR6.json",
    )
    parser.add_argument(
        "--yannakakis-bench",
        action="store_true",
        help="also measure the acyclic fast path (GYO join tree + full reducer) "
        "against the binary DP plan on chain and star workloads; default "
        "output becomes BENCH_PR7.json",
    )
    parser.add_argument(
        "--wcoj-bench",
        action="store_true",
        help="also measure the cyclic fast path (AGM-gated Leapfrog Triejoin) "
        "against the best binary DP plan on triangle and 4-clique workloads; "
        "default output becomes BENCH_PR8.json",
    )
    parser.add_argument(
        "--backend-bench",
        action="store_true",
        help="also measure local vs hinted vs native execution on every "
        "available SQL backend (chain, star, triangle workloads); default "
        "output becomes BENCH_PR10.json",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="report path (default BENCH_PR1.json)"
    )
    args = parser.parse_args(argv)
    if args.output is None:
        if args.backend_bench:
            args.output = REPO_ROOT / "BENCH_PR10.json"
        elif args.wcoj_bench:
            args.output = REPO_ROOT / "BENCH_PR8.json"
        elif args.yannakakis_bench:
            args.output = REPO_ROOT / "BENCH_PR7.json"
        elif args.batch_bench:
            args.output = REPO_ROOT / "BENCH_PR6.json"
        elif args.parallel_bench:
            args.output = REPO_ROOT / "BENCH_PR5.json"
        else:
            args.output = DEFAULT_OUTPUT

    if args.smoke:
        scenarios = [BENCH_DIR / name for name in HEADLINE]
        if args.only:
            scenarios = [p for p in scenarios if args.only in p.name]
    else:
        scenarios = discover_scenarios(only=args.only)
    if not scenarios:
        print("no scenarios matched", file=sys.stderr)
        return 2

    timings = not args.smoke
    records: List[Dict[str, object]] = []
    comparisons: Dict[str, object] = {}
    failures = 0
    for path in scenarios:
        record = run_scenario(path, naive=args.naive, seed=args.seed, timings=timings)
        records.append(record)
        status = "ok" if record["ok"] else "FAIL"
        print(f"[{record['mode']}] {path.name:40s} {status}  {record['wall_clock_s']:.2f}s")
        if not record["ok"]:
            failures += 1
            for line in record.get("tail", []):
                print(f"    {line}")
        elif not args.naive and not args.smoke and path.name in HEADLINE:
            naive_record = run_scenario(path, naive=True, seed=args.seed, timings=True)
            records.append(naive_record)
            status = "ok" if naive_record["ok"] else "FAIL"
            print(
                f"[naive] {path.name:40s} {status}  {naive_record['wall_clock_s']:.2f}s"
            )
            if not naive_record["ok"]:
                failures += 1
            else:
                comparisons[path.name] = compare_records(record, naive_record)

    report = {
        "meta": {
            "generated_by": "benchmarks/run_all.py",
            "seed": args.seed,
            "smoke": args.smoke,
            "mode": "naive" if args.naive else "fast",
            "python": sys.version.split()[0],
        },
        "scenarios": records,
        "comparisons": comparisons,
    }
    if args.trace_overhead:
        headline = [BENCH_DIR / name for name in HEADLINE]
        if args.only:
            headline = [p for p in headline if args.only in p.name]
        print("\nmeasuring ambient-tracing overhead on the headline scenarios...")
        overhead = measure_trace_overhead(headline, seed=args.seed)
        report["trace_overhead"] = overhead
        for name, entry in overhead.items():
            print(
                f"  {name:40s} traced {entry['traced_s']:.4f}s / "
                f"untraced {entry['untraced_s']:.4f}s  ({entry['overhead_pct']:+.2f}%)"
            )
    if args.parallel_bench:
        print("\nmeasuring the parallel executor (serial vs worker grid, spill curve)...")
        section = measure_parallel(seed=args.seed, smoke=args.smoke)
        report["parallel"] = section
        print(f"  serial kernels: {section['serial_s']:.4f}s")
        for point in section["grid"]:
            print(
                f"  workers={point['workers']}: {point['elapsed_s']:.4f}s "
                f"({point['speedup']}x)"
            )
        for point in section["spill_curve"]:
            print(
                f"  budget={point['budget']:>9s}: {point['elapsed_s']:.4f}s, "
                f"{point['spill_events']} spill(s), cost x{point['cost_ratio']}"
            )
    if args.batch_bench:
        print("\nmeasuring vectorized batch execution vs the row-at-a-time path...")
        section = measure_batch(seed=args.seed, smoke=args.smoke)
        report["batch"] = section
        print(f"  row serial:        {section['row_serial_s']:.4f}s")
        print(
            f"  batch serial:      {section['batch_serial_s']:.4f}s "
            f"({section['speedup_batch_serial']}x)"
        )
        print(
            f"  batch + rows:      {section['batch_rows_s']:.4f}s "
            f"({section['speedup_batch_rows']}x)"
        )
        print(
            f"  combined 4 workers: {section['combined_4w_s']:.4f}s "
            f"({section['speedup_combined_4w']}x)"
        )
    if args.yannakakis_bench:
        print("\nmeasuring the acyclic fast path (full reducer) vs the DP plan...")
        section = measure_yannakakis(seed=args.seed, smoke=args.smoke)
        report["yannakakis"] = section
        for entry in section["workloads"]:
            print(
                f"  {entry['topology']:6s} dp {entry['dp_s']:.4f}s / "
                f"yannakakis {entry['yannakakis_s']:.4f}s  ({entry['speedup']}x, "
                f"{entry['output_rows']} rows out)"
            )
    if args.wcoj_bench:
        print("\nmeasuring the cyclic fast path (Leapfrog Triejoin) vs the DP plan...")
        section = measure_wcoj(smoke=args.smoke)
        report["wcoj"] = section
        for entry in section["workloads"]:
            print(
                f"  {entry['topology']:8s} dp {entry['dp_s']:.4f}s / "
                f"wcoj {entry['wcoj_s']:.4f}s  ({entry['speedup']}x, "
                f"{entry['output_rows']} rows out)"
            )
    if args.backend_bench:
        print("\nmeasuring local vs hinted vs native execution per backend...")
        section = measure_backends(seed=args.seed, smoke=args.smoke)
        report["backends"] = section
        print(f"  backends available: {', '.join(section['available'])}")
        for entry in section["workloads"]:
            cells = ", ".join(
                f"{cell} {secs:.4f}s" for cell, secs in sorted(entry["cells"].items())
            )
            print(f"  {entry['topology']:8s} {cells}")
            for name, ratio in sorted(entry["hinted_vs_native"].items()):
                print(f"           {name}: hinted is {ratio}x native order")
    from repro.tools.benchschema import validate_report

    validate_report(report)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    for name, cmp in comparisons.items():
        speedups = [t["speedup"] for t in cmp["tests"].values() if t["speedup"]]
        if speedups:
            print(
                f"  {name}: per-test speedup min {min(speedups):.2f}x / "
                f"max {max(speedups):.2f}x over naive"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
