"""Persistent benchmark harness: run the bench suite, record a JSON report.

``benchmarks/run_all.py`` (a thin CLI over :func:`main`) executes every
``bench_*.py`` scenario in its own pytest subprocess and writes one report
(default ``BENCH_PR1.json`` at the repo root) containing, per scenario:

* wall-clock of the whole scenario run,
* per-test timings (pytest-benchmark means) when timing is enabled,
* the work counters from :mod:`repro.tools.instrumentation` — tuples
  retrieved from base tables, optimizer plans built, DP subsets filled,
  implementing trees enumerated.

For the headline scenarios (planning scalability, Theorem 1 free
reordering, optimizer comparison) the default mode *also* reruns with
``REPRO_NAIVE_KERNELS=1`` — the pre-optimization operators and
enumerators — and records per-test speedups, so the report doubles as the
before/after evidence for the hash-kernel and bitset fast paths.

Modes:

* default        — all scenarios timed (fast path), naive reruns +
                   comparisons for the headline scenarios;
* ``--naive``    — run everything on the naive path instead (no
                   comparisons); useful for an explicit before snapshot;
* ``--smoke``    — headline scenarios only, single pass, timing disabled:
                   the CI health check;
* ``--seed N``   — forwarded as ``--bench-seed`` to the suite (offsets
                   random-database generation in seed-aware scenarios);
* ``--only S``   — filter scenarios by substring;
* ``--trace-overhead`` — additionally rerun the headline scenarios with
                   ambient tracing on (``REPRO_TRACE`` unset) and off
                   (``REPRO_TRACE=0``) and record per-scenario overhead
                   under a ``trace_overhead`` report key.  The acceptance
                   bar is overhead below 5%; per-test benchmark means are
                   summed (min across repeats) so pytest startup cost
                   cannot mask a real per-query regression.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parents[3]
BENCH_DIR = REPO_ROOT / "benchmarks"
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PR1.json"

#: Scenarios that get a naive-path rerun and a speedup comparison.
HEADLINE = (
    "bench_planning_scalability.py",
    "bench_theorem1_free_reorder.py",
    "bench_optimizer_comparison.py",
)

#: Instrumentation keys copied into each scenario record.
STAT_KEYS = ("tuples_retrieved", "plans_optimized", "dp_subsets", "trees_enumerated")


def discover_scenarios(bench_dir: Path = BENCH_DIR, only: Optional[str] = None) -> List[Path]:
    """All bench_*.py files, sorted; optionally filtered by substring."""
    scenarios = sorted(bench_dir.glob("bench_*.py"))
    if only:
        scenarios = [p for p in scenarios if only in p.name]
    return scenarios


def run_scenario(
    path: Path,
    *,
    naive: bool = False,
    seed: int = 0,
    timings: bool = True,
    trace: Optional[str] = None,
) -> Dict[str, object]:
    """Run one scenario in a pytest subprocess; return its record.

    ``trace`` pins the child's ``REPRO_TRACE``: ``"on"`` removes the
    variable (ambient tracing), ``"off"`` sets ``0``; None inherits.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    env["REPRO_NAIVE_KERNELS"] = "1" if naive else ""
    if trace == "on":
        env.pop("REPRO_TRACE", None)
    elif trace == "off":
        env["REPRO_TRACE"] = "0"

    cmd = [sys.executable, "-m", "pytest", str(path), "-q", "-p", "no:cacheprovider"]
    cmd += ["--bench-seed", str(seed)]

    with tempfile.TemporaryDirectory() as tmp:
        stats_file = Path(tmp) / "stats.json"
        env["REPRO_BENCH_STATS_FILE"] = str(stats_file)
        bench_json = Path(tmp) / "bench.json"
        if timings:
            cmd += [f"--benchmark-json={bench_json}"]
        else:
            cmd += ["--benchmark-disable"]

        start = time.perf_counter()
        proc = subprocess.run(cmd, env=env, cwd=REPO_ROOT, capture_output=True, text=True)
        wall = time.perf_counter() - start

        record: Dict[str, object] = {
            "scenario": path.name,
            "mode": "naive" if naive else "fast",
            "ok": proc.returncode == 0,
            "returncode": proc.returncode,
            "wall_clock_s": round(wall, 4),
        }
        if proc.returncode != 0:
            record["tail"] = proc.stdout.splitlines()[-15:]
        if stats_file.exists():
            stats = json.loads(stats_file.read_text())
            for key in STAT_KEYS:
                record[key] = stats.get(key, 0)
        if timings and bench_json.exists():
            data = json.loads(bench_json.read_text())
            record["timings"] = {
                b["name"]: round(b["stats"]["mean"], 6) for b in data.get("benchmarks", [])
            }
    return record


def compare_records(fast: Dict[str, object], naive: Dict[str, object]) -> Dict[str, object]:
    """Per-test and wall-clock speedups of a fast/naive record pair."""
    tests: Dict[str, Dict[str, float]] = {}
    fast_t = fast.get("timings") or {}
    naive_t = naive.get("timings") or {}
    for name in sorted(set(fast_t) & set(naive_t)):
        f, n = fast_t[name], naive_t[name]
        tests[name] = {
            "fast_s": f,
            "naive_s": n,
            "speedup": round(n / f, 2) if f > 0 else None,
        }
    return {
        "tests": tests,
        "wall_clock": {
            "fast_s": fast["wall_clock_s"],
            "naive_s": naive["wall_clock_s"],
        },
        "tuples_retrieved": {
            "fast": fast.get("tuples_retrieved", 0),
            "naive": naive.get("tuples_retrieved", 0),
        },
    }


def measure_trace_overhead(
    scenarios: Sequence[Path], seed: int = 0, repeats: int = 4
) -> Dict[str, Dict[str, object]]:
    """Ambient-tracing overhead per scenario (and overall).

    Each scenario runs ``repeats`` times with ``REPRO_TRACE`` unset and
    ``repeats`` times with ``REPRO_TRACE=0``; per-test benchmark means
    are reduced by min across repeats (pytest-benchmark calibration is
    noisy on microsecond-scale tests) and summed over the tests both
    modes ran.  Overhead is the percentage the traced sum exceeds the
    untraced sum.
    """
    overhead: Dict[str, Dict[str, object]] = {}
    total_on = total_off = 0.0
    for path in scenarios:
        best: Dict[str, Dict[str, float]] = {"on": {}, "off": {}}
        for mode in ("on", "off"):
            for _ in range(repeats):
                record = run_scenario(path, seed=seed, timings=True, trace=mode)
                if not record["ok"]:
                    raise RuntimeError(f"{path.name} failed during overhead run ({mode})")
                for name, mean in (record.get("timings") or {}).items():
                    prior = best[mode].get(name)
                    best[mode][name] = mean if prior is None else min(prior, mean)
        shared = sorted(set(best["on"]) & set(best["off"]))
        traced_s = round(sum(best["on"][n] for n in shared), 6)
        untraced_s = round(sum(best["off"][n] for n in shared), 6)
        pct = round(100.0 * (traced_s - untraced_s) / untraced_s, 2) if untraced_s > 0 else None
        overhead[path.name] = {
            "traced_s": traced_s,
            "untraced_s": untraced_s,
            "overhead_pct": pct,
        }
        total_on += traced_s
        total_off += untraced_s
    overhead["overall"] = {
        "traced_s": round(total_on, 6),
        "untraced_s": round(total_off, 6),
        "overhead_pct": round(100.0 * (total_on - total_off) / total_off, 2)
        if total_off > 0
        else None,
    }
    return overhead


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_all.py", description="Run the benchmark suite and write a JSON report."
    )
    parser.add_argument("--naive", action="store_true", help="run on the naive kernels")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="headline scenarios only, timing disabled (CI health check)",
    )
    parser.add_argument("--seed", type=int, default=0, help="forwarded as --bench-seed")
    parser.add_argument("--only", help="substring filter on scenario file names")
    parser.add_argument(
        "--trace-overhead",
        action="store_true",
        help="also measure ambient-tracing overhead on the headline scenarios",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="report path (default BENCH_PR1.json)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scenarios = [BENCH_DIR / name for name in HEADLINE]
        if args.only:
            scenarios = [p for p in scenarios if args.only in p.name]
    else:
        scenarios = discover_scenarios(only=args.only)
    if not scenarios:
        print("no scenarios matched", file=sys.stderr)
        return 2

    timings = not args.smoke
    records: List[Dict[str, object]] = []
    comparisons: Dict[str, object] = {}
    failures = 0
    for path in scenarios:
        record = run_scenario(path, naive=args.naive, seed=args.seed, timings=timings)
        records.append(record)
        status = "ok" if record["ok"] else "FAIL"
        print(f"[{record['mode']}] {path.name:40s} {status}  {record['wall_clock_s']:.2f}s")
        if not record["ok"]:
            failures += 1
            for line in record.get("tail", []):
                print(f"    {line}")
        elif not args.naive and not args.smoke and path.name in HEADLINE:
            naive_record = run_scenario(path, naive=True, seed=args.seed, timings=True)
            records.append(naive_record)
            status = "ok" if naive_record["ok"] else "FAIL"
            print(
                f"[naive] {path.name:40s} {status}  {naive_record['wall_clock_s']:.2f}s"
            )
            if not naive_record["ok"]:
                failures += 1
            else:
                comparisons[path.name] = compare_records(record, naive_record)

    report = {
        "meta": {
            "generated_by": "benchmarks/run_all.py",
            "seed": args.seed,
            "smoke": args.smoke,
            "mode": "naive" if args.naive else "fast",
            "python": sys.version.split()[0],
        },
        "scenarios": records,
        "comparisons": comparisons,
    }
    if args.trace_overhead:
        headline = [BENCH_DIR / name for name in HEADLINE]
        if args.only:
            headline = [p for p in headline if args.only in p.name]
        print("\nmeasuring ambient-tracing overhead on the headline scenarios...")
        overhead = measure_trace_overhead(headline, seed=args.seed)
        report["trace_overhead"] = overhead
        for name, entry in overhead.items():
            print(
                f"  {name:40s} traced {entry['traced_s']:.4f}s / "
                f"untraced {entry['untraced_s']:.4f}s  ({entry['overhead_pct']:+.2f}%)"
            )
    from repro.tools.benchschema import validate_report

    validate_report(report)
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {args.output}")

    for name, cmp in comparisons.items():
        speedups = [t["speedup"] for t in cmp["tests"].values() if t["speedup"]]
        if speedups:
            print(
                f"  {name}: per-test speedup min {min(speedups):.2f}x / "
                f"max {max(speedups):.2f}x over naive"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
