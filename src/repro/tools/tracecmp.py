"""Diff two trace or benchmark files and flag per-operator regressions.

``python -m repro.tools.tracecmp BASELINE CANDIDATE`` compares two files
of the *same* kind:

* **trace documents** (``docs/trace.schema.json``, written by
  :func:`repro.observability.export.write_trace`) — engine operator spans
  (category ``engine.op``) are aggregated by operator label into *self*
  wall time: inclusive duration minus the durations of nested operator
  spans.  Self time is the quantity that localizes a slowdown — a sleep
  injected into one operator inflates the inclusive time of every
  ancestor, but the self time of only that operator;
* **benchmark reports** (``docs/bench_report.schema.json``, written by
  ``benchmarks/run_all.py``) — per-test pytest-benchmark means are keyed
  ``scenario::test``.

A key *regresses* when the candidate is slower than the baseline by more
than ``--threshold`` (a ratio, default 1.25×) **and** by more than
``--min-delta-ms`` (an absolute floor, default 1 ms, so timer noise on
microsecond-scale operators never trips the ratio test).  The CLI prints
one line per shared key and exits ``1`` iff any key regressed — the shape
CI wants for a perf gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.util.errors import ReproError

#: Span category aggregated from trace documents.
OPERATOR_CATEGORY = "engine.op"


@dataclass
class KeyStats:
    """Aggregated timing for one comparison key (operator or test)."""

    key: str
    total_ms: float
    count: int = 1
    rows: Optional[int] = None


@dataclass
class Finding:
    """One key's baseline-vs-candidate comparison."""

    key: str
    baseline_ms: float
    candidate_ms: float
    ratio: Optional[float]
    regressed: bool

    def render(self) -> str:
        flag = "REGRESSION" if self.regressed else "ok"
        ratio = f"{self.ratio:.2f}x" if self.ratio is not None else "n/a"
        return (
            f"{flag:10s} {self.key:55s} "
            f"{self.baseline_ms:10.3f}ms -> {self.candidate_ms:10.3f}ms  ({ratio})"
        )


def _span_durations_ms(doc: Dict[str, Any]) -> Dict[int, float]:
    """Inclusive duration per span id, for finished spans."""
    out: Dict[int, float] = {}
    for rec in doc.get("spans", ()):
        start, end = rec.get("start_ns"), rec.get("end_ns")
        if start is not None and end is not None:
            out[rec["id"]] = (end - start) / 1e6
    return out


def aggregate_trace(doc: Dict[str, Any]) -> Dict[str, KeyStats]:
    """Self-time per operator label across every ``engine.op`` span.

    Self time = the span's inclusive duration minus the inclusive
    durations of its direct ``engine.op`` children (clamped at zero
    against timer granularity).
    """
    spans = list(doc.get("spans", ()))
    durations = _span_durations_ms(doc)
    is_op = {rec["id"]: rec.get("category") == OPERATOR_CATEGORY for rec in spans}
    child_ms: Dict[int, float] = {}
    for rec in spans:
        parent = rec.get("parent")
        if parent is not None and is_op.get(rec["id"]) and is_op.get(parent):
            child_ms[parent] = child_ms.get(parent, 0.0) + durations.get(rec["id"], 0.0)
    stats: Dict[str, KeyStats] = {}
    for rec in spans:
        if not is_op.get(rec["id"]) or rec["id"] not in durations:
            continue
        self_ms = max(durations[rec["id"]] - child_ms.get(rec["id"], 0.0), 0.0)
        rows = rec.get("counters", {}).get("rows_out")
        entry = stats.get(rec["name"])
        if entry is None:
            stats[rec["name"]] = KeyStats(rec["name"], self_ms, 1, rows)
        else:
            entry.total_ms += self_ms
            entry.count += 1
            if rows is not None:
                entry.rows = (entry.rows or 0) + rows
    return stats


def aggregate_bench(doc: Dict[str, Any]) -> Dict[str, KeyStats]:
    """Per-test mean timings of a benchmark report, keyed scenario::test.

    Reports carrying a ``parallel`` section (BENCH_PR5) also contribute
    its serial baseline, worker-grid points, and spill-curve points, so
    the same CLI diffs parallel-executor performance against a committed
    baseline.  Reports carrying a ``batch`` section (BENCH_PR6) likewise
    contribute its row-at-a-time baseline and vectorized cells as
    ``batch::`` keys, a ``yannakakis`` section (BENCH_PR7) contributes
    per-topology DP and semijoin-reducer cells as ``yannakakis::`` keys,
    a ``wcoj`` section (BENCH_PR8) contributes per-topology DP and
    Leapfrog Triejoin cells as ``wcoj::`` keys, and a ``backends``
    section (BENCH_PR10) contributes every per-topology execution cell
    (local / hinted / native per backend) as ``backend::`` keys.
    """
    stats: Dict[str, KeyStats] = {}
    for record in doc.get("scenarios", ()):
        if record.get("mode") == "naive":
            continue  # compare like against like: the fast-path pass only
        for test, mean_s in (record.get("timings") or {}).items():
            key = f"{record['scenario']}::{test}"
            stats[key] = KeyStats(key, mean_s * 1e3)
    parallel = doc.get("parallel")
    if parallel:
        stats["parallel::serial"] = KeyStats("parallel::serial", parallel["serial_s"] * 1e3)
        for point in parallel.get("grid", ()):
            key = f"parallel::workers={point['workers']}"
            stats[key] = KeyStats(key, point["elapsed_s"] * 1e3)
        for point in parallel.get("spill_curve", ()):
            key = f"parallel::budget={point['budget']}"
            stats[key] = KeyStats(key, point["elapsed_s"] * 1e3)
    batch = doc.get("batch")
    if batch:
        for cell in ("row_serial", "batch_serial", "batch_rows", "combined_4w"):
            key = f"batch::{cell}"
            stats[key] = KeyStats(key, batch[f"{cell}_s"] * 1e3)
    yannakakis = doc.get("yannakakis")
    if yannakakis:
        for workload in yannakakis.get("workloads", ()):
            for cell in ("dp", "yannakakis"):
                key = f"yannakakis::{workload['topology']}:{cell}"
                stats[key] = KeyStats(key, workload[f"{cell}_s"] * 1e3)
    wcoj = doc.get("wcoj")
    if wcoj:
        for workload in wcoj.get("workloads", ()):
            for cell in ("dp", "wcoj"):
                key = f"wcoj::{workload['topology']}:{cell}"
                stats[key] = KeyStats(key, workload[f"{cell}_s"] * 1e3)
    backends = doc.get("backends")
    if backends:
        for workload in backends.get("workloads", ()):
            for cell, seconds in workload.get("cells", {}).items():
                key = f"backend::{workload['topology']}:{cell}"
                stats[key] = KeyStats(key, seconds * 1e3)
    return stats


def aggregate_file(path: str | Path) -> Dict[str, KeyStats]:
    """Load and aggregate either file kind (sniffed by top-level keys)."""
    path = Path(path)
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict):
        raise ReproError(f"{path}: not a JSON object")
    if "spans" in doc:
        return aggregate_trace(doc)
    if "scenarios" in doc:
        return aggregate_bench(doc)
    raise ReproError(
        f"{path}: neither a trace document ('spans') nor a bench report ('scenarios')"
    )


def compare(
    baseline: Dict[str, KeyStats],
    candidate: Dict[str, KeyStats],
    threshold: float = 1.25,
    min_delta_ms: float = 1.0,
) -> List[Finding]:
    """Findings for every key present in both aggregates, worst first."""
    findings: List[Finding] = []
    for key in sorted(set(baseline) & set(candidate)):
        base_ms = baseline[key].total_ms
        cand_ms = candidate[key].total_ms
        ratio = cand_ms / base_ms if base_ms > 0 else None
        regressed = (
            cand_ms - base_ms >= min_delta_ms
            and (ratio is None or ratio >= threshold)
        )
        findings.append(Finding(key, base_ms, cand_ms, ratio, regressed))
    findings.sort(key=lambda f: (not f.regressed, -(f.candidate_ms - f.baseline_ms)))
    return findings


def regressions(findings: Sequence[Finding]) -> List[Finding]:
    """Just the regressed findings."""
    return [f for f in findings if f.regressed]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.tracecmp",
        description="Diff two trace/bench JSON files; exit 1 on per-operator regression.",
    )
    parser.add_argument("baseline", type=Path, help="baseline trace or bench report")
    parser.add_argument("candidate", type=Path, help="candidate trace or bench report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="slowdown ratio that counts as a regression (default 1.25x)",
    )
    parser.add_argument(
        "--min-delta-ms",
        type=float,
        default=1.0,
        help="absolute slowdown floor in ms (default 1.0; filters timer noise)",
    )
    args = parser.parse_args(argv)

    base = aggregate_file(args.baseline)
    cand = aggregate_file(args.candidate)
    shared = compare(base, cand, threshold=args.threshold, min_delta_ms=args.min_delta_ms)
    if not shared:
        print("no shared operators/tests between the two files", file=sys.stderr)
        return 2
    for finding in shared:
        print(finding.render())
    bad = regressions(shared)
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"only in baseline: {', '.join(only_base[:5])}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand[:5])}")
    print(
        f"\n{len(shared)} compared, {len(bad)} regression(s) "
        f"(threshold {args.threshold}x, min delta {args.min_delta_ms}ms)"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    raise SystemExit(main())
