"""repro — a reproduction of Rosenthal & Galindo-Legaria (SIGMOD 1990),
"Query Graphs, Implementing Trees, and Freely-Reorderable Outerjoins".

The package is organized bottom-up, mirroring the paper:

* :mod:`repro.algebra`   — schemes, tuples with nulls, predicates with
  strongness analysis, and the join-like operators (Sections 1.2, 2.1, 6.2);
* :mod:`repro.core`      — expression trees, query graphs, niceness,
  implementing-tree enumeration, basic transforms, identities 1-16, and the
  free-reorderability theorem with a brute-force validator (Sections 1-4, 6);
* :mod:`repro.engine`    — an instrumented execution engine whose cost
  currency is "base tuples retrieved", Example 1's metric;
* :mod:`repro.optimizer` — a DP optimizer over query graphs (Section 6.1's
  programme), greedy and outerjoin-barrier baselines;
* :mod:`repro.language`  — the Section-5 SQL extension with UnNest (*) and
  Link (->), compiled to freely-reorderable outerjoins;
* :mod:`repro.datagen`   — randomized databases, graph topologies, and the
  paper's concrete workloads.

Quickstart::

    from repro.algebra import eq
    from repro.core import jn, oj, graph_of, theorem1_applies
    from repro.datagen import example1_storage
    from repro.engine import execute

    storage = example1_storage(10_000)
    slow = jn("R1", oj("R2", "R3", eq("R2.j", "R3.j")), eq("R1.k", "R2.k"))
    fast = oj(jn("R1", "R2", eq("R1.k", "R2.k")), "R3", eq("R2.j", "R3.j"))
    assert graph_of(slow, storage.registry) == graph_of(fast, storage.registry)
    print(execute(slow, storage).tuples_retrieved)   # 20_001
    print(execute(fast, storage).tuples_retrieved)   # 3
"""

__version__ = "1.0.0"

from repro import algebra, core, datagen, engine, language, optimizer, util

__all__ = ["algebra", "core", "datagen", "engine", "language", "optimizer", "util"]
