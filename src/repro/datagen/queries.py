"""Seeded random query generation over random graph scenarios.

The differential fuzzer (:mod:`repro.conformance.fuzz`) needs whole
*cases*: a random scenario, a random implementing tree of its graph, and
optional decorations that push the query outside the core IT space
(restrictions, projections, the extended operators of Sections 4 and 6).
Those generators live here, next to the other data generators, because
they are useful beyond the fuzzer — the determinism tests replay them,
and ad-hoc exploration from the CLI uses them directly.

Everything is driven by an explicit :class:`random.Random` so that one
seed determines the full sequence of (scenario, database, query) triples.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.algebra.predicates import (
    Comparison,
    IsNull,
    Not,
    Or,
    Predicate,
)
from repro.algebra.schema import SchemaRegistry
from repro.core.expressions import (
    Antijoin,
    BinaryOp,
    Expression,
    FullOuterJoin,
    GeneralizedOuterJoin,
    Project,
    Restrict,
    RightAntijoin,
    Semijoin,
    Union,
)
from repro.core.enumeration import sample_implementing_tree
from repro.datagen.topologies import (
    GraphScenario,
    chain,
    clique4,
    cyclic_chord,
    join_cycle,
    random_graph,
    random_nice_graph,
    snowflake,
    square,
    star,
    triangle,
)
from repro.util.rng import make_rng

#: Topology families the scenario generator can draw from.  The last
#: four are the genuinely cyclic shapes (alternating-attribute edges, so
#: the *class* hypergraph is cyclic, unlike "cycle" whose ``.a = .a``
#: edges collapse into one class) that exercise the WCOJ fast path.
TOPOLOGY_KINDS: Sequence[str] = (
    "chain",
    "star",
    "snowflake",
    "cycle",
    "nice",
    "random",
    "triangle",
    "square",
    "clique4",
    "cyclic_chord",
)

#: Root-operator rewrites that leave the core IT space.
EXTENDED_OPS: Sequence[str] = ("none", "foj", "sj", "aj", "raj", "goj", "union")


def random_scenario(
    rng: random.Random,
    kind: Optional[str] = None,
    min_relations: int = 2,
    max_relations: int = 5,
) -> GraphScenario:
    """One random :class:`GraphScenario` of the requested topology family."""
    rng = make_rng(rng)
    if kind is None:
        kind = rng.choice(list(TOPOLOGY_KINDS))
    n = rng.randint(max(min_relations, 2), max_relations)
    if kind == "chain":
        kinds = [rng.choice(("join", "out", "in")) for _ in range(n - 1)]
        return chain(n, kinds, name=f"fuzz-chain{n}")
    if kind == "star":
        leaves = max(n - 1, 1)
        return star(leaves, oj_leaves=rng.randint(0, leaves), name=f"fuzz-star{leaves}")
    if kind == "snowflake":
        arms = rng.randint(2, max(2, min(3, n - 1)))
        length = max(1, (n - 1) // arms)
        return snowflake(
            arms,
            arm_length=length,
            oj_arms=rng.randint(0, arms),
            name=f"fuzz-snowflake{arms}x{length}",
        )
    if kind == "cycle":
        return join_cycle(max(n, 3), name=f"fuzz-cycle{max(n, 3)}")
    if kind == "triangle":
        return triangle(name="fuzz-triangle")
    if kind == "square":
        return square(name="fuzz-square")
    if kind == "clique4":
        return clique4(name="fuzz-clique4")
    if kind == "cyclic_chord":
        return cyclic_chord(max(n, 4), name=f"fuzz-cyclic-chord{max(n, 4)}")
    if kind == "nice":
        core = rng.randint(1, max(n - 1, 1))
        return random_nice_graph(core, n - core, seed=rng)
    if kind == "random":
        return random_graph(n, seed=rng, extra_edges=rng.randint(0, 2))
    raise ValueError(f"unknown topology kind {kind!r}")


def random_restriction(
    scheme: Sequence[str], rng: random.Random, domain: int = 4
) -> Predicate:
    """A random simple predicate over the given (sorted) attributes."""
    attr = rng.choice(list(scheme))
    roll = rng.random()
    if roll < 0.4:
        op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
        return Comparison(attr, op, rng.randrange(domain))
    if roll < 0.6:
        return IsNull(attr)
    if roll < 0.8:
        return Not(IsNull(attr))
    return Or((Comparison(attr, "=", rng.randrange(domain)), IsNull(attr)))


def decorate(
    expr: Expression,
    registry: SchemaRegistry,
    rng: random.Random,
    restrict_probability: float = 0.4,
    project_probability: float = 0.3,
) -> Expression:
    """Optionally wrap a query in Restrict and/or Project."""
    scheme = sorted(expr.scheme(registry).attributes)
    if scheme and rng.random() < restrict_probability:
        expr = Restrict(expr, random_restriction(scheme, rng))
    if len(scheme) > 1 and rng.random() < project_probability:
        k = rng.randint(1, len(scheme) - 1)
        attrs = rng.sample(scheme, k)
        expr = Project(expr, frozenset(attrs), dedup=rng.random() < 0.5)
    return expr


def extend_root(
    expr: Expression,
    registry: SchemaRegistry,
    rng: random.Random,
    extended: str,
) -> Expression:
    """Rewrite the root into one of the extended operators.

    The IT sampler only emits joins and one-sided outerjoins; the full
    outerjoin, semijoin, antijoins, GOJ, and padded union live outside
    that space, so the fuzzer grafts them on at the root.  Falls back to
    the unmodified tree when the rewrite does not apply (e.g. a
    single-relation query has no binary root).
    """
    if extended in ("none", ""):
        return expr
    if extended == "union":
        # Self-union under independent restrictions: exercises padding
        # and bag addition without needing a second scenario.
        scheme = sorted(expr.scheme(registry).attributes)
        left = Restrict(expr, random_restriction(scheme, rng)) if scheme else expr
        right = Restrict(expr, random_restriction(scheme, rng)) if scheme else expr
        return Union(left, right)
    if not isinstance(expr, BinaryOp):
        return expr
    left, right, predicate = expr.left, expr.right, expr.predicate
    if extended == "foj":
        return FullOuterJoin(left, right, predicate)
    if extended == "sj":
        return Semijoin(left, right, predicate)
    if extended == "aj":
        return Antijoin(left, right, predicate)
    if extended == "raj":
        return RightAntijoin(left, right, predicate)
    if extended == "goj":
        left_scheme = sorted(left.scheme(registry).attributes)
        if not left_scheme:
            return expr
        k = rng.randint(1, len(left_scheme))
        projection = frozenset(rng.sample(left_scheme, k))
        return GeneralizedOuterJoin(left, right, predicate, projection)
    raise ValueError(f"unknown extended operator {extended!r}")


def random_query(
    scenario: GraphScenario,
    rng: random.Random,
    extended: str = "none",
    restrict_probability: float = 0.4,
    project_probability: float = 0.3,
) -> Expression:
    """A random query over the scenario's graph.

    Samples one implementing tree uniformly, optionally rewrites its root
    into an extended operator, then optionally decorates with a
    restriction and/or a projection.
    """
    registry = scenario.registry
    expr = sample_implementing_tree(scenario.graph, rng)
    expr = extend_root(expr, registry, rng, extended)
    return decorate(
        expr,
        registry,
        rng,
        restrict_probability=restrict_probability,
        project_probability=project_probability,
    )
