"""Workload and data generators for tests and benchmarks."""

from repro.datagen.random_db import (
    duplicate_free_database,
    random_database,
    random_databases,
    random_relation,
)
from repro.datagen.queries import (
    EXTENDED_OPS,
    TOPOLOGY_KINDS,
    decorate,
    extend_root,
    random_query,
    random_restriction,
    random_scenario,
)
from repro.datagen.topologies import (
    GraphScenario,
    chain,
    example2_graph,
    figure1_graph,
    figure2_graph,
    join_cycle,
    random_graph,
    random_nice_graph,
    snowflake,
    star,
    weaken_oj_edge,
)
from repro.datagen.workloads import (
    departments_database,
    example1_storage,
    example1b_storage,
    sales_storage,
    section5_catalog,
    section5_store,
)

__all__ = [
    "EXTENDED_OPS",
    "GraphScenario",
    "TOPOLOGY_KINDS",
    "chain",
    "decorate",
    "extend_root",
    "departments_database",
    "duplicate_free_database",
    "example1_storage",
    "example1b_storage",
    "example2_graph",
    "figure1_graph",
    "figure2_graph",
    "join_cycle",
    "random_database",
    "random_databases",
    "random_graph",
    "random_nice_graph",
    "random_query",
    "random_relation",
    "random_restriction",
    "random_scenario",
    "sales_storage",
    "section5_catalog",
    "section5_store",
    "snowflake",
    "star",
    "weaken_oj_edge",
]
