"""Random databases for identity checks and brute-force reorderability.

The paper's identities quantify over *all* values of the ground relations;
we approximate that with randomized databases designed to hit the corner
cases that matter for join/outerjoin semantics:

* small value domains, so joins actually match (and mismatch);
* explicit null injection, so strongness has something to reject;
* duplicate rows, so bag semantics is genuinely exercised
  (switch-offable for the duplicate-free GOJ identities);
* empty relations with positive probability, the classic edge case.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Sequence

from repro.algebra.nulls import NULL
from repro.algebra.relation import Database, Relation
from repro.algebra.tuples import Row
from repro.util.rng import make_rng


def random_relation(
    attributes: Sequence[str],
    rng: random.Random,
    max_rows: int = 5,
    domain: int = 4,
    null_probability: float = 0.2,
    duplicate_probability: float = 0.25,
    allow_empty: bool = True,
    zipf_skew: float = 0.0,
    min_rows: int | None = None,
) -> Relation:
    """One random relation over the given attributes.

    Values are drawn from ``0..domain-1`` so that cross-relation matches
    occur with useful frequency; with probability ``null_probability`` an
    individual value is NULL instead.  ``zipf_skew > 0`` biases the draw
    toward small values with Zipf weights ``1/(k+1)^skew`` — the heavy-
    hitter distribution that blows up binary join plans on cyclic
    patterns (0 keeps the exact uniform rng stream of earlier seeds).
    ``min_rows`` raises the size draw's floor — benchmarks use it to
    stop a randomly tiny relation from collapsing a join chain's cost
    (``None``, the default, keeps the exact rng stream of earlier
    seeds; it overrides ``allow_empty`` when set).
    """
    low = (0 if allow_empty else 1) if min_rows is None else min_rows
    n = rng.randint(low, max_rows)
    weights = (
        [1.0 / (k + 1) ** zipf_skew for k in range(domain)] if zipf_skew > 0 else None
    )

    def draw():
        if weights is not None:
            return rng.choices(range(domain), weights=weights)[0]
        return rng.randrange(domain)

    rows: List[Row] = []
    for _ in range(n):
        row = Row(
            {
                a: (NULL if rng.random() < null_probability else draw())
                for a in attributes
            }
        )
        rows.append(row)
        if rows and rng.random() < duplicate_probability:
            rows.append(rows[rng.randrange(len(rows))])
    return Relation(attributes, rows)


def random_database(
    schemas: Mapping[str, Iterable[str]],
    seed: int | random.Random | None = None,
    max_rows: int = 5,
    domain: int = 4,
    null_probability: float = 0.2,
    duplicate_probability: float = 0.25,
    allow_empty: bool = True,
    zipf_skew: float = 0.0,
    min_rows: int | None = None,
) -> Database:
    """A database with one random relation per schema entry."""
    rng = make_rng(seed)
    relations: Dict[str, Relation] = {}
    for name in sorted(schemas):
        relations[name] = random_relation(
            sorted(schemas[name]),
            rng,
            max_rows=max_rows,
            domain=domain,
            null_probability=null_probability,
            duplicate_probability=duplicate_probability,
            allow_empty=allow_empty,
            zipf_skew=zipf_skew,
            min_rows=min_rows,
        )
    return Database(relations)


def random_databases(
    schemas: Mapping[str, Iterable[str]],
    count: int,
    seed: int | random.Random | None = None,
    **kwargs,
) -> List[Database]:
    """A reproducible batch of random databases (one rng stream)."""
    rng = make_rng(seed)
    return [random_database(schemas, seed=rng, **kwargs) for _ in range(count)]


def duplicate_free_database(
    schemas: Mapping[str, Iterable[str]],
    seed: int | random.Random | None = None,
    max_rows: int = 5,
    domain: int = 4,
    null_probability: float = 0.15,
) -> Database:
    """Random database without duplicate rows (GOJ identities' precondition)."""
    rng = make_rng(seed)
    relations: Dict[str, Relation] = {}
    for name in sorted(schemas):
        rel = random_relation(
            sorted(schemas[name]),
            rng,
            max_rows=max_rows,
            domain=domain,
            null_probability=null_probability,
            duplicate_probability=0.0,
        )
        relations[name] = rel.distinct()
    return Database(relations)
