"""Query-graph topologies: paper figures, parametric families, random graphs.

Every builder returns a :class:`GraphScenario` — a graph plus the schemas
of its relations — so tests and benchmarks can generate matching random
databases and evaluate implementing trees directly.

Default edge predicates are equijoins on the nodes' ``.a`` attributes
(strong w.r.t. everything they reference).  :func:`weaken_oj_edge`
replaces one outerjoin predicate with Example 3's non-strong shape
(``u.a = v.a OR v.b IS NULL`` style) to study strongness violations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.algebra.predicates import Comparison, IsNull, Or, Predicate, eq
from repro.algebra.schema import SchemaRegistry
from repro.core.graph import QueryGraph
from repro.util.errors import GraphUndefinedError
from repro.util.rng import make_rng


@dataclass
class GraphScenario:
    """A query graph together with its relations' schemas."""

    name: str
    graph: QueryGraph
    schemas: Dict[str, List[str]]
    description: str = ""

    @property
    def registry(self) -> SchemaRegistry:
        return SchemaRegistry(self.schemas)


def _schemas_for(nodes: Sequence[str]) -> Dict[str, List[str]]:
    return {n: [f"{n}.a", f"{n}.b"] for n in nodes}


def _equi(u: str, v: str) -> Predicate:
    return eq(f"{u}.a", f"{v}.a")


def chain(n: int, kinds: Sequence[str] | None = None, name: str = "chain") -> GraphScenario:
    """A path ``R1 .. Rn`` with per-edge kinds.

    ``kinds[i]`` describes the edge between ``R(i+1)`` and ``R(i+2)``:
    ``"join"``, ``"out"`` (outerjoin pointing right), or ``"in"``
    (outerjoin pointing left).  Default: all joins.
    """
    if n < 1:
        raise GraphUndefinedError("chain needs at least one node")
    kinds = list(kinds) if kinds is not None else ["join"] * (n - 1)
    if len(kinds) != n - 1:
        raise GraphUndefinedError(f"need {n - 1} edge kinds, got {len(kinds)}")
    nodes = [f"R{i + 1}" for i in range(n)]
    join_edges: List[Tuple[str, str, Predicate]] = []
    oj_edges: List[Tuple[str, str, Predicate]] = []
    for i, kind in enumerate(kinds):
        u, v = nodes[i], nodes[i + 1]
        p = _equi(u, v)
        if kind == "join":
            join_edges.append((u, v, p))
        elif kind == "out":
            oj_edges.append((u, v, p))
        elif kind == "in":
            oj_edges.append((v, u, p))
        else:
            raise GraphUndefinedError(f"unknown edge kind {kind!r}")
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=_schemas_for(nodes),
        description=f"chain of {n} nodes, edges {kinds}",
    )


def star(
    n_leaves: int, oj_leaves: int = 0, name: str = "star"
) -> GraphScenario:
    """A hub ``R0`` with leaves; the last ``oj_leaves`` hang by outerjoins."""
    nodes = ["R0"] + [f"R{i + 1}" for i in range(n_leaves)]
    join_edges = []
    oj_edges = []
    for i in range(n_leaves):
        leaf = nodes[i + 1]
        p = _equi("R0", leaf)
        if i >= n_leaves - oj_leaves:
            oj_edges.append(("R0", leaf, p))
        else:
            join_edges.append(("R0", leaf, p))
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=_schemas_for(nodes),
        description=f"star, {n_leaves} leaves of which {oj_leaves} outerjoined",
    )


def snowflake(
    n_arms: int, arm_length: int = 2, oj_arms: int = 0, name: str = "snowflake"
) -> GraphScenario:
    """A hub ``R0`` with ``n_arms`` dimension chains of ``arm_length`` nodes.

    The warehouse shape the acyclic fast path is built for: each arm
    joins the hub on ``.a`` and then continues ``prev.b = next.a``, so
    interior nodes contribute *two* attribute classes to the hypergraph
    (unlike :func:`star`, whose hyperedges are all singletons).  The last
    ``oj_arms`` arms hang by outerjoins pointing outward — hub preserved,
    whole arm null-supplied — which keeps the graph nice.
    """
    if n_arms < 1 or arm_length < 1:
        raise GraphUndefinedError("snowflake needs at least one arm of one node")
    if oj_arms > n_arms:
        raise GraphUndefinedError(f"only {n_arms} arms, cannot outerjoin {oj_arms}")
    nodes = ["R0"]
    join_edges: List[Tuple[str, str, Predicate]] = []
    oj_edges: List[Tuple[str, str, Predicate]] = []
    for arm in range(n_arms):
        outer = arm >= n_arms - oj_arms
        prev = "R0"
        for depth in range(arm_length):
            node = f"A{arm + 1}_{depth + 1}"
            nodes.append(node)
            if prev == "R0":
                p = eq("R0.a", f"{node}.a")
            else:
                p = eq(f"{prev}.b", f"{node}.a")
            (oj_edges if outer else join_edges).append((prev, node, p))
            prev = node
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=_schemas_for(nodes),
        description=(
            f"snowflake, {n_arms} arms of length {arm_length}, "
            f"{oj_arms} outerjoined"
        ),
    )


def join_cycle(n: int, name: str = "cycle") -> GraphScenario:
    """A cycle of join edges (identity 1's conjunct-migration territory)."""
    nodes = [f"R{i + 1}" for i in range(n)]
    join_edges = [
        (nodes[i], nodes[(i + 1) % n], _equi(nodes[i], nodes[(i + 1) % n]))
        for i in range(n)
    ]
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name=name, graph=graph, schemas=_schemas_for(nodes), description=f"join cycle of {n}"
    )


def triangle(name: str = "triangle") -> GraphScenario:
    """The triangle pattern: three relations, three *distinct* classes.

    Unlike :func:`join_cycle` — whose ``.a = .a`` edges collapse every
    attribute into one class, leaving the class hypergraph acyclic — the
    edges here alternate attributes (``R1.a=R2.a``, ``R2.b=R3.a``,
    ``R3.b=R1.b``), encoding the genuine triangle query
    ``R1(x,z) ⋈ R2(x,y) ⋈ R3(y,z)``.  GYO gets stuck on its hypergraph,
    which makes this the smallest WCOJ-eligible shape: every binary plan
    materializes a full two-way join while the output obeys the AGM
    bound ``√(|R1||R2||R3|)``.
    """
    nodes = ["R1", "R2", "R3"]
    join_edges = [
        ("R1", "R2", eq("R1.a", "R2.a")),
        ("R2", "R3", eq("R2.b", "R3.a")),
        ("R3", "R1", eq("R3.b", "R1.b")),
    ]
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=_schemas_for(nodes),
        description="triangle: R1(x,z) ⋈ R2(x,y) ⋈ R3(y,z), cyclic hypergraph",
    )


def square(name: str = "square") -> GraphScenario:
    """A 4-cycle with alternating attributes: four distinct classes.

    ``Ri.b = R(i+1).a`` around the cycle, so the class hypergraph is a
    genuine 4-cycle (no edge between opposite corners) — cyclic but not
    chordal, the classic shape where GYO finds no ear.
    """
    nodes = [f"R{i + 1}" for i in range(4)]
    join_edges = [
        (nodes[i], nodes[(i + 1) % 4], eq(f"{nodes[i]}.b", f"{nodes[(i + 1) % 4]}.a"))
        for i in range(4)
    ]
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=_schemas_for(nodes),
        description="square: 4-cycle of Ri.b = R(i+1).a edges, cyclic hypergraph",
    )


def clique4(name: str = "clique4") -> GraphScenario:
    """The 4-clique pattern: six pairwise edges, six distinct classes.

    Each relation carries three attributes (one per incident edge), and
    every pair of relations shares exactly one class — the complete
    graph ``K4`` as a hypergraph.  The AGM cover assigns every relation
    weight 1/3, bounding the output by ``Π|Ri|^{1/3} ≈ N^{4/3}``; binary
    plans materialize at least one full triangle first.
    """
    nodes = [f"R{i + 1}" for i in range(4)]
    schemas = {n: [f"{n}.a", f"{n}.b", f"{n}.c"] for n in nodes}
    join_edges = [
        ("R1", "R2", eq("R1.a", "R2.a")),
        ("R1", "R3", eq("R1.b", "R3.a")),
        ("R1", "R4", eq("R1.c", "R4.a")),
        ("R2", "R3", eq("R2.b", "R3.b")),
        ("R2", "R4", eq("R2.c", "R4.b")),
        ("R3", "R4", eq("R3.c", "R4.c")),
    ]
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=schemas,
        description="clique4: complete K4 pattern, one shared class per pair",
    )


def cyclic_chord(n: int = 4, name: str = "cyclic_chord") -> GraphScenario:
    """An ``n``-cycle of alternating-attribute edges plus one chord.

    The cycle runs ``Ri.b = R(i+1).a``; the chord equates the ``.c``
    attributes of ``R1`` and the opposite node.  The chord does *not*
    triangulate the cycle (it introduces a fresh class), so the
    hypergraph stays cyclic while being denser than :func:`square` —
    a shape the leapfrog's residual-free multiway intersection and the
    fuzz campaign both exercise.
    """
    if n < 4:
        raise GraphUndefinedError("cyclic_chord needs at least four nodes")
    nodes = [f"R{i + 1}" for i in range(n)]
    schemas = {node: [f"{node}.a", f"{node}.b", f"{node}.c"] for node in nodes}
    join_edges = [
        (nodes[i], nodes[(i + 1) % n], eq(f"{nodes[i]}.b", f"{nodes[(i + 1) % n]}.a"))
        for i in range(n)
    ]
    opposite = nodes[n // 2]
    join_edges.append(("R1", opposite, eq("R1.c", f"{opposite}.c")))
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name=name,
        graph=graph,
        schemas=schemas,
        description=f"{n}-cycle of alternating-attribute edges plus a R1-{opposite} chord",
    )


def figure1_graph() -> GraphScenario:
    """The Figure-1 query: four relations in a path R − S − T − U.

    The paper's point about this graph: "a reassociation joining R and T
    is disallowed" — there is no R–T edge, so no implementing tree ever
    joins R and T directly.
    """
    nodes = ["R", "S", "T", "U"]
    join_edges = [(a, b, _equi(a, b)) for a, b in (("R", "S"), ("S", "T"), ("T", "U"))]
    graph = QueryGraph.from_edges(join=join_edges)
    return GraphScenario(
        name="figure1",
        graph=graph,
        schemas=_schemas_for(nodes),
        description="Figure 1: join path R-S-T-U",
    )


def figure2_graph() -> GraphScenario:
    """A "nice" topology in the shape of Figure 2.

    A connected join core (A − B − C) from which outerjoin trees go
    outward: a two-edge chain under A and a single edge under C.
    """
    join_edges = [("A", "B", _equi("A", "B")), ("B", "C", _equi("B", "C"))]
    oj_edges = [
        ("A", "D", _equi("A", "D")),
        ("D", "E", _equi("D", "E")),
        ("C", "F", _equi("C", "F")),
    ]
    nodes = ["A", "B", "C", "D", "E", "F"]
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges)
    return GraphScenario(
        name="figure2",
        graph=graph,
        schemas=_schemas_for(nodes),
        description="Figure 2: join core A-B-C with outward outerjoin trees A→D→E, C→F",
    )


def example2_graph() -> GraphScenario:
    """Example 2's graph: R1 → R2 − R3 (not nice)."""
    graph = QueryGraph.from_edges(
        join=[("R2", "R3", _equi("R2", "R3"))],
        oj=[("R1", "R2", _equi("R1", "R2"))],
    )
    return GraphScenario(
        name="example2",
        graph=graph,
        schemas=_schemas_for(["R1", "R2", "R3"]),
        description="Example 2: outerjoin into a join (forbidden pattern X→Y−Z)",
    )


def weaken_oj_edge(scenario: GraphScenario, edge: Tuple[str, str]) -> GraphScenario:
    """Replace one OJ edge's predicate with a non-strong one (Example 3).

    The new predicate is ``u.a = v.a OR u.a IS NULL`` — satisfiable when
    the preserved endpoint's attributes are all null, so NOT strong w.r.t.
    the preserved relation.
    """
    u, v = edge
    if edge not in scenario.graph.oj_edges:
        raise GraphUndefinedError(f"{edge} is not an outerjoin edge of {scenario.name}")
    weak = Or((Comparison(f"{u}.a", "=", f"{v}.a"), IsNull(f"{u}.a")))
    oj_edges = dict(scenario.graph.oj_edges)
    oj_edges[edge] = weak
    graph = QueryGraph(scenario.graph.nodes, dict(scenario.graph.join_edges), oj_edges)
    return GraphScenario(
        name=f"{scenario.name}-weak",
        graph=graph,
        schemas=scenario.schemas,
        description=scenario.description + f"; non-strong predicate on {u}→{v}",
    )


def random_nice_graph(
    n_core: int,
    n_forest: int,
    seed: int | random.Random | None = None,
    extra_join_edges: int = 0,
) -> GraphScenario:
    """A random graph satisfying the "nice" definition by construction.

    A random join tree over the core (optionally densified with extra join
    edges), then forest nodes attached one by one: each new node hangs by
    an outerjoin from a core node or from an existing forest node (always
    pointing outward), so in-degrees stay ≤ 1 and no join edge ever meets
    a null-supplied node.
    """
    rng = make_rng(seed)
    core = [f"C{i + 1}" for i in range(n_core)]
    forest = [f"F{i + 1}" for i in range(n_forest)]
    join_edges: List[Tuple[str, str, Predicate]] = []
    for i in range(1, n_core):
        anchor = core[rng.randrange(i)]
        join_edges.append((anchor, core[i], _equi(anchor, core[i])))
    for _ in range(extra_join_edges):
        if n_core < 2:
            break
        u, v = rng.sample(core, 2)
        if frozenset({u, v}) not in {frozenset({a, b}) for a, b, _p in join_edges}:
            join_edges.append((u, v, _equi(u, v)))
    oj_edges: List[Tuple[str, str, Predicate]] = []
    attachable = list(core)
    for node in forest:
        owner = attachable[rng.randrange(len(attachable))]
        oj_edges.append((owner, node, _equi(owner, node)))
        attachable.append(node)
    nodes = core + forest
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
    return GraphScenario(
        name=f"random-nice-{n_core}c{n_forest}f",
        graph=graph,
        schemas=_schemas_for(nodes),
        description=f"random nice graph: {n_core} core, {n_forest} forest",
    )


def random_graph(
    n: int,
    seed: int | random.Random | None = None,
    oj_probability: float = 0.45,
    extra_edges: int = 1,
) -> GraphScenario:
    """A random *connected* graph with arbitrary edge kinds and directions.

    Deliberately unconstrained — used to exercise the Lemma-1 equivalence
    check and the brute-force reorderability tester on graphs that may or
    may not be nice.
    """
    rng = make_rng(seed)
    nodes = [f"R{i + 1}" for i in range(n)]
    join_edges: List[Tuple[str, str, Predicate]] = []
    oj_edges: List[Tuple[str, str, Predicate]] = []
    seen_pairs: set[frozenset] = set()

    def add_edge(u: str, v: str) -> None:
        pair = frozenset({u, v})
        if pair in seen_pairs:
            return
        seen_pairs.add(pair)
        p = _equi(u, v)
        if rng.random() < oj_probability:
            if rng.random() < 0.5:
                u, v = v, u
            oj_edges.append((u, v, p))
        else:
            join_edges.append((u, v, p))

    for i in range(1, n):
        add_edge(nodes[rng.randrange(i)], nodes[i])
    for _ in range(extra_edges):
        if n >= 2:
            u, v = rng.sample(nodes, 2)
            add_edge(u, v)
    graph = QueryGraph.from_edges(join=join_edges, oj=oj_edges, isolated=nodes)
    return GraphScenario(
        name=f"random-{n}",
        graph=graph,
        schemas=_schemas_for(nodes),
        description=f"random connected graph on {n} nodes",
    )
