"""The paper's concrete workloads, parameterized for laptop scale.

* :func:`example1_storage` — Example 1's indexed key-joined tables
  (|R1| = 1, |R2| = |R3| = N; the paper uses N = 10^7, the benchmarks
  default to 10^3..10^5 and report the analytic 10^7 numbers alongside);
* :func:`example1b_storage` — the follow-up scenario where the join
  predicate is ``R1.A > R2.B`` and doing the *outerjoin* first wins;
* :func:`departments_database` — the departments/employees listing that
  motivates outerjoins in the introduction;
* :func:`section5_store` — the entity world of Section 5 (EMPLOYEE with
  children, DEPARTMENT with Manager/Secretary/Audit, REPORT), sized to
  the paper's Queretaro/Zurich/prosecutor examples.
"""

from __future__ import annotations

import random

from repro.algebra.nulls import NULL
from repro.algebra.relation import Database, Relation
from repro.engine.storage import Storage
from repro.language.catalog import Catalog
from repro.language.objectstore import ObjectStore
from repro.util.rng import make_rng


def example1_storage(n: int, with_indexes: bool = True) -> Storage:
    """Example 1: keys indexed, |R1| = 1 and |R2| = |R3| = n.

    The first predicate equijoins keys of R1 and R2; the second equijoins
    keys of R2 and R3.  Every R2 key matches exactly one R3 key.
    """
    storage = Storage()
    storage.create_table("R1", ["R1.k"], [{"R1.k": 0}])
    storage.create_table(
        "R2", ["R2.k", "R2.j"], [{"R2.k": i, "R2.j": i} for i in range(n)]
    )
    storage.create_table("R3", ["R3.j"], [{"R3.j": i} for i in range(n)])
    if with_indexes:
        storage["R1"].create_index("R1.k")
        storage["R2"].create_index("R2.k")
        storage["R3"].create_index("R3.j")
    return storage


def example1b_storage(
    n1: int, n2: int, n3: int, seed: int | random.Random | None = None
) -> Storage:
    """The second Example-1 scenario: ``R1.A > R2.B`` join, equijoin outerjoin.

    The inequality join produces a large intermediate (≈ half the cross
    product), while the R2→R3 equijoin on keys keeps cardinality at |R2|;
    evaluating the outerjoin first is optimal, showing that "joins before
    outerjoins" is *not* a universal rule.
    """
    rng = make_rng(seed)
    storage = Storage()
    storage.create_table(
        "R1", ["R1.A"], [{"R1.A": rng.randrange(1000)} for _ in range(n1)]
    )
    storage.create_table(
        "R2",
        ["R2.B", "R2.C"],
        [{"R2.B": rng.randrange(1000), "R2.C": i} for i in range(n2)],
    )
    storage.create_table("R3", ["R3.D"], [{"R3.D": i} for i in range(n3)])
    storage["R3"].create_index("R3.D")
    return storage


def departments_database(
    n_departments: int = 4, employees_per_department: int = 2, empty_departments: int = 1
) -> Database:
    """The motivating workload: all departments, even those without employees."""
    dept_rows = [
        {"DEPT.dno": i, "DEPT.dname": f"dept-{i}"}
        for i in range(n_departments)
    ]
    emp_rows = []
    eid = 0
    for d in range(n_departments - empty_departments):
        for _ in range(employees_per_department):
            emp_rows.append({"EMP.eno": eid, "EMP.dno": d, "EMP.ename": f"emp-{eid}"})
            eid += 1
    return Database(
        {
            "DEPT": Relation.from_dicts(["DEPT.dno", "DEPT.dname"], dept_rows),
            "EMP": Relation.from_dicts(["EMP.eno", "EMP.dno", "EMP.ename"], emp_rows),
        }
    )


def section5_catalog() -> Catalog:
    """Entity types of the Section-5 examples."""
    catalog = Catalog()
    employee = catalog.define("EMPLOYEE")
    employee.add_scalar("Name")
    employee.add_scalar("D#")
    employee.add_scalar("Rank")
    employee.add_set("ChildName")
    department = catalog.define("DEPARTMENT")
    department.add_scalar("D#")
    department.add_scalar("Location")
    department.add_entity("Manager", "EMPLOYEE")
    department.add_entity("Secretary", "EMPLOYEE")
    department.add_entity("Audit", "REPORT")
    report = catalog.define("REPORT")
    report.add_scalar("Title")
    report.add_scalar("Findings")
    return catalog


def section5_store(
    n_departments: int = 3,
    employees_per_department: int = 3,
    seed: int | random.Random | None = None,
) -> ObjectStore:
    """A populated Section-5 object store.

    Includes the paper's specific flavor: some employees have no children
    (UnNest must pad), some departments have no audit report (Link must
    pad), and locations include Queretaro and Zurich.
    """
    rng = make_rng(seed)
    store = ObjectStore(section5_catalog())
    locations = ["Queretaro", "Zurich", "Cambridge"]
    child_pool = ["Kim", "Lu", "Max", "Ana", "Sol"]
    for d in range(n_departments):
        employee_oids = []
        for e in range(employees_per_department):
            n_children = rng.choice([0, 0, 1, 2])
            children = tuple(rng.sample(child_pool, n_children))
            oid = store.insert(
                "EMPLOYEE",
                Name=f"emp-{d}-{e}",
                Rank=rng.randrange(1, 15),
                ChildName=children,
                **{"D#": d},
            )
            employee_oids.append(oid)
        audit = (
            store.insert("REPORT", Title=f"audit-{d}", Findings=f"findings-{d}")
            if rng.random() < 0.7
            else NULL
        )
        store.insert(
            "DEPARTMENT",
            Location=locations[d % len(locations)],
            Manager=employee_oids[0],
            Secretary=employee_oids[-1] if len(employee_oids) > 1 else NULL,
            Audit=audit,
            **{"D#": d},
        )
    return store


def sales_storage(
    n_customers: int = 200,
    orders_per_customer: int = 3,
    shipment_rate: float = 0.7,
    profile_rate: float = 0.6,
    seed: int | random.Random | None = None,
) -> Storage:
    """A realistic "report query" workload for the optimizer benchmarks.

    The shape the paper's introduction motivates: a required core
    (CUSTOMER − ORDERS on customer keys) decorated with *optional* data
    that must not shrink the report — shipments (not every order has
    shipped) and marketing profiles (not every customer filled one in).
    The natural query graph is nice:

        PROFILE ← CUSTOMER − ORDERS → SHIPMENT

    Keys are indexed so access-path choices matter, mirroring Example 1
    at a more believable scale and fan-out.
    """
    rng = make_rng(seed)
    storage = Storage()
    storage.create_table(
        "CUSTOMER",
        ["CUSTOMER.ck", "CUSTOMER.name"],
        [{"CUSTOMER.ck": c, "CUSTOMER.name": f"cust-{c}"} for c in range(n_customers)],
    )
    order_rows = []
    shipment_rows = []
    ok = 0
    for c in range(n_customers):
        for _ in range(rng.randint(1, orders_per_customer)):
            order_rows.append(
                {"ORDERS.ok": ok, "ORDERS.ck": c, "ORDERS.total": rng.randint(10, 500)}
            )
            if rng.random() < shipment_rate:
                shipment_rows.append(
                    {"SHIPMENT.ok": ok, "SHIPMENT.carrier": rng.choice(["sea", "air", "rail"])}
                )
            ok += 1
    storage.create_table("ORDERS", ["ORDERS.ok", "ORDERS.ck", "ORDERS.total"], order_rows)
    storage.create_table("SHIPMENT", ["SHIPMENT.ok", "SHIPMENT.carrier"], shipment_rows)
    storage.create_table(
        "PROFILE",
        ["PROFILE.ck", "PROFILE.segment"],
        [
            {"PROFILE.ck": c, "PROFILE.segment": rng.choice(["a", "b", "c"])}
            for c in range(n_customers)
            if rng.random() < profile_rate
        ],
    )
    for table, attr in (
        ("CUSTOMER", "CUSTOMER.ck"),
        ("ORDERS", "ORDERS.ck"),
        ("ORDERS", "ORDERS.ok"),
        ("SHIPMENT", "SHIPMENT.ok"),
        ("PROFILE", "PROFILE.ck"),
    ):
        storage[table].create_index(attr)
    return storage
