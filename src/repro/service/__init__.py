"""Concurrent query serving: worker pool, plan caching, deadlines, shedding."""

from repro.service.service import (
    STATUSES,
    QueryOutcome,
    QueryService,
    QueryTicket,
)

__all__ = [
    "STATUSES",
    "QueryOutcome",
    "QueryService",
    "QueryTicket",
]
