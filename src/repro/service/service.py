"""A concurrent query service over one storage: threads, deadlines, shedding.

:class:`QueryService` turns the single-shot pipeline
(:func:`repro.optimizer.optimize_query` + :func:`repro.engine.execute`)
into a serving layer:

* **Worker pool** — a fixed set of daemon threads drains a *bounded*
  admission queue.  Everything per-query (plan tree, metrics sink,
  pipeline result) is private to the worker running it; the shared
  pieces (storage, plan cache, instrumentation) are read-only or
  lock-guarded, which is what makes the engine reentrant here.
* **Plan caching** — every worker consults the same
  :class:`~repro.optimizer.plancache.PlanCache`, so the first query of a
  shape pays the DP and the rest replay the cached implementing tree
  (safe by Theorem 1; see :mod:`repro.optimizer.plancache`).  Data
  modifications invalidate via the storage generation stamp.
* **Deadlines & cancellation** — each query carries a
  :class:`~repro.util.cancel.CancelToken` armed *at submission*, so the
  deadline budget covers queue wait plus execution.  The engine polls it
  cooperatively (root drain loop and the per-query metrics sink), and
  callers can :meth:`QueryTicket.cancel` at any time.
* **Load shedding** — when the admission queue is full, ``submit``
  resolves the ticket immediately with a ``rejected`` outcome instead of
  blocking the caller; a saturated service degrades by answering fewer
  queries, not by stalling every client.

* **Worker budget** — inter-query parallelism (the service threads) and
  intra-query parallelism (partition fan-out inside one join, see
  :mod:`repro.engine.parallel`) draw from one :class:`WorkerLedger`, so
  ``service threads + intra-query workers <= max_total_workers()`` holds
  at every instant.  With ``parallel=True`` the service owns a single
  shared intra-query :class:`WorkerPool` that every worker's queries use
  (installed per query via the thread-local parallel config); the pool's
  size is whatever the ledger has left after the service threads took
  their grant, clamped possibly to zero — in which case joins degrade to
  inline serial partitioning rather than oversubscribing the host.

Everything is stdlib ``threading`` + ``queue``.  Counters
(``service_queries`` / ``service_rejected`` / ``service_timeouts`` /
``service_cancelled``) flow into :mod:`repro.tools.instrumentation`, and
each query runs under a ``service.query`` span when tracing is active.
"""

from __future__ import annotations

import queue
import threading
from contextlib import ExitStack
from dataclasses import dataclass, field
from time import monotonic
from typing import Any, Dict, List, Optional, Sequence

from repro.algebra.relation import Relation
from repro.backends.base import (
    ExecutionBackend,
    default_backend_name,
    registered_backends,
)
from repro.backends.hints import HintError
from repro.core.expressions import Expression
from repro.engine.executor import ExecutionResult, execute
from repro.engine.parallel.config import using_config
from repro.engine.parallel.pool import WorkerLedger, WorkerPool, resolve_workers
from repro.engine.shard.config import using_shard_config
from repro.engine.shard.pool import ShardPool, resolve_shard_workers
from repro.engine.storage import Storage
from repro.observability.spans import maybe_span
from repro.optimizer.pipeline import PipelineResult, optimize_query
from repro.optimizer.plancache import PlanCache, active_plan_cache
from repro.tools import instrumentation
from repro.util.cancel import CancelToken
from repro.util.errors import (
    QueryCancelledError,
    QueryTimeoutError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.util.fastpath import parallel_enabled, parallel_mode, shard_enabled, shard_mode

#: Outcome statuses, in the order ``snapshot()`` reports them.
STATUSES = ("ok", "error", "timeout", "cancelled", "rejected")


@dataclass
class QueryOutcome:
    """Everything one submitted query produced (or why it did not).

    ``status`` is one of :data:`STATUSES`.  ``relation`` is populated only
    on ``ok``; ``error`` carries the exception for every non-ok status
    (the shed/timeout/cancel errors included, so callers can re-raise).
    """

    status: str
    relation: Optional[Relation] = None
    pipeline: Optional[PipelineResult] = field(default=None, repr=False)
    execution: Optional[ExecutionResult] = field(default=None, repr=False)
    error: Optional[BaseException] = None
    #: Wall time inside the worker (0 for queries that never ran).
    elapsed_s: float = 0.0
    #: Time spent waiting in the admission queue before a worker picked
    #: the query up (0 for rejected queries).
    queue_wait_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def cache_hit(self) -> bool:
        """Did the optimizer replay a cached plan for this query?"""
        return self.pipeline is not None and self.pipeline.cache_hit

    def require(self) -> Relation:
        """The result relation, or the recorded failure re-raised."""
        if self.ok and self.relation is not None:
            return self.relation
        if self.error is not None:
            raise self.error
        raise ServiceClosedError(f"query finished with status {self.status!r} and no result")


class QueryTicket:
    """A caller's handle on one submitted query.

    Resolution is one-shot: a worker (or the submitting thread, for shed
    queries) fills in the outcome and sets the event.  ``cancel()`` only
    flips the query's cooperative token — the outcome still arrives
    through :meth:`result`, as ``cancelled`` if the signal landed in time.
    """

    def __init__(self, query: Expression, token: CancelToken, backend: str = "local"):
        self.query = query
        self.token = token
        #: Route this query resolves on: "local" is the in-process engine;
        #: any other name dispatches through :mod:`repro.backends`.
        self.backend = backend
        self.submitted_at = monotonic()
        self._done = threading.Event()
        self._outcome: Optional[QueryOutcome] = None

    def cancel(self) -> None:
        """Request cooperative cancellation of this query."""
        self.token.cancel()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> QueryOutcome:
        """Block until the query resolves; raise ``TimeoutError`` if not in time.

        The wait timeout is about the *caller's* patience, independent of
        the query's own deadline — a ticket whose query timed out still
        resolves (with status ``timeout``) and this call returns it.
        """
        if not self._done.wait(timeout):
            raise TimeoutError("query has not resolved within the result() timeout")
        assert self._outcome is not None
        return self._outcome

    def _resolve(self, outcome: QueryOutcome) -> None:
        self._outcome = outcome
        self._done.set()


_SENTINEL = object()


class QueryService:
    """A pool of worker threads serving queries against one storage.

    ``plan_cache`` defaults to the process-wide cache (or none when the
    environment disables it, see :data:`repro.optimizer.plancache.PLAN_CACHE_ENV`);
    pass an explicit :class:`PlanCache` to isolate the service, or
    ``plan_cache=None`` with ``use_cache=False`` to serve cold always.

    ``default_timeout_s`` arms every query's deadline unless ``submit``
    overrides it.  The deadline clock starts at submission, so time spent
    queued counts against it — an overloaded service times queries out
    rather than serving arbitrarily stale answers.

    ``parallel`` turns on intra-query parallel joins for every served
    query (``None`` follows the process default, i.e. ``REPRO_PARALLEL``).
    ``intra_workers`` sizes the shared intra-query pool (``None`` resolves
    through :func:`repro.engine.parallel.pool.resolve_workers`); the
    ledger clamps it so service threads plus intra-query workers never
    exceed the ceiling.  ``ledger`` defaults to a fresh per-service
    :class:`WorkerLedger` (ceiling = ``max_total_workers()``); pass
    :data:`~repro.engine.parallel.pool.GLOBAL_LEDGER` to share the budget
    with ambient pools in the same process.

    ``shard`` turns on process-sharded execution (``None`` follows
    ``REPRO_SHARD``, default off): the service owns a persistent
    :class:`~repro.engine.shard.pool.ShardPool` of ``shard_workers``
    worker processes (``None`` resolves through
    :func:`~repro.engine.shard.pool.resolve_shard_workers`), leased from
    the same ledger as the threads.  Queries whose plans are
    co-partitionable on one join-key attribute class evaluate across the
    worker processes; everything else (and everything, when the pool is
    clamped below two workers) stays on the threaded path.  A worker
    process dying mid-query fails that query with status ``error``,
    reclaims its worker lease, and leaves the service up — the pool
    respawns the worker on the next sharded query.
    """

    def __init__(
        self,
        storage: Storage,
        workers: int = 4,
        queue_size: int = 64,
        plan_cache: Optional[PlanCache] = None,
        use_cache: bool = True,
        default_timeout_s: Optional[float] = None,
        cost_model: str = "retrieval",
        parallel: Optional[bool] = None,
        intra_workers: Optional[int] = None,
        shard: Optional[bool] = None,
        shard_workers: Optional[int] = None,
        ledger: Optional[WorkerLedger] = None,
        backend: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if queue_size < 1:
            raise ValueError(f"admission queue must hold at least one query, got {queue_size}")
        self.storage = storage
        # Backend routing: the default route comes from the ``backend=``
        # parameter, falling back to $REPRO_BACKEND, falling back to
        # "local".  Names are validated eagerly (a typo'd route should not
        # silently error every query); *availability* is checked lazily at
        # first use, so a service can be configured for duckdb on hosts
        # that may or may not have the wheel.
        self.default_backend = backend if backend is not None else default_backend_name()
        if self.default_backend != "local" and self.default_backend not in registered_backends():
            raise ValueError(
                f"unknown backend route {self.default_backend!r}; "
                f"registered: {', '.join(registered_backends())}"
            )
        self._backends: Dict[str, ExecutionBackend] = {}
        self._route_counts: Dict[str, int] = {}
        self.cost_model = cost_model
        self.default_timeout_s = default_timeout_s
        if use_cache:
            self.plan_cache = plan_cache if plan_cache is not None else active_plan_cache()
        else:
            self.plan_cache = None
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_size)
        self._lock = threading.Lock()
        self._closed = False
        self._submitted = 0
        self._outcomes: Dict[str, int] = {status: 0 for status in STATUSES}
        # Worker-budget accounting: the service threads take their grant
        # first; the intra-query pool gets (at most) what remains.  Both
        # grants live in the same ledger, which *is* the invariant.
        self._ledger = ledger if ledger is not None else WorkerLedger()
        self._service_grant = self._ledger.acquire(workers, "service")
        if self._service_grant < 1:
            raise ValueError(
                "worker ledger has no capacity left for a service thread "
                f"(ceiling {self._ledger.ceiling}, requested {workers})"
            )
        self.parallel = parallel if parallel is not None else parallel_enabled()
        self._intra_pool: Optional[WorkerPool] = None
        if self.parallel:
            self._intra_pool = WorkerPool(
                workers=resolve_workers(intra_workers),
                mode="thread",
                name="intra-query",
                ledger=self._ledger,
            )
        # Process-sharded execution: the service owns a persistent pool of
        # worker processes, leased (kind="process") from the same ledger
        # as the service threads — one budget covers both concurrency
        # kinds.  The pool may be clamped below two workers, in which
        # case the shard dispatch declines per query and the threaded
        # path serves as usual.
        self.shard = shard if shard is not None else shard_enabled()
        self._shard_pool: Optional[ShardPool] = None
        if self.shard:
            self._shard_pool = ShardPool(
                workers=resolve_shard_workers(shard_workers),
                name="service-shard",
                ledger=self._ledger,
            )
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-service-{i}", daemon=True)
            for i in range(self._service_grant)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        query: Expression,
        timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> QueryTicket:
        """Enqueue a query; never blocks.

        Returns a ticket that is either queued for a worker or — when the
        admission queue is full or the service is closed mid-call —
        already resolved as ``rejected`` (load shedding: the caller finds
        out immediately instead of waiting behind a saturated queue).

        ``backend`` overrides the service's default route for this one
        query (e.g. ``backend="sqlite"`` to run it hinted on SQLite while
        everything else stays local).
        """
        route = backend if backend is not None else self.default_backend
        if route != "local" and route not in registered_backends():
            raise ValueError(
                f"unknown backend route {route!r}; "
                f"registered: {', '.join(registered_backends())}"
            )
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is closed")
            self._submitted += 1
        instrumentation.bump("service_queries")
        token = CancelToken(
            timeout_s if timeout_s is not None else self.default_timeout_s
        )
        ticket = QueryTicket(query, token, backend=route)
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            self._shed(ticket, ServiceOverloadedError("admission queue full; query shed"))
        return ticket

    def submit_batch(
        self, queries: Sequence[Expression], timeout_s: Optional[float] = None
    ) -> List[QueryTicket]:
        """Submit many queries at once; tickets come back in input order.

        Shedding applies per query: in an overloaded service a batch can
        come back partially rejected rather than all-or-nothing.
        """
        return [self.submit(query, timeout_s=timeout_s) for query in queries]

    def execute(
        self,
        query: Expression,
        timeout_s: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> QueryOutcome:
        """Synchronous convenience: submit and wait for the outcome."""
        return self.submit(query, timeout_s=timeout_s, backend=backend).result()

    def _shed(self, ticket: QueryTicket, error: Exception) -> None:
        instrumentation.bump("service_rejected")
        self._count("rejected")
        ticket._resolve(QueryOutcome(status="rejected", error=error))

    # -- the worker loop -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _SENTINEL:
                    return
                self._run(item)
            finally:
                self._queue.task_done()

    def _query_scope(self) -> ExitStack:
        """The per-query execution context for this worker thread.

        With ``parallel`` on, forces the parallel join path and pins the
        service's shared intra-query pool — both thread-locally, so
        concurrent workers never race each other's restores and queries
        outside the service are unaffected.
        """
        stack = ExitStack()
        if self.parallel:
            stack.enter_context(parallel_mode(True))
            stack.enter_context(using_config(pool=self._intra_pool))
        if self.shard:
            stack.enter_context(shard_mode(True))
            stack.enter_context(using_shard_config(pool=self._shard_pool))
        return stack

    def _backend_for(self, route: str) -> ExecutionBackend:
        """Lazily create (and cache) the backend instance for ``route``."""
        with self._lock:
            backend = self._backends.get(route)
            if backend is None:
                from repro.backends.base import create_backend

                backend = create_backend(route)
                self._backends[route] = backend
            return backend

    def _run_backend(self, ticket: QueryTicket) -> QueryOutcome:
        """Execute one ticket on a non-local backend route.

        The optimizer still runs locally (planning is backend-agnostic);
        its chosen tree becomes the join-order *hint* and its fingerprint
        keys the backend's prepared-statement cache.  A backend that
        cannot hint this shape (:class:`HintError`) falls back to native
        execution of the original query — same bag, backend's own order.
        """
        route = ticket.backend
        backend = self._backend_for(route)
        backend.sync(self.storage)
        ticket.token.check()
        pipeline = optimize_query(
            ticket.query,
            self.storage,
            cost_model=self.cost_model,
            cache=self.plan_cache,
            use_cache=self.plan_cache is not None,
        )
        ticket.token.check()
        try:
            relation = backend.execute(
                pipeline.chosen, hint=pipeline.chosen, fingerprint=pipeline.fingerprint
            )
        except HintError:
            relation = backend.execute(ticket.query)
        ticket.token.check()
        with self._lock:
            self._route_counts[route] = self._route_counts.get(route, 0) + 1
        return QueryOutcome(status="ok", relation=relation, pipeline=pipeline)

    def _run(self, ticket: QueryTicket) -> None:
        started = monotonic()
        queue_wait = started - ticket.submitted_at
        with self._query_scope(), maybe_span("service.query", category="service") as span:
            try:
                # The deadline covers queue wait too: a query that aged out
                # while queued stops here, before any work is spent on it.
                ticket.token.check()
                if ticket.backend != "local":
                    outcome = self._run_backend(ticket)
                else:
                    pipeline = optimize_query(
                        ticket.query,
                        self.storage,
                        cost_model=self.cost_model,
                        cache=self.plan_cache,
                        use_cache=self.plan_cache is not None,
                    )
                    ticket.token.check()
                    execution = execute(
                        pipeline.chosen, self.storage, cancel=ticket.token
                    )
                    outcome = QueryOutcome(
                        status="ok",
                        relation=execution.relation,
                        pipeline=pipeline,
                        execution=execution,
                    )
            except QueryCancelledError as exc:
                instrumentation.bump("service_cancelled")
                outcome = QueryOutcome(status="cancelled", error=exc)
            except QueryTimeoutError as exc:
                instrumentation.bump("service_timeouts")
                outcome = QueryOutcome(status="timeout", error=exc)
            except Exception as exc:  # noqa: BLE001 - outcome carries it
                outcome = QueryOutcome(status="error", error=exc)
            outcome.elapsed_s = monotonic() - started
            outcome.queue_wait_s = queue_wait
            if span is not None:
                span.set(status=outcome.status, cache_hit=outcome.cache_hit)
                span.counters["queue_wait_us"] += int(queue_wait * 1e6)
        self._count(outcome.status)
        ticket._resolve(outcome)

    def _count(self, status: str) -> None:
        with self._lock:
            self._outcomes[status] += 1

    # -- lifecycle & reporting -----------------------------------------------

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def close(self, wait: bool = True) -> None:
        """Stop accepting queries; drain the queue, then stop the workers.

        Already-queued queries still run (graceful drain) because the
        shutdown sentinels are enqueued *behind* them.  ``wait=False``
        skips joining the worker threads (they are daemons).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        if wait:
            for thread in self._workers:
                thread.join()
        # Return every leased worker to the ledger: the intra-query pool
        # releases its own grant on close, then the service threads' grant
        # goes back, restoring the ledger to its pre-service books.
        if self._intra_pool is not None:
            self._intra_pool.close()
        if self._shard_pool is not None:
            self._shard_pool.close()
        if self._service_grant:
            self._ledger.release(self._service_grant, "service")
            self._service_grant = 0
        with self._lock:
            backends = list(self._backends.values())
            self._backends.clear()
        for backend in backends:
            backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def snapshot(self) -> Dict[str, Any]:
        """Counters for reports: submissions, per-status outcomes, cache."""
        with self._lock:
            out: Dict[str, Any] = {
                "workers": len(self._workers),
                "queue_capacity": self._queue.maxsize,
                "queue_depth": self._queue.qsize(),
                "submitted": self._submitted,
                "outcomes": dict(self._outcomes),
                "closed": self._closed,
            }
        out["parallel"] = {
            "enabled": self.parallel,
            "service_grant": self._service_grant,
            "intra_pool": self._intra_pool.snapshot() if self._intra_pool else None,
            "ledger": self._ledger.snapshot(),
        }
        out["shard"] = {
            "enabled": self.shard,
            "pool": self._shard_pool.snapshot() if self._shard_pool else None,
        }
        with self._lock:
            out["backends"] = {
                "default": self.default_backend,
                "routes": dict(self._route_counts),
                "instances": {
                    name: backend.snapshot()
                    for name, backend in self._backends.items()
                },
            }
        if self.plan_cache is not None:
            out["plan_cache"] = self.plan_cache.snapshot()
        return out

    def summary(self) -> str:
        snap = self.snapshot()
        outcomes = ", ".join(
            f"{status}={snap['outcomes'][status]}"
            for status in STATUSES
            if snap["outcomes"][status]
        )
        lines = [
            f"service: {snap['workers']} worker(s), "
            f"queue {snap['queue_depth']}/{snap['queue_capacity']}, "
            f"{snap['submitted']} submitted ({outcomes or 'no outcomes yet'})"
        ]
        if self.parallel:
            par = snap["parallel"]
            ledger = par["ledger"]
            pool = par["intra_pool"] or {"workers": 0, "mode": "serial"}
            lines.append(
                f"parallel: intra-query pool {pool['workers']} worker(s) "
                f"({pool['mode']}), ledger {ledger['granted']}/{ledger['ceiling']}"
            )
        if self.plan_cache is not None:
            lines.append(self.plan_cache.summary())
        return "\n".join(lines)
