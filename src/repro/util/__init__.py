"""Shared utilities: errors, deterministic RNG, pretty-printing."""

from repro.util.errors import (
    CatalogError,
    EvaluationError,
    GraphUndefinedError,
    NotApplicableError,
    NotImplementingTreeError,
    ParseError,
    PlanningError,
    PredicateError,
    ReproError,
    SchemaError,
)
from repro.util.rng import DEFAULT_SEED, make_rng, spawn

__all__ = [
    "CatalogError",
    "DEFAULT_SEED",
    "EvaluationError",
    "GraphUndefinedError",
    "NotApplicableError",
    "NotImplementingTreeError",
    "ParseError",
    "PlanningError",
    "PredicateError",
    "ReproError",
    "SchemaError",
    "make_rng",
    "spawn",
]
