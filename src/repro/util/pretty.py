"""ASCII rendering of expression trees and query graphs.

Used by the examples and by error reports; nothing here affects
semantics.  The tree renderer mirrors the paper's Figure-1 style: operator
at the top, operands below.
"""

from __future__ import annotations

from repro.core.expressions import BinaryOp, Expression, Rel


def render_tree(expr: Expression, show_predicates: bool = False) -> str:
    """Multi-line, indentation-based rendering of an operator tree."""
    lines: list[str] = []

    def walk(node: Expression, prefix: str, connector: str) -> None:
        if isinstance(node, Rel):
            label = node.name
        elif isinstance(node, BinaryOp):
            label = node.symbol
            if show_predicates:
                label += f" [{node.predicate!r}]"
        else:
            label = type(node).__name__
        lines.append(f"{prefix}{connector}{label}")
        kids = node.children()
        if kids:
            child_prefix = prefix + ("   " if not connector else ("│  " if connector == "├─ " else "   "))
            for i, kid in enumerate(kids):
                last = i == len(kids) - 1
                walk(kid, child_prefix, "└─ " if last else "├─ ")

    walk(expr, "", "")
    return "\n".join(lines)


def render_side_by_side(left: str, right: str, gap: int = 4) -> str:
    """Put two multi-line blocks next to each other (for before/after views)."""
    left_lines = left.splitlines() or [""]
    right_lines = right.splitlines() or [""]
    width = max(len(l) for l in left_lines)
    height = max(len(left_lines), len(right_lines))
    left_lines += [""] * (height - len(left_lines))
    right_lines += [""] * (height - len(right_lines))
    return "\n".join(
        f"{l.ljust(width + gap)}{r}" for l, r in zip(left_lines, right_lines)
    )
