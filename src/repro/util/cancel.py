"""Cooperative cancellation tokens for query execution.

A :class:`CancelToken` carries two stop conditions: an explicit
:meth:`cancel` flag (set by any thread) and an optional monotonic
deadline.  Execution code *polls* the token at safe points — the
engine's iterator loop checks it between row batches, and the per-query
:class:`~repro.engine.metrics.Metrics` sink checks it deep inside
operator build phases — and raises the appropriate
:class:`~repro.util.errors.CancellationError` subclass.  Cancellation is
therefore cooperative and loses no invariants: generators unwind through
their ``finally`` blocks, traced spans finish, and no partial result
escapes.

The token is intentionally tiny and lock-free: ``cancel()`` writes one
attribute (atomic under the GIL) and polling reads two.  ``Event`` is
avoided because a poll must never block.
"""

from __future__ import annotations

from time import monotonic
from typing import Optional

from repro.util.errors import QueryCancelledError, QueryTimeoutError


class CancelToken:
    """A poll-based stop signal with an optional deadline.

    ``timeout_s`` arms a deadline ``timeout_s`` seconds from construction
    (monotonic clock).  ``check()`` raises; ``should_stop()`` just
    answers.  Both are safe to call from any thread, any number of times.
    """

    __slots__ = ("_cancelled", "deadline")

    def __init__(self, timeout_s: Optional[float] = None):
        self._cancelled = False
        self.deadline: Optional[float] = None if timeout_s is None else monotonic() + timeout_s

    def cancel(self) -> None:
        """Request cooperative cancellation (idempotent)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and monotonic() >= self.deadline

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline (never negative), or None."""
        if self.deadline is None:
            return None
        return max(self.deadline - monotonic(), 0.0)

    def should_stop(self) -> bool:
        return self._cancelled or self.expired

    def check(self) -> None:
        """Raise if the token demands a stop; otherwise return cheaply.

        Explicit cancellation wins over an expired deadline when both
        hold, because the caller's intent is the more specific signal.
        """
        if self._cancelled:
            raise QueryCancelledError("query cancelled")
        if self.expired:
            raise QueryTimeoutError("query deadline exceeded")
