"""Exception hierarchy for the reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A scheme constraint was violated.

    Raised when schemes that must be disjoint overlap (the paper's database
    definition requires ground relations to have mutually disjoint schemes),
    when a tuple is built against the wrong scheme, or when an attribute is
    referenced that no registered relation owns.
    """


class PredicateError(ReproError):
    """A predicate is malformed or referenced attributes it does not own."""


class GraphUndefinedError(ReproError):
    """``graph(Q)`` is undefined for the query ``Q``.

    Per Section 1.2 of the paper, the query graph is undefined when a join
    conjunct references attributes of more or fewer than two ground
    relations, or when an outerjoin predicate does not reference attributes
    from exactly two ground relations.
    """


class NotApplicableError(ReproError):
    """A basic transform was requested at a position where it does not apply.

    Section 3.2 defines applicability conditions for reassociation (the
    migrating operator's predicate must reference a relation of the middle
    subtree, and conjuncts may only move between two regular joins).
    """


class NotImplementingTreeError(ReproError):
    """An expression is not an implementing tree of the expected graph."""


class PlanningError(ReproError):
    """The physical planner or optimizer could not produce a plan."""


class ParseError(ReproError):
    """The Section-5 language front end rejected the query text."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CatalogError(ReproError):
    """An entity type, field, or relation is missing from the catalog."""


class CancellationError(ReproError):
    """A query stopped before completion (base of timeout/cancel)."""


class QueryCancelledError(CancellationError):
    """A query was cooperatively cancelled by its caller."""


class QueryTimeoutError(CancellationError):
    """A query exceeded its deadline and was cooperatively stopped."""


class ServiceError(ReproError):
    """Base class for query-service failures (admission, lifecycle)."""


class ServiceOverloadedError(ServiceError):
    """The service's bounded admission queue was full; the query was shed."""


class ServiceClosedError(ServiceError):
    """The service is shut down and accepts no further queries."""


class EvaluationError(ReproError):
    """Evaluation of an expression failed (e.g., unknown relation variable)."""
