"""Global switch between the fast kernels and the naive reference code.

The algebra operators and the subgraph machinery each exist twice: a
naive transcription of the paper's definitions (the semantic oracle) and
a hash/bitset fast path that must be bag-equal to it.  This module holds
the process-wide dispatch switch so the benchmark runner can reproduce
the naive baseline (``--naive``) and the property tests can compare the
two paths in one process.

The default is the fast path; set the environment variable
``REPRO_NAIVE_KERNELS=1`` (before import) or call
:func:`set_fast_kernels` / :func:`kernel_mode` to flip it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled: bool = os.environ.get("REPRO_NAIVE_KERNELS", "").lower() not in (
    "1",
    "true",
    "yes",
)

#: Parallel execution is opt-in: ``REPRO_PARALLEL=1`` (or truthy) turns
#: on the morsel-driven partitioned join path in
#: :mod:`repro.engine.parallel`.  The switch lives here, not in the
#: engine, so the algebra operators can consult it without an import
#: cycle — the engine already imports the algebra.
_parallel: bool = os.environ.get("REPRO_PARALLEL", "").lower() in (
    "1",
    "true",
    "yes",
)

#: Thread-local overrides pushed by :func:`parallel_mode`.  Scoping the
#: *temporary* switch per thread lets each QueryService worker force
#: parallel execution for its own query without racing other threads'
#: restores (the process-wide default stays whatever the env /
#: :func:`set_parallel` said).
import threading as _threading

_parallel_tls = _threading.local()


def fast_enabled() -> bool:
    """Is the fast-kernel dispatch currently on?"""
    return _enabled


def parallel_enabled() -> bool:
    """Is the morsel-driven parallel join dispatch currently on?

    The innermost :func:`parallel_mode` override on *this thread* wins;
    otherwise the process-wide default applies.
    """
    stack = getattr(_parallel_tls, "stack", None)
    if stack:
        return stack[-1]
    return _parallel


def set_parallel(enabled: bool) -> bool:
    """Set the process-wide parallel default; returns the previous one."""
    global _parallel
    previous = _parallel
    _parallel = bool(enabled)
    return previous


@contextmanager
def parallel_mode(enabled: bool):
    """Force the parallel path on (True) or off (False) for this thread."""
    stack = getattr(_parallel_tls, "stack", None)
    if stack is None:
        stack = _parallel_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def set_fast_kernels(enabled: bool) -> bool:
    """Turn the fast path on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def kernel_mode(enabled: bool):
    """Temporarily force the fast path on (True) or off (False)."""
    previous = set_fast_kernels(enabled)
    try:
        yield
    finally:
        set_fast_kernels(previous)
