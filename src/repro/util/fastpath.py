"""Global switch between the fast kernels and the naive reference code.

The algebra operators and the subgraph machinery each exist twice: a
naive transcription of the paper's definitions (the semantic oracle) and
a hash/bitset fast path that must be bag-equal to it.  This module holds
the process-wide dispatch switch so the benchmark runner can reproduce
the naive baseline (``--naive``) and the property tests can compare the
two paths in one process.

The default is the fast path; set the environment variable
``REPRO_NAIVE_KERNELS=1`` (before import) or call
:func:`set_fast_kernels` / :func:`kernel_mode` to flip it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled: bool = os.environ.get("REPRO_NAIVE_KERNELS", "").lower() not in (
    "1",
    "true",
    "yes",
)

#: Parallel execution is opt-in: ``REPRO_PARALLEL=1`` (or truthy) turns
#: on the morsel-driven partitioned join path in
#: :mod:`repro.engine.parallel`.  The switch lives here, not in the
#: engine, so the algebra operators can consult it without an import
#: cycle — the engine already imports the algebra.
_parallel: bool = os.environ.get("REPRO_PARALLEL", "").lower() in (
    "1",
    "true",
    "yes",
)

#: Vectorized batch execution is opt-out: ``REPRO_BATCH=0`` falls back to
#: the row-at-a-time iterators.  Default on — the batch kernels are
#: bag-identical (indeed sequence-identical) to the row path, so the
#: faster representation is the default and the row path remains the
#: differential baseline (the ``engine`` conformance tier pins it off).
_batch: bool = os.environ.get("REPRO_BATCH", "").lower() not in (
    "0",
    "false",
    "no",
)

#: The acyclic fast path (GYO + Yannakakis semijoin reduction) is
#: opt-out: ``REPRO_YANNAKAKIS=0`` pins the optimizer to the binary-tree
#: DP plans.  Default on — the optimizer only takes the fast path when
#: the cost model favors it and the safety certificate holds, and the
#: toggle exists so the conformance suite can prove the DP fallback is
#: byte-identical when the path is disabled.
_yannakakis: bool = os.environ.get("REPRO_YANNAKAKIS", "").lower() not in (
    "0",
    "false",
    "no",
)

#: Process-sharded execution is opt-in: ``REPRO_SHARD=1`` (or truthy)
#: turns on the multiprocessing dispatch in :mod:`repro.engine.shard`
#: (tables hash-sharded on a join-key attribute class across a pool of
#: worker processes).  Default off — with the switch off the dispatch is
#: never consulted, so the threaded path is byte-identical to a build
#: without the shard module.
_shard: bool = os.environ.get("REPRO_SHARD", "").lower() in (
    "1",
    "true",
    "yes",
)

#: The cyclic fast path (sorted tries + Leapfrog Triejoin) is opt-out:
#: ``REPRO_WCOJ=0`` pins cyclic join cores to the binary-tree DP plans.
#: Default on — the optimizer only dispatches to the worst-case optimal
#: operator when the join core is genuinely cyclic (GYO fails), contains
#: no outerjoins, and the AGM fractional-cover bound beats the DP plan's
#: C_out estimate; the toggle exists so the conformance suite can prove
#: the DP fallback is byte-identical when the path is disabled.
_wcoj: bool = os.environ.get("REPRO_WCOJ", "").lower() not in (
    "0",
    "false",
    "no",
)


def _env_batch_size() -> int:
    raw = os.environ.get("REPRO_BATCH_SIZE", "").strip()
    if not raw:
        return 1024
    try:
        size = int(raw)
    except ValueError:
        return 1024
    return size if size >= 1 else 1024


#: Rows per :class:`~repro.engine.batch.ColumnBatch` pulled from a scan or
#: produced by the row->batch shim.  Operators may emit larger batches
#: (a join's output batch follows its probe batch's match multiplicity).
_batch_size: int = _env_batch_size()

#: Thread-local overrides pushed by :func:`parallel_mode` /
#: :func:`batch_mode`.  Scoping the *temporary* switch per thread lets
#: each QueryService worker force a mode for its own query without racing
#: other threads' restores (the process-wide default stays whatever the
#: env / :func:`set_parallel` / :func:`set_batch` said).
import threading as _threading

_parallel_tls = _threading.local()
_shard_tls = _threading.local()
_batch_tls = _threading.local()
_yannakakis_tls = _threading.local()
_wcoj_tls = _threading.local()


def fast_enabled() -> bool:
    """Is the fast-kernel dispatch currently on?"""
    return _enabled


def parallel_enabled() -> bool:
    """Is the morsel-driven parallel join dispatch currently on?

    The innermost :func:`parallel_mode` override on *this thread* wins;
    otherwise the process-wide default applies.
    """
    stack = getattr(_parallel_tls, "stack", None)
    if stack:
        return stack[-1]
    return _parallel


def set_parallel(enabled: bool) -> bool:
    """Set the process-wide parallel default; returns the previous one."""
    global _parallel
    previous = _parallel
    _parallel = bool(enabled)
    return previous


@contextmanager
def parallel_mode(enabled: bool):
    """Force the parallel path on (True) or off (False) for this thread."""
    stack = getattr(_parallel_tls, "stack", None)
    if stack is None:
        stack = _parallel_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def shard_enabled() -> bool:
    """Is the process-sharded execution dispatch currently on?

    The innermost :func:`shard_mode` override on *this thread* wins;
    otherwise the process-wide default (``REPRO_SHARD``, default off)
    applies.
    """
    stack = getattr(_shard_tls, "stack", None)
    if stack:
        return stack[-1]
    return _shard


def set_shard(enabled: bool) -> bool:
    """Set the process-wide shard default; returns the previous one."""
    global _shard
    previous = _shard
    _shard = bool(enabled)
    return previous


@contextmanager
def shard_mode(enabled: bool):
    """Force sharded execution on (True) or off (False) for this thread."""
    stack = getattr(_shard_tls, "stack", None)
    if stack is None:
        stack = _shard_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def batch_enabled() -> bool:
    """Is vectorized columnar batch execution currently on?

    The innermost :func:`batch_mode` override on *this thread* wins;
    otherwise the process-wide default (``REPRO_BATCH``, default on)
    applies.
    """
    stack = getattr(_batch_tls, "stack", None)
    if stack:
        return stack[-1]
    return _batch


def set_batch(enabled: bool) -> bool:
    """Set the process-wide batch default; returns the previous one."""
    global _batch
    previous = _batch
    _batch = bool(enabled)
    return previous


@contextmanager
def batch_mode(enabled: bool):
    """Force batch execution on (True) or off (False) for this thread."""
    stack = getattr(_batch_tls, "stack", None)
    if stack is None:
        stack = _batch_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def yannakakis_enabled() -> bool:
    """Is the acyclic Yannakakis fast path currently eligible?

    The innermost :func:`yannakakis_mode` override on *this thread*
    wins; otherwise the process-wide default (``REPRO_YANNAKAKIS``,
    default on) applies.
    """
    stack = getattr(_yannakakis_tls, "stack", None)
    if stack:
        return stack[-1]
    return _yannakakis


def set_yannakakis(enabled: bool) -> bool:
    """Set the process-wide Yannakakis default; returns the previous one."""
    global _yannakakis
    previous = _yannakakis
    _yannakakis = bool(enabled)
    return previous


@contextmanager
def yannakakis_mode(enabled: bool):
    """Force the acyclic fast path on (True) or off (False) for this thread."""
    stack = getattr(_yannakakis_tls, "stack", None)
    if stack is None:
        stack = _yannakakis_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def wcoj_enabled() -> bool:
    """Is the cyclic Leapfrog-Triejoin fast path currently eligible?

    The innermost :func:`wcoj_mode` override on *this thread* wins;
    otherwise the process-wide default (``REPRO_WCOJ``, default on)
    applies.
    """
    stack = getattr(_wcoj_tls, "stack", None)
    if stack:
        return stack[-1]
    return _wcoj


def set_wcoj(enabled: bool) -> bool:
    """Set the process-wide WCOJ default; returns the previous one."""
    global _wcoj
    previous = _wcoj
    _wcoj = bool(enabled)
    return previous


@contextmanager
def wcoj_mode(enabled: bool):
    """Force the cyclic fast path on (True) or off (False) for this thread."""
    stack = getattr(_wcoj_tls, "stack", None)
    if stack is None:
        stack = _wcoj_tls.stack = []
    stack.append(bool(enabled))
    try:
        yield
    finally:
        stack.pop()


def batch_size() -> int:
    """The configured rows-per-batch (``REPRO_BATCH_SIZE``, default 1024)."""
    return _batch_size


def set_batch_size(size: int) -> int:
    """Set the process-wide batch size; returns the previous one."""
    global _batch_size
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    previous = _batch_size
    _batch_size = int(size)
    return previous


@contextmanager
def batch_sized(size: int):
    """Temporarily pin the batch size (tests and the conformance tier)."""
    previous = set_batch_size(size)
    try:
        yield
    finally:
        set_batch_size(previous)


def set_fast_kernels(enabled: bool) -> bool:
    """Turn the fast path on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def kernel_mode(enabled: bool):
    """Temporarily force the fast path on (True) or off (False)."""
    previous = set_fast_kernels(enabled)
    try:
        yield
    finally:
        set_fast_kernels(previous)
