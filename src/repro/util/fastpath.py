"""Global switch between the fast kernels and the naive reference code.

The algebra operators and the subgraph machinery each exist twice: a
naive transcription of the paper's definitions (the semantic oracle) and
a hash/bitset fast path that must be bag-equal to it.  This module holds
the process-wide dispatch switch so the benchmark runner can reproduce
the naive baseline (``--naive``) and the property tests can compare the
two paths in one process.

The default is the fast path; set the environment variable
``REPRO_NAIVE_KERNELS=1`` (before import) or call
:func:`set_fast_kernels` / :func:`kernel_mode` to flip it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled: bool = os.environ.get("REPRO_NAIVE_KERNELS", "").lower() not in (
    "1",
    "true",
    "yes",
)


def fast_enabled() -> bool:
    """Is the fast-kernel dispatch currently on?"""
    return _enabled


def set_fast_kernels(enabled: bool) -> bool:
    """Turn the fast path on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def kernel_mode(enabled: bool):
    """Temporarily force the fast path on (True) or off (False)."""
    previous = set_fast_kernels(enabled)
    try:
        yield
    finally:
        set_fast_kernels(previous)
