"""Deterministic random-number helpers.

All randomized components of the library (data generators, randomized
identity checks, counterexample searches) take an explicit seed or an
explicit :class:`random.Random` instance so that every experiment in the
benchmark suite is reproducible run-to-run.
"""

from __future__ import annotations

import random

#: Seed used by benchmarks and examples unless the caller overrides it.
DEFAULT_SEED = 19900523  # SIGMOD 1990 conference dates.


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` for the given seed.

    ``None`` maps to :data:`DEFAULT_SEED` (not to nondeterminism: the whole
    point of this helper is that nothing in the library is seeded from the
    clock).  Passing an existing ``Random`` returns it unchanged, which lets
    generator pipelines share a single stream.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def spawn(rng: random.Random) -> random.Random:
    """Derive an independent child stream from ``rng``.

    Used when a generator hands sub-tasks to helpers that should not perturb
    the parent stream's sequence (so adding a helper call does not shift
    every subsequent draw of the parent).
    """
    return random.Random(rng.getrandbits(64))
