"""Entity-type catalog for the Section-5 language.

Section 5 extends SQL "to handle relations whose attributes may be set- or
entity-valued", crediting the (unpublished) operator designs of J. Bauer.
An entity type here has three kinds of fields:

* **scalar** fields — ordinary single values;
* **set-valued** fields — a set of scalar values (the target of the
  UnNest/Flatten operator ``*``);
* **entity-valued** fields — a reference to a tuple of another entity
  type (the target of the Link-via operator ``->``).

The catalog is pure schema; instances live in
:class:`repro.language.objectstore.ObjectStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.util.errors import CatalogError


@dataclass(frozen=True)
class FieldDef:
    """One field of an entity type."""

    name: str
    kind: str  # "scalar" | "set" | "entity"
    target: Optional[str] = None  # entity fields: the referenced type

    def __post_init__(self):
        if self.kind not in ("scalar", "set", "entity"):
            raise CatalogError(f"unknown field kind {self.kind!r}")
        if (self.kind == "entity") != (self.target is not None):
            raise CatalogError("entity fields (and only those) need a target type")


@dataclass
class EntityType:
    """A named entity type with its field definitions."""

    name: str
    fields: Dict[str, FieldDef] = field(default_factory=dict)

    def add_scalar(self, name: str) -> "EntityType":
        self._add(FieldDef(name, "scalar"))
        return self

    def add_set(self, name: str) -> "EntityType":
        self._add(FieldDef(name, "set"))
        return self

    def add_entity(self, name: str, target: str) -> "EntityType":
        self._add(FieldDef(name, "entity", target))
        return self

    def _add(self, fd: FieldDef) -> None:
        if fd.name in self.fields:
            raise CatalogError(f"field {fd.name!r} defined twice on {self.name!r}")
        self.fields[fd.name] = fd

    def field_def(self, name: str) -> FieldDef:
        try:
            return self.fields[name]
        except KeyError:
            raise CatalogError(f"type {self.name!r} has no field {name!r}") from None

    def scalar_fields(self) -> Iterator[str]:
        return (f for f, d in self.fields.items() if d.kind == "scalar")

    def entity_fields(self) -> Iterator[str]:
        return (f for f, d in self.fields.items() if d.kind == "entity")


class Catalog:
    """All entity types known to a database."""

    def __init__(self) -> None:
        self._types: Dict[str, EntityType] = {}

    def define(self, name: str) -> EntityType:
        if name in self._types:
            raise CatalogError(f"entity type {name!r} defined twice")
        etype = EntityType(name)
        self._types[name] = etype
        return etype

    def __getitem__(self, name: str) -> EntityType:
        try:
            return self._types[name]
        except KeyError:
            raise CatalogError(f"unknown entity type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self):
        return iter(self._types)

    def resolve_field(self, available_types: Iterator[Tuple[str, str]], field_name: str):
        """Find which available (instance, type) owns ``field_name``.

        Section 5: "The order of the clauses is not essential — the parser
        can associate the attributes with their relations."  Ambiguity (two
        available types owning the same field) is an error.
        """
        owners = [
            (instance, type_name)
            for instance, type_name in available_types
            if field_name in self[type_name].fields
        ]
        if not owners:
            raise CatalogError(f"no relation in scope has a field {field_name!r}")
        if len(owners) > 1:
            raise CatalogError(
                f"field {field_name!r} is ambiguous among {[o[0] for o in owners]}"
            )
        return owners[0]
