"""Abstract syntax of the Section-5 query language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class FromOp:
    """One postfix operator in a From-item: UnNest (``*``) or Link (``->``)."""

    kind: str  # "unnest" | "link"
    field_name: str

    def __str__(self) -> str:
        symbol = "*" if self.kind == "unnest" else "-->"
        return f"{symbol}{self.field_name}"


@dataclass(frozen=True)
class FromItem:
    """A base entity type with a chain of UnNest/Link operators.

    ``alias`` supports the paper's "several copies of the same relation
    with renamed attributes" (Section 1.2): ``FROM EMPLOYEE E1,
    EMPLOYEE E2`` introduces two independent tuple variables over the
    same entity type.
    """

    base: str
    ops: Tuple[FromOp, ...] = ()
    alias: Optional[str] = None

    @property
    def instance(self) -> str:
        """The tuple-variable name this item binds."""
        return self.alias or self.base

    def __str__(self) -> str:
        head = f"{self.base} {self.alias}" if self.alias else self.base
        return head + "".join(str(op) for op in self.ops)


# -- conditions (the Where clause) -------------------------------------------


class Condition:
    """Base class of Where-clause conditions."""


@dataclass(frozen=True)
class AttrExpr(Condition):
    """A qualified attribute reference ``Relation.attr``."""

    relation: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.relation}.{self.attribute}"


@dataclass(frozen=True)
class ConstExpr(Condition):
    value: Any

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class CompareCond(Condition):
    left: Condition
    op: str
    right: Condition

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class IsNullCond(Condition):
    operand: Condition
    negated: bool = False

    def __str__(self) -> str:
        return f"{self.operand} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class AndCond(Condition):
    parts: Tuple[Condition, ...]

    def __str__(self) -> str:
        return " AND ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class OrCond(Condition):
    parts: Tuple[Condition, ...]

    def __str__(self) -> str:
        return "(" + " OR ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class NotCond(Condition):
    part: Condition

    def __str__(self) -> str:
        return f"NOT ({self.part})"


@dataclass
class SelectQuery:
    """A parsed query block: Select / From / Where."""

    select_all: bool
    select_list: List[AttrExpr] = field(default_factory=list)
    from_items: List[FromItem] = field(default_factory=list)
    where: Optional[Condition] = None

    def __str__(self) -> str:
        select = "ALL" if self.select_all else ", ".join(map(str, self.select_list))
        text = f"SELECT {select} FROM {', '.join(map(str, self.from_items))}"
        if self.where is not None:
            text += f" WHERE {self.where}"
        return text
