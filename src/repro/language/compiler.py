"""Compile Section-5 query blocks into freely-reorderable outerjoin queries.

Section 5.2's reformulation, implemented end to end:

* ``R * Field``  becomes  ``OJ[NestedIn(@r, @value)](R, ValueOfField)``
* ``R -> Field`` becomes  ``OJ[LinkedTo(@r, @value)](R, DomainOfField)``

Each traversal introduces an *independent* relation instance (a new tuple
variable), every outerjoin edge points outward from its owner, and the
NestedIn/LinkedTo predicates are strong — so, as Section 5.3 observes,
every query block satisfies the preconditions of Theorem 1 and is freely
reorderable.  The compiler asserts exactly that on every compilation, and
hands the resulting query graph to the optimizer without any outerjoin-
specific analysis (the Section-6.1 programme).

Restrictions (single-relation Where conjuncts) are applied to the base
relations up front; Section 4 sanctions this because base instances are
never null-supplied — only the relations manufactured by ``*``/``->`` are,
and the language forbids Where-clause references to those ("Attributes
obtained from the right side of -> and * operators cannot appear in the
Where-List predicates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.operators import project, restrict
from repro.algebra.predicates import (
    AttrRef,
    Comparison,
    Const,
    IsNull,
    Not,
    Or,
    Predicate,
    conjunction,
)
from repro.algebra.relation import Database, Relation
from repro.core.expressions import Expression, Join, LeftOuterJoin, Rel
from repro.core.graph import QueryGraph
from repro.core.reorderability import ReorderabilityVerdict, theorem1_applies
from repro.language.ast_nodes import (
    AndCond,
    AttrExpr,
    CompareCond,
    Condition,
    ConstExpr,
    IsNullCond,
    NotCond,
    OrCond,
    SelectQuery,
)
from repro.language.catalog import Catalog
from repro.language.objectstore import ObjectStore
from repro.language.parser import parse
from repro.util.errors import CatalogError, GraphUndefinedError, ParseError


@dataclass
class CompiledQuery:
    """Everything the back end needs: data, graph, trees, and the proof."""

    source: SelectQuery
    database: Database
    graph: QueryGraph
    initial_tree: Expression
    restrictions: List[Tuple[str, Predicate]]
    verdict: ReorderabilityVerdict
    select_attrs: Optional[List[str]]
    derived_instances: List[str] = field(default_factory=list)

    @property
    def registry(self):
        return self.database.registry

    def run(self, tree: Optional[Expression] = None) -> Relation:
        """Evaluate the block (with any implementing tree — they all agree)."""
        expr = tree if tree is not None else self.initial_tree
        result = expr.eval(self.database)
        if self.select_attrs is not None:
            result = project(result, self.select_attrs, dedup=False)
        return result

    def restrict_result(
        self, condition_text: str, tree: Optional[Expression] = None
    ) -> Relation:
        """Apply an *enclosing-block* restriction to this block's result.

        Section 5: attributes from the right side of ``*``/``->`` "cannot
        appear in the Where-List predicates because the position of the
        restriction predicate would be ambiguous, either before or after
        unnesting.  But they may be restricted in an enclosing query
        block."  This method is that enclosing block: the condition is
        evaluated against the block's finished rows, so its position is
        unambiguous (after), derived attributes included.
        """
        from repro.language.parser import parse_condition

        condition = parse_condition(condition_text)
        attrs_available = set()
        for name in self.database:
            attrs_available |= set(self.database[name].scheme)

        def term(node):
            if isinstance(node, AttrExpr):
                qualified = f"{node.relation}.{node.attribute}"
                if qualified not in attrs_available:
                    raise CatalogError(f"no attribute {qualified!r} in the block result")
                return AttrRef(qualified)
            if isinstance(node, ConstExpr):
                return Const(node.value)
            raise ParseError(f"expected an operand, got {node}")

        def build(node) -> Predicate:
            if isinstance(node, CompareCond):
                return Comparison(term(node.left), node.op, term(node.right))
            if isinstance(node, IsNullCond):
                base = IsNull(term(node.operand))
                return Not(base) if node.negated else base
            if isinstance(node, AndCond):
                return conjunction([build(p) for p in node.parts])
            if isinstance(node, OrCond):
                return Or(tuple(build(p) for p in node.parts))
            if isinstance(node, NotCond):
                return Not(build(node.part))
            raise ParseError(f"unsupported condition {node}")

        predicate = build(condition)
        expr = tree if tree is not None else self.initial_tree
        return restrict(expr.eval(self.database), predicate)

    def optimized_tree(self) -> Expression:
        """Cheapest IT under C_out — no outerjoin-specific machinery needed."""
        from repro.engine.storage import Storage
        from repro.optimizer.cardinality import CardinalityEstimator
        from repro.optimizer.cost import CoutCostModel
        from repro.optimizer.dp import DPOptimizer

        storage = Storage.from_database(self.database)
        model = CoutCostModel(CardinalityEstimator(storage))
        return DPOptimizer(self.graph, model).optimize().expr


class Compiler:
    """Compiles parsed query blocks against a catalog + object store."""

    def __init__(self, store: ObjectStore):
        self.store = store
        self.catalog: Catalog = store.catalog

    # -- public API -------------------------------------------------------------

    def compile(self, query: SelectQuery | str) -> CompiledQuery:
        if isinstance(query, str):
            query = parse(query)

        relations: Dict[str, Relation] = {}
        base_instances: List[str] = []
        derived_instances: List[str] = []
        oj_triples: List[Tuple[str, str, Predicate]] = []
        instance_types: Dict[str, Optional[str]] = {}

        # 1. From-list: base relations and UnNest/Link traversals.
        item_oj_triples: Dict[str, List[Tuple[str, str, Predicate]]] = {}
        for item in query.from_items:
            if item.base not in self.catalog:
                raise CatalogError(f"unknown entity type {item.base!r} in FROM")
            if item.instance in relations:
                raise CatalogError(
                    f"tuple variable {item.instance!r} bound twice; give each use of "
                    f"{item.base!r} a distinct alias (FROM {item.base} E1, {item.base} E2)"
                )
            relations[item.instance] = self.store.base_relation(
                item.base, instance=item.instance
            )
            base_instances.append(item.instance)
            instance_types[item.instance] = item.base
            # Entities available for field resolution within this item.
            available: List[Tuple[str, str]] = [(item.instance, item.base)]
            for op in item.ops:
                owner_instance, owner_type = self.catalog.resolve_field(
                    iter(available), op.field_name
                )
                fdef = self.catalog[owner_type].field_def(op.field_name)
                instance = f"{owner_instance}_{op.field_name}"
                if instance in relations:
                    raise CatalogError(f"field {op.field_name!r} traversed twice")
                if op.kind == "unnest":
                    if fdef.kind != "set":
                        raise CatalogError(
                            f"'*' needs a set-valued field; {owner_type}.{op.field_name} "
                            f"is {fdef.kind}"
                        )
                    rel, membership = self.store.value_relation(
                        owner_type, op.field_name, instance
                    )
                    predicate = ObjectStore.nested_in(
                        owner_instance, instance, op.field_name, membership
                    )
                    instance_types[instance] = None
                else:
                    if fdef.kind != "entity":
                        raise CatalogError(
                            f"'->' needs an entity-valued field; {owner_type}.{op.field_name} "
                            f"is {fdef.kind}"
                        )
                    rel = self.store.base_relation(fdef.target, instance=instance)
                    predicate = ObjectStore.linked_to(
                        owner_instance, op.field_name, instance
                    )
                    available.append((instance, fdef.target))
                    instance_types[instance] = fdef.target
                relations[instance] = rel
                derived_instances.append(instance)
                oj_triples.append((owner_instance, instance, predicate))
                item_oj_triples.setdefault(item.instance, []).append(
                    (owner_instance, instance, predicate)
                )

        # 2. Where-clause: split into restrictions and join edges.
        restrictions: List[Tuple[str, Predicate]] = []
        join_triples: List[Tuple[str, str, Predicate]] = []
        if query.where is not None:
            for conjunct in _flatten_and(query.where):
                predicate, instances = self._compile_condition(
                    conjunct, relations, base_instances
                )
                if len(instances) == 1:
                    restrictions.append((next(iter(instances)), predicate))
                elif len(instances) == 2:
                    a, b = sorted(instances)
                    join_triples.append((a, b, predicate))
                else:
                    raise GraphUndefinedError(
                        f"conjunct {conjunct} references {len(instances)} relations; "
                        "the query graph requires one or two"
                    )

        # 3. Apply restrictions to base relations (never null-supplied).
        for instance, predicate in restrictions:
            relations[instance] = restrict(relations[instance], predicate)

        # 4. Assemble the database and graph.
        database = Database(relations)
        graph = QueryGraph.from_edges(
            join=join_triples, oj=oj_triples, isolated=list(relations)
        )
        if len(relations) > 1 and not graph.is_connected():
            raise GraphUndefinedError(
                "the FROM items are not all connected by WHERE predicates; "
                "Cartesian products are not expressible as implementing trees"
            )

        # 5. The Section-5.3 observation, machine-checked on every compile.
        verdict = theorem1_applies(graph, database.registry)
        if not verdict.freely_reorderable:
            raise GraphUndefinedError(
                f"internal error: a compiled block must be freely reorderable:\n{verdict}"
            )

        initial_tree = self._initial_tree(query, graph, item_oj_triples)
        select_attrs = self._resolve_select(query, database)
        return CompiledQuery(
            source=query,
            database=database,
            graph=graph,
            initial_tree=initial_tree,
            restrictions=restrictions,
            verdict=verdict,
            select_attrs=select_attrs,
            derived_instances=derived_instances,
        )

    # -- helpers ---------------------------------------------------------------

    def _compile_condition(
        self,
        condition: Condition,
        relations: Dict[str, Relation],
        base_instances: List[str],
    ) -> Tuple[Predicate, frozenset[str]]:
        """Compile one conjunct; returns (predicate, referenced instances)."""
        instances: set[str] = set()

        def term(node: Condition):
            if isinstance(node, AttrExpr):
                if node.relation not in relations:
                    raise CatalogError(f"unknown relation {node.relation!r} in WHERE")
                if node.relation not in base_instances:
                    raise ParseError(
                        f"attribute {node} comes from the right side of a '*' or '->' "
                        "operator and cannot appear in the WHERE list (restrict it in "
                        "an enclosing query block instead)"
                    )
                qualified = f"{node.relation}.{node.attribute}"
                if qualified not in relations[node.relation].scheme:
                    raise CatalogError(f"relation {node.relation!r} has no attribute {node}")
                instances.add(node.relation)
                return AttrRef(qualified)
            if isinstance(node, ConstExpr):
                return Const(node.value)
            raise ParseError(f"expected an operand, got {node}")

        def compile_node(node: Condition) -> Predicate:
            if isinstance(node, CompareCond):
                return Comparison(term(node.left), node.op, term(node.right))
            if isinstance(node, IsNullCond):
                base = IsNull(term(node.operand))
                return Not(base) if node.negated else base
            if isinstance(node, AndCond):
                return conjunction([compile_node(p) for p in node.parts])
            if isinstance(node, OrCond):
                return Or(tuple(compile_node(p) for p in node.parts))
            if isinstance(node, NotCond):
                return Not(compile_node(node.part))
            raise ParseError(f"unsupported condition {node}")

        predicate = compile_node(condition)
        return predicate, frozenset(instances)

    def _initial_tree(
        self,
        query: SelectQuery,
        graph: QueryGraph,
        item_oj_triples: Dict[str, List[Tuple[str, str, Predicate]]],
    ) -> Expression:
        """The "as written" implementing tree.

        Each From-item becomes a left-deep chain of outerjoins in the order
        the ``*``/``->`` operators were written; items are then joined left
        to right on the Where conjuncts that connect them (with a lookahead
        for items whose connecting predicate arrives later in the clause).
        """
        item_exprs: List[Expression] = []
        for item in query.from_items:
            expr: Expression = Rel(item.instance)
            for _owner, target, predicate in item_oj_triples.get(item.instance, []):
                expr = LeftOuterJoin(expr, Rel(target), predicate)
            item_exprs.append(expr)

        tree = item_exprs[0]
        pending = list(item_exprs[1:])
        while pending:
            progressed = False
            for candidate in list(pending):
                cut_joins, _cut_ojs = graph.cut(tree.relations(), candidate.relations())
                if cut_joins:
                    predicate = conjunction([p for _pair, p in cut_joins])
                    tree = Join(tree, candidate, predicate)
                    pending.remove(candidate)
                    progressed = True
            if not progressed:
                raise GraphUndefinedError(
                    "FROM items cannot be joined in any order without a Cartesian product"
                )
        return tree

    def _resolve_select(
        self, query: SelectQuery, database: Database
    ) -> Optional[List[str]]:
        if query.select_all:
            return None
        out: List[str] = []
        for attr in query.select_list:
            qualified = f"{attr.relation}.{attr.attribute}"
            if attr.relation not in database:
                raise CatalogError(f"unknown relation {attr.relation!r} in SELECT")
            if qualified not in database[attr.relation].scheme:
                raise CatalogError(f"relation {attr.relation!r} has no attribute {attr}")
            out.append(qualified)
        return out


def _flatten_and(condition: Condition) -> List[Condition]:
    if isinstance(condition, AndCond):
        out: List[Condition] = []
        for part in condition.parts:
            out.extend(_flatten_and(part))
        return out
    return [condition]


def compile_query(text: str, store: ObjectStore) -> CompiledQuery:
    """One-call convenience: parse and compile a query block."""
    return Compiler(store).compile(text)
