"""Entity instances with object identity, and their relational views.

Section 5.2 grounds the UnNest/Link operators in the relational algebra by
assuming "every tuple (i.e., entity), and also every field value, has a
unique object identifier (e.g., a physical address on disk), denoted by
the prefix @".  The store assigns OIDs, and produces:

* **base relations** — one per entity type, with scheme
  ``{T.@oid} ∪ {T.f | scalar f} ∪ {T.@f | entity-valued f}`` (references
  surface as OID-valued attributes so the LinkedTo access predicate can be
  evaluated relationally; set-valued fields do not appear — they are only
  reachable through UnNest);
* **value relations** — the paper's abstract one-column ``ValueOfField``
  for a set-valued field, together with the ``NestedIn(@r, @value)``
  membership predicate;
* **linked copies** — an independent, renamed copy of a target type's base
  relation for each Link traversal ("each time a relation is obtained from
  a field, it was considered independent, i.e., a new tuple variable"),
  with the ``LinkedTo(@r, @value)`` predicate.

Both access predicates are :class:`~repro.algebra.predicates.CustomPredicate`
instances declared null-rejecting on both OID arguments, hence *strong* —
the last precondition of Section 5.3's free-reorderability proof.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.algebra.nulls import NULL
from repro.algebra.predicates import CustomPredicate
from repro.algebra.relation import Relation
from repro.algebra.tuples import Row
from repro.language.catalog import Catalog
from repro.util.errors import CatalogError


def oid_attr(instance: str) -> str:
    return f"{instance}.@oid"


class ObjectStore:
    """In-memory entity instances for one catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._instances: Dict[str, List[Dict[str, Any]]] = {t: [] for t in catalog}
        self._counter = 0

    def insert(self, type_name: str, **fields: Any) -> str:
        """Create one entity; returns its OID.

        Scalar fields default to NULL; set fields to the empty set; entity
        fields to a null reference.  Entity fields take the target's OID.
        """
        etype = self.catalog[type_name]
        unknown = set(fields) - set(etype.fields)
        if unknown:
            raise CatalogError(f"{type_name!r} has no fields {sorted(unknown)}")
        self._counter += 1
        oid = f"@{type_name}:{self._counter}"
        record: Dict[str, Any] = {"@oid": oid}
        for fname, fdef in etype.fields.items():
            if fdef.kind == "scalar":
                record[fname] = fields.get(fname, NULL)
            elif fdef.kind == "set":
                record[fname] = tuple(fields.get(fname, ()))
            else:
                record[fname] = fields.get(fname, NULL)
        self._instances[type_name].append(record)
        return oid

    def instances(self, type_name: str) -> List[Dict[str, Any]]:
        return self._instances[self.catalog[type_name].name]

    # -- relational views ---------------------------------------------------

    def base_relation(self, type_name: str, instance: Optional[str] = None) -> Relation:
        """The flattened base relation of a type, under an instance name."""
        etype = self.catalog[type_name]
        inst = instance or type_name
        attrs = [oid_attr(inst)]
        attrs += [f"{inst}.{f}" for f in etype.scalar_fields()]
        attrs += [f"{inst}.@{f}" for f in etype.entity_fields()]
        rows = []
        for record in self._instances[type_name]:
            row: Dict[str, Any] = {oid_attr(inst): record["@oid"]}
            for f in etype.scalar_fields():
                row[f"{inst}.{f}"] = record[f]
            for f in etype.entity_fields():
                ref = record[f]
                row[f"{inst}.@{f}"] = ref if ref is not NULL else NULL
            rows.append(Row(row))
        return Relation(attrs, rows)

    def value_relation(
        self, owner_type: str, field_name: str, instance: str
    ) -> Tuple[Relation, FrozenSet[Tuple[str, Any]]]:
        """``ValueOfField`` for a set-valued field, plus the membership pairs.

        The relation has a single column ``<instance>.<field>`` holding
        every distinct value appearing in any entity's field; the returned
        pair set ``{(@r, value)}`` backs the NestedIn predicate.
        """
        fdef = self.catalog[owner_type].field_def(field_name)
        if fdef.kind != "set":
            raise CatalogError(f"{owner_type}.{field_name} is not set-valued")
        attr = f"{instance}.{field_name}"
        pairs: set[Tuple[str, Any]] = set()
        values: set[Any] = set()
        for record in self._instances[owner_type]:
            for value in record[field_name]:
                values.add(value)
                pairs.add((record["@oid"], value))
        rows = [Row({attr: v}) for v in sorted(values, key=repr)]
        return Relation([attr], rows), frozenset(pairs)

    # -- access predicates ------------------------------------------------------

    @staticmethod
    def nested_in(
        owner_instance: str, value_instance: str, field_name: str,
        membership: FrozenSet[Tuple[str, Any]],
    ) -> CustomPredicate:
        """``NestedIn(@r, @value)``: true when the value is in r.Field.

        Strong on both arguments: a null OID (a padded owner) or a null
        value can never witness membership.
        """
        owner_attr = oid_attr(owner_instance)
        value_attr = f"{value_instance}.{field_name}"

        def fn(row) -> bool:
            return (row[owner_attr], row[value_attr]) in membership

        return CustomPredicate(
            name=f"NestedIn[{owner_instance}.{field_name}]",
            fn=fn,
            attributes=[owner_attr, value_attr],
            null_rejecting=[owner_attr, value_attr],
        )

    @staticmethod
    def linked_to(owner_instance: str, field_name: str, target_instance: str) -> CustomPredicate:
        """``LinkedTo(@r, @value)``: true when r.Field points at the value.

        Implemented as OID equality over the reference column; declared
        null-rejecting on both sides (a null reference links to nothing).
        """
        ref_attr = f"{owner_instance}.@{field_name}"
        target_attr = oid_attr(target_instance)

        def fn(row) -> bool:
            return row[ref_attr] == row[target_attr]

        return CustomPredicate(
            name=f"LinkedTo[{owner_instance}.{field_name}]",
            fn=fn,
            attributes=[ref_attr, target_attr],
            null_rejecting=[ref_attr, target_attr],
        )
