"""Tokenizer for the Section-5 query language.

The token set covers the paper's examples verbatim, including identifiers
containing ``#`` (``EMPLOYEE.D#``), the UnNest operator ``*``, the Link
operator written either ``-->`` (as in the paper's examples) or ``->``
(as in its prose), string literals in single quotes, and the usual
comparison operators.  Keywords are case-insensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.util.errors import ParseError

KEYWORDS = {"SELECT", "ALL", "FROM", "WHERE", "AND", "OR", "NOT", "IS", "NULL"}

#: Multi-character operators, longest first so ``-->`` beats ``->``.
OPERATORS = ["-->", "->", "<>", "<=", ">=", "=", "<", ">", "*", ",", ".", "(", ")"]


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | IDENT | NUMBER | STRING | OP | EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    # '#' appears in the paper's attribute names (D#).
    return ch.isalnum() or ch in "_#"


def tokenize(text: str) -> List[Token]:
    """Turn query text into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line, column = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            column += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise ParseError("unterminated string literal", line, column)
            tokens.append(Token("STRING", text[i + 1 : j], line, column))
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isdigit() or text[j] == "."):
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line, column))
            column += j - i
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_char(text[j]):
                j += 1
            word = text[i:j]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word.upper() if kind == "KEYWORD" else word, line, column))
            column += j - i
            i = j
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, line, column))
                column += len(op)
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("EOF", "", line, column))
    return tokens


class TokenStream:
    """Cursor over a token list with the usual peek/expect helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def match(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        if text is not None and token.text != text:
            return False
        self.advance()
        return True

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want}, found {token.text or token.kind!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._pos :])
