"""Section-5 language: SQL + UnNest (*) and Link (->) over entity data."""

from repro.language.ast_nodes import (
    AndCond,
    AttrExpr,
    CompareCond,
    ConstExpr,
    FromItem,
    FromOp,
    IsNullCond,
    NotCond,
    OrCond,
    SelectQuery,
)
from repro.language.catalog import Catalog, EntityType, FieldDef
from repro.language.compiler import CompiledQuery, Compiler, compile_query
from repro.language.lexer import Token, TokenStream, tokenize
from repro.language.objectstore import ObjectStore, oid_attr
from repro.language.parser import parse, parse_condition

__all__ = [
    "AndCond",
    "AttrExpr",
    "Catalog",
    "CompareCond",
    "CompiledQuery",
    "Compiler",
    "ConstExpr",
    "EntityType",
    "FieldDef",
    "FromItem",
    "FromOp",
    "IsNullCond",
    "NotCond",
    "ObjectStore",
    "OrCond",
    "SelectQuery",
    "Token",
    "TokenStream",
    "compile_query",
    "oid_attr",
    "parse",
    "parse_condition",
    "tokenize",
]
