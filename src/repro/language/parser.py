"""Recursive-descent parser for the Section-5 language.

Grammar (keywords case-insensitive)::

    query      := SELECT select FROM from_list [WHERE condition]
    select     := ALL | attr {',' attr}
    from_list  := from_item {',' from_item}
    from_item  := IDENT { '*' IDENT | '-->' IDENT | '->' IDENT }
    condition  := or_cond
    or_cond    := and_cond { OR and_cond }
    and_cond   := not_cond { AND not_cond }
    not_cond   := NOT not_cond | primary
    primary    := '(' condition ')' | operand (cmp operand | IS [NOT] NULL)
    operand    := attr | NUMBER | STRING
    attr       := IDENT '.' IDENT

Note the paper's point that "the order of the clauses is not essential":
field-to-relation association is deferred to the compiler, the parser only
builds syntax.
"""

from __future__ import annotations

from typing import List

from repro.language.ast_nodes import (
    AndCond,
    AttrExpr,
    CompareCond,
    Condition,
    ConstExpr,
    FromItem,
    FromOp,
    IsNullCond,
    NotCond,
    OrCond,
    SelectQuery,
)
from repro.language.lexer import Token, TokenStream, tokenize
from repro.util.errors import ParseError

_COMPARISONS = {"=", "<>", "<", "<=", ">", ">="}


def parse(text: str) -> SelectQuery:
    """Parse one query block."""
    stream = TokenStream(tokenize(text))
    query = _parse_query(stream)
    if not stream.at_end():
        tok = stream.peek()
        raise ParseError(f"unexpected trailing input {tok.text!r}", tok.line, tok.column)
    return query


def parse_condition(text: str) -> Condition:
    """Parse a bare condition (an enclosing block's restriction).

    Section 5: attributes produced by ``*``/``->`` "may be restricted in
    an enclosing query block" — this parses such a restriction so
    :meth:`repro.language.compiler.CompiledQuery.restrict_result` can
    apply it after the block has been evaluated.
    """
    stream = TokenStream(tokenize(text))
    condition = _parse_or(stream)
    if not stream.at_end():
        tok = stream.peek()
        raise ParseError(f"unexpected trailing input {tok.text!r}", tok.line, tok.column)
    return condition


def _parse_query(s: TokenStream) -> SelectQuery:
    s.expect("KEYWORD", "SELECT")
    select_all = False
    select_list: List[AttrExpr] = []
    if s.match("KEYWORD", "ALL"):
        select_all = True
    else:
        select_list.append(_parse_attr(s))
        while s.match("OP", ","):
            select_list.append(_parse_attr(s))
    s.expect("KEYWORD", "FROM")
    from_items = [_parse_from_item(s)]
    while s.match("OP", ","):
        from_items.append(_parse_from_item(s))
    where = None
    if s.match("KEYWORD", "WHERE"):
        where = _parse_or(s)
    return SelectQuery(
        select_all=select_all, select_list=select_list, from_items=from_items, where=where
    )


def _parse_from_item(s: TokenStream) -> FromItem:
    base = s.expect("IDENT").text
    alias = None
    if s.peek().kind == "IDENT":
        alias = s.advance().text
    ops: List[FromOp] = []
    while True:
        if s.match("OP", "*"):
            ops.append(FromOp("unnest", s.expect("IDENT").text))
        elif s.match("OP", "-->") or s.match("OP", "->"):
            ops.append(FromOp("link", s.expect("IDENT").text))
        else:
            break
    return FromItem(base=base, ops=tuple(ops), alias=alias)


def _parse_attr(s: TokenStream) -> AttrExpr:
    first = s.expect("IDENT").text
    s.expect("OP", ".")
    second = s.expect("IDENT").text
    return AttrExpr(relation=first, attribute=second)


def _parse_or(s: TokenStream) -> Condition:
    parts = [_parse_and(s)]
    while s.match("KEYWORD", "OR"):
        parts.append(_parse_and(s))
    return parts[0] if len(parts) == 1 else OrCond(tuple(parts))


def _parse_and(s: TokenStream) -> Condition:
    parts = [_parse_not(s)]
    while s.match("KEYWORD", "AND"):
        parts.append(_parse_not(s))
    return parts[0] if len(parts) == 1 else AndCond(tuple(parts))


def _parse_not(s: TokenStream) -> Condition:
    if s.match("KEYWORD", "NOT"):
        return NotCond(_parse_not(s))
    return _parse_primary(s)


def _parse_primary(s: TokenStream) -> Condition:
    if s.match("OP", "("):
        inner = _parse_or(s)
        s.expect("OP", ")")
        return inner
    left = _parse_operand(s)
    tok = s.peek()
    if tok.kind == "OP" and tok.text in _COMPARISONS:
        s.advance()
        right = _parse_operand(s)
        return CompareCond(left, tok.text, right)
    if s.match("KEYWORD", "IS"):
        negated = bool(s.match("KEYWORD", "NOT"))
        s.expect("KEYWORD", "NULL")
        return IsNullCond(left, negated=negated)
    raise ParseError(
        f"expected a comparison or IS NULL after {left}", tok.line, tok.column
    )


def _parse_operand(s: TokenStream) -> Condition:
    tok: Token = s.peek()
    if tok.kind == "IDENT":
        return _parse_attr(s)
    if tok.kind == "NUMBER":
        s.advance()
        value = float(tok.text) if "." in tok.text else int(tok.text)
        return ConstExpr(value)
    if tok.kind == "STRING":
        s.advance()
        return ConstExpr(tok.text)
    raise ParseError(f"expected an operand, found {tok.text or tok.kind!r}", tok.line, tok.column)
