"""Batch-native kernels: compiled filters and hash build/probe.

Two families live here:

**Filter compilation.**  :func:`compile_filter` turns a predicate into a
:class:`FilterKernel` whose ``apply(batch)`` returns a selection vector.
Simple conjuncts — ``attr op const``, ``attr op attr``, ``attr IS
NULL``, ``NOT (attr IS NULL)`` — compile to per-column loops that test
the ``NULL`` marker inline (SQL 3VL: a null operand makes a comparison
*unknown*, and unknown does not satisfy); every other conjunct falls back
to three-valued :meth:`~repro.algebra.predicates.Predicate.evaluate`
against a zero-copy column-row view.  A mixed predicate vectorizes the
conjuncts it can and row-evaluates the rest over the (already narrowed)
selection.  Any ``TypeError`` raised by a vectorized comparison re-runs
that conjunct through the scalar evaluator so the error (and its
message) is byte-identical to the row path's.

**Hash join.**  :class:`BuildSide` accumulates build batches into
columnar storage plus a key-value -> row-index bucket dict (null keys go
to a never-matching pool, exactly as in :mod:`repro.algebra.kernels`);
:class:`BatchHashJoiner` probes left batches against it for every
variant — ``inner``, ``left_outer``, ``full_outer``, ``semi``, ``anti``
— preserving the row-at-a-time emission order (matches in bucket order,
pads inline, full-outer right pads at the end) and the row path's
``Metrics`` accounting (predicate evaluations per candidate pair,
including the semi join's first-match short circuit).

The probe loop batches its bookkeeping: match lists are extended with
C-level ``list.extend`` / ``itertools.repeat`` instead of per-pair
Python appends, and output columns are materialized with one gather
comprehension per column — this is where the interpreter amortization
the module exists for actually happens.
"""

from __future__ import annotations

from collections.abc import Mapping
from itertools import repeat
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.nulls import NULL, satisfied
from repro.algebra.predicates import (
    AttrRef,
    Comparison,
    Const,
    IsNull,
    Not,
    Predicate,
    TruePredicate,
    _COMPARATORS,
)
from repro.engine.batch.columns import ColumnBatch
from repro.tools import instrumentation

#: Selection pass: (batch, candidate indices) -> surviving indices.
_Pass = Callable[[ColumnBatch, Sequence[int]], List[int]]


class ColsRowView(Mapping):
    """A zero-copy view of one batch row, for scalar predicate fallback."""

    __slots__ = ("columns", "i")

    def __init__(self, columns: Dict[str, List[Any]], i: int = 0):
        self.columns = columns
        self.i = i

    def __getitem__(self, attr: str) -> Any:
        return self.columns[attr][self.i]

    def __iter__(self):
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)


class PairColsView(Mapping):
    """A zero-copy view of a (probe row, build row) pair for residuals.

    One instance is reused across a whole probe batch (the kernels mutate
    ``li``/``ri`` between evaluations) — the batch twin of the row path's
    per-pair :class:`~repro.algebra.predicates.PairView` allocation.
    """

    __slots__ = ("lcols", "rcols", "li", "ri")

    def __init__(self, lcols: Dict[str, List[Any]], rcols: Dict[str, List[Any]]):
        self.lcols = lcols
        self.rcols = rcols
        self.li = 0
        self.ri = 0

    def __getitem__(self, attr: str) -> Any:
        col = self.lcols.get(attr)
        if col is not None:
            return col[self.li]
        return self.rcols[attr][self.ri]

    def __iter__(self):
        yield from self.lcols
        yield from self.rcols

    def __len__(self) -> int:
        return len(self.lcols) + len(self.rcols)


# ---------------------------------------------------------------------------
# Filter compilation
# ---------------------------------------------------------------------------


def _scalar_pass(conjunct: Predicate) -> _Pass:
    """Fallback pass: three-valued evaluation per surviving row."""

    def run(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
        view = ColsRowView(batch.columns)
        evaluate = conjunct.evaluate
        out = []
        append = out.append
        for i in indices:
            view.i = i
            if satisfied(evaluate(view)):
                append(i)
        return out

    return run


def _comparison_pass(conjunct: Comparison) -> Optional[_Pass]:
    """A vectorized pass for ``attr op const`` / ``attr op attr``, or None."""
    cmp = _COMPARATORS[conjunct.op]
    left, right = conjunct.left, conjunct.right

    if isinstance(left, AttrRef) and isinstance(right, Const):
        attr, const = left.name, right.const
        if const is NULL:
            return lambda batch, indices: []  # NULL operand: always unknown

        def run_ac(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
            col = batch.columns[attr]
            try:
                return [i for i in indices if (v := col[i]) is not NULL and cmp(v, const)]
            except TypeError:
                return _scalar_pass(conjunct)(batch, indices)

        return run_ac

    if isinstance(left, Const) and isinstance(right, AttrRef):
        const, attr = left.const, right.name
        if const is NULL:
            return lambda batch, indices: []

        def run_ca(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
            col = batch.columns[attr]
            try:
                return [i for i in indices if (v := col[i]) is not NULL and cmp(const, v)]
            except TypeError:
                return _scalar_pass(conjunct)(batch, indices)

        return run_ca

    if isinstance(left, AttrRef) and isinstance(right, AttrRef):
        a, b = left.name, right.name

        def run_aa(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
            ca, cb = batch.columns[a], batch.columns[b]
            try:
                return [
                    i
                    for i in indices
                    if (va := ca[i]) is not NULL
                    and (vb := cb[i]) is not NULL
                    and cmp(va, vb)
                ]
            except TypeError:
                return _scalar_pass(conjunct)(batch, indices)

        return run_aa

    return None


def _vector_pass(conjunct: Predicate) -> Optional[_Pass]:
    """A vectorized pass for one conjunct, or None when not compilable."""
    if isinstance(conjunct, Comparison):
        return _comparison_pass(conjunct)
    if isinstance(conjunct, IsNull) and isinstance(conjunct.term, AttrRef):
        attr = conjunct.term.name

        def run_isnull(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
            mask = batch.null_mask(attr)
            return [i for i in indices if mask[i]]

        return run_isnull
    if (
        isinstance(conjunct, Not)
        and isinstance(conjunct.child, IsNull)
        and isinstance(conjunct.child.term, AttrRef)
    ):
        attr = conjunct.child.term.name

        def run_notnull(batch: ColumnBatch, indices: Sequence[int]) -> List[int]:
            mask = batch.null_mask(attr)
            return [i for i in indices if not mask[i]]

        return run_notnull
    if isinstance(conjunct, TruePredicate):
        return lambda batch, indices: list(indices)
    return None


class FilterKernel:
    """A predicate compiled to selection passes over column batches."""

    __slots__ = ("predicate", "passes", "vectorized_passes")

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.passes: List[_Pass] = []
        self.vectorized_passes = 0
        for conjunct in predicate.conjuncts():
            compiled = _vector_pass(conjunct)
            if compiled is not None:
                self.vectorized_passes += 1
                self.passes.append(compiled)
            else:
                self.passes.append(_scalar_pass(conjunct))
        if not self.passes:  # TruePredicate: conjuncts() is empty
            self.passes.append(lambda batch, indices: list(indices))
            self.vectorized_passes += 1

    @property
    def vectorized(self) -> bool:
        """Did at least one conjunct compile to a per-column loop?"""
        return self.vectorized_passes > 0

    def apply(self, batch: ColumnBatch) -> List[int]:
        """The selection vector of rows satisfying the whole predicate."""
        if self.vectorized_passes:
            instrumentation.bump("predicate_vectorized")
        indices: Sequence[int] = batch.indices()
        for run in self.passes:
            if not indices:
                return []
            indices = run(batch, indices)
        return indices if isinstance(indices, list) else list(indices)


_FILTER_CACHE: Dict[Predicate, FilterKernel] = {}
_FILTER_CACHE_LIMIT = 4096


def compile_filter(predicate: Predicate) -> FilterKernel:
    """Compile (and memoize) a predicate into a :class:`FilterKernel`."""
    kernel = _FILTER_CACHE.get(predicate)
    if kernel is None:
        kernel = FilterKernel(predicate)
        if len(_FILTER_CACHE) >= _FILTER_CACHE_LIMIT:
            _FILTER_CACHE.clear()
        _FILTER_CACHE[predicate] = kernel
    return kernel


# ---------------------------------------------------------------------------
# Hash join build/probe
# ---------------------------------------------------------------------------

#: Join variants the batch joiner serves (GOJ rides on the inner probe in
#: :mod:`repro.engine.goj_op`).
JOIN_VARIANTS = ("inner", "left_outer", "full_outer", "semi", "anti")


class BuildSide:
    """Columnar build-side storage plus the key -> row-index buckets.

    Rows whose key is null are kept in the columns (a full outerjoin must
    pad them out at the end) but never enter a bucket, so they can never
    match — the same null-key fate the serial and parallel kernels
    realize.
    """

    __slots__ = ("key", "attrs", "columns", "buckets", "null_indices", "rows")

    def __init__(self, key: str, attrs: Sequence[str]):
        self.key = key
        self.attrs = tuple(attrs)
        self.columns: Dict[str, List[Any]] = {a: [] for a in self.attrs}
        self.buckets: Dict[Any, List[int]] = {}
        self.null_indices: List[int] = []
        self.rows = 0

    def add_batch(self, batch: ColumnBatch) -> None:
        if batch.selection is not None:
            batch = batch.compact()
        base = self.rows
        for attr in self.attrs:
            self.columns[attr].extend(batch.columns[attr])
        setdefault = self.buckets.setdefault
        null_append = self.null_indices.append
        i = base
        for v in batch.columns[self.key]:
            if v is NULL:
                null_append(i)
            else:
                setdefault(v, []).append(i)
            i += 1
        self.rows = i

    @property
    def bucketed_rows(self) -> int:
        """Build rows that entered a bucket (the row path's ``mem_rows``)."""
        return self.rows - len(self.null_indices)


class BatchHashJoiner:
    """Probe-side driver for one hash join over a finished build side.

    ``metrics`` accounting mirrors the row-at-a-time operators exactly:
    one predicate evaluation per candidate (bucket) pair — with the semi
    join's short circuit after the first satisfied pair — and one emitted
    row per output row under ``label``.
    """

    __slots__ = (
        "build",
        "left_key",
        "variant",
        "residual",
        "metrics",
        "label",
        "matched_build",
        "finished",
    )

    def __init__(
        self,
        build: BuildSide,
        left_key: str,
        variant: str,
        residual: Optional[Predicate],
        metrics,
        label: str,
    ):
        if variant not in JOIN_VARIANTS:
            from repro.util.errors import PlanningError

            raise PlanningError(f"unknown batch join variant {variant!r}")
        self.build = build
        self.left_key = left_key
        self.variant = variant
        if residual is None or isinstance(residual, TruePredicate):
            self.residual = None
        else:
            self.residual = residual
        self.metrics = metrics
        self.label = label
        self.matched_build: set[int] = set()
        self.finished = False

    # -- probe ----------------------------------------------------------------

    def probe(self, batch: ColumnBatch) -> Optional[ColumnBatch]:
        """Join one probe batch; None when it produces no output rows."""
        if self.variant in ("semi", "anti"):
            return self._probe_semi_anti(batch)
        return self._probe_join(batch)

    def _match_pairs(
        self, batch: ColumnBatch
    ) -> Tuple[List[int], List[int], List[int]]:
        """(probe_positions, build_indices, unmatched_probe_positions).

        ``probe_positions``/``build_indices`` are parallel lists, in probe
        order with each bucket's matches in insertion order — exactly the
        emission order of the row-at-a-time hash join.
        """
        metrics = self.metrics
        buckets_get = self.build.buckets.get
        key_col = batch.columns[self.left_key]
        residual = self.residual
        out_l: List[int] = []
        out_r: List[int] = []
        unmatched: List[int] = []
        extend_l = out_l.extend
        extend_r = out_r.extend
        track_full = self.variant == "full_outer"
        matched_build = self.matched_build
        if residual is None:
            evaluated = 0
            for i in batch.indices():
                key = key_col[i]
                bucket = None if key is NULL else buckets_get(key)
                if bucket:
                    n = len(bucket)
                    evaluated += n
                    extend_r(bucket)
                    extend_l(repeat(i, n))
                    if track_full:
                        matched_build.update(bucket)
                else:
                    unmatched.append(i)
            if evaluated:
                metrics.evaluated(evaluated)
        else:
            view = PairColsView(batch.columns, self.build.columns)
            evaluate = residual.evaluate
            append_l = out_l.append
            append_r = out_r.append
            for i in batch.indices():
                key = key_col[i]
                bucket = None if key is NULL else buckets_get(key)
                matched = False
                if bucket:
                    metrics.evaluated(len(bucket))
                    view.li = i
                    for j in bucket:
                        view.ri = j
                        if satisfied(evaluate(view)):
                            matched = True
                            append_l(i)
                            append_r(j)
                            if track_full:
                                matched_build.add(j)
                if not matched:
                    unmatched.append(i)
        return out_l, out_r, unmatched

    def _probe_join(self, batch: ColumnBatch) -> Optional[ColumnBatch]:
        out_l, out_r, unmatched = self._match_pairs(batch)
        pad = self.variant in ("left_outer", "full_outer")
        if not out_l and not (pad and unmatched):
            return None
        lcols = batch.columns
        rcols = self.build.columns
        if pad and unmatched:
            # Re-interleave pads into probe order (matches first per row,
            # pad rows where no pair satisfied) — the row path's order.
            out_l, out_r = _interleave_pads(out_l, out_r, unmatched)
            columns = {a: [col[i] for i in out_l] for a, col in lcols.items()}
            for a, col in rcols.items():
                columns[a] = [col[j] if j >= 0 else NULL for j in out_r]
        else:
            columns = {a: [col[i] for i in out_l] for a, col in lcols.items()}
            for a, col in rcols.items():
                columns[a] = [col[j] for j in out_r]
        attrs = tuple(sorted(columns))
        out = ColumnBatch(attrs, columns, len(out_l))
        self.metrics.emitted(self.label, len(out_l))
        return out

    def _probe_semi_anti(self, batch: ColumnBatch) -> Optional[ColumnBatch]:
        metrics = self.metrics
        buckets_get = self.build.buckets.get
        key_col = batch.columns[self.left_key]
        residual = self.residual
        want = self.variant == "semi"
        sel: List[int] = []
        append = sel.append
        if residual is None:
            evaluated = 0
            for i in batch.indices():
                key = key_col[i]
                bucket = None if key is NULL else buckets_get(key)
                if bucket:
                    # The row path evaluates bucket pairs until the first
                    # match: with no residual that is one evaluation for
                    # semi, the whole bucket for anti (no short circuit).
                    evaluated += 1 if want else len(bucket)
                    if want:
                        append(i)
                elif not want:
                    append(i)
            if evaluated:
                metrics.evaluated(evaluated)
        else:
            view = PairColsView(batch.columns, self.build.columns)
            evaluate = residual.evaluate
            for i in batch.indices():
                key = key_col[i]
                bucket = None if key is NULL else buckets_get(key)
                matched = False
                if bucket:
                    view.li = i
                    if want:
                        for j in bucket:
                            metrics.evaluated()
                            view.ri = j
                            if satisfied(evaluate(view)):
                                matched = True
                                break
                    else:
                        metrics.evaluated(len(bucket))
                        for j in bucket:
                            view.ri = j
                            if satisfied(evaluate(view)):
                                matched = True
                if matched is want:
                    append(i)
        if not sel:
            return None
        out = batch.with_selection(sel)
        metrics.emitted(self.label, len(sel))
        return out

    # -- full-outer tail -------------------------------------------------------

    def finish(self, left_attrs: Sequence[str]) -> Optional[ColumnBatch]:
        """Unmatched build rows, null-padded on the left (full outer only)."""
        self.finished = True
        if self.variant != "full_outer":
            return None
        matched = self.matched_build
        tail = [j for j in range(self.build.rows) if j not in matched]
        if not tail:
            return None
        columns: Dict[str, List[Any]] = {
            a: [NULL] * len(tail) for a in left_attrs
        }
        for a, col in self.build.columns.items():
            columns[a] = [col[j] for j in tail]
        attrs = tuple(sorted(columns))
        out = ColumnBatch(attrs, columns, len(tail))
        self.metrics.emitted(self.label, len(tail))
        return out


def _interleave_pads(
    out_l: List[int], out_r: List[int], unmatched: List[int]
) -> Tuple[List[int], List[int]]:
    """Merge matched pairs and pad positions back into probe order.

    Both inputs are ascending in probe position (``out_l`` may repeat a
    position across its matches); a pad is marked by build index ``-1``.
    """
    merged_l: List[int] = []
    merged_r: List[int] = []
    mi, un = 0, 0
    n_m, n_u = len(out_l), len(unmatched)
    while mi < n_m or un < n_u:
        if un >= n_u or (mi < n_m and out_l[mi] <= unmatched[un]):
            merged_l.append(out_l[mi])
            merged_r.append(out_r[mi])
            mi += 1
        else:
            merged_l.append(unmatched[un])
            merged_r.append(-1)
            un += 1
    return merged_l, merged_r
