"""Vectorized columnar batch execution (MonetDB/X100 style).

The engine's hot path — scan, filter, project, hash join — can execute
batch-at-a-time over :class:`ColumnBatch` chunks instead of one
``Row``-dict at a time, amortizing Python interpreter overhead across
hundreds of tuples per operator call (ROADMAP item 1).  The layer is a
*representation* change only: every batch-native operator emits exactly
the row sequence its row-at-a-time twin would, so ``REPRO_BATCH=0`` and
``=1`` are byte-identical and the row path stays the differential
baseline for the ``batch`` conformance tier.

Layout:

* :mod:`~repro.engine.batch.columns` — the :class:`ColumnBatch`
  representation (per-column lists, selection vectors, cached null
  masks) plus the row<->batch shims.
* :mod:`~repro.engine.batch.kernels` — compiled filter kernels and the
  batch hash-join build/probe for every variant.

The switches (:func:`~repro.util.fastpath.batch_enabled`,
:func:`~repro.util.fastpath.batch_mode`,
:func:`~repro.util.fastpath.batch_size`) live in
:mod:`repro.util.fastpath` with the other dispatch toggles and are
re-exported here for convenience.
"""

from repro.engine.batch.columns import (
    ColumnBatch,
    batches_from_rows,
    rows_from_batches,
)
from repro.engine.batch.kernels import (
    BatchHashJoiner,
    BuildSide,
    FilterKernel,
    compile_filter,
)
from repro.util.fastpath import (
    batch_enabled,
    batch_mode,
    batch_size,
    batch_sized,
    set_batch,
    set_batch_size,
)

__all__ = [
    "ColumnBatch",
    "batches_from_rows",
    "rows_from_batches",
    "BatchHashJoiner",
    "BuildSide",
    "FilterKernel",
    "compile_filter",
    "batch_enabled",
    "batch_mode",
    "batch_size",
    "batch_sized",
    "set_batch",
    "set_batch_size",
]
