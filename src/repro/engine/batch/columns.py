"""The columnar batch representation: per-column lists + selection vector.

A :class:`ColumnBatch` is the unit of work of the vectorized engine: a
fixed scheme, one Python list per attribute holding the column's values
(with :data:`~repro.algebra.nulls.NULL` marking nulls in place), and an
optional *selection vector* — a list of row positions that are logically
alive.  Filters produce selections instead of copying columns; gathering
operators (projection output, join output, the row-compat shim) resolve
the selection when they materialize.

Null handling is the 3VL contract of :mod:`repro.algebra.nulls`, stated
columnar:

* the value lists store the ``NULL`` singleton in place, so a value ``v``
  is null iff ``v is NULL`` — no out-of-band state to keep in sync;
* :meth:`null_mask` derives (and caches) an explicit boolean mask per
  column for kernels that want branch-light null tests (``IS NULL``
  filters, key-column routing).  The mask is a *view* of the value list:
  it is always consistent with it because batches are immutable once
  emitted.

Batches preserve row order: ``to_rows()`` of the batches an operator
emits replays exactly the sequence its row-at-a-time twin would yield,
which is what makes ``REPRO_BATCH=0`` byte-identical to ``=1``
(``tests/test_batch_exec.py`` proves it in a subprocess).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any, Dict, List, Optional, Tuple

from repro.algebra.nulls import NULL
from repro.algebra.schema import Schema
from repro.algebra.tuples import Row
from repro.util.errors import SchemaError


def _fast_row(values: Dict[str, Any]) -> Row:
    """A Row over a pre-built values dict, filling slots directly.

    Bit-identical to ``Row(values)`` minus the attribute-name validation
    (batch columns only ever hold values that arrived through validated
    rows): same ``_values`` dict, same ``hash(frozenset(items))``
    contract, so rows from this path hash and compare interchangeably
    with rows from ``Row.concat`` — the same trick
    :mod:`repro.engine.parallel.joins` uses for its task outputs.
    """
    row = Row.__new__(Row)
    object.__setattr__(row, "_values", values)
    object.__setattr__(row, "_hash", hash(frozenset(values.items())))
    return row


class ColumnBatch:
    """An immutable chunk of rows in columnar form.

    ``attrs`` fixes the column order (sorted attribute names, so two
    batches on the same scheme always agree); ``columns`` maps attribute
    -> value list, each of the same *physical* length; ``selection`` is
    either None (every physical row is alive) or a list of alive
    positions in ascending emission order.
    """

    __slots__ = ("attrs", "columns", "length", "selection", "_masks")

    def __init__(
        self,
        attrs: Sequence[str],
        columns: Dict[str, List[Any]],
        length: int,
        selection: Optional[List[int]] = None,
    ):
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self.columns = columns
        self.length = length
        self.selection = selection
        self._masks: Dict[str, List[bool]] = {}
        for attr in self.attrs:
            col = columns.get(attr)
            if col is None:
                raise SchemaError(f"batch is missing column {attr!r}")
            if len(col) != length:
                raise SchemaError(
                    f"column {attr!r} has {len(col)} values, batch length is {length}"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(cls, schema: Schema | Iterable[str], rows: Sequence[Row]) -> "ColumnBatch":
        """Columnarize a chunk of rows (the row->batch shim's workhorse)."""
        attrs = _attrs_of(schema)
        columns: Dict[str, List[Any]] = {}
        for attr in attrs:
            columns[attr] = [r._values[attr] for r in rows]
        return cls(attrs, columns, len(rows))

    @classmethod
    def empty(cls, schema: Schema | Iterable[str]) -> "ColumnBatch":
        """A zero-row batch on the given scheme."""
        attrs = _attrs_of(schema)
        return cls(attrs, {a: [] for a in attrs}, 0)

    # -- shape ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Logical (post-selection) row count."""
        if self.selection is not None:
            return len(self.selection)
        return self.length

    def is_empty(self) -> bool:
        return self.num_rows == 0

    def indices(self) -> Sequence[int]:
        """The alive row positions, in emission order."""
        if self.selection is not None:
            return self.selection
        return range(self.length)

    # -- null masks ----------------------------------------------------------

    def null_mask(self, attr: str) -> List[bool]:
        """Explicit null mask of one column (cached; covers *physical* rows).

        ``mask[i]`` is True iff ``columns[attr][i] is NULL`` — derived
        from the in-band marker, so it can never drift from the values.
        """
        mask = self._masks.get(attr)
        if mask is None:
            mask = [v is NULL for v in self.columns[attr]]
            self._masks[attr] = mask
        return mask

    # -- transforms ----------------------------------------------------------

    def with_selection(self, selection: List[int]) -> "ColumnBatch":
        """The same physical batch narrowed to ``selection`` (zero copy)."""
        return ColumnBatch(self.attrs, self.columns, self.length, selection)

    def compact(self) -> "ColumnBatch":
        """Resolve the selection vector into dense columns."""
        if self.selection is None:
            return self
        sel = self.selection
        columns = {a: [col[i] for i in sel] for a, col in self.columns.items()}
        return ColumnBatch(self.attrs, columns, len(sel))

    def project(self, attributes: Iterable[str]) -> "ColumnBatch":
        """Restrict to a subset of columns (shares the value lists)."""
        attrs = tuple(sorted(attributes))
        missing = [a for a in attrs if a not in self.columns]
        if missing:
            raise SchemaError(f"cannot project batch on absent attributes {missing}")
        return ColumnBatch(
            attrs, {a: self.columns[a] for a in attrs}, self.length, self.selection
        )

    # -- row compatibility ----------------------------------------------------

    def iter_rows(self) -> Iterator[Row]:
        """Yield the alive rows as :class:`Row` objects, in order."""
        attrs = self.attrs
        cols = [self.columns[a] for a in attrs]
        for i in self.indices():
            yield _fast_row({a: col[i] for a, col in zip(attrs, cols)})

    def to_rows(self) -> List[Row]:
        return list(self.iter_rows())

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = f", selection={len(self.selection)}" if self.selection is not None else ""
        return f"ColumnBatch({list(self.attrs)}, rows={self.num_rows}{sel})"


def _attrs_of(schema: Schema | Iterable[str]) -> Tuple[str, ...]:
    if isinstance(schema, Schema):
        return tuple(sorted(schema.attributes))
    return tuple(sorted(schema))


def batches_from_rows(
    rows: Iterable[Row], schema: Schema | Iterable[str], size: int
) -> Iterator[ColumnBatch]:
    """Chunk a row stream into column batches (the row->batch shim).

    Operators without a native batch implementation fall back to this —
    correctness is free, only the vectorized speedup is forfeited.
    """
    attrs = _attrs_of(schema)
    chunk: List[Row] = []
    append = chunk.append
    for row in rows:
        append(row)
        if len(chunk) >= size:
            yield ColumnBatch.from_rows(attrs, chunk)
            chunk = []
            append = chunk.append
    if chunk:
        yield ColumnBatch.from_rows(attrs, chunk)


def rows_from_batches(batches: Iterable[ColumnBatch]) -> Iterator[Row]:
    """Flatten a batch stream back into rows (the batch->row adapter)."""
    for batch in batches:
        yield from batch.iter_rows()
