"""The acyclic fast path: full semijoin reduction + output-linear join.

:class:`YannakakisOp` executes a rooted :class:`~repro.core.gyo.JoinTree`
in the classic three phases of Yannakakis' algorithm:

1. **Materialize** every node's input (base scans with their pushed
   filters — batch-native children run their vectorized kernels when
   ``REPRO_BATCH`` allows);
2. **Full reducer**: a bottom-up pass semijoin-reduces each parent by its
   children, then a top-down pass reduces each child by its parent.  Both
   passes reuse the hash-kernel key machinery
   (:func:`~repro.algebra.kernels.decompose_join_predicate`): composite
   equality keys hash-partition the probe, residual conjuncts are
   evaluated verbatim, and null keys never match (SQL 3VL).  On an
   outerjoin edge the preserved parent is *never* reduced by its
   null-supplied child (the child cannot eliminate parent output); the
   top-down direction is always legal because a null-supplied row that
   matches no preserved row cannot appear in the output.
3. **Join**: a preorder left-deep chain of hash joins — inner for join
   edges, left-outer (padding the child's scheme) for outerjoin edges.
   Chord predicates (graph edges the tree does not use; pure-join graphs
   only) are applied as filters as soon as both endpoints have been
   joined, which preserves correctness — any row the tree predicates
   drop fails a predicate of the final result too — at the price of
   output-linearity.

After reduction every intermediate row of a chord-free tree participates
in at least one output row, which is the output-linearity guarantee the
benchmarks measure against the binary-tree DP plans.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.algebra.kernels import decompose_join_predicate
from repro.algebra.nulls import is_null, satisfied
from repro.algebra.predicates import PairView, Predicate, conjunction
from repro.algebra.tuples import Row, null_row
from repro.core.gyo import JoinTree, JoinTreeEdge
from repro.engine.batch.columns import ColumnBatch, batches_from_rows
from repro.engine.iterators import Filter, PhysicalOp, SeqScan
from repro.engine.metrics import Metrics
from repro.engine.storage import Storage
from repro.util.errors import PlanningError
from repro.util.fastpath import batch_size


def _key_of(row: Row, keys: Tuple[str, ...]):
    """The composite key tuple of a row, or None if any part is null."""
    values = []
    for attr in keys:
        value = row[attr]
        if is_null(value):
            return None
        values.append(value)
    return tuple(values)


class YannakakisOp(PhysicalOp):
    """N-ary semijoin-reduced join over a rooted join tree.

    ``inputs`` is aligned with ``tree.order`` (one physical child per
    relation, preorder).  The operator materializes all inputs, runs the
    full reducer, then emits the preorder left-deep join — see the module
    docstring for phase semantics.
    """

    batch_native = True

    def __init__(self, tree: JoinTree, inputs: Tuple[PhysicalOp, ...]):
        if len(inputs) != len(tree.order):
            raise PlanningError(
                f"Yannakakis plan needs one input per tree node: "
                f"{len(tree.order)} nodes, {len(inputs)} inputs"
            )
        self.tree = tree
        self.inputs = tuple(inputs)
        self._schemas = {
            node: op.schema for node, op in zip(tree.order, self.inputs)
        }
        schema = self.inputs[0].schema
        for op in self.inputs[1:]:
            schema = schema.union(op.schema)
        self.schema = schema
        self._edge_plans: List[
            Tuple[JoinTreeEdge, Tuple[str, ...], Tuple[str, ...], Optional[Predicate]]
        ] = []
        for edge in tree.edges:
            parent_keys, child_keys, residual = decompose_join_predicate(
                edge.predicate,
                self._schemas[edge.parent].attributes,
                self._schemas[edge.child].attributes,
            )
            if not parent_keys:
                raise PlanningError(
                    f"join-tree edge {edge.parent}-{edge.child} has no equality key"
                )
            residual_pred = conjunction(list(residual)) if residual else None
            self._edge_plans.append((edge, parent_keys, child_keys, residual_pred))

    def children(self) -> tuple[PhysicalOp, ...]:
        return self.inputs

    # -- reducer ---------------------------------------------------------------

    def _semijoin(
        self,
        target_rows: List[Row],
        target_keys: Tuple[str, ...],
        source_rows: List[Row],
        source_keys: Tuple[str, ...],
        residual: Optional[Predicate],
        metrics: Metrics,
    ) -> List[Row]:
        """``target ⋉ source``: keep target rows with a matching source row."""
        if residual is None:
            keys = set()
            for row in source_rows:
                key = _key_of(row, source_keys)
                if key is not None:
                    keys.add(key)
            kept = [row for row in target_rows if _key_of(row, target_keys) in keys]
        else:
            buckets: Dict[tuple, List[Row]] = {}
            for row in source_rows:
                key = _key_of(row, source_keys)
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            kept = []
            for row in target_rows:
                key = _key_of(row, target_keys)
                if key is None:
                    continue
                for other in buckets.get(key, ()):
                    metrics.evaluated()
                    if satisfied(residual.evaluate(PairView(row, other))):
                        kept.append(row)
                        break
        if self._span is not None:
            self._span.counters["reducer_passes"] += 1
            self._span.counters["reducer_dropped"] += len(target_rows) - len(kept)
        return kept

    def _reduce(self, rows: Dict[str, List[Row]], metrics: Metrics) -> None:
        # Bottom-up (reversed preorder processes every subtree before its
        # parent edge): parents shed rows with no match below — join
        # edges only, a preserved side keeps its dangling rows.
        for edge, parent_keys, child_keys, residual in reversed(self._edge_plans):
            if edge.kind != "join":
                continue
            rows[edge.parent] = self._semijoin(
                rows[edge.parent], parent_keys,
                rows[edge.child], child_keys,
                residual, metrics,
            )
        # Top-down (preorder processes every parent before its children):
        # children shed rows their (already reduced) parent cannot reach.
        for edge, parent_keys, child_keys, residual in self._edge_plans:
            rows[edge.child] = self._semijoin(
                rows[edge.child], child_keys,
                rows[edge.parent], parent_keys,
                residual, metrics,
            )

    # -- join phase ------------------------------------------------------------

    def _execute_rows(self, metrics: Metrics) -> Iterator[Row]:
        rows: Dict[str, List[Row]] = {}
        total = 0
        for node, op in zip(self.tree.order, self.inputs):
            rows[node] = list(op.execute(metrics))
            total += len(rows[node])
        if self._span is not None:
            self._span.counters["mem_rows"] = total

        self._reduce(rows, metrics)

        chords = [
            (frozenset({u, v}), predicate, [False])
            for u, v, predicate in self.tree.chords
        ]
        label = "Yannakakis"
        acc = rows[self.tree.root]
        joined = {self.tree.root}
        for edge, parent_keys, child_keys, residual in self._edge_plans:
            child_schema = self._schemas[edge.child]
            buckets: Dict[tuple, List[Row]] = {}
            for row in rows[edge.child]:
                key = _key_of(row, child_keys)
                if key is not None:
                    buckets.setdefault(key, []).append(row)
            padding = null_row(child_schema)
            new_acc: List[Row] = []
            for row in acc:
                key = _key_of(row, parent_keys)
                matched = False
                if key is not None:
                    for other in buckets.get(key, ()):
                        if residual is not None:
                            metrics.evaluated()
                            if not satisfied(residual.evaluate(PairView(row, other))):
                                continue
                        matched = True
                        new_acc.append(row.concat(other))
                if not matched and edge.kind == "oj":
                    new_acc.append(row.concat(padding))
            acc = new_acc
            joined.add(edge.child)
            for pair, predicate, applied in chords:
                if not applied[0] and pair <= joined:
                    applied[0] = True
                    kept = []
                    for row in acc:
                        metrics.evaluated()
                        if satisfied(predicate.evaluate(row)):
                            kept.append(row)
                    acc = kept
        for row in acc:
            metrics.emitted(label)
            yield row

    def execute_batches(self, metrics: Metrics) -> Iterator[ColumnBatch]:
        """Chunk the joined output; inputs already ran their native paths."""
        for batch in batches_from_rows(
            self._execute_rows(metrics), self.schema, batch_size()
        ):
            yield self._emit_batch(batch)

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        head = (
            f"{pad}Yannakakis[root={self.tree.root}, nodes={len(self.tree.order)}, "
            f"chords={len(self.tree.chords)}]"
        )
        return "\n".join([head] + [op.describe(indent + 2) for op in self.inputs])


def build_yannakakis_plan(
    tree: JoinTree, storage: Storage, filters: Dict[str, List[Predicate]]
) -> YannakakisOp:
    """A Yannakakis physical plan: filtered scans under the reducer op."""
    inputs: List[PhysicalOp] = []
    for node in tree.order:
        op: PhysicalOp = SeqScan(storage[node])
        preds = filters.get(node)
        if preds:
            op = Filter(op, conjunction(list(preds)))
        inputs.append(op)
    return YannakakisOp(tree, tuple(inputs))
