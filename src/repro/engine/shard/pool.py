"""A persistent pool of shard worker processes.

Each worker is a child process holding one slice of the sharded database
(installed once per table generation, invalidated by the same
generation stamps that back :meth:`repro.engine.storage.Table.derived`)
and evaluating whole core expressions against its local shards.  The
parent talks to each worker over a duplex pipe with a strict
request/response protocol; a per-worker lock held across one send/recv
batch keeps concurrent :class:`~repro.service.QueryService` threads from
interleaving frames on the same pipe.

Three design rules carried over from :mod:`repro.engine.parallel.pool`:

* **Deterministic sizing.**  Worker count resolves through
  :func:`resolve_shard_workers` (explicit > ``REPRO_SHARD_WORKERS`` >
  :data:`DEFAULT_SHARD_WORKERS`) and never ``os.cpu_count()``.
* **One global budget.**  Pools lease process workers from the same
  :class:`~repro.engine.parallel.pool.WorkerLedger` as every thread
  pool (``kind="process"``), so threads + processes together respect
  ``REPRO_MAX_TOTAL_WORKERS``.  When a worker dies its lease is
  released immediately — the budget is reclaimed even before the pool
  respawns a replacement.
* **Graceful degradation.**  A pool clamped to zero workers is still
  usable: callers check :attr:`ShardPool.workers` and evaluate shards
  inline in the parent (serial, correct, slow) instead of failing.

The default start method is ``spawn`` (``REPRO_SHARD_START`` overrides):
forking a process that already runs service threads is deadlock-prone
and warns under ``PYTHONDEVMODE``, and spawn ships ``sys.path`` plus a
copy of ``os.environ`` to the child, so ``repro`` imports and
``REPRO_*`` toggles propagate without any bootstrap of our own.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import threading
from typing import Any, List, Optional, Sequence, Tuple

from repro.engine.parallel.pool import GLOBAL_LEDGER, WorkerLedger
from repro.util.errors import ReproError

#: Environment variable naming the default shard worker-process count.
SHARD_WORKERS_ENV = "REPRO_SHARD_WORKERS"

#: Environment variable naming the multiprocessing start method.
SHARD_START_ENV = "REPRO_SHARD_START"

#: Default worker-process count.  A constant, deliberately not
#: ``os.cpu_count()`` — see :mod:`repro.engine.parallel.pool`.
DEFAULT_SHARD_WORKERS = 2

#: Default multiprocessing start method (see the module docstring).
DEFAULT_START_METHOD = "spawn"


class ShardWorkerError(ReproError):
    """A shard worker process failed or died mid-request."""


def resolve_shard_workers(requested: Optional[int] = None) -> int:
    """The effective worker-process count: explicit > environment > default.

    Never consults the host CPU count — worker counts are part of the
    experiment, not a property of the machine.
    """
    if requested is not None:
        if requested < 0:
            raise ReproError(f"shard worker count must be >= 0, got {requested}")
        return requested
    raw = os.environ.get(SHARD_WORKERS_ENV, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ReproError(f"{SHARD_WORKERS_ENV}={raw!r} is not an integer") from None
        if value < 0:
            raise ReproError(f"{SHARD_WORKERS_ENV} must be >= 0, got {value}")
        return value
    return DEFAULT_SHARD_WORKERS


def shard_start_method() -> str:
    """The configured multiprocessing start method (default ``spawn``)."""
    raw = os.environ.get(SHARD_START_ENV, "").strip()
    if not raw:
        return DEFAULT_START_METHOD
    if raw not in multiprocessing.get_all_start_methods():
        raise ReproError(
            f"{SHARD_START_ENV}={raw!r} is not a supported start method "
            f"(have {multiprocessing.get_all_start_methods()})"
        )
    return raw


def _shard_worker_main(conn) -> None:
    """Worker-process entry point: a request/response loop over one pipe.

    Module-level so it stays importable under the ``spawn`` start method.
    Commands (tuples, first element the verb):

    * ``("ping",)`` — liveness probe, replies ``("ok", "pong")``;
    * ``("install", key, attrs, blob)`` — decode a shard from the spill
      wire format and cache it under ``key`` (idempotent);
    * ``("eval", expr_blob, rels)`` — build a local database from
      ``rels`` (``{name: ("ref", key) | ("inline", attrs, blob)}``),
      run the pickled expression through the engine executor (the same
      planned, vectorized path the threaded service uses — with the
      shard dispatch forced off so a worker never tries to re-shard its
      own shard), reply the result's ``(row, multiplicity)`` pairs in
      the wire format;
    * ``("crash", code)`` — hard-exit without replying (fault injection
      for the worker-death drills; never sent by normal execution);
    * ``("exit",)`` — acknowledge and leave the loop.

    Every command replies exactly once (``("ok", payload)`` or
    ``("error", message)``) except ``crash``; a recoverable evaluation
    error therefore never desynchronizes the pipe.
    """
    from repro.algebra.relation import Database, Relation
    from repro.engine.executor import execute
    from repro.engine.shard.wire import (
        decode_pairs,
        encode_pairs,
        intern_plan_strings,
    )
    from repro.engine.storage import Storage
    from repro.util.fastpath import shard_mode

    installed: dict = {}
    storages: dict = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "exit":
            try:
                conn.send(("ok", "bye"))
            except (BrokenPipeError, OSError):
                pass
            break
        if command == "crash":
            os._exit(int(message[1]))
        try:
            if command == "ping":
                reply: Tuple[str, Any] = ("ok", "pong")
            elif command == "install":
                _, key, attrs, blob = message
                attrs = tuple(sys.intern(a) for a in attrs)
                installed[key] = Relation.from_counts(attrs, dict(decode_pairs(blob)))
                reply = ("ok", len(installed))
            elif command == "forget":
                for key in message[1]:
                    installed.pop(key, None)
                storages.clear()
                reply = ("ok", len(installed))
            elif command == "eval":
                _, expr_blob, rels = message
                # All-ref shards (the service's steady state) reuse a
                # cached Storage: rebuilding tables per eval would tax
                # every query with the table-scan setup the installs
                # already paid for.
                ref_key = tuple(
                    sorted((name, spec[1]) for name, spec in rels.items())
                ) if all(spec[0] == "ref" for spec in rels.values()) else None
                storage = storages.get(ref_key) if ref_key is not None else None
                if storage is None:
                    relations = {}
                    for name, spec in rels.items():
                        if spec[0] == "ref":
                            relations[name] = installed[spec[1]]
                        else:
                            relations[name] = Relation.from_counts(
                                tuple(sys.intern(a) for a in spec[1]),
                                dict(decode_pairs(spec[2])),
                            )
                    storage = Storage.from_database(Database(relations))
                    if ref_key is not None:
                        storages[ref_key] = storage
                expr = pickle.loads(expr_blob)
                intern_plan_strings(expr)
                with shard_mode(False):
                    result = execute(expr, storage)
                reply = ("ok", encode_pairs(list(result.relation.counts().items())))
            else:
                reply = ("error", f"unknown command {command!r}")
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            reply = ("error", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "installed", "alive")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: Keys the worker has acknowledged installing (parent-side view,
        #: mutated only under the slot lock).
        self.installed: set = set()
        self.alive = True


class ShardPool:
    """A fixed-size pool of shard worker processes with slot affinity.

    Shard ``s`` always lands on worker ``s % workers`` (see
    :meth:`worker_for`), so a table shard installed once stays resident
    where every query needs it.  Workers are spawned lazily per slot and
    respawned (with a fresh ledger lease) after a death.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        name: str = "shard",
        ledger: Optional[WorkerLedger] = None,
        start: Optional[str] = None,
    ):
        requested = resolve_shard_workers(workers)
        self.name = name
        self._ledger = ledger
        granted = (
            ledger.acquire(requested, name, kind="process")
            if ledger is not None
            else requested
        )
        #: Effective worker count after any ledger clamp.  Zero is legal:
        #: callers degrade to inline evaluation in the parent.
        self.workers = granted
        self.start = start if start is not None else shard_start_method()
        self._ctx = multiprocessing.get_context(self.start)
        self._slots: List[Optional[_Worker]] = [None] * self.workers
        self._slot_locks = [threading.Lock() for _ in range(self.workers)]
        #: Whether slot i currently holds a ledger lease unit.
        self._backed = [True] * self.workers
        self._closed = False
        self._deaths = 0
        self._respawns = 0

    # -- placement ----------------------------------------------------------

    def worker_for(self, shard: int) -> int:
        """The slot that owns ``shard`` (stable across the pool's lifetime)."""
        if self.workers < 1:
            raise ShardWorkerError(f"pool {self.name!r} has no worker processes")
        return shard % self.workers

    # -- lifecycle ----------------------------------------------------------

    def _spawn_locked(self, index: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn,),
            name=f"repro-{self.name}-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._slots[index] = worker
        return worker

    def _ensure_locked(self, index: int) -> _Worker:
        worker = self._slots[index]
        if worker is not None and worker.alive:
            return worker
        if not self._backed[index]:
            if self._ledger is not None:
                if self._ledger.acquire(1, self.name, kind="process") < 1:
                    raise ShardWorkerError(
                        f"pool {self.name!r} cannot respawn worker {index}: "
                        "worker budget exhausted"
                    )
            self._backed[index] = True
        if worker is not None:
            self._respawns += 1
        return self._spawn_locked(index)

    def _reap_locked(self, index: int) -> None:
        """Mark a dead worker and return its lease to the ledger."""
        worker = self._slots[index]
        if worker is None or not worker.alive:
            return
        worker.alive = False
        worker.installed.clear()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():  # pragma: no cover - stuck child
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        self._deaths += 1
        if self._backed[index]:
            self._backed[index] = False
            if self._ledger is not None:
                self._ledger.release(1, self.name, kind="process")

    def terminate_worker(self, index: int) -> None:
        """Fault injection: hard-kill one worker (tests and stress drills).

        The kill itself is *not* accounted — the next request on the slot
        observes the dead pipe, reclaims the lease, and raises
        :class:`ShardWorkerError`, exactly like an organic death.
        """
        with self._slot_locks[index]:
            worker = self._ensure_locked(index)
            worker.process.terminate()
            worker.process.join(timeout=5.0)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut every worker down and return all leases to the ledger."""
        if self._closed:
            return
        self._closed = True
        for index in range(self.workers):
            with self._slot_locks[index]:
                worker = self._slots[index]
                if worker is not None and worker.alive:
                    try:
                        worker.conn.send(("exit",))
                        worker.conn.recv()
                    except (EOFError, BrokenPipeError, OSError):
                        pass
                self._reap_locked(index)
                self._slots[index] = None
                if self._backed[index]:
                    self._backed[index] = False
                    if self._ledger is not None:
                        self._ledger.release(1, self.name, kind="process")

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the request/response protocol --------------------------------------

    def request(self, index: int, messages: Sequence[tuple]) -> List[Any]:
        """Send a batch of commands to one worker; return the ok-payloads.

        The slot lock is held across the whole send/recv batch, so
        concurrent callers can never interleave frames on one pipe.  A
        dead pipe reaps the worker (reclaiming its ledger lease) and
        raises :class:`ShardWorkerError`; an ``("error", ...)`` reply —
        the worker survived, the command failed — raises too, after all
        replies are drained so the pipe stays in sync.
        """
        if self._closed:
            raise ReproError(f"shard pool {self.name!r} is closed")
        if not messages:
            return []
        with self._slot_locks[index]:
            worker = self._ensure_locked(index)
            try:
                for message in messages:
                    worker.conn.send(message)
                replies = [worker.conn.recv() for _ in messages]
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._reap_locked(index)
                raise ShardWorkerError(
                    f"shard worker {index} of pool {self.name!r} died mid-query "
                    f"({type(exc).__name__}); its worker lease has been reclaimed"
                ) from exc
        payloads = []
        for status, payload in replies:
            if status != "ok":
                raise ShardWorkerError(
                    f"shard worker {index} of pool {self.name!r} failed: {payload}"
                )
            payloads.append(payload)
        return payloads

    def run(
        self,
        index: int,
        installs: Sequence[Tuple[Any, tuple, bytes]],
        evals: Sequence[Tuple[bytes, dict]],
    ) -> List[bytes]:
        """Install any missing shards, then evaluate; returns eval payloads.

        ``installs`` is ``(key, attrs, blob)`` triples — ones the worker
        already acknowledged are skipped, so steady-state queries send
        only ``eval`` frames.  Install acknowledgements are recorded
        under the slot lock, which makes the parent-side ``installed``
        view race-free across service threads.
        """
        if self._closed:
            raise ReproError(f"shard pool {self.name!r} is closed")
        with self._slot_locks[index]:
            worker = self._ensure_locked(index)
            fresh = [
                (key, attrs, blob)
                for key, attrs, blob in installs
                if key not in worker.installed
            ]
            messages: List[tuple] = [
                ("install", key, attrs, blob) for key, attrs, blob in fresh
            ]
            messages.extend(("eval", blob, rels) for blob, rels in evals)
            if not messages:
                return []
            try:
                for message in messages:
                    worker.conn.send(message)
                replies = [worker.conn.recv() for _ in messages]
            except (EOFError, BrokenPipeError, OSError) as exc:
                self._reap_locked(index)
                raise ShardWorkerError(
                    f"shard worker {index} of pool {self.name!r} died mid-query "
                    f"({type(exc).__name__}); its worker lease has been reclaimed"
                ) from exc
            for status, payload in replies:
                if status != "ok":
                    raise ShardWorkerError(
                        f"shard worker {index} of pool {self.name!r} failed: {payload}"
                    )
            worker.installed.update(key for key, _, _ in fresh)
        return [payload for _, payload in replies[len(fresh) :]]

    def run_many(
        self,
        jobs: Sequence[
            Tuple[int, Sequence[Tuple[Any, tuple, bytes]], Sequence[Tuple[bytes, dict]]]
        ],
    ) -> List[bytes]:
        """Run one query's per-worker batches: send to all, then collect.

        The send phase writes every worker's frames before any reply is
        read, so all workers start evaluating at once without spawning a
        dispatch thread per query (thread churn is pure overhead, and on
        a single-core host it is overhead with no overlap to buy back).
        Slot locks are taken in index order — the only multi-lock path
        in the pool, so lock ordering is trivially consistent — and held
        until that worker's replies are drained.

        Safe against pipe-buffer deadlock because replies accumulate
        only while the parent is still sending: eval frames are small
        (an expression pickle plus shard refs), each worker gets at most
        ``ceil(shards / workers)`` of them, and a worker writes at most
        one reply per frame — far below the pipe buffer by the time the
        send phase ends, after which the parent drains replies.
        """
        if self._closed:
            raise ReproError(f"shard pool {self.name!r} is closed")
        ordered = sorted(jobs, key=lambda job: job[0])
        acquired: List[threading.Lock] = []
        payloads: List[bytes] = []
        failure: Optional[ShardWorkerError] = None
        try:
            states = []
            for index, installs, evals in ordered:
                lock = self._slot_locks[index]
                lock.acquire()
                acquired.append(lock)
                try:
                    worker = self._ensure_locked(index)
                    fresh = [
                        (key, attrs, blob)
                        for key, attrs, blob in installs
                        if key not in worker.installed
                    ]
                    messages: List[tuple] = [
                        ("install", key, attrs, blob) for key, attrs, blob in fresh
                    ]
                    messages.extend(("eval", blob, rels) for blob, rels in evals)
                    for message in messages:
                        worker.conn.send(message)
                except (EOFError, BrokenPipeError, OSError) as exc:
                    self._reap_locked(index)
                    if failure is None:
                        failure = ShardWorkerError(
                            f"shard worker {index} of pool {self.name!r} died "
                            f"mid-query ({type(exc).__name__}); its worker lease "
                            "has been reclaimed"
                        )
                        failure.__cause__ = exc
                    continue
                states.append((index, worker, fresh, len(messages)))
            # Drain every sent-to worker even after a failure — a pipe
            # left holding unread replies would desynchronize the next
            # query on that slot.
            for index, worker, fresh, count in states:
                try:
                    replies = [worker.conn.recv() for _ in range(count)]
                except (EOFError, BrokenPipeError, OSError) as exc:
                    self._reap_locked(index)
                    if failure is None:
                        failure = ShardWorkerError(
                            f"shard worker {index} of pool {self.name!r} died "
                            f"mid-query ({type(exc).__name__}); its worker lease "
                            "has been reclaimed"
                        )
                        failure.__cause__ = exc
                    continue
                for status, payload in replies:
                    if status != "ok" and failure is None:
                        failure = ShardWorkerError(
                            f"shard worker {index} of pool {self.name!r} failed: "
                            f"{payload}"
                        )
                worker.installed.update(key for key, _, _ in fresh)
                payloads.extend(payload for _, payload in replies[len(fresh) :])
        finally:
            for lock in acquired:
                lock.release()
        if failure is not None:
            raise failure
        return payloads

    def ping(self, index: int) -> bool:
        """Round-trip a liveness probe through one worker."""
        return self.request(index, [("ping",)]) == ["pong"]

    def snapshot(self) -> dict:
        """The pool's books, for service snapshots and tests."""
        alive = sum(
            1 for worker in self._slots if worker is not None and worker.alive
        )
        return {
            "name": self.name,
            "workers": self.workers,
            "start": self.start,
            "alive": alive,
            "backed": sum(self._backed),
            "deaths": self._deaths,
            "respawns": self._respawns,
            "closed": self._closed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardPool({self.name!r}, workers={self.workers}, start={self.start})"


#: Lazily-created process-wide shard pool (conformance tier, ad-hoc use).
_shared: Optional[ShardPool] = None
_shared_lock = threading.Lock()


def shared_shard_pool() -> ShardPool:
    """The process-wide shard pool, created on first use.

    Sized by :func:`resolve_shard_workers` and leased from the global
    ledger, so ambient sharded execution respects the same ceiling as
    every thread pool.
    """
    global _shared
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = ShardPool(name="shard-shared", ledger=GLOBAL_LEDGER)
        return _shared


def reset_shared_shard_pool() -> None:
    """Close and forget the shared shard pool (tests and env changes)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close()
